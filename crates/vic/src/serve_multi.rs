//! Concurrent multi-client serving: many jsonl connections multiplexed
//! onto one shared [`BatchRunner`] worker pool and verdict cache.
//!
//! [`serve_connections`] accepts transports from an [`Accept`] source and
//! runs each as a failure-isolated session speaking the protocol of
//! [`super`] (one reader thread and one writer thread per connection; one
//! worker pool for the whole daemon). The contract, per connection:
//!
//! * **Fair admission.** A request is admitted only if the *global*
//!   in-flight bound ([`ServeConfig::max_in_flight`]) and the connection's
//!   own quota ([`MultiConfig::conn_quota`]) both have room; either
//!   exhaustion answers `overloaded` (the detail names which bound). A
//!   greedy client therefore saturates its quota and starts drawing
//!   rejections while other connections still admit — it cannot starve
//!   them through the global bound as long as
//!   `conn_quota * max_connections <= max_in_flight`.
//! * **Backpressure isolation.** Result responses are written by the
//!   connection's own writer thread, so a client that stops reading stalls
//!   only its own stream: workers hand rendered lines to the writer's
//!   queue and move on. The queue is bounded by the quota invariant —
//!   a connection never has more queued results than admitted requests,
//!   and its slots release only after the physical write, keeping
//!   `overloaded` deterministic. Control lines (errors, acks) are written
//!   by the connection's reader itself, so a client spamming junk while
//!   refusing to read blocks only its own reader.
//! * **Failure isolation.** A client that vanishes (`EPIPE`/`ECONNRESET`
//!   on write), goes idle past [`ServeConfig::idle_timeout_ms`], or sends
//!   `{"shutdown":true}` ends *its* session: its in-flight requests are
//!   cancelled (degrading conservatively), its slots release, and every
//!   other connection is untouched. Even a panic on a connection thread is
//!   confined to that connection.
//! * **Connection cap.** At most [`MultiConfig::max_connections`] sessions
//!   run at once; excess connections receive one machine-readable
//!   `{"type":"error","error":"busy",...}` line and are closed gracefully.
//! * **Drain on shutdown.** Tripping the daemon [`CancelToken`] stops
//!   admission at each reader's next line or idle probe, reaches every
//!   in-flight budget immediately through the token ancestry
//!   (daemon → connection → request), and flushes the conservative
//!   responses before [`serve_connections`] returns. There is no polling
//!   thread anywhere: wakeup is event-driven (token ancestry plus the
//!   transport's own read timeouts), and the [`Accept`] source is
//!   responsible for waking its blocked `accept` when the token trips.
//!
//! Determinism is inherited from [`super`]: result responses are a pure
//! function of their request, so any interleaving of clients produces
//! per-request bytes identical to a sequential replay — what
//! `tests/serve_concurrency.rs` and the `delin_loadgen` bench verify.

use super::{
    empty_batch_stats, interpret, is_client_gone, job_for, lock_recover, render_cancel_ok,
    render_error, render_result, LineBuf, LineRead, Request, ServeConfig,
};
use crate::batch::{BatchJob, BatchRunner, BatchStats, UnitReport};
use crate::cache::VerdictCache;
use crate::json;
use delin_dep::budget::CancelToken;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A source of client connections. Implementations must return `Ok(None)`
/// when the daemon should stop accepting — and are responsible for waking
/// a blocked `accept` when the daemon's shutdown token trips (e.g. the
/// Unix-socket binary wakes itself with a loopback connection from its
/// signal watcher).
pub trait Accept {
    /// The read half of an accepted connection.
    type Reader: BufRead + Send;
    /// The write half of an accepted connection.
    type Writer: Write + Send;
    /// Blocks for the next connection; `Ok(None)` ends the accept loop.
    fn accept(&mut self) -> std::io::Result<Option<(Self::Reader, Self::Writer)>>;
}

/// Closures are acceptors: handy for tests and in-memory transports.
impl<F, R, W> Accept for F
where
    F: FnMut() -> std::io::Result<Option<(R, W)>>,
    R: BufRead + Send,
    W: Write + Send,
{
    type Reader = R;
    type Writer = W;
    fn accept(&mut self) -> std::io::Result<Option<(R, W)>> {
        self()
    }
}

/// Configuration of the multi-connection layer, wrapping the per-session
/// [`ServeConfig`].
#[derive(Debug, Clone)]
pub struct MultiConfig {
    /// The per-session protocol and the shared batch engine configuration.
    /// [`ServeConfig::max_in_flight`] is the *global* admission bound
    /// across all connections.
    pub serve: ServeConfig,
    /// Concurrent connections served at once; excess connections get one
    /// `busy` error line and are closed. Clamped to at least 1.
    pub max_connections: usize,
    /// Per-connection in-flight quota under the global bound. Clamped to
    /// at least 1. Fairness holds when
    /// `conn_quota * max_connections <= max_in_flight`.
    pub conn_quota: usize,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig { serve: ServeConfig::default(), max_connections: 8, conn_quota: 8 }
    }
}

/// What one multi-connection daemon run did, aggregated over every
/// connection it served.
#[derive(Debug, Clone)]
pub struct MultiSummary {
    /// Connections accepted into a session.
    pub connections: usize,
    /// Connections rejected with `busy` at the cap.
    pub rejected_connections: usize,
    /// Analyze requests admitted into the shared worker pool.
    pub admitted: usize,
    /// Result responses completed (rendered and released; writes to a
    /// vanished client are skipped but still counted as completed).
    pub completed: usize,
    /// Analyze requests rejected with `overloaded` (global or quota).
    pub rejected: usize,
    /// Cancel messages received across all connections.
    pub cancel_requests: usize,
    /// Error responses for malformed or unserviceable input.
    pub protocol_errors: usize,
    /// Connections ended by the idle timeout.
    pub idle_timeouts: usize,
    /// Connections whose client vanished mid-session (client-gone write
    /// failure).
    pub client_gone: usize,
    /// Corpus-level totals from the shared batch run.
    pub batch: BatchStats,
    /// First non-client-gone I/O error observed anywhere (accept failures,
    /// transport write failures). Never fatal to the daemon.
    pub io_error: Option<String>,
}

/// Daemon-wide counters, shared across connection threads.
#[derive(Default)]
struct Counters {
    admitted: AtomicUsize,
    completed: AtomicUsize,
    rejected: AtomicUsize,
    cancel_requests: AtomicUsize,
    protocol_errors: AtomicUsize,
    idle_timeouts: AtomicUsize,
    client_gone: AtomicUsize,
}

/// One live connection's shared write-side state: the transport's write
/// half (reader and writer threads both write under this lock), the
/// client-gone flag, the connection token (a child of the daemon token,
/// parent of every request token), and the quota counter.
struct Conn<W> {
    out: Mutex<W>,
    gone: AtomicBool,
    token: CancelToken,
    in_flight: AtomicUsize,
}

/// One admitted request in the daemon-wide registry: who asked (connection
/// and request id), how to cancel it, and where its rendered response line
/// goes. The held sender clone keeps the connection's writer thread alive
/// until this entry drains.
struct PendingConn<W> {
    conn_id: usize,
    id: String,
    cancel: CancelToken,
    tx: mpsc::Sender<(u64, String)>,
    conn: Arc<Conn<W>>,
}

impl<W: Write> Conn<W> {
    /// Writes one line plus newline, flushing. Client-gone failures cancel
    /// the connection (once, counted); other failures land in the shared
    /// error slot and later writes are still attempted.
    fn write_line(&self, line: &str, io_error: &Mutex<Option<String>>, counters: &Counters) {
        if self.gone.load(Ordering::Acquire) {
            return;
        }
        let mut guard = lock_recover(&self.out);
        let result = guard
            .write_all(line.as_bytes())
            .and_then(|()| guard.write_all(b"\n"))
            .and_then(|()| guard.flush());
        drop(guard);
        if let Err(e) = result {
            if is_client_gone(e.kind()) {
                if !self.gone.swap(true, Ordering::AcqRel) {
                    counters.client_gone.fetch_add(1, Ordering::SeqCst);
                    self.token.cancel();
                }
            } else {
                let mut slot = lock_recover(io_error);
                if slot.is_none() {
                    *slot = Some(e.to_string());
                }
            }
        }
    }
}

/// The one `busy` line a connection beyond the cap receives.
pub fn busy_line(max_connections: usize) -> String {
    let mut out = String::from("{\"id\":null,\"type\":\"error\",\"error\":\"busy\",\"detail\":");
    json::write_str(
        &mut out,
        &format!("connection limit reached ({max_connections} concurrent connections)"),
    );
    out.push('}');
    out
}

/// Serves jsonl sessions over every connection `accept` yields, all
/// multiplexed onto one worker pool and (optionally shared) verdict cache.
/// Returns when the accept source ends — `Ok(None)`, typically after the
/// daemon token trips — and every accepted connection has drained.
pub fn serve_connections<A>(
    mut accept: A,
    config: &MultiConfig,
    shutdown: &CancelToken,
    cache: Option<&VerdictCache>,
) -> MultiSummary
where
    A: Accept,
{
    let max_in_flight = config.serve.max_in_flight.max(1);
    let conn_quota = config.conn_quota.max(1);
    let max_connections = config.max_connections.max(1);
    let idle_timeout = config.serve.idle_timeout_ms.map(Duration::from_millis);
    let max_request_bytes = config.serve.max_request_bytes;

    let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
    let registry: Mutex<HashMap<u64, PendingConn<A::Writer>>> = Mutex::new(HashMap::new());
    let next_tag = AtomicU64::new(0);
    let counters = Counters::default();
    let io_error: Mutex<Option<String>> = Mutex::new(None);
    let active = AtomicUsize::new(0);
    let runner = BatchRunner::new(config.serve.batch.clone());
    let mut connections = 0usize;
    let mut rejected_connections = 0usize;

    let batch = std::thread::scope(|scope| {
        let registry = &registry;
        let counters = &counters;
        let io_error = &io_error;
        let active = &active;
        let next_tag = &next_tag;

        // Shared sink: render on the worker that finished the unit, then
        // hand the line to the owning connection's writer thread. Workers
        // never touch a socket — a stalled client cannot stall the pool.
        let sink = |tag: u64, report: &UnitReport| {
            let routed = {
                let reg = lock_recover(registry);
                reg.get(&tag).map(|p| (p.id.clone(), p.tx.clone()))
            };
            let Some((id, tx)) = routed else { return };
            let line = render_result(Some(&id), report);
            // A send failure means the writer is gone, which cannot happen
            // while the registry entry (holding a sender clone) exists;
            // release defensively anyway so the slot never leaks.
            if tx.send((tag, line)).is_err() {
                if let Some(p) = lock_recover(registry).remove(&tag) {
                    p.conn.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                counters.completed.fetch_add(1, Ordering::SeqCst);
            }
        };
        let runner_handle = scope.spawn(move || runner.run_jobs_in(job_rx, cache, false, sink));

        let mut conn_id = 0usize;
        loop {
            if shutdown.is_cancelled() {
                break;
            }
            let (input, output) = match accept.accept() {
                Ok(Some(conn)) => conn,
                Ok(None) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let mut slot = lock_recover(io_error);
                    if slot.is_none() {
                        *slot = Some(e.to_string());
                    }
                    break;
                }
            };
            // Connection cap: reject gracefully with one machine-readable
            // line. `active` counts reader threads still running; writers
            // may flush a moment longer, which the cap need not count.
            if active.load(Ordering::SeqCst) >= max_connections {
                rejected_connections += 1;
                let mut output = output;
                let _ = output
                    .write_all(busy_line(max_connections).as_bytes())
                    .and_then(|()| output.write_all(b"\n"))
                    .and_then(|()| output.flush());
                continue;
            }
            connections += 1;
            active.fetch_add(1, Ordering::SeqCst);
            let id = conn_id;
            conn_id += 1;
            let conn = Arc::new(Conn {
                out: Mutex::new(output),
                gone: AtomicBool::new(false),
                token: shutdown.child(),
                in_flight: AtomicUsize::new(0),
            });
            let (resp_tx, resp_rx) = mpsc::channel::<(u64, String)>();

            // Writer thread: physical writes of result lines, then slot
            // release. Exits when the reader is done *and* every pending
            // entry has drained (each holds a sender clone).
            let writer_conn = conn.clone();
            scope.spawn(move || {
                for (tag, line) in resp_rx {
                    writer_conn.write_line(&line, io_error, counters);
                    if let Some(p) = lock_recover(registry).remove(&tag) {
                        p.conn.in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    counters.completed.fetch_add(1, Ordering::SeqCst);
                }
            });

            // Reader thread: the protocol loop. A panic is confined to
            // this connection — its requests cancel and drain, the daemon
            // keeps serving.
            let job_tx = job_tx.clone();
            let serve_cfg = &config.serve;
            scope.spawn(move || {
                let session = ConnSession {
                    conn_id: id,
                    conn: conn.clone(),
                    registry,
                    counters,
                    io_error,
                    job_tx,
                    resp_tx,
                    next_tag,
                    max_in_flight,
                    conn_quota,
                    max_request_bytes,
                    idle_timeout,
                    budget: &serve_cfg.batch.budget,
                };
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.run(input)));
                if outcome.is_err() {
                    conn.token.cancel();
                    let mut slot = lock_recover(io_error);
                    if slot.is_none() {
                        *slot = Some("connection thread panicked".to_string());
                    }
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(job_tx);
        runner_handle.join()
    });

    let batch = match batch {
        Ok(stats) => stats,
        Err(_) => empty_batch_stats(1),
    };
    MultiSummary {
        connections,
        rejected_connections,
        admitted: counters.admitted.into_inner(),
        completed: counters.completed.into_inner(),
        rejected: counters.rejected.into_inner(),
        cancel_requests: counters.cancel_requests.into_inner(),
        protocol_errors: counters.protocol_errors.into_inner(),
        idle_timeouts: counters.idle_timeouts.into_inner(),
        client_gone: counters.client_gone.into_inner(),
        batch,
        io_error: io_error.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner),
    }
}

/// One connection's protocol loop over the shared pool: borrowed daemon
/// state plus this connection's identity.
struct ConnSession<'a, W> {
    conn_id: usize,
    conn: Arc<Conn<W>>,
    registry: &'a Mutex<HashMap<u64, PendingConn<W>>>,
    counters: &'a Counters,
    io_error: &'a Mutex<Option<String>>,
    job_tx: mpsc::Sender<BatchJob>,
    resp_tx: mpsc::Sender<(u64, String)>,
    next_tag: &'a AtomicU64,
    max_in_flight: usize,
    conn_quota: usize,
    max_request_bytes: usize,
    idle_timeout: Option<Duration>,
    budget: &'a delin_dep::budget::BudgetSpec,
}

impl<W: Write> ConnSession<'_, W> {
    /// A control line (error, ack): written by the reader itself, so a
    /// non-reading client backpressures only its own request stream.
    fn control(&self, line: &str) {
        self.conn.write_line(line, self.io_error, self.counters);
    }

    fn run<R: BufRead>(&self, mut input: R) {
        let mut reader = LineBuf::new();
        let mut idle_since = Instant::now();
        loop {
            if self.conn.token.is_cancelled() {
                break;
            }
            let read = match reader.read_line(&mut input, self.max_request_bytes) {
                Ok(read) => read,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // A read failing because the peer reset is the same
                    // client-gone case as a write failing that way.
                    if is_client_gone(e.kind()) {
                        if !self.conn.gone.swap(true, Ordering::AcqRel) {
                            self.counters.client_gone.fetch_add(1, Ordering::SeqCst);
                            self.conn.token.cancel();
                        }
                    } else {
                        let mut slot = lock_recover(self.io_error);
                        if slot.is_none() {
                            *slot = Some(e.to_string());
                        }
                    }
                    break;
                }
            };
            let oversized = match read {
                LineRead::Eof => break,
                LineRead::Idle => {
                    if self.conn.token.is_cancelled() {
                        break;
                    }
                    if let Some(limit) = self.idle_timeout {
                        if idle_since.elapsed() >= limit {
                            self.counters.idle_timeouts.fetch_add(1, Ordering::SeqCst);
                            self.control(&render_error(
                                None,
                                "idle_timeout",
                                "no request within the idle timeout",
                            ));
                            self.conn.token.cancel();
                            break;
                        }
                    }
                    continue;
                }
                LineRead::Line { oversized } => oversized,
            };
            idle_since = Instant::now();
            let buf = reader.take();
            if oversized {
                self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                self.control(&render_error(None, "oversized", "request line too long"));
                continue;
            }
            if buf.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let Ok(line) = std::str::from_utf8(&buf) else {
                self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                self.control(&render_error(None, "invalid_json", "invalid utf-8"));
                continue;
            };
            let value = match json::parse(line) {
                Ok(value) => value,
                Err(e) => {
                    self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    self.control(&render_error(None, "invalid_json", &e.to_string()));
                    continue;
                }
            };
            match interpret(&value) {
                Ok(Request::Shutdown) => {
                    // Ends *this* connection (its requests drain); daemon
                    // lifetime belongs to the daemon token, not a client.
                    self.control("{\"type\":\"shutdown\"}");
                    break;
                }
                Ok(Request::Cancel(id)) => {
                    self.counters.cancel_requests.fetch_add(1, Ordering::SeqCst);
                    let mut found = false;
                    for p in lock_recover(self.registry).values() {
                        if p.conn_id == self.conn_id && p.id == id {
                            p.cancel.cancel();
                            found = true;
                        }
                    }
                    if found {
                        self.control(&render_cancel_ok(&id));
                    } else {
                        self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                        self.control(&render_error(
                            Some(&id),
                            "unknown_id",
                            "no such request in flight",
                        ));
                    }
                }
                Ok(Request::Analyze(req)) => self.admit(req),
                Err((id, detail)) => {
                    self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
                    self.control(&render_error(id.as_deref(), "invalid_request", &detail));
                }
            }
        }
    }

    /// Admission under both bounds, atomically against the registry lock:
    /// two racing readers cannot both squeeze past the global check.
    fn admit(&self, req: super::AnalyzeRequest) {
        let tag = self.next_tag.fetch_add(1, Ordering::SeqCst);
        let cancel = self.conn.token.child();
        {
            let mut reg = lock_recover(self.registry);
            let verdict = if reg.len() >= self.max_in_flight {
                Some("too many requests in flight")
            } else if self.conn.in_flight.load(Ordering::SeqCst) >= self.conn_quota {
                Some("connection quota exceeded")
            } else {
                None
            };
            if let Some(detail) = verdict {
                drop(reg);
                self.counters.rejected.fetch_add(1, Ordering::SeqCst);
                self.control(&render_error(Some(&req.id), "overloaded", detail));
                return;
            }
            reg.insert(
                tag,
                PendingConn {
                    conn_id: self.conn_id,
                    id: req.id.clone(),
                    cancel: cancel.clone(),
                    tx: self.resp_tx.clone(),
                    conn: self.conn.clone(),
                },
            );
            self.conn.in_flight.fetch_add(1, Ordering::SeqCst);
        }
        let id = req.id.clone();
        let job = job_for(req, self.budget, cancel, tag);
        self.counters.admitted.fetch_add(1, Ordering::SeqCst);
        if self.job_tx.send(job).is_err() {
            // The pool outlives every reader by construction; degrade
            // structurally if it somehow did not.
            self.counters.admitted.fetch_sub(1, Ordering::SeqCst);
            if let Some(p) = lock_recover(self.registry).remove(&tag) {
                p.conn.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            self.counters.protocol_errors.fetch_add(1, Ordering::SeqCst);
            self.control(&render_error(Some(&id), "internal", "worker pool unavailable"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;
    use std::io::Cursor;

    /// A writer whose bytes outlive the daemon run.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn config() -> MultiConfig {
        MultiConfig {
            serve: ServeConfig {
                batch: BatchConfig { workers: 2, ..BatchConfig::default() },
                ..ServeConfig::default()
            },
            max_connections: 4,
            conn_quota: 4,
        }
    }

    const SRC: &str = "REAL A(0:99)\nDO 1 i = 1, 50\n1   A(i) = A(i - 1)\nEND\n";

    fn request(id: &str) -> String {
        format!("{{\"id\":{},\"source\":{}}}\n", json::str_token(id), json::str_token(SRC))
    }

    #[test]
    fn connections_multiplex_onto_one_pool() {
        let scripts: Vec<String> = (0..3).map(|i| request(&format!("c{i}"))).collect();
        let outs: Vec<SharedBuf> = (0..3).map(|_| SharedBuf::default()).collect();
        let mut queue: Vec<_> = scripts
            .iter()
            .zip(&outs)
            .map(|(s, o)| (Cursor::new(s.clone().into_bytes()), o.clone()))
            .collect();
        queue.reverse();
        let acceptor = move || Ok(queue.pop());
        let summary = serve_connections(acceptor, &config(), &CancelToken::new(), None);
        assert_eq!(summary.connections, 3);
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.completed, 3);
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.io_error, None);
        for (i, out) in outs.iter().enumerate() {
            let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
            let lines: Vec<_> = text.lines().collect();
            assert_eq!(lines.len(), 1, "one response per connection: {lines:?}");
            assert!(lines[0].contains(&format!("\"id\":\"c{i}\"")), "{}", lines[0]);
            assert!(lines[0].contains("\"outcome\":\"analyzed\""), "{}", lines[0]);
        }
    }

    #[test]
    fn connection_cap_rejects_with_busy() {
        // One long-lived connection (blocks on a channel-backed reader
        // that we never feed — modelled here by a reader returning
        // WouldBlock forever) occupies the only slot; the second
        // connection must be rejected with `busy` before any session runs.
        struct Stall;
        impl std::io::Read for Stall {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                Err(std::io::ErrorKind::WouldBlock.into())
            }
        }
        let held = SharedBuf::default();
        let second = SharedBuf::default();
        let shutdown = CancelToken::new();
        let trip = shutdown.clone();
        let second_out = second.clone();
        let held_out = held.clone();
        let mut step = 0;
        let acceptor = move || {
            step += 1;
            match step {
                1 => Ok(Some((
                    Box::new(std::io::BufReader::new(
                        Box::new(Stall) as Box<dyn std::io::Read + Send>
                    )),
                    held_out.clone(),
                ))),
                2 => Ok(Some((
                    Box::new(std::io::BufReader::new(
                        Box::new(Cursor::new(Vec::new())) as Box<dyn std::io::Read + Send>
                    )),
                    second_out.clone(),
                ))),
                _ => {
                    // Both connections dispatched: end the daemon.
                    trip.cancel();
                    Ok(None)
                }
            }
        };
        let cfg = MultiConfig { max_connections: 1, ..config() };
        let summary = serve_connections(acceptor, &cfg, &shutdown, None);
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.rejected_connections, 1);
        let text = String::from_utf8(second.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text, busy_line(1) + "\n");
        assert!(held.0.lock().unwrap().is_empty(), "held connection saw no traffic");
    }
}
