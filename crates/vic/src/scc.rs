//! Tarjan's strongly-connected components over statement graphs.

use delin_frontend::ast::StmtId;
use std::collections::HashMap;

/// Computes strongly-connected components of the directed graph given by
/// `nodes` and `edges` (pairs of node indices into `nodes`). Components are
/// returned in *reverse topological order of the condensation reversed* —
/// i.e. in a valid topological order: every edge goes from an earlier
/// component to a later one (or within a component).
pub fn strongly_connected_components(
    nodes: &[StmtId],
    edges: &[(usize, usize)],
) -> Vec<Vec<usize>> {
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan to avoid recursion limits on long statement lists.
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: start, edge: 0 }];
        index[start] = counter;
        low[start] = counter;
        counter += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        // Tarjan invariant: the stack holds at least v
                        // itself whenever low[v] == index[v].
                        let Some(w) = stack.pop() else {
                            unreachable!("SCC stack drained before reaching its root")
                        };
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
                let low_v = low[v];
                call.pop();
                if let Some(parent) = call.last() {
                    low[parent.v] = low[parent.v].min(low_v);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order; reverse them.
    components.reverse();
    // Sanity: every edge respects the order.
    debug_assert!({
        let mut pos = HashMap::new();
        for (i, c) in components.iter().enumerate() {
            for &v in c {
                pos.insert(v, i);
            }
        }
        edges.iter().all(|&(a, b)| pos[&a] <= pos[&b])
    });
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<StmtId> {
        (0..n as u32).map(StmtId).collect()
    }

    #[test]
    fn chain_is_singletons_in_order() {
        let comps = strongly_connected_components(&ids(3), &[(0, 1), (1, 2)]);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn cycle_collapses() {
        let comps = strongly_connected_components(&ids(3), &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let comps = strongly_connected_components(&ids(2), &[(0, 0), (0, 1)]);
        assert_eq!(comps, vec![vec![0], vec![1]]);
    }

    #[test]
    fn diamond_topological_order() {
        let comps = strongly_connected_components(&ids(4), &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(comps.len(), 4);
        assert_eq!(comps[0], vec![0]);
        assert_eq!(comps[3], vec![3]);
    }

    #[test]
    fn disconnected_nodes_all_appear() {
        let comps = strongly_connected_components(&ids(4), &[(2, 3)]);
        assert_eq!(comps.iter().flatten().count(), 4);
    }

    #[test]
    fn big_cycle() {
        let n = 500;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let comps = strongly_connected_components(&ids(n), &edges);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }
}
