//! The persistent verdict-cache tier: a versioned, checksummed,
//! fingerprint-keyed record file.
//!
//! [`save`] serializes every memoized entry of a fingerprint-keyed
//! [`VerdictCache`] — the 128-bit key, the rendered canonical string key,
//! the full [`CachedOutcome`] and its [`SubtreeStore`] solver state — and
//! [`load`] seeds them back into a fresh cache, so a later process starts
//! warm instead of re-solving the whole corpus. The engine's determinism
//! contract makes this safe by construction: per-run statistics are
//! attributed at fold time from key fingerprints, never from live cache
//! state, so a warm run reports byte-for-byte what the cold run reported
//! (the `batch_corpus --verify` warm/cold leg pins exactly that).
//!
//! # Format
//!
//! A small fixed header followed by self-delimiting records:
//!
//! ```text
//! magic    b"DELINVC\x01"                      8 bytes
//! version  u32 LE                              format revision
//! probe    u128 LE                             fingerprint-schema probe
//! record*  u32 len · u64 checksum · payload    until end of file
//! ```
//!
//! The *probe* is the [`Fp128`] fingerprint of a fixed byte string computed
//! by the writing binary. Fingerprints are stable within a build but are
//! **not** a cross-build serialization format (see
//! [`delin_numeric::fp128`]); a binary whose hash schema drifted computes a
//! different probe and rejects the file wholesale instead of silently
//! mis-keying every entry. Wrong magic or version rejects the same way.
//!
//! Each record carries its own length prefix and FxHash checksum, so a
//! truncated tail (a crash mid-write, although [`save`] writes to a
//! temporary file and renames) or a corrupted record is detected at the
//! first bad byte: the valid prefix loads, the rest is ignored. A file that
//! fails validation is *never trusted* — the cache simply starts cold.
//!
//! Two invariants the loader enforces rather than assumes:
//!
//! * **degraded outcomes never load** — they are never written (the cache
//!   refuses to memoize them, and [`save`] skips them besides), and
//!   [`VerdictCache::seed_entry`] rejects any a crafted file might claim,
//!   so a starved run can never poison a warm start;
//! * **test names intern against the engine's static table** — the
//!   `tested_by`/`attempts` fields are `&'static str` in the engine;
//!   records naming unknown tests are rejected rather than leaked.

use crate::cache::{CachedOutcome, KeyMode, VerdictCache};
use delin_dep::dirvec::{Dir, DirVec, DistDir, DistDirVec};
use delin_dep::exact::{SolveOutcome, SubtreeStore};
use delin_dep::verdict::{DependenceInfo, Verdict};
use delin_numeric::fp128::Fp128;
use std::hash::Hasher as _;
use std::path::Path;
use std::sync::Arc;

/// File magic: "DELINVC" plus a format byte.
const MAGIC: &[u8; 8] = b"DELINVC\x01";

/// Format revision; bump on any layout change.
pub const VERSION: u32 = 1;

/// The deciding-test / attempt names the engine can produce, used to intern
/// loaded names back to `&'static str`. Must stay a superset of every name
/// `deps::decide` emits ("test" exists for the unit-test suites).
const KNOWN_TESTS: &[&str] = &[
    "delinearization",
    "gcd",
    "siv",
    "svpc",
    "acyclic",
    "loop-residue",
    "banerjee",
    "dir-vectors",
    "degraded",
    "conservative",
    "exact",
    "test",
];

/// What [`load`] did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries seeded into the cache.
    pub loaded: usize,
    /// Records (or whole files) rejected as stale, corrupt, truncated,
    /// wrong-version, duplicate, or otherwise untrustworthy.
    pub rejected: usize,
}

/// The fingerprint-schema probe: a fixed input hashed by *this* binary's
/// [`Fp128`]. Matching probes mean matching fingerprint schemas, which is
/// what makes the persisted 128-bit keys trustworthy.
fn build_probe() -> u128 {
    let mut h = Fp128::new();
    h.write(b"delin-verdict-cache-probe");
    h.write_u128(0x5eed_cafe);
    h.finish128()
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = fxhash::FxHasher::default();
    h.write(payload);
    h.finish()
}

fn intern(name: &[u8]) -> Option<&'static str> {
    KNOWN_TESTS.iter().find(|k| k.as_bytes() == name).copied()
}

// ---------------------------------------------------------------- encoding

fn push_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_u128(b: &mut Vec<u8>, v: u128) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_i128(b: &mut Vec<u8>, v: i128) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(b: &mut Vec<u8>, v: &[u8]) {
    push_u32(b, v.len() as u32);
    b.extend_from_slice(v);
}

fn dir_code(d: Dir) -> u8 {
    match d {
        Dir::Lt => 0,
        Dir::Eq => 1,
        Dir::Gt => 2,
        Dir::Le => 3,
        Dir::Ge => 4,
        Dir::Ne => 5,
        Dir::Any => 6,
    }
}

fn dir_from_code(c: u8) -> Option<Dir> {
    Some(match c {
        0 => Dir::Lt,
        1 => Dir::Eq,
        2 => Dir::Gt,
        3 => Dir::Le,
        4 => Dir::Ge,
        5 => Dir::Ne,
        6 => Dir::Any,
        _ => return None,
    })
}

fn encode_dirs(b: &mut Vec<u8>, dirs: &[Dir]) {
    push_u32(b, dirs.len() as u32);
    for &d in dirs {
        b.push(dir_code(d));
    }
}

fn encode_witness(b: &mut Vec<u8>, w: &[i128]) {
    push_u32(b, w.len() as u32);
    for &v in w {
        push_i128(b, v);
    }
}

fn encode_verdict(b: &mut Vec<u8>, v: &Verdict) {
    match v {
        Verdict::Independent => b.push(0),
        Verdict::Dependent { exact, info } => {
            b.push(1);
            b.push(u8::from(*exact));
            push_u32(b, info.dir_vecs.len() as u32);
            for dv in &info.dir_vecs {
                encode_dirs(b, &dv.0);
            }
            push_u32(b, info.dist_dirs.len() as u32);
            for ddv in &info.dist_dirs {
                push_u32(b, ddv.0.len() as u32);
                for dd in &ddv.0 {
                    match dd {
                        DistDir::Dist(d) => {
                            b.push(0);
                            push_i128(b, *d);
                        }
                        DistDir::Dir(d) => {
                            b.push(1);
                            b.push(dir_code(*d));
                        }
                    }
                }
            }
            match &info.witness {
                None => b.push(0),
                Some(w) => {
                    b.push(1);
                    encode_witness(b, w);
                }
            }
        }
        Verdict::Unknown => b.push(2),
    }
}

fn encode_record(fp: u128, key: &str, outcome: &CachedOutcome) -> Vec<u8> {
    let mut b = Vec::new();
    push_u128(&mut b, fp);
    push_bytes(&mut b, key.as_bytes());
    push_bytes(&mut b, outcome.tested_by.as_bytes());
    push_u32(&mut b, outcome.attempts.len() as u32);
    for a in &outcome.attempts {
        push_bytes(&mut b, a.as_bytes());
    }
    push_u64(&mut b, outcome.solver_nodes);
    push_u64(&mut b, outcome.refine_queries);
    push_u64(&mut b, outcome.subtree_reuses);
    push_u64(&mut b, outcome.nodes_saved);
    encode_verdict(&mut b, &outcome.verdict);
    match &outcome.solver_state {
        None => b.push(0),
        Some(store) => {
            b.push(1);
            let trees = store.export();
            push_u32(&mut b, trees.len() as u32);
            for (k, entries) in &trees {
                push_u128(&mut b, *k);
                push_u32(&mut b, entries.len() as u32);
                for (dirs, out, nodes) in entries {
                    encode_dirs(&mut b, dirs);
                    match out {
                        SolveOutcome::NoSolution => b.push(0),
                        SolveOutcome::Solution(w) => {
                            b.push(1);
                            encode_witness(&mut b, w);
                        }
                        // Unreachable: degraded outcomes never enter a
                        // solve tree. Encode as an invalid tag so a bug
                        // here surfaces as a rejected record, not a bogus
                        // replayable proof.
                        SolveOutcome::Degraded(_) => b.push(0xff),
                    }
                    push_u64(&mut b, *nodes);
                }
            }
        }
    }
    b
}

// ---------------------------------------------------------------- decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8).and_then(|b| Some(u64::from_le_bytes(b.try_into().ok()?)))
    }

    fn u128(&mut self) -> Option<u128> {
        self.bytes(16).and_then(|b| Some(u128::from_le_bytes(b.try_into().ok()?)))
    }

    fn i128(&mut self) -> Option<i128> {
        self.bytes(16).and_then(|b| Some(i128::from_le_bytes(b.try_into().ok()?)))
    }

    fn blob(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.bytes(n)
    }
}

fn decode_dirs(r: &mut Reader<'_>) -> Option<Vec<Dir>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(dir_from_code(r.u8()?)?);
    }
    Some(out)
}

fn decode_witness(r: &mut Reader<'_>) -> Option<Vec<i128>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.i128()?);
    }
    Some(out)
}

fn decode_verdict(r: &mut Reader<'_>) -> Option<Verdict> {
    Some(match r.u8()? {
        0 => Verdict::Independent,
        1 => {
            let exact = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let n = r.u32()? as usize;
            let mut dir_vecs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                dir_vecs.push(DirVec(decode_dirs(r)?));
            }
            let n = r.u32()? as usize;
            let mut dist_dirs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let m = r.u32()? as usize;
                let mut ddv = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    ddv.push(match r.u8()? {
                        0 => DistDir::Dist(r.i128()?),
                        1 => DistDir::Dir(dir_from_code(r.u8()?)?),
                        _ => return None,
                    });
                }
                dist_dirs.push(DistDirVec(ddv));
            }
            let witness = match r.u8()? {
                0 => None,
                1 => Some(decode_witness(r)?),
                _ => return None,
            };
            Verdict::Dependent { exact, info: DependenceInfo { dir_vecs, dist_dirs, witness } }
        }
        2 => Verdict::Unknown,
        _ => return None,
    })
}

fn decode_record(payload: &[u8]) -> Option<(u128, String, CachedOutcome)> {
    let mut r = Reader::new(payload);
    let fp = r.u128()?;
    let key = String::from_utf8(r.blob()?.to_vec()).ok()?;
    let tested_by = intern(r.blob()?)?;
    let n = r.u32()? as usize;
    let mut attempts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        attempts.push(intern(r.blob()?)?);
    }
    let solver_nodes = r.u64()?;
    let refine_queries = r.u64()?;
    let subtree_reuses = r.u64()?;
    let nodes_saved = r.u64()?;
    let verdict = decode_verdict(&mut r)?;
    let solver_state = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()? as usize;
            let mut records = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = r.u128()?;
                let m = r.u32()? as usize;
                let mut entries = Vec::with_capacity(m.min(1024));
                for _ in 0..m {
                    let dirs = decode_dirs(&mut r)?;
                    let out = match r.u8()? {
                        0 => SolveOutcome::NoSolution,
                        1 => SolveOutcome::Solution(decode_witness(&mut r)?),
                        _ => return None,
                    };
                    entries.push((dirs, out, r.u64()?));
                }
                records.push((k, entries));
            }
            let store = SubtreeStore::new();
            store.import(&records);
            Some(Arc::new(store))
        }
        _ => return None,
    };
    if !r.at_end() {
        return None; // trailing garbage inside a checksummed payload
    }
    Some((
        fp,
        key,
        CachedOutcome {
            verdict,
            tested_by,
            attempts,
            solver_nodes,
            refine_queries,
            subtree_reuses,
            nodes_saved,
            solver_state,
            degraded: None,
        },
    ))
}

// ------------------------------------------------------------------- API

/// Serializes every memoized entry of `cache` to `path`, atomically (write
/// to a sibling temporary file, then rename). Returns the number of records
/// written. A string-keyed cache writes nothing and leaves any existing
/// file untouched — persistence is fingerprint-only.
///
/// # Errors
///
/// Propagates filesystem errors from writing or renaming the file.
pub fn save(cache: &VerdictCache, path: &Path) -> std::io::Result<usize> {
    if cache.key_mode() != KeyMode::Fp {
        return Ok(0);
    }
    let entries = cache.export_entries();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, VERSION);
    push_u128(&mut out, build_probe());
    let mut written = 0usize;
    for (fp, key, outcome) in &entries {
        if outcome.degraded.is_some() {
            continue; // never persist a degraded verdict
        }
        let payload = encode_record(*fp, key, outcome);
        push_u32(&mut out, payload.len() as u32);
        push_u64(&mut out, checksum(&payload));
        out.extend_from_slice(&payload);
        written += 1;
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &out)?;
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

/// Seeds `cache` from a file written by [`save`]. Missing files, wrong
/// magic/version, a fingerprint-schema mismatch, and corrupt or truncated
/// tails all degrade to a (partial) cold start — the file is never trusted
/// past the first byte that fails validation. String-keyed caches load
/// nothing.
pub fn load(cache: &VerdictCache, path: &Path) -> LoadReport {
    let mut report = LoadReport::default();
    if cache.key_mode() != KeyMode::Fp {
        return report;
    }
    let Ok(bytes) = std::fs::read(path) else {
        return report; // no file yet: plain cold start
    };
    let mut r = Reader::new(&bytes);
    let header_ok = r.bytes(MAGIC.len()).map(|m| m == MAGIC).unwrap_or(false)
        && r.u32() == Some(VERSION)
        && r.u128() == Some(build_probe());
    if !header_ok {
        report.rejected += 1;
        return report;
    }
    while !r.at_end() {
        let framed = r.u32().and_then(|len| {
            let sum = r.u64()?;
            let payload = r.bytes(len as usize)?;
            (checksum(payload) == sum).then_some(payload)
        });
        let Some(payload) = framed else {
            report.rejected += 1; // truncated or corrupt: ignore the rest
            break;
        };
        match decode_record(payload) {
            Some((fp, key, outcome)) => {
                if cache.seed_entry(fp, key, outcome) {
                    report.loaded += 1;
                } else {
                    report.rejected += 1;
                }
            }
            None => {
                report.rejected += 1;
                break; // framing was valid but content was not: stop trusting
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_codec_round_trips() {
        for d in [Dir::Lt, Dir::Eq, Dir::Gt, Dir::Le, Dir::Ge, Dir::Ne, Dir::Any] {
            assert_eq!(dir_from_code(dir_code(d)), Some(d));
        }
        assert_eq!(dir_from_code(7), None);
    }

    #[test]
    fn intern_covers_engine_test_names() {
        for name in ["delinearization", "gcd", "banerjee", "degraded"] {
            assert!(intern(name.as_bytes()).is_some());
        }
        assert_eq!(intern(b"made-up-test"), None);
    }

    #[test]
    fn verdict_codec_round_trips() {
        let verdicts = [
            Verdict::Independent,
            Verdict::Unknown,
            Verdict::Dependent {
                exact: true,
                info: DependenceInfo {
                    dir_vecs: vec![DirVec(vec![Dir::Lt, Dir::Any])],
                    dist_dirs: vec![DistDirVec(vec![DistDir::Dist(-3), DistDir::Dir(Dir::Ge)])],
                    witness: Some(vec![1, -2, i128::MAX]),
                },
            },
        ];
        for v in &verdicts {
            let mut b = Vec::new();
            encode_verdict(&mut b, v);
            let mut r = Reader::new(&b);
            assert_eq!(decode_verdict(&mut r).as_ref(), Some(v));
            assert!(r.at_end());
        }
    }
}
