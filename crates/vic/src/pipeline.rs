//! The end-to-end VIC pipeline.
//!
//! parse → induction-variable substitution → linearization of
//! `EQUIVALENCE`-aliased arrays → dependence analysis → Allen–Kennedy
//! vectorization → FORTRAN-90-style output.

use crate::cache::{KeyMode, VerdictCache};
use crate::chaos::ChaosCtx;
use crate::codegen::{vectorize, VectorizeResult};
use crate::deps::{
    build_dependence_graph_in, incremental_from_env, workers_from_env, DepGraph, DepStats,
    EngineConfig, TestChoice,
};
use delin_dep::budget::BudgetSpec;
use delin_dep::exact::arena_from_env;
use delin_frontend::induction::{substitute_inductions, InductionReport};
use delin_frontend::linearize::{linearize_aliased, LinearizeReport};
use delin_frontend::parser::{parse_program, ParseError};
use delin_numeric::Assumptions;
use std::fmt;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which dependence tests run.
    pub choice: TestChoice,
    /// Apply induction-variable substitution.
    pub induction: bool,
    /// Linearize `EQUIVALENCE`-aliased arrays first.
    pub linearize: bool,
    /// Symbolic assumptions (e.g. `N ≥ 2`).
    pub assumptions: Assumptions,
    /// Derive additional symbol bounds from loop bounds under the premise
    /// that loops execute at least once (safe for vectorization).
    pub infer_loop_assumptions: bool,
    /// Worker threads for the dependence-pair worklist; `0` means one per
    /// available CPU, `1` forces the serial path. Any count produces
    /// identical edges and verdict statistics.
    pub workers: usize,
    /// Memoize verdicts of canonicalized dependence problems.
    pub cache: bool,
    /// Verdict-cache key representation (see [`KeyMode`]): structural
    /// fingerprints by default, rendered strings as the A/B baseline. Pure
    /// perf knob; the default reads `DELIN_KEYING` (`string` selects the
    /// baseline).
    pub keying: KeyMode,
    /// Incremental exact solving (see [`EngineConfig::incremental`]): a
    /// pure perf knob, identical edges and verdicts either way. The
    /// default reads `DELIN_INCREMENTAL` (`0` disables).
    pub incremental: bool,
    /// Arena miss path (see [`EngineConfig::arena`]): per-worker scratch
    /// reuse for problems and solver buffers. Pure perf knob, identical
    /// edges and verdicts either way. The default reads `DELIN_ARENA`
    /// (`0` disables).
    pub arena: bool,
    /// Verdict-cache entry capacity (see [`EngineConfig::cache_cap`]);
    /// `0` = unbounded. The default reads `DELIN_CACHE_CAP`. Ignored when
    /// a shared cache is passed in.
    pub cache_cap: usize,
    /// Resource budget for dependence analysis (armed once per run; see
    /// [`EngineConfig::budget`]). The default reads `DELIN_DEADLINE_MS`.
    pub budget: BudgetSpec,
    /// Deterministic fault injection (see [`crate::chaos`]); `None` unless
    /// the `chaos` feature is on and a plan was requested.
    pub chaos: Option<ChaosCtx>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            choice: TestChoice::DelinearizationFirst,
            induction: true,
            linearize: true,
            assumptions: Assumptions::new(),
            infer_loop_assumptions: true,
            workers: workers_from_env(),
            cache: true,
            keying: KeyMode::from_env(),
            incremental: incremental_from_env(),
            arena: arena_from_env(),
            cache_cap: crate::cache::cache_cap_from_env(),
            budget: BudgetSpec::default(),
            chaos: None,
        }
    }
}

/// A pipeline error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The source did not parse.
    Parse(ParseError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

/// What the pipeline did.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Rendered vector output.
    pub vector_code: String,
    /// Dependence statistics.
    pub stats: DepStats,
    /// Vectorization result (counts and code tree).
    pub vectorization: VectorizeResult,
    /// Induction variables substituted.
    pub inductions: Vec<InductionReport>,
    /// Linearizations performed.
    pub linearizations: Vec<LinearizeReport>,
    /// The dependence graph the vectorizer ran on (its `stats` field equals
    /// [`PipelineReport::stats`]).
    pub graph: DepGraph,
}

/// Runs the whole pipeline on mini-FORTRAN source.
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] when the source does not parse;
/// transformation failures (e.g. un-linearizable aliases) are skipped with
/// the affected arrays left untouched, keeping the pipeline total.
pub fn run_pipeline(src: &str, config: &PipelineConfig) -> Result<PipelineReport, PipelineError> {
    run_pipeline_in(src, config, None)
}

/// Like [`run_pipeline`], but dependence verdicts may be memoized in a
/// `shared` cross-unit cache (see [`crate::batch`]). With `shared: None`
/// the pipeline behaves exactly as before, using a private per-run cache
/// when `config.cache` is set.
///
/// # Errors
///
/// Returns [`PipelineError::Parse`] when the source does not parse.
pub fn run_pipeline_in(
    src: &str,
    config: &PipelineConfig,
    shared: Option<&VerdictCache>,
) -> Result<PipelineReport, PipelineError> {
    let mut program = parse_program(src)?;
    let mut inductions = Vec::new();
    if config.induction {
        let (p, reports) = substitute_inductions(&program);
        program = p;
        inductions = reports;
    }
    let mut linearizations = Vec::new();
    if config.linearize {
        // Process EQUIVALENCE pairs; failures leave the program unchanged.
        let pairs = program.equivalences.clone();
        for (a, b) in pairs {
            if let Ok((p, report)) = linearize_aliased(&program, &a, &b) {
                program = p;
                linearizations.push(report);
            }
        }
    }
    let assumptions = if config.infer_loop_assumptions {
        delin_frontend::affine::infer_bound_assumptions(&program, &config.assumptions)
    } else {
        config.assumptions.clone()
    };
    let engine = EngineConfig {
        choice: config.choice,
        workers: config.workers,
        cache: config.cache,
        keying: config.keying,
        incremental: config.incremental,
        arena: config.arena,
        cache_cap: config.cache_cap,
        budget: config.budget.clone(),
        chaos: config.chaos.clone(),
    };
    let graph = build_dependence_graph_in(&program, &assumptions, &engine, shared);
    let vectorization = vectorize(&program, &graph);
    Ok(PipelineReport {
        vector_code: vectorization.render(),
        stats: graph.stats.clone(),
        vectorization,
        inductions,
        linearizations,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_on_motivating_example() {
        let report = run_pipeline(
            "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ",
            &PipelineConfig::default(),
        )
        .unwrap();
        assert_eq!(report.vectorization.vectorized_statements, 1);
        assert!(report.stats.proven_independent >= 1);
    }

    #[test]
    fn equivalence_program_goes_through_linearization() {
        let report = run_pipeline(
            "
            REAL A(0:9,0:9), B(0:4,0:19)
            EQUIVALENCE (A, B)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   A(i, j) = B(i, 2*j + 1)
            END
        ",
            &PipelineConfig::default(),
        )
        .unwrap();
        assert_eq!(report.linearizations.len(), 1);
        // A(i,j) = B(i, 2j+1) linearizes to A_B(i + 10j) = A_B(i + 5(2j+1))
        // = A_B(i + 10j + 5): the motivating example again — independent,
        // fully vectorized.
        assert_eq!(report.vectorization.vectorized_statements, 1);
        assert_eq!(report.vectorization.vector_dimensions, 2);
    }

    #[test]
    fn induction_program_parallelizes_b_statement() {
        let report = run_pipeline(
            "
            REAL B(0:999), C(0:99)
            IB = -1
            DO 1 I = 0, 9
            DO 1 J = 0, 9
            DO 1 K = 0, 9
              IB = IB + 1
              C(J) = C(J) + 1
        1   B(IB) = B(IB) + Q
            END
        ",
            &PipelineConfig::default(),
        )
        .unwrap();
        assert_eq!(report.inductions.len(), 1);
        // The B statement becomes B(K + 10*J + 100*I) — self-independent
        // across iterations (all distinct), so it vectorizes in all three
        // dimensions. The C statement carries a K-loop recurrence.
        assert!(report.vectorization.vectorized_statements >= 1);
        let text = &report.vector_code;
        assert!(text.contains("B("), "{text}");
    }

    #[test]
    fn parse_errors_surface() {
        let e = run_pipeline("DO = ", &PipelineConfig::default()).unwrap_err();
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn battery_only_is_more_conservative() {
        let src = "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ";
        let with = run_pipeline(src, &PipelineConfig::default()).unwrap();
        let without = run_pipeline(
            src,
            &PipelineConfig { choice: TestChoice::BatteryOnly, ..PipelineConfig::default() },
        )
        .unwrap();
        assert!(
            with.vectorization.vectorized_statements > without.vectorization.vectorized_statements
        );
    }
}
