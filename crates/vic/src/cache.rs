//! Canonicalization and memoization of dependence verdicts.
//!
//! Programs repeat subscript shapes constantly — `B(j)` read by two
//! statements in the same nest produces byte-identical dependence problems
//! for several reference pairs — so the engine normalizes each
//! [`DependenceProblem`] to a canonical form and solves every distinct form
//! exactly once. Corpora repeat shapes *across* program units too, so a
//! single [`VerdictCache::shared`] instance can back any number of
//! concurrent graph constructions (see [`crate::batch`]).
//!
//! Canonicalization renames variables away (only their positions and upper
//! bounds survive), sorts the equations into a stable structural order, and
//! prefixes an *environment key*: the assumptions in force, projected onto
//! the symbols the problem actually mentions. Two pairs whose problems
//! agree up to variable names and equation order — even when they come from
//! different program units — share one cache entry exactly when their
//! assumption environments agree on every symbol the problem uses. Fully
//! concrete problems mention no symbols, so they share across *any*
//! environments; symbolic problems from units with conflicting assumptions
//! never collide (see `shared_cache_separates_assumption_environments`).
//!
//! # Keying modes
//!
//! The cache supports two interchangeable key representations, selected by
//! [`KeyMode`] (env knob `DELIN_KEYING`, default fingerprints):
//!
//! * [`KeyMode::Fp`] — the hot path. Each lookup folds the canonical
//!   structure (environment projection, bounds, common pairs, equations,
//!   inequalities) through a 128-bit structural fingerprint
//!   ([`delin_numeric::fp128::Fp128`], two decorrelated FxHash lanes) with
//!   **no string rendering, no `SymPoly` clones, and no heap allocation**.
//!   Equation-order insensitivity comes from combining per-equation
//!   fingerprints commutatively (wrapping add), so the fingerprint never
//!   needs the sorted order that the string key materializes. The shard
//!   maps are `u128 → cell` behind [`fxhash::FxBuildHasher`], so a hit is
//!   an integer hash plus one shard probe. The full string key — and the
//!   canonical problem — are only produced on a miss, inside the cell's
//!   compute slot; the rendered key is stashed in the cell for debug dumps
//!   and the `--verify` keying A/B leg (see [`VerdictCache::debug_keys`]).
//! * [`KeyMode::Str`] — the legacy baseline: every lookup eagerly renders
//!   the environment key and the canonical string key and probes
//!   `String`-keyed shards. Kept bit-for-bit faithful so `--verify` can
//!   prove the two modes partition problems identically and measure the
//!   fingerprint path's win honestly.
//!
//! Both modes key on the same information, so hits, misses, memoized
//! verdicts and the final graphs are identical between them; only the cost
//! of a lookup differs.
//!
//! The store is a sharded `RwLock` map of [`ComputeCell`]s: concurrent
//! workers that race on the same key agree on a single cell, and exactly
//! one of them runs the solver while the rest block on the cell. Every
//! distinct key is therefore computed exactly once per cache lifetime, no
//! matter how many units or worker threads touch it — with two
//! fault-tolerance refinements over a plain `OnceLock`:
//!
//! * **panic safety** — if the computing worker panics, the cell resets to
//!   idle and wakes its waiters, so a later lookup retries instead of
//!   deadlocking or observing a poisoned lock;
//! * **degraded outcomes are never memoized** — an outcome produced under
//!   an exhausted [`delin_dep::budget::ResourceBudget`] carries a
//!   [`DegradeReason`] and is returned to its caller but *not* stored.
//!   Every cached entry is therefore a full-budget verdict, which keeps
//!   cached results a pure function of the canonical key even when units
//!   run under different (or escalating retry) budgets.
//!
//! # Bounded capacity
//!
//! The cache is bounded by an optional capacity
//! ([`VerdictCache::capacity`], env knob `DELIN_CACHE_CAP`, `0` =
//! unbounded — bit-compatible with the historical cache). Capacity is split
//! evenly across the shards; when an insert pushes a shard over its share,
//! the least-recently-touched entry is evicted — except entries whose
//! compute slot is in flight (`Computing`), which are never evicted. Eviction is invisible to every determinism contract: per-run
//! hit/miss/attempt statistics are attributed at fold time from key
//! fingerprints (see [`crate::deps::DepStats::attempts_by`]), not from live
//! cache state, and a re-computed entry is a pure function of its canonical
//! key — so edges, verdicts and reports are byte-identical under any
//! capacity. Only the [`VerdictCache::evictions`] counter itself observes
//! eviction; it is deterministic for a serial run with a fixed arrival
//! order and excluded from `VerdictStats` and all rendered reports (the
//! corpus render appends it only when a capacity is set).
//!
//! # Persistent tier
//!
//! [`crate::persist`] serializes memoized entries (fingerprint, rendered
//! canonical key, outcome, solver state) to a versioned, checksummed file
//! and seeds them back at startup. Seeded cells are marked, so
//! [`VerdictCache::persistent_hits`] counts the lookups a warm start
//! answered without solving. Only full-budget outcomes ever reach the
//! cache, so a warm start can never replay a degraded verdict.

use delin_dep::budget::DegradeReason;
use delin_dep::exact::SubtreeStore;
use delin_dep::problem::DependenceProblem;
use delin_dep::verdict::Verdict;
use delin_numeric::fp128::Fp128;
use delin_numeric::{Assumptions, Sym, SymPoly};
use fxhash::FxBuildHasher;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

/// Number of independent lock shards. The critical sections only
/// insert/lookup an `Arc`, never solve — but every read still bumps its
/// shard lock's reader count, so with a dozen workers streaming lookups the
/// shard count is really about keeping two threads off the same reader
/// cacheline. 64 makes same-shard collisions the exception.
const SHARDS: usize = 64;

/// The default cache capacity: the `DELIN_CACHE_CAP` environment variable
/// when set to a number of entries, else `0` — unbounded, bit-compatible
/// with the historical cache.
pub fn cache_cap_from_env() -> usize {
    std::env::var("DELIN_CACHE_CAP").ok().and_then(|v| v.trim().parse().ok()).unwrap_or(0)
}

/// How the verdict cache represents its keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// 128-bit structural fingerprints; canonical strings only on miss.
    Fp,
    /// Eagerly rendered canonical string keys (the legacy baseline).
    Str,
}

impl KeyMode {
    /// Reads `DELIN_KEYING`: `string`/`str` selects [`KeyMode::Str`],
    /// anything else (including unset) the default [`KeyMode::Fp`].
    pub fn from_env() -> KeyMode {
        match std::env::var("DELIN_KEYING").as_deref() {
            Ok("string") | Ok("str") => KeyMode::Str,
            _ => KeyMode::Fp,
        }
    }

    /// The name the bench/verify reports use for this mode.
    pub fn label(self) -> &'static str {
        match self {
            KeyMode::Fp => "fp",
            KeyMode::Str => "string",
        }
    }
}

impl Default for KeyMode {
    fn default() -> Self {
        KeyMode::from_env()
    }
}

/// The memoized result of deciding one canonical dependence problem.
#[derive(Debug, Clone)]
pub struct CachedOutcome {
    /// The verdict for the canonical problem.
    pub verdict: Verdict,
    /// The deciding test's name.
    pub tested_by: &'static str,
    /// Names of the test invocations that ran while deciding. A pure
    /// function of the canonical problem, so callers may attribute these to
    /// any reference of the entry (see `DepStats` fold attribution).
    pub attempts: Vec<&'static str>,
    /// Exact-solver search nodes spent computing this entry.
    pub solver_nodes: u64,
    /// Refinement queries issued against the incremental solve-tree store
    /// while deciding this entry. Like `attempts`, a pure function of the
    /// canonical problem and configuration, so callers may attribute it to
    /// any reference of the entry.
    pub refine_queries: u64,
    /// Refinement queries answered by replaying a stored subtree instead of
    /// re-enumerating.
    pub subtree_reuses: u64,
    /// Exact-solver nodes those subtree replays avoided re-spending.
    pub nodes_saved: u64,
    /// The per-problem incremental solver state (the solve trees built
    /// while refining this problem's direction hierarchy). Memoized
    /// alongside the verdict so sibling refinements across a unit — and
    /// across units sharing this cache — reach the already-built subtrees
    /// through a cache hit instead of rebuilding them. `None` when
    /// incremental solving is disabled or the decision never refined.
    pub solver_state: Option<Arc<SubtreeStore>>,
    /// `Some(reason)` when the verdict was reached under an exhausted
    /// resource budget. Degraded outcomes are conservative (`Unknown`, or
    /// `Dependent` with a superset of the true direction vectors) and are
    /// never memoized — see the module docs.
    pub degraded: Option<DegradeReason>,
}

/// One memoization slot: at most one worker computes, the rest wait.
///
/// Unlike `OnceLock`, a cell survives a panicking compute closure (it
/// resets to [`CellState::Idle`] and wakes waiters so a later lookup can
/// retry) and refuses to store budget-degraded outcomes.
struct ComputeCell {
    state: Mutex<CellState>,
    cond: Condvar,
    /// Lock-free mirror of [`CellState::Ready`]: set exactly when the state
    /// transitions to `Ready` (which is terminal), so hits read an atomic
    /// pointer instead of serializing on the state mutex. A popular cell —
    /// one canonical problem shared by thousands of pairs — is otherwise a
    /// mutex every worker thread hammers.
    ready: OnceLock<Arc<CachedOutcome>>,
    /// The rendered canonical string key, set by the first compute under
    /// fingerprint keying (string keying keeps the key in the shard map
    /// instead). Exists for debug dumps and the keying A/B verification —
    /// never consulted on the hit path.
    rendered: OnceLock<String>,
    /// `true` when this cell was seeded from the persistent tier; hits on
    /// such cells count toward [`VerdictCache::persistent_hits`]. Fixed at
    /// construction, so the hit path reads a plain bool.
    from_disk: bool,
}

enum CellState {
    /// Nobody has produced a storable outcome yet.
    Idle,
    /// Some worker is running the solver; waiters block on the condvar.
    Computing,
    /// A full-budget outcome is memoized. Behind an `Arc` so a hit hands
    /// out a reference-count bump instead of cloning the payload (the
    /// `attempts` vector and solver-state handle in particular).
    Ready(Arc<CachedOutcome>),
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
/// Cell state transitions are single assignments, so a poisoned lock
/// cannot leave the state half-written.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ComputeCell {
    fn new() -> ComputeCell {
        ComputeCell {
            state: Mutex::new(CellState::Idle),
            cond: Condvar::new(),
            ready: OnceLock::new(),
            rendered: OnceLock::new(),
            from_disk: false,
        }
    }

    /// A cell seeded from the persistent tier: born `Ready` with its
    /// rendered key attached and marked so hits on it count as persistent.
    fn seeded(rendered: String, outcome: CachedOutcome) -> ComputeCell {
        let outcome = Arc::new(outcome);
        let cell = ComputeCell {
            state: Mutex::new(CellState::Ready(Arc::clone(&outcome))),
            cond: Condvar::new(),
            ready: OnceLock::new(),
            rendered: OnceLock::new(),
            from_disk: true,
        };
        let _ = cell.ready.set(outcome);
        let _ = cell.rendered.set(rendered);
        cell
    }

    /// `true` when a full-budget outcome is memoized in this cell.
    fn is_ready(&self) -> bool {
        matches!(*lock_recover(&self.state), CellState::Ready(_))
    }

    /// `true` unless some worker is computing into this cell right now:
    /// in-flight compute slots are never evicted (the worker holds the
    /// cell `Arc`, so eviction would orphan its memoization, and waiters
    /// parked on the condvar must find the outcome where they left it).
    fn is_evictable(&self) -> bool {
        !matches!(*lock_recover(&self.state), CellState::Computing)
    }

    /// Returns the memoized outcome, computing it first if necessary.
    /// The boolean is `true` when *this* call ran `compute`.
    fn get_or_compute(
        &self,
        compute: impl FnOnce() -> CachedOutcome,
    ) -> (Arc<CachedOutcome>, bool) {
        if let Some(out) = self.ready.get() {
            return (Arc::clone(out), false);
        }
        {
            let mut state = lock_recover(&self.state);
            loop {
                match &*state {
                    CellState::Ready(out) => return (Arc::clone(out), false),
                    CellState::Computing => {
                        state = self.cond.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                    CellState::Idle => break,
                }
            }
            *state = CellState::Computing;
        }
        // Reset to Idle on every exit path that does not store an outcome:
        // a panic inside `compute` (the guard drops during unwinding) or a
        // degraded outcome below. Either way waiters wake up and the next
        // lookup retries the computation.
        let mut guard = ComputeReset { cell: self, disarm: false };
        let outcome = Arc::new(compute());
        if outcome.degraded.is_none() {
            *lock_recover(&self.state) = CellState::Ready(Arc::clone(&outcome));
            let _ = self.ready.set(Arc::clone(&outcome));
            self.cond.notify_all();
            guard.disarm = true;
        }
        drop(guard);
        (outcome, true)
    }
}

struct ComputeReset<'a> {
    cell: &'a ComputeCell,
    disarm: bool,
}

impl Drop for ComputeReset<'_> {
    fn drop(&mut self) {
        if !self.disarm {
            *lock_recover(&self.cell.state) = CellState::Idle;
            self.cell.cond.notify_all();
        }
    }
}

/// The result of one cache lookup.
#[derive(Debug, Clone)]
pub struct CacheLookup {
    /// The (possibly memoized) outcome, shared with the cache entry.
    pub outcome: Arc<CachedOutcome>,
    /// `true` when *this* lookup ran the solver (a global cache miss).
    pub computed: bool,
    /// A 64-bit fingerprint of the full cache key (environment key plus
    /// canonical structure). Equal problems under equal relevant
    /// assumptions produce equal fingerprints; graph construction uses it
    /// to attribute hits and misses deterministically in source-pair order.
    pub key_fp: u64,
}

/// One shard-map slot: the cell plus its LRU stamp.
struct Slot {
    cell: Arc<ComputeCell>,
    /// Value of the cache clock at this slot's last touch; the eviction
    /// scan removes the smallest stamp first. Atomic so hits can refresh
    /// it under the shard's *read* lock, keeping the hit path wait-free
    /// with respect to other readers.
    last_use: AtomicU64,
}

/// The shard array in either key representation. Both variants map the
/// same partition of problems to cells; see the module docs.
enum ShardMap {
    Fp(Vec<RwLock<HashMap<u128, Slot, FxBuildHasher>>>),
    Str(Vec<RwLock<HashMap<String, Slot>>>),
}

/// A verdict cache keyed by canonicalized dependence problems.
///
/// Construct with [`VerdictCache::new`] for a single graph construction
/// under one assumption environment, or with [`VerdictCache::shared`] for a
/// cache shared across program units with *different* environments (every
/// lookup then goes through [`VerdictCache::lookup`], which keys on the
/// per-unit assumptions). Both pick their [`KeyMode`] from the
/// `DELIN_KEYING` environment knob; the `_with` constructors pin it
/// explicitly (the `--verify` keying A/B runs both side by side).
pub struct VerdictCache {
    shards: ShardMap,
    /// The environment baked in by [`VerdictCache::new`]; `None` for shared
    /// caches, whose lookups carry their environment explicitly.
    env: Option<Assumptions>,
    /// Total entry capacity; `0` = unbounded (the historical behavior).
    capacity: usize,
    /// Per-shard entry cap derived from `capacity` (`0` = unbounded).
    shard_cap: usize,
    /// Monotonic logical clock stamping every touch, for LRU eviction.
    clock: AtomicU64,
    /// Entries evicted to stay within `capacity`.
    evictions: AtomicU64,
    /// Lookups answered by an entry seeded from the persistent tier.
    persistent_hits: AtomicU64,
    /// Entries seeded from the persistent tier at load time.
    persistent_seeded: AtomicU64,
}

impl VerdictCache {
    /// An empty cache for one run under the given assumptions, keyed per
    /// [`KeyMode::from_env`] and bounded per [`cache_cap_from_env`].
    pub fn new(assumptions: &Assumptions) -> VerdictCache {
        VerdictCache::new_with(assumptions, KeyMode::from_env())
    }

    /// An empty cache for one run under the given assumptions, with an
    /// explicit key representation (capacity per [`cache_cap_from_env`]).
    pub fn new_with(assumptions: &Assumptions, mode: KeyMode) -> VerdictCache {
        VerdictCache::with_parts(mode, Some(assumptions.clone()), cache_cap_from_env())
    }

    /// An empty cache safe to share across program units analyzed under
    /// different assumption environments, keyed per [`KeyMode::from_env`]
    /// and bounded per [`cache_cap_from_env`].
    pub fn shared() -> VerdictCache {
        VerdictCache::shared_with(KeyMode::from_env())
    }

    /// An empty shareable cache with an explicit key representation
    /// (capacity per [`cache_cap_from_env`]).
    pub fn shared_with(mode: KeyMode) -> VerdictCache {
        VerdictCache::with_parts(mode, None, cache_cap_from_env())
    }

    /// An empty shareable cache with an explicit key representation and an
    /// explicit entry capacity (`0` = unbounded).
    pub fn shared_with_cap(mode: KeyMode, capacity: usize) -> VerdictCache {
        VerdictCache::with_parts(mode, None, capacity)
    }

    fn with_parts(mode: KeyMode, env: Option<Assumptions>, capacity: usize) -> VerdictCache {
        VerdictCache {
            shards: new_shards(mode),
            env,
            capacity,
            shard_cap: capacity.div_ceil(SHARDS),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            persistent_hits: AtomicU64::new(0),
            persistent_seeded: AtomicU64::new(0),
        }
    }

    /// The entry capacity this cache enforces (`0` = unbounded). Capacity
    /// splits evenly across the shards, so a shard may evict while the
    /// total entry count is still a little below this number.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries have been evicted to respect [`VerdictCache::capacity`].
    /// Deterministic for a serial run with a fixed arrival order; under
    /// concurrent workers the victim choice depends on scheduling, so this
    /// counter is surfaced but never enters any determinism-checked report.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lookups answered by an entry seeded from the persistent tier (every
    /// hit on a seeded cell counts, so one warm entry referenced by many
    /// pairs counts many times).
    pub fn persistent_hits(&self) -> u64 {
        self.persistent_hits.load(Ordering::Relaxed)
    }

    /// Entries seeded from the persistent tier at load time.
    pub fn persistent_seeded(&self) -> u64 {
        self.persistent_seeded.load(Ordering::Relaxed)
    }

    /// The key representation this cache was built with.
    pub fn key_mode(&self) -> KeyMode {
        match &self.shards {
            ShardMap::Fp(_) => KeyMode::Fp,
            ShardMap::Str(_) => KeyMode::Str,
        }
    }

    /// Number of memoized outcomes across all shards (distinct canonical
    /// problems decided under a full budget). Cells whose computation
    /// panicked or degraded hold no outcome and are not counted.
    pub fn len(&self) -> usize {
        self.for_each_cell_count(|c| c.is_ready())
    }

    /// `true` when no problem has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn for_each_cell_count(&self, pred: impl Fn(&ComputeCell) -> bool) -> usize {
        let count_in =
            |slots: &mut dyn Iterator<Item = Arc<ComputeCell>>| slots.filter(|c| pred(c)).count();
        match &self.shards {
            ShardMap::Fp(shards) => shards
                .iter()
                .map(|s| {
                    let map = s.read().unwrap_or_else(PoisonError::into_inner);
                    count_in(&mut map.values().map(|slot| Arc::clone(&slot.cell)))
                })
                .sum(),
            ShardMap::Str(shards) => shards
                .iter()
                .map(|s| {
                    let map = s.read().unwrap_or_else(PoisonError::into_inner);
                    count_in(&mut map.values().map(|slot| Arc::clone(&slot.cell)))
                })
                .sum(),
        }
    }

    /// The rendered canonical string keys of every memoized entry, sorted.
    ///
    /// Under string keying these are the shard-map keys themselves; under
    /// fingerprint keying they are the strings rendered once per miss and
    /// stashed in the cells. Either way the result describes the same
    /// partition, which is exactly what the keying A/B verification
    /// asserts: if two distinct canonical strings ever collided into one
    /// fingerprint cell, the fingerprint cache would report fewer keys
    /// here than the string cache.
    pub fn debug_keys(&self) -> Vec<String> {
        let mut keys = Vec::new();
        match &self.shards {
            ShardMap::Fp(shards) => {
                for s in shards {
                    let map = s.read().unwrap_or_else(PoisonError::into_inner);
                    for slot in map.values() {
                        if slot.cell.is_ready() {
                            if let Some(k) = slot.cell.rendered.get() {
                                keys.push(k.clone());
                            }
                        }
                    }
                }
            }
            ShardMap::Str(shards) => {
                for s in shards {
                    let map = s.read().unwrap_or_else(PoisonError::into_inner);
                    for (k, slot) in map.iter() {
                        if slot.cell.is_ready() {
                            keys.push(k.clone());
                        }
                    }
                }
            }
        }
        keys.sort_unstable();
        keys
    }

    /// Looks up the canonical form of `problem` under the environment baked
    /// in at construction, running `compute` on it on the first sighting.
    /// Returns the outcome and whether it was a hit.
    ///
    /// On a cache built with [`VerdictCache::shared`] — no baked-in
    /// environment — this degrades to a conservative no-memoize path: the
    /// canonical problem is computed and the outcome returned, but nothing
    /// is stored or reused, because without an environment the entry's key
    /// would be wrong for symbolic problems. Shared lookups that want
    /// memoization must pass their environment to [`VerdictCache::lookup`].
    /// (This misuse used to panic, which poisoned the calling worker; see
    /// `envless_get_or_compute_degrades_to_no_memoize`.)
    pub fn get_or_compute(
        &self,
        problem: &DependenceProblem<SymPoly>,
        compute: impl FnOnce(&DependenceProblem<SymPoly>) -> CachedOutcome,
    ) -> (Arc<CachedOutcome>, bool) {
        let Some(env) = self.env.as_ref() else {
            let (_, canonical) = canonicalize(problem, "");
            return (Arc::new(compute(&canonical)), false);
        };
        let l = self.lookup_in(env, problem, compute);
        (l.outcome, !l.computed)
    }

    /// Looks up the canonical form of `problem` under `assumptions`,
    /// running `compute` on the canonical problem on the first sighting of
    /// the (environment, structure) pair.
    ///
    /// `compute` receives the *canonical* problem, so the stored verdict is
    /// a pure function of the cache key — this is what keeps parallel and
    /// multi-unit runs deterministic regardless of which worker (or which
    /// unit) populates an entry first. Under fingerprint keying, a hit
    /// performs no string rendering, no `SymPoly` clone and no heap
    /// allocation: the canonical problem (and its string key) only
    /// materialize inside the cell's compute slot on a miss.
    pub fn lookup(
        &self,
        assumptions: &Assumptions,
        problem: &DependenceProblem<SymPoly>,
        compute: impl FnOnce(&DependenceProblem<SymPoly>) -> CachedOutcome,
    ) -> CacheLookup {
        self.lookup_in(assumptions, problem, compute)
    }

    fn lookup_in(
        &self,
        assumptions: &Assumptions,
        problem: &DependenceProblem<SymPoly>,
        compute: impl FnOnce(&DependenceProblem<SymPoly>) -> CachedOutcome,
    ) -> CacheLookup {
        match &self.shards {
            ShardMap::Fp(shards) => {
                let fp = fingerprint_problem(problem, assumptions);
                // Lane A (the high half) doubles as the 64-bit attribution
                // fingerprint; lane B picks the shard, so attribution and
                // shard choice stay decorrelated.
                let key_fp = (fp >> 64) as u64;
                let shard = &shards[(fp as usize) % SHARDS];
                let cell = self.probe_fp(shard, fp);
                let (outcome, computed) = cell.get_or_compute(|| {
                    // Miss: now (and only now) materialize the canonical
                    // problem for the solver and the string key for debug.
                    let env = env_key(problem, assumptions);
                    let (key, canonical) = canonicalize(problem, &env);
                    let _ = cell.rendered.set(key);
                    compute(&canonical)
                });
                if !computed && cell.from_disk {
                    self.persistent_hits.fetch_add(1, Ordering::Relaxed);
                }
                CacheLookup { outcome, computed, key_fp }
            }
            ShardMap::Str(shards) => {
                // The legacy baseline: render everything eagerly per lookup.
                let env = env_key(problem, assumptions);
                let (key, canonical) = canonicalize(problem, &env);
                let key_fp = fingerprint(&key);
                let shard = &shards[(key_fp as usize) % SHARDS];
                let cell = self.probe_str(shard, key);
                let (outcome, computed) = cell.get_or_compute(|| compute(&canonical));
                CacheLookup { outcome, computed, key_fp }
            }
        }
    }

    /// Fast path probe for the fingerprint shard: read-lock first (hits
    /// never take the write lock, refreshing their LRU stamp atomically),
    /// insert an idle cell under the write lock on miss and evict if the
    /// shard ran over its share of the capacity. A poisoned shard lock only
    /// means some worker panicked while holding it; the map itself is never
    /// left mid-mutation (inserts are single entry operations), so recover
    /// the guard and keep going.
    fn probe_fp(
        &self,
        shard: &RwLock<HashMap<u128, Slot, FxBuildHasher>>,
        fp: u128,
    ) -> Arc<ComputeCell> {
        {
            let read = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = read.get(&fp) {
                self.touch(slot);
                return Arc::clone(&slot.cell);
            }
        }
        let mut write = shard.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = write.get(&fp) {
            self.touch(slot);
            return Arc::clone(&slot.cell);
        }
        let cell = Arc::new(ComputeCell::new());
        write.insert(fp, self.new_slot(Arc::clone(&cell)));
        self.evict_over_cap(&mut write, &fp);
        cell
    }

    /// The string-keyed analogue of `probe_fp`.
    fn probe_str(&self, shard: &RwLock<HashMap<String, Slot>>, key: String) -> Arc<ComputeCell> {
        {
            let read = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(slot) = read.get(&key) {
                self.touch(slot);
                return Arc::clone(&slot.cell);
            }
        }
        let mut write = shard.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = write.get(&key) {
            self.touch(slot);
            return Arc::clone(&slot.cell);
        }
        let cell = Arc::new(ComputeCell::new());
        let guard_key = key.clone();
        write.insert(key, self.new_slot(Arc::clone(&cell)));
        self.evict_over_cap(&mut write, &guard_key);
        cell
    }

    /// Refreshes a slot's LRU stamp. Unbounded caches never evict, so they
    /// skip the stamp — the clock `fetch_add` is a shared atomic every
    /// worker's hit path would otherwise contend on for nothing.
    fn touch(&self, slot: &Slot) {
        if self.shard_cap == 0 {
            return;
        }
        slot.last_use.store(self.clock.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    fn new_slot(&self, cell: Arc<ComputeCell>) -> Slot {
        let stamp =
            if self.shard_cap == 0 { 0 } else { self.clock.fetch_add(1, Ordering::Relaxed) };
        Slot { cell, last_use: AtomicU64::new(stamp) }
    }

    /// Evicts least-recently-touched entries until the shard is back under
    /// its share of the capacity. The entry just inserted and entries with
    /// a compute in flight are never victims; if nothing else is evictable
    /// the shard briefly exceeds its share instead.
    fn evict_over_cap<K: Hash + Eq + Clone, S: std::hash::BuildHasher>(
        &self,
        map: &mut HashMap<K, Slot, S>,
        just_inserted: &K,
    ) {
        if self.shard_cap == 0 {
            return;
        }
        while map.len() > self.shard_cap {
            let victim = map
                .iter()
                .filter(|(k, slot)| *k != just_inserted && slot.cell.is_evictable())
                .min_by_key(|(_, slot)| slot.last_use.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Seeds one entry loaded from the persistent tier: inserted `Ready`
    /// with its rendered canonical key attached, marked so later hits count
    /// as persistent. Returns `false` (storing nothing) for string-keyed
    /// caches (persistence is fingerprint-only), for degraded outcomes
    /// (never persisted, and never memoized even if a file claimed one),
    /// and for fingerprints already present.
    pub(crate) fn seed_entry(&self, fp: u128, rendered: String, outcome: CachedOutcome) -> bool {
        let ShardMap::Fp(shards) = &self.shards else { return false };
        if outcome.degraded.is_some() {
            return false;
        }
        let shard = &shards[(fp as usize) % SHARDS];
        let mut write = shard.write().unwrap_or_else(PoisonError::into_inner);
        if write.contains_key(&fp) {
            return false;
        }
        let cell = Arc::new(ComputeCell::seeded(rendered, outcome));
        write.insert(fp, self.new_slot(cell));
        self.evict_over_cap(&mut write, &fp);
        self.persistent_seeded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every memoized fingerprint entry with its rendered canonical key and
    /// outcome, sorted by fingerprint — the deterministic export the
    /// persistent tier serializes. Empty for string-keyed caches (the
    /// string baseline exists only for A/B verification).
    pub(crate) fn export_entries(&self) -> Vec<(u128, String, Arc<CachedOutcome>)> {
        let ShardMap::Fp(shards) = &self.shards else { return Vec::new() };
        let mut out = Vec::new();
        for s in shards {
            let map = s.read().unwrap_or_else(PoisonError::into_inner);
            for (fp, slot) in map.iter() {
                let ready = match &*lock_recover(&slot.cell.state) {
                    CellState::Ready(o) => Some(Arc::clone(o)),
                    _ => None,
                };
                if let (Some(outcome), Some(key)) = (ready, slot.cell.rendered.get()) {
                    out.push((*fp, key.clone(), outcome));
                }
            }
        }
        out.sort_unstable_by_key(|(fp, _, _)| *fp);
        out
    }
}

fn new_shards(mode: KeyMode) -> ShardMap {
    match mode {
        KeyMode::Fp => ShardMap::Fp((0..SHARDS).map(|_| RwLock::new(HashMap::default())).collect()),
        KeyMode::Str => ShardMap::Str((0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect()),
    }
}

fn fingerprint(key: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Computes the 128-bit structural fingerprint of `problem` under the
/// projection of `assumptions` onto its symbols — the exact information the
/// canonical string key renders, folded through [`Fp128`] without
/// materializing any string or cloning any polynomial.
///
/// Two problems receive the same fingerprint exactly when [`canonicalize`]
/// (with [`env_key`]) would give them the same string key, modulo the
/// negligible 128-bit collision probability:
///
/// * variable *names* never enter the hash (positions and upper bounds do),
///   matching the key's renaming invariance;
/// * per-equation fingerprints are combined with a commutative wrapping
///   add, so equation order is invisible without ever sorting — the string
///   key achieves the same by sorting rendered equations;
/// * inequalities, bounds and common pairs hash in order, matching the
///   key's order-sensitive rendering of those sections;
/// * the environment section hashes the sorted, deduplicated symbols the
///   problem mentions with their effective lower bounds plus the default
///   bound — and hashes *nothing* for concrete problems, matching the
///   empty [`env_key`] that lets concrete entries shard across any
///   environments.
///
/// Every section is length-prefixed and tagged, so sections cannot bleed
/// into one another. This function performs no heap allocation unless the
/// problem mentions more than a handful of distinct symbols (the symbol
/// set is gathered in a fixed inline array, spilling to a sort+dedup
/// vector only on overflow).
pub fn fingerprint_problem(
    problem: &DependenceProblem<SymPoly>,
    assumptions: &Assumptions,
) -> u128 {
    let mut h = Fp128::new();

    // Environment projection (tag 1): sorted deduped symbols with bounds.
    fn walk_symbols<'a>(p: &'a DependenceProblem<SymPoly>, add: &mut impl FnMut(&'a Sym)) {
        for v in p.vars() {
            v.upper.for_each_symbol(add);
        }
        for eq in p.equations() {
            eq.c0.for_each_symbol(add);
            for c in &eq.coeffs {
                c.for_each_symbol(add);
            }
        }
        for iq in p.inequalities() {
            iq.c0.for_each_symbol(add);
            for c in &iq.coeffs {
                c.for_each_symbol(add);
            }
        }
    }
    // The sorted deduped symbol set is built in a fixed inline array by
    // insertion — real problems mention a handful of symbols, and this
    // function runs once per pair, so the common case must not allocate a
    // scratch vector or call the sorter. Overflowing problems spill to a
    // vector and take the classic sort+dedup path; the emitted byte stream
    // is identical either way.
    const INLINE_SYMS: usize = 8;
    let mut inline: [Option<&Sym>; INLINE_SYMS] = [None; INLINE_SYMS];
    let mut len = 0usize;
    let mut spill: Vec<&Sym> = Vec::new();
    walk_symbols(problem, &mut |s| {
        if !spill.is_empty() {
            spill.push(s);
            return;
        }
        let mut i = 0;
        while i < len {
            let Some(cur) = inline[i] else { break };
            match cur.cmp(s) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Equal => return,
                std::cmp::Ordering::Greater => break,
            }
        }
        if len < INLINE_SYMS {
            let mut j = len;
            while j > i {
                inline[j] = inline[j - 1];
                j -= 1;
            }
            inline[i] = Some(s);
            len += 1;
        } else {
            spill.extend(inline.iter().flatten().copied());
            spill.push(s);
        }
    });
    h.write_u8(1);
    let emit = |h: &mut Fp128, s: &Sym| {
        let name = s.name().as_bytes();
        h.write_usize(name.len());
        h.write(name);
        h.write_u128(assumptions.lower_bound(s) as u128);
    };
    if !spill.is_empty() {
        spill.sort_unstable();
        spill.dedup();
        h.write_usize(spill.len());
        for s in &spill {
            emit(&mut h, s);
        }
        h.write_u128(assumptions.default_lower_bound() as u128);
    } else if len > 0 {
        h.write_usize(len);
        for o in inline[..len].iter().flatten() {
            emit(&mut h, o);
        }
        h.write_u128(assumptions.default_lower_bound() as u128);
    }

    // Variable bounds in position order (tag 2); names are canonicalized
    // away, so only the upper-bound polynomials enter.
    h.write_u8(2);
    h.write_usize(problem.vars().len());
    for v in problem.vars() {
        v.upper.hash_into(&mut h);
    }

    // Common loop pairs in order (tag 3).
    h.write_u8(3);
    h.write_usize(problem.common_loops().len());
    for (x, y) in problem.common_loops() {
        h.write_usize(*x);
        h.write_usize(*y);
    }

    // Equations as an order-free multiset (tag 4): sum of per-equation
    // fingerprints. Duplicate equations contribute multiplicity times.
    h.write_u8(4);
    h.write_usize(problem.equations().len());
    let mut eq_acc: u128 = 0;
    for eq in problem.equations() {
        let mut eh = Fp128::new();
        eq.c0.hash_into(&mut eh);
        eh.write_usize(eq.coeffs.len());
        for c in &eq.coeffs {
            c.hash_into(&mut eh);
        }
        eq_acc = eq_acc.wrapping_add(eh.finish128());
    }
    h.write_u128(eq_acc);

    // Inequalities in order (tag 5) — the string key renders them in
    // order too, so order sensitivity here matches its partition.
    h.write_u8(5);
    h.write_usize(problem.inequalities().len());
    for iq in problem.inequalities() {
        iq.c0.hash_into(&mut h);
        h.write_usize(iq.coeffs.len());
        for c in &iq.coeffs {
            c.hash_into(&mut h);
        }
    }

    h.finish128()
}

/// Renders the assumption environment restricted to the symbols `problem`
/// mentions (in bounds, coefficients, or constants).
///
/// Dependence tests only ever consult assumptions about symbols reachable
/// from the problem's own polynomials, so this projection is the *exact*
/// environment the verdict depends on: including more would split entries
/// that must agree (units with irrelevant extra symbols), including less
/// would merge entries that may differ — the cross-unit collision this
/// function exists to prevent. Concrete problems project to the empty key.
pub fn env_key(problem: &DependenceProblem<SymPoly>, assumptions: &Assumptions) -> String {
    use std::fmt::Write as _;
    let mut syms: Vec<Sym> = Vec::new();
    let mut add = |p: &SymPoly| syms.extend(p.symbols());
    for v in problem.vars() {
        add(&v.upper);
    }
    for eq in problem.equations() {
        add(&eq.c0);
        eq.coeffs.iter().for_each(&mut add);
    }
    for iq in problem.inequalities() {
        add(&iq.c0);
        iq.coeffs.iter().for_each(&mut add);
    }
    syms.sort();
    syms.dedup();
    let mut out = String::new();
    if syms.is_empty() {
        return out; // concrete: the verdict cannot depend on any assumption
    }
    for s in &syms {
        let _ = write!(out, "{s}>={},", assumptions.lower_bound(s));
    }
    let _ = write!(out, "*>={}", assumptions.default_lower_bound());
    out
}

/// Renders one linear form (`c0` plus dense coefficients) structurally.
fn render_linear(c0: &SymPoly, coeffs: &[SymPoly]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{c0}|");
    for c in coeffs {
        let _ = write!(out, "{c},");
    }
    out
}

/// Produces the canonical key and canonical problem for `problem` under the
/// environment key `env` (see [`env_key`]).
///
/// The key drops variable names (positions and bounds remain), sorts the
/// equations structurally, and prefixes the environment key. The returned
/// problem is `problem` with its equations in that same sorted order —
/// solving it instead of the original makes the memoized verdict
/// independent of which reference pair inserted the entry. Downstream edge
/// emission sorts and dedups atomic direction vectors, so equation order
/// cannot leak into the final graph.
pub fn canonicalize(
    problem: &DependenceProblem<SymPoly>,
    env: &str,
) -> (String, DependenceProblem<SymPoly>) {
    use std::fmt::Write as _;

    let mut eq_keys: Vec<(String, usize)> = problem
        .equations()
        .iter()
        .enumerate()
        .map(|(i, eq)| (render_linear(&eq.c0, &eq.coeffs), i))
        .collect();
    eq_keys.sort();

    let mut key = String::new();
    let _ = write!(key, "a[{env}];");
    for v in problem.vars() {
        let _ = write!(key, "v{};", v.upper);
    }
    for (x, y) in problem.common_loops() {
        let _ = write!(key, "c{x},{y};");
    }
    for (ek, _) in &eq_keys {
        let _ = write!(key, "e{ek};");
    }
    for iq in problem.inequalities() {
        let _ = write!(key, "i{};", render_linear(&iq.c0, &iq.coeffs));
    }

    let mut builder = DependenceProblem::<SymPoly>::builder();
    for v in problem.vars() {
        builder.var(v.name.clone(), v.upper.clone());
    }
    for (_, i) in &eq_keys {
        let eq = &problem.equations()[*i];
        builder.equation(eq.c0.clone(), eq.coeffs.clone());
    }
    for iq in problem.inequalities() {
        builder.inequality(iq.c0.clone(), iq.coeffs.clone());
    }
    for (x, y) in problem.common_loops() {
        builder.common_pair(*x, *y);
    }
    builder.assumptions(problem.assumptions().clone());
    (key, builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_numeric::SymPoly;

    fn poly(n: i128) -> SymPoly {
        SymPoly::constant(n)
    }

    fn two_eq_problem(order: [usize; 2]) -> DependenceProblem<SymPoly> {
        let eqs = [(poly(-5), vec![poly(1), poly(10)]), (poly(3), vec![poly(2), poly(0)])];
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", poly(4));
        b.var("y", poly(9));
        for &i in &order {
            b.equation(eqs[i].0.clone(), eqs[i].1.clone());
        }
        b.build()
    }

    /// A symbolic single-equation problem `i1 - i2 - N = 0`, `i ∈ [0, N-1]`.
    fn symbolic_problem() -> DependenceProblem<SymPoly> {
        let upper = SymPoly::symbol("N").checked_sub(&poly(1)).unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("i1", upper.clone());
        b.var("i2", upper);
        b.equation(SymPoly::symbol("N").checked_neg().unwrap(), vec![poly(1), poly(-1)]);
        b.build()
    }

    fn outcome(nodes: u64) -> CachedOutcome {
        CachedOutcome {
            verdict: Verdict::Independent,
            tested_by: "test",
            attempts: vec!["test"],
            solver_nodes: nodes,
            refine_queries: 0,
            subtree_reuses: 0,
            nodes_saved: 0,
            solver_state: None,
            degraded: None,
        }
    }

    #[test]
    fn key_ignores_names_and_equation_order() {
        let a = two_eq_problem([0, 1]);
        let b = two_eq_problem([1, 0]);
        let (ka, ca) = canonicalize(&a, "env");
        let (kb, cb) = canonicalize(&b, "env");
        assert_eq!(ka, kb);
        assert_eq!(ca.equations(), cb.equations());

        let mut renamed = DependenceProblem::<SymPoly>::builder();
        renamed.var("totally", poly(4));
        renamed.var("different", poly(9));
        renamed.equation(poly(-5), vec![poly(1), poly(10)]);
        renamed.equation(poly(3), vec![poly(2), poly(0)]);
        let (kr, _) = canonicalize(&renamed.build(), "env");
        assert_eq!(ka, kr);
    }

    #[test]
    fn key_separates_distinct_structures() {
        let a = two_eq_problem([0, 1]);
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", poly(4));
        b.var("y", poly(9));
        b.equation(poly(-6), vec![poly(1), poly(10)]); // different constant
        b.equation(poly(3), vec![poly(2), poly(0)]);
        let (ka, _) = canonicalize(&a, "env");
        let (kb, _) = canonicalize(&b.build(), "env");
        assert_ne!(ka, kb);
        // Different environment key, same structure: different key.
        let (kc, _) = canonicalize(&a, "other-env");
        assert_ne!(ka, kc);
    }

    /// The structural fingerprint partitions problems exactly like the
    /// canonical string key: invariant under renaming and equation order,
    /// sensitive to structure and to relevant assumptions only.
    #[test]
    fn fingerprint_matches_string_key_partition() {
        let env = Assumptions::new();
        // Equation order is invisible.
        assert_eq!(
            fingerprint_problem(&two_eq_problem([0, 1]), &env),
            fingerprint_problem(&two_eq_problem([1, 0]), &env),
        );
        // Variable names are invisible.
        let mut renamed = DependenceProblem::<SymPoly>::builder();
        renamed.var("totally", poly(4));
        renamed.var("different", poly(9));
        renamed.equation(poly(-5), vec![poly(1), poly(10)]);
        renamed.equation(poly(3), vec![poly(2), poly(0)]);
        assert_eq!(
            fingerprint_problem(&two_eq_problem([0, 1]), &env),
            fingerprint_problem(&renamed.build(), &env),
        );
        // A different constant is visible.
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", poly(4));
        b.var("y", poly(9));
        b.equation(poly(-6), vec![poly(1), poly(10)]);
        b.equation(poly(3), vec![poly(2), poly(0)]);
        assert_ne!(
            fingerprint_problem(&two_eq_problem([0, 1]), &env),
            fingerprint_problem(&b.build(), &env),
        );
        // Concrete problems ignore every environment (empty projection).
        let mut rich = Assumptions::new();
        rich.set_lower_bound("N", 5).set_lower_bound("M", 2);
        assert_eq!(
            fingerprint_problem(&two_eq_problem([0, 1]), &env),
            fingerprint_problem(&two_eq_problem([0, 1]), &rich),
        );
        // Symbolic problems see bounds on their own symbols, the default
        // bound, and nothing else.
        let sym = symbolic_problem();
        let mut n2 = Assumptions::new();
        n2.set_lower_bound("N", 2);
        let mut n2_extra = n2.clone();
        n2_extra.set_lower_bound("UNRELATED", 9);
        assert_eq!(fingerprint_problem(&sym, &n2), fingerprint_problem(&sym, &n2_extra));
        assert_ne!(fingerprint_problem(&sym, &n2), fingerprint_problem(&sym, &env));
        assert_ne!(
            fingerprint_problem(&sym, &n2),
            fingerprint_problem(&sym, &Assumptions::with_default_lower_bound(1)),
        );
    }

    /// Both key modes produce the same hit/miss pattern and the same set of
    /// rendered canonical keys over a mixed workload — the unit-scale
    /// version of the `--verify` keying A/B.
    #[test]
    fn key_modes_partition_identically() {
        let fp_cache = VerdictCache::shared_with(KeyMode::Fp);
        let str_cache = VerdictCache::shared_with(KeyMode::Str);
        assert_eq!(fp_cache.key_mode(), KeyMode::Fp);
        assert_eq!(str_cache.key_mode(), KeyMode::Str);

        let mut n2 = Assumptions::new();
        n2.set_lower_bound("N", 2);
        let lookups: Vec<(Assumptions, DependenceProblem<SymPoly>)> = vec![
            (Assumptions::new(), two_eq_problem([0, 1])),
            (Assumptions::new(), two_eq_problem([1, 0])),
            (n2.clone(), two_eq_problem([0, 1])),
            (Assumptions::new(), symbolic_problem()),
            (n2.clone(), symbolic_problem()),
            (n2, symbolic_problem()),
        ];
        for (env, p) in &lookups {
            let a = fp_cache.lookup(env, p, |_| outcome(1));
            let b = str_cache.lookup(env, p, |_| outcome(1));
            assert_eq!(a.computed, b.computed, "modes must hit and miss together");
        }
        assert_eq!(fp_cache.len(), str_cache.len());
        assert_eq!(
            fp_cache.debug_keys(),
            str_cache.debug_keys(),
            "fingerprint cells must carry the exact canonical strings"
        );
        assert_eq!(fp_cache.debug_keys().len(), fp_cache.len());
    }

    #[test]
    fn env_key_projects_onto_problem_symbols() {
        // Concrete problems have an empty environment key under any env.
        let concrete = two_eq_problem([0, 1]);
        let mut rich = Assumptions::new();
        rich.set_lower_bound("N", 5).set_lower_bound("M", 2);
        assert_eq!(env_key(&concrete, &Assumptions::new()), "");
        assert_eq!(env_key(&concrete, &rich), "");

        // Symbolic problems pick up exactly the bounds of their symbols.
        let sym = symbolic_problem();
        let mut n2 = Assumptions::new();
        n2.set_lower_bound("N", 2);
        let mut n2_extra = n2.clone();
        n2_extra.set_lower_bound("UNRELATED", 9);
        // Irrelevant symbols do not split the key...
        assert_eq!(env_key(&sym, &n2), env_key(&sym, &n2_extra));
        // ...but bounds on mentioned symbols, and the default bound, do.
        assert_ne!(env_key(&sym, &n2), env_key(&sym, &Assumptions::new()));
        assert_ne!(env_key(&sym, &n2), env_key(&sym, &Assumptions::with_default_lower_bound(1)));
        // Pin the rendered form so accidental format drift is caught.
        assert_eq!(env_key(&sym, &n2), "N>=2,*>=0");
    }

    /// Regression test for the cross-unit collision audit: two units with
    /// byte-identical (renamed) equations but different assumption
    /// environments must not share a cache entry, while a third unit whose
    /// environment agrees on the relevant symbol must. Pinned in both key
    /// modes.
    #[test]
    fn shared_cache_separates_assumption_environments() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::shared_with(mode);
            let p = symbolic_problem();
            let mut unit_a = Assumptions::new();
            unit_a.set_lower_bound("N", 1);
            let mut unit_b = Assumptions::new();
            unit_b.set_lower_bound("N", 8);
            let mut unit_c = unit_a.clone();
            unit_c.set_lower_bound("OTHER", 3); // irrelevant to `p`

            let a = cache.lookup(&unit_a, &p, |_| outcome(1));
            let b = cache.lookup(&unit_b, &p, |_| outcome(2));
            let c = cache.lookup(&unit_c, &p, |_| outcome(3));
            assert!(a.computed, "first sighting under env A must compute");
            assert!(b.computed, "env B must not reuse env A's entry");
            assert!(!c.computed, "env C agrees with A on N, must share");
            assert_ne!(a.key_fp, b.key_fp);
            assert_eq!(a.key_fp, c.key_fp);
            assert_eq!(c.outcome.solver_nodes, 1, "C must see A's entry");
            assert_eq!(cache.len(), 2);
        }
    }

    #[test]
    fn cache_computes_each_canonical_form_once() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::new_with(&Assumptions::new(), mode);
            let mut runs = 0;
            for order in [[0, 1], [1, 0], [0, 1]] {
                let p = two_eq_problem(order);
                let (out, _) = cache.get_or_compute(&p, |_| {
                    runs += 1;
                    outcome(11)
                });
                assert!(out.verdict.is_independent());
                assert_eq!(out.solver_nodes, 11);
            }
            assert_eq!(runs, 1, "equation order must not defeat the cache");
            assert_eq!(cache.len(), 1);
            assert!(!cache.is_empty());
        }
    }

    #[test]
    fn cache_reports_hits_and_stable_fingerprints() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::new_with(&Assumptions::new(), mode);
            let p = two_eq_problem([0, 1]);
            let (_, hit) = cache.get_or_compute(&p, |_| outcome(0));
            assert!(!hit);
            let (_, hit) = cache.get_or_compute(&p, |_| outcome(0));
            assert!(hit);
            // The two equation orders share one key fingerprint.
            let env = Assumptions::new();
            let a = cache.lookup(&env, &two_eq_problem([0, 1]), |_| outcome(0));
            let b = cache.lookup(&env, &two_eq_problem([1, 0]), |_| outcome(0));
            assert_eq!(a.key_fp, b.key_fp);
            assert!(!a.computed && !b.computed);
        }
    }

    /// A hit hands back the cache's own `Arc`, not a payload clone.
    #[test]
    fn hits_share_the_memoized_allocation() {
        let cache = VerdictCache::new_with(&Assumptions::new(), KeyMode::Fp);
        let p = two_eq_problem([0, 1]);
        let (first, _) = cache.get_or_compute(&p, |_| outcome(1));
        let (second, hit) = cache.get_or_compute(&p, |_| outcome(2));
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the stored Arc");
    }

    /// Regression: an envless `get_or_compute` on a shared cache used to
    /// panic (`expect("shared caches must use lookup()")`), turning an API
    /// misuse into a poisoned worker. It now degrades to a conservative
    /// no-memoize path: the canonical problem is computed and returned on
    /// every call, and nothing is ever stored.
    #[test]
    fn envless_get_or_compute_degrades_to_no_memoize() {
        let cache = VerdictCache::shared();
        let mut runs = 0;
        for _ in 0..2 {
            let (out, hit) = cache.get_or_compute(&two_eq_problem([0, 1]), |canon| {
                assert_eq!(canon.equations().len(), 2, "compute still sees the canonical form");
                runs += 1;
                outcome(runs)
            });
            assert!(!hit, "the no-memoize path can never report a hit");
            assert_eq!(out.solver_nodes, runs);
        }
        assert_eq!(runs, 2, "every envless call recomputes");
        assert!(cache.is_empty(), "nothing may be memoized without an environment");
    }

    /// A bounded cache evicts least-recently-touched entries once a shard
    /// exceeds its share of the capacity, stays bounded, keeps answering
    /// correctly for evicted keys (by recomputing), and counts evictions
    /// deterministically for a fixed serial arrival order.
    #[test]
    fn capacity_bounds_entries_and_counts_evictions_deterministically() {
        fn problem(c: i128) -> DependenceProblem<SymPoly> {
            let mut b = DependenceProblem::<SymPoly>::builder();
            b.var("x", poly(4));
            b.var("y", poly(9));
            b.equation(poly(c), vec![poly(1), poly(10)]);
            b.build()
        }
        let mut counts = Vec::new();
        for _ in 0..2 {
            let cache = VerdictCache::shared_with_cap(KeyMode::Fp, 1);
            assert_eq!(cache.capacity(), 1);
            let env = Assumptions::new();
            for c in 0..200 {
                let l = cache.lookup(&env, &problem(c), |_| outcome(c as u64));
                assert!(l.computed, "distinct structures always miss");
            }
            // Capacity 1 rounds up to one entry per shard.
            assert!(cache.len() <= SHARDS, "cache must stay bounded, got {}", cache.len());
            assert!(cache.evictions() >= (200 - SHARDS) as u64);
            // Evicted keys recompute and still answer correctly.
            let l = cache.lookup(&env, &problem(0), |_| outcome(0));
            assert_eq!(l.outcome.solver_nodes, 0);
            counts.push(cache.evictions());
        }
        assert_eq!(counts[0], counts[1], "serial eviction counts must be reproducible");

        // Unbounded (capacity 0) never evicts.
        let cache = VerdictCache::shared_with_cap(KeyMode::Fp, 0);
        let env = Assumptions::new();
        for c in 0..50 {
            let _ = cache.lookup(&env, &problem(c), |_| outcome(0));
        }
        assert_eq!(cache.len(), 50);
        assert_eq!(cache.evictions(), 0);
    }

    /// Entries whose compute slot is in flight are never evicted: a cell
    /// that inserts heavy pressure *during its own compute* still gets
    /// memoized and hits afterwards.
    #[test]
    fn in_flight_compute_slots_are_never_evicted() {
        fn problem(c: i128) -> DependenceProblem<SymPoly> {
            let mut b = DependenceProblem::<SymPoly>::builder();
            b.var("x", poly(4));
            b.var("y", poly(9));
            b.equation(poly(c), vec![poly(1), poly(10)]);
            b.build()
        }
        let cache = VerdictCache::shared_with_cap(KeyMode::Fp, 1);
        let env = Assumptions::new();
        let l = cache.lookup(&env, &problem(1000), |_| {
            // While this cell is `Computing`, flood every shard.
            for c in 0..200 {
                let _ = cache.lookup(&env, &problem(c), |_| outcome(0));
            }
            outcome(77)
        });
        assert!(l.computed);
        let again = cache.lookup(&env, &problem(1000), |_| outcome(0));
        assert!(!again.computed, "the in-flight cell must have survived the flood");
        assert_eq!(again.outcome.solver_nodes, 77);
    }

    /// Both key modes evict; the string baseline stays behaviorally aligned.
    #[test]
    fn string_keyed_caches_evict_too() {
        let cache = VerdictCache::shared_with_cap(KeyMode::Str, 1);
        let env = Assumptions::new();
        for c in 0..200 {
            let mut b = DependenceProblem::<SymPoly>::builder();
            b.var("x", poly(4));
            b.var("y", poly(9));
            b.equation(poly(c), vec![poly(1), poly(10)]);
            let _ = cache.lookup(&env, &b.build(), |_| outcome(0));
        }
        assert!(cache.len() <= SHARDS);
        assert!(cache.evictions() > 0);
    }

    /// Degraded outcomes reach their caller but never the store: the next
    /// lookup of the same key recomputes, and once a full-budget outcome
    /// lands it is the one memoized.
    #[test]
    fn degraded_outcomes_are_not_memoized() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::new_with(&Assumptions::new(), mode);
            let p = two_eq_problem([0, 1]);
            let degraded = CachedOutcome {
                verdict: Verdict::Unknown,
                degraded: Some(delin_dep::budget::DegradeReason::Nodes),
                ..outcome(7)
            };
            let (out, hit) = cache.get_or_compute(&p, |_| degraded.clone());
            assert!(!hit);
            assert!(out.degraded.is_some());
            assert_eq!(cache.len(), 0, "degraded outcome must not be stored");
            // Recompute with a full budget: stored this time.
            let (out, hit) = cache.get_or_compute(&p, |_| outcome(9));
            assert!(!hit, "idle cell must recompute, not replay the degraded run");
            assert_eq!(out.solver_nodes, 9);
            assert_eq!(cache.len(), 1);
            let (out, hit) = cache.get_or_compute(&p, |_| outcome(99));
            assert!(hit);
            assert_eq!(out.solver_nodes, 9, "full-budget outcome is the memoized one");
        }
    }

    /// A panic inside the compute closure leaves the cell (and its shard
    /// lock) usable: the same key can be looked up again and computed.
    #[test]
    fn panicking_compute_leaves_cache_usable() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::new_with(&Assumptions::new(), mode);
            let p = two_eq_problem([0, 1]);
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get_or_compute(&p, |_| panic!("injected solver fault"))
            }));
            assert!(unwound.is_err());
            assert_eq!(cache.len(), 0);
            let (out, hit) = cache.get_or_compute(&p, |_| outcome(5));
            assert!(!hit, "post-panic lookup must recompute");
            assert_eq!(out.solver_nodes, 5);
            assert_eq!(cache.len(), 1);
        }
    }

    /// The memoized outcome carries the incremental solver state: every
    /// later hit — from any reference pair or unit — sees the *same*
    /// [`SubtreeStore`] instance, so sibling refinements share subtrees
    /// instead of rebuilding them.
    #[test]
    fn cache_hits_carry_the_stored_solver_state() {
        let cache = VerdictCache::new(&Assumptions::new());
        let store = Arc::new(SubtreeStore::new());
        let miss = cache.get_or_compute(&two_eq_problem([0, 1]), |_| CachedOutcome {
            solver_state: Some(Arc::clone(&store)),
            ..outcome(3)
        });
        // Equation order must not defeat the state either.
        let (hit, was_hit) = cache.get_or_compute(&two_eq_problem([1, 0]), |_| outcome(0));
        assert!(was_hit);
        let carried = hit.solver_state.clone().expect("hit must carry the stored solver state");
        assert!(Arc::ptr_eq(&carried, &store));
        let first = miss.0.solver_state.clone().expect("miss returns the state it stored");
        assert!(Arc::ptr_eq(&first, &store));
    }

    #[test]
    fn compute_sees_the_canonical_problem() {
        for mode in [KeyMode::Fp, KeyMode::Str] {
            let cache = VerdictCache::new_with(&Assumptions::new(), mode);
            let p = two_eq_problem([1, 0]); // reversed order on purpose
            cache.get_or_compute(&p, |canon| {
                // Sorted structural order puts the -5 equation first (its
                // rendition sorts before the "3|2,0," one).
                assert_eq!(canon.equations().len(), 2);
                assert_eq!(canon.vars().len(), 2);
                outcome(0)
            });
        }
    }

    #[test]
    fn key_mode_env_knob_parses() {
        // `from_env` itself reads the live environment (unsafe to mutate in
        // a threaded test harness), so pin the match arms directly.
        assert_eq!(KeyMode::Fp.label(), "fp");
        assert_eq!(KeyMode::Str.label(), "string");
    }
}
