//! Canonicalization and memoization of dependence verdicts.
//!
//! Programs repeat subscript shapes constantly — `B(j)` read by two
//! statements in the same nest produces byte-identical dependence problems
//! for several reference pairs — so the engine normalizes each
//! [`DependenceProblem`] to a canonical form and solves every distinct form
//! exactly once per graph construction.
//!
//! Canonicalization renames variables away (only their positions and upper
//! bounds survive), sorts the equations into a stable structural order, and
//! fingerprints the [`Assumptions`] in force. Two pairs whose problems agree
//! up to variable names and equation order therefore share one cache entry.
//!
//! The store is a sharded `RwLock` map of [`std::sync::OnceLock`] cells:
//! concurrent workers that race on the same key agree on a single cell, and
//! exactly one of them runs the solver while the rest block on the cell.
//! That makes hit/miss counts — not just verdicts — deterministic under
//! parallel construction: every distinct key is computed exactly once.

use delin_dep::problem::DependenceProblem;
use delin_dep::verdict::Verdict;
use delin_numeric::{Assumptions, SymPoly};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent lock shards. A small power of two is plenty: the
/// critical sections only insert/lookup an `Arc`, never solve.
const SHARDS: usize = 16;

/// The memoized result of deciding one canonical dependence problem.
#[derive(Debug, Clone)]
pub struct CachedOutcome {
    /// The verdict for the canonical problem.
    pub verdict: Verdict,
    /// The deciding test's name.
    pub tested_by: &'static str,
    /// Names of the test invocations that actually ran while deciding.
    pub attempts: Vec<&'static str>,
    /// Exact-solver search nodes spent computing this entry.
    pub solver_nodes: u64,
}

/// A per-run verdict cache keyed by canonicalized dependence problems.
///
/// The cache is scoped to one graph construction: the assumptions and test
/// choice in force are fixed for its lifetime (the assumptions are still
/// fingerprinted into every key as a guard against accidental reuse).
pub struct VerdictCache {
    shards: Vec<RwLock<HashMap<String, Arc<OnceLock<CachedOutcome>>>>>,
    assumptions_fp: u64,
}

impl VerdictCache {
    /// An empty cache for a run under the given assumptions.
    pub fn new(assumptions: &Assumptions) -> VerdictCache {
        let mut hasher = DefaultHasher::new();
        format!("{assumptions:?}").hash(&mut hasher);
        VerdictCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            assumptions_fp: hasher.finish(),
        }
    }

    /// Number of entries across all shards (distinct canonical problems).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map(|m| m.len()).unwrap_or(0)).sum()
    }

    /// `true` when no problem has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the canonical form of `problem`, running `compute` on it on
    /// the first sighting. Returns the outcome and whether it was a hit.
    ///
    /// `compute` receives the *canonical* problem, so the stored verdict is
    /// a pure function of the cache key — this is what keeps parallel runs
    /// deterministic regardless of which worker populates an entry first.
    pub fn get_or_compute(
        &self,
        problem: &DependenceProblem<SymPoly>,
        compute: impl FnOnce(&DependenceProblem<SymPoly>) -> CachedOutcome,
    ) -> (CachedOutcome, bool) {
        let (key, canonical) = canonicalize(problem, self.assumptions_fp);
        let shard = &self.shards[shard_index(&key)];
        let cell = {
            // Fast path: the key is already present.
            let read = shard.read().expect("verdict cache poisoned");
            read.get(&key).cloned()
        };
        let cell = match cell {
            Some(c) => c,
            None => {
                let mut write = shard.write().expect("verdict cache poisoned");
                write.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
            }
        };
        let mut computed = false;
        let outcome = cell.get_or_init(|| {
            computed = true;
            compute(&canonical)
        });
        (outcome.clone(), !computed)
    }
}

fn shard_index(key: &str) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % SHARDS
}

/// Renders one linear form (`c0` plus dense coefficients) structurally.
fn render_linear(c0: &SymPoly, coeffs: &[SymPoly]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{c0}|");
    for c in coeffs {
        let _ = write!(out, "{c},");
    }
    out
}

/// Produces the canonical key and canonical problem for `problem`.
///
/// The key drops variable names (positions and bounds remain), sorts the
/// equations structurally, and prefixes the assumptions fingerprint. The
/// returned problem is `problem` with its equations in that same sorted
/// order — solving it instead of the original makes the memoized verdict
/// independent of which reference pair inserted the entry. Downstream edge
/// emission sorts and dedups atomic direction vectors, so equation order
/// cannot leak into the final graph.
pub fn canonicalize(
    problem: &DependenceProblem<SymPoly>,
    assumptions_fp: u64,
) -> (String, DependenceProblem<SymPoly>) {
    use std::fmt::Write as _;

    let mut eq_keys: Vec<(String, usize)> = problem
        .equations()
        .iter()
        .enumerate()
        .map(|(i, eq)| (render_linear(&eq.c0, &eq.coeffs), i))
        .collect();
    eq_keys.sort();

    let mut key = String::new();
    let _ = write!(key, "a{assumptions_fp:x};");
    for v in problem.vars() {
        let _ = write!(key, "v{};", v.upper);
    }
    for (x, y) in problem.common_loops() {
        let _ = write!(key, "c{x},{y};");
    }
    for (ek, _) in &eq_keys {
        let _ = write!(key, "e{ek};");
    }
    for iq in problem.inequalities() {
        let _ = write!(key, "i{};", render_linear(&iq.c0, &iq.coeffs));
    }

    let mut builder = DependenceProblem::<SymPoly>::builder();
    for v in problem.vars() {
        builder.var(v.name.clone(), v.upper.clone());
    }
    for (_, i) in &eq_keys {
        let eq = &problem.equations()[*i];
        builder.equation(eq.c0.clone(), eq.coeffs.clone());
    }
    for iq in problem.inequalities() {
        builder.inequality(iq.c0.clone(), iq.coeffs.clone());
    }
    for (x, y) in problem.common_loops() {
        builder.common_pair(*x, *y);
    }
    builder.assumptions(problem.assumptions().clone());
    (key, builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_numeric::SymPoly;

    fn poly(n: i128) -> SymPoly {
        SymPoly::constant(n)
    }

    fn two_eq_problem(order: [usize; 2]) -> DependenceProblem<SymPoly> {
        let eqs = [(poly(-5), vec![poly(1), poly(10)]), (poly(3), vec![poly(2), poly(0)])];
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", poly(4));
        b.var("y", poly(9));
        for &i in &order {
            b.equation(eqs[i].0.clone(), eqs[i].1.clone());
        }
        b.build()
    }

    #[test]
    fn key_ignores_names_and_equation_order() {
        let a = two_eq_problem([0, 1]);
        let b = two_eq_problem([1, 0]);
        let (ka, ca) = canonicalize(&a, 7);
        let (kb, cb) = canonicalize(&b, 7);
        assert_eq!(ka, kb);
        assert_eq!(ca.equations(), cb.equations());

        let mut renamed = DependenceProblem::<SymPoly>::builder();
        renamed.var("totally", poly(4));
        renamed.var("different", poly(9));
        renamed.equation(poly(-5), vec![poly(1), poly(10)]);
        renamed.equation(poly(3), vec![poly(2), poly(0)]);
        let (kr, _) = canonicalize(&renamed.build(), 7);
        assert_eq!(ka, kr);
    }

    #[test]
    fn key_separates_distinct_structures() {
        let a = two_eq_problem([0, 1]);
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", poly(4));
        b.var("y", poly(9));
        b.equation(poly(-6), vec![poly(1), poly(10)]); // different constant
        b.equation(poly(3), vec![poly(2), poly(0)]);
        let (ka, _) = canonicalize(&a, 7);
        let (kb, _) = canonicalize(&b.build(), 7);
        assert_ne!(ka, kb);
        // Different assumptions fingerprint, same structure: different key.
        let (kc, _) = canonicalize(&a, 8);
        assert_ne!(ka, kc);
    }

    #[test]
    fn cache_computes_each_canonical_form_once() {
        let cache = VerdictCache::new(&Assumptions::new());
        let mut runs = 0;
        for order in [[0, 1], [1, 0], [0, 1]] {
            let p = two_eq_problem(order);
            let (outcome, _) = cache.get_or_compute(&p, |_| {
                runs += 1;
                CachedOutcome {
                    verdict: Verdict::Independent,
                    tested_by: "test",
                    attempts: vec!["test"],
                    solver_nodes: 11,
                }
            });
            assert!(outcome.verdict.is_independent());
            assert_eq!(outcome.solver_nodes, 11);
        }
        assert_eq!(runs, 1, "equation order must not defeat the cache");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_reports_hits() {
        let cache = VerdictCache::new(&Assumptions::new());
        let p = two_eq_problem([0, 1]);
        let outcome = || CachedOutcome {
            verdict: Verdict::maybe_dependent(),
            tested_by: "t",
            attempts: Vec::new(),
            solver_nodes: 0,
        };
        let (_, hit) = cache.get_or_compute(&p, |_| outcome());
        assert!(!hit);
        let (_, hit) = cache.get_or_compute(&p, |_| outcome());
        assert!(hit);
    }

    #[test]
    fn compute_sees_the_canonical_problem() {
        let cache = VerdictCache::new(&Assumptions::new());
        let p = two_eq_problem([1, 0]); // reversed order on purpose
        cache.get_or_compute(&p, |canon| {
            // Sorted structural order puts the -5 equation first (its
            // rendition sorts before the "3|2,0," one).
            assert_eq!(canon.equations().len(), 2);
            assert_eq!(canon.vars().len(), 2);
            CachedOutcome {
                verdict: Verdict::Unknown,
                tested_by: "t",
                attempts: Vec::new(),
                solver_nodes: 0,
            }
        });
    }
}
