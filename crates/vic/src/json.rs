//! A minimal JSON reader/writer for the serving layer.
//!
//! The workspace is offline (no serde), and the jsonl protocol of
//! [`crate::serve`] needs exactly two things: a strict recursive-descent
//! parser that turns one request line into a [`Json`] value (rejecting
//! garbage with a position-bearing error instead of panicking), and an
//! escaping writer for response strings. Both live here, dependency-free.
//!
//! Numbers are kept as their raw source token. The protocol only ever reads
//! integers (`as_u64`/`as_i64`), so deferring numeric interpretation keeps
//! the parser total: any RFC 8259 number token parses, and out-of-range
//! values surface as a protocol-level error rather than a parse panic.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved as a sorted map; duplicate keys
    /// are a parse error (a request with two `id` fields is ambiguous, and
    /// ambiguity in a protocol is better rejected than resolved silently).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer token in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, if this is an integer token in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending byte: truncated
/// input, trailing garbage, bad escapes, duplicate object keys, or any
/// token RFC 8259 does not allow.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after value"));
    }
    Ok(value)
}

/// Nesting guard: a request line of `[[[[...` must not overflow the parser
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(ParseError {
                    message: format!("duplicate key {key:?}"),
                    offset: key_offset,
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.error("control character in string")),
                _ => {
                    // Re-walk the UTF-8 sequence the byte starts; the input
                    // is a &str, so sequences are valid by construction.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.error("invalid utf-8 in string")),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        // Surrogate pair: a leading surrogate must be followed by
        // `\uXXXX` with a trailing surrogate.
        if (0xd800..0xdc00).contains(&first) {
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')?;
                let second = self.hex4()?;
                if (0xdc00..0xe000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        if (0xdc00..0xe000).contains(&first) {
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(raw) => Ok(Json::Num(raw.to_string())),
            Err(_) => Err(self.error("invalid number")),
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string token.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted, escaped JSON string token.
pub fn str_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_str(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(pairs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num("42".into()));
        assert_eq!(parse("-0.5e3").unwrap(), Json::Num("-0.5e3".into()));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
        assert_eq!(
            parse(r#"[1, "a", []]"#).unwrap(),
            Json::Arr(vec![Json::Num("1".into()), Json::Str("a".into()), Json::Arr(vec![])])
        );
        assert_eq!(
            parse(r#"{"a": 1, "b": {"c": null}}"#).unwrap(),
            obj(&[("a", Json::Num("1".into())), ("b", obj(&[("c", Json::Null)]))])
        );
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(parse(r#""a\n\t\\\"Aé""#).unwrap(), Json::Str("a\n\t\\\"Aé".into()));
        // Surrogate pair escape (and the literal glyph): U+1D11E MUSICAL
        // SYMBOL G CLEF.
        assert_eq!(parse("\"\\ud834\\udd1e\"").unwrap(), Json::Str("\u{1d11e}".into()));
        assert_eq!(parse("\"\u{1d11e}\"").unwrap(), Json::Str("\u{1d11e}".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "\"abc",
            r#""\q""#,
            r#""\u12g4""#,
            r#""\ud834""#,
            "{\"a\":1,}",
            "{\"a\" 1}",
            "[1 2]",
            "{\"a\":1} extra",
            "{\"a\":1,\"a\":2}",
            "\"\u{0007}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Deep nesting is bounded, not stack-fatal.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn accessors_read_the_expected_shapes() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse(r#""x""#).unwrap().as_str(), Some("x"));
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert!(parse("{}").unwrap().as_obj().is_some_and(BTreeMap::is_empty));
    }

    #[test]
    fn writer_round_trips_through_the_parser() {
        for s in ["", "plain", "quo\"te", "back\\slash", "new\nline", "tab\t", "ctrl\u{0001}", "é☃"]
        {
            let token = str_token(s);
            assert_eq!(parse(&token).unwrap(), Json::Str(s.to_string()), "{token}");
        }
    }
}
