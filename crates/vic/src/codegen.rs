//! Allen–Kennedy vector code generation.
//!
//! `codegen(R, k)`: consider the dependence edges among statements `R`
//! that are not already satisfied by the serialized outer loops (carried
//! level > k, or loop-independent). Statements not on a cycle vectorize
//! over all their remaining loops; strongly-connected components keep the
//! level-`k` loop serial and recurse at `k + 1`. The output is printed in
//! FORTRAN-90 style with `lo:hi` sections substituted for vectorized loop
//! variables.

use crate::deps::DepGraph;
use crate::scc::strongly_connected_components;
use delin_frontend::ast::{Assign, Expr, Program, Stmt, StmtId};
use delin_frontend::pretty::expr_to_string;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One loop shell enclosing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopShell {
    /// Loop variable name.
    pub var: String,
    /// Lower bound.
    pub lower: Expr,
    /// Upper bound.
    pub upper: Expr,
    /// Identity (preorder index), matching the access-collection walk.
    pub uid: u32,
}

/// A statement with its loop context.
#[derive(Debug, Clone)]
struct StmtCtx {
    id: StmtId,
    assign: Assign,
    loops: Vec<LoopShell>,
}

/// Generated vector code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorStmt {
    /// A loop kept serial.
    Serial {
        /// Loop variable.
        var: String,
        /// Lower bound (rendered).
        lower: String,
        /// Upper bound (rendered).
        upper: String,
        /// Body.
        body: Vec<VectorStmt>,
    },
    /// A (possibly vectorized) assignment.
    Statement {
        /// Statement identity.
        id: StmtId,
        /// Rendered FORTRAN-90-style text.
        text: String,
        /// Number of loops turned into vector sections for this statement.
        vector_dims: usize,
    },
}

/// Result of vectorization.
#[derive(Debug, Clone)]
pub struct VectorizeResult {
    /// The generated code tree.
    pub code: Vec<VectorStmt>,
    /// Total assignment statements.
    pub total_statements: usize,
    /// Statements vectorized over at least one loop.
    pub vectorized_statements: usize,
    /// Total vectorized loop dimensions summed over statements.
    pub vector_dimensions: usize,
}

impl VectorizeResult {
    /// Renders the code tree as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.code {
            render_stmt(s, 0, &mut out);
        }
        out
    }
}

fn render_stmt(s: &VectorStmt, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match s {
        VectorStmt::Serial { var, lower, upper, body } => {
            let _ = writeln!(out, "{indent}DO {var} = {lower}, {upper}");
            for b in body {
                render_stmt(b, depth + 1, out);
            }
            let _ = writeln!(out, "{indent}ENDDO");
        }
        VectorStmt::Statement { text, .. } => {
            let _ = writeln!(out, "{indent}{text}");
        }
    }
}

/// Vectorizes a program given its dependence graph.
pub fn vectorize(program: &Program, graph: &DepGraph) -> VectorizeResult {
    // Flatten statements with their loop shells.
    let mut ctxs: Vec<StmtCtx> = Vec::new();
    let mut stack: Vec<LoopShell> = Vec::new();
    let mut uid = 0u32;
    fn walk(stmts: &[Stmt], stack: &mut Vec<LoopShell>, uid: &mut u32, out: &mut Vec<StmtCtx>) {
        for s in stmts {
            match s {
                Stmt::Loop(l) => {
                    stack.push(LoopShell {
                        var: l.var.clone(),
                        lower: l.lower.clone(),
                        upper: l.upper.clone(),
                        uid: *uid,
                    });
                    *uid += 1;
                    walk(&l.body, stack, uid, out);
                    stack.pop();
                }
                Stmt::Assign(a) => {
                    out.push(StmtCtx { id: a.id, assign: a.clone(), loops: stack.clone() })
                }
            }
        }
    }
    walk(&program.body, &mut stack, &mut uid, &mut ctxs);

    let index_of: HashMap<StmtId, usize> =
        ctxs.iter().enumerate().map(|(i, c)| (c.id, i)).collect();
    let mut result = VectorizeResult {
        code: Vec::new(),
        total_statements: ctxs.len(),
        vectorized_statements: 0,
        vector_dimensions: 0,
    };
    let all: Vec<usize> = (0..ctxs.len()).collect();
    let code = codegen(&ctxs, &all, 0, graph, &index_of, &mut result);
    result.code = code;
    result
}

fn codegen(
    ctxs: &[StmtCtx],
    members: &[usize],
    level: usize,
    graph: &DepGraph,
    index_of: &HashMap<StmtId, usize>,
    result: &mut VectorizeResult,
) -> Vec<VectorStmt> {
    // Active edges: among members, not yet satisfied by outer serial loops.
    let member_pos: HashMap<usize, usize> =
        members.iter().enumerate().map(|(p, &m)| (m, p)).collect();
    let node_ids: Vec<StmtId> = members.iter().map(|&m| ctxs[m].id).collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for e in &graph.edges {
        let (Some(&si), Some(&di)) = (index_of.get(&e.src), index_of.get(&e.dst)) else {
            continue;
        };
        let (Some(&sp), Some(&dp)) = (member_pos.get(&si), member_pos.get(&di)) else {
            continue;
        };
        let active = match e.level {
            None => true,
            Some(l) => l > level,
        };
        if active {
            edges.push((sp, dp));
        }
    }
    let comps = strongly_connected_components(&node_ids, &edges);

    let mut out = Vec::new();
    for comp in comps {
        let comp_members: Vec<usize> = comp.iter().map(|&p| members[p]).collect();
        let cyclic = comp.len() > 1 || edges.iter().any(|&(a, b)| a == b && comp.contains(&a));
        if !cyclic {
            // Vectorize this statement over all its loops at depth >= level.
            let m = comp_members[0];
            out.push(emit_vector_statement(&ctxs[m], level, result));
            continue;
        }
        // A cycle: the level-`level` loop stays serial. All members must
        // share that loop (guaranteed for cycles — carried edges need
        // common loops); fall back to fully serial code if not.
        let shared = comp_members
            .iter()
            .map(|&m| ctxs[m].loops.get(level).map(|l| l.uid))
            .collect::<Vec<_>>();
        let all_share =
            shared.iter().all(|u| u.is_some() && *u == shared[0]) && shared[0].is_some();
        if !all_share {
            for &m in &comp_members {
                out.push(emit_fully_serial(&ctxs[m], level));
            }
            continue;
        }
        let shell = &ctxs[comp_members[0]].loops[level];
        let body = codegen(ctxs, &comp_members, level + 1, graph, index_of, result);
        out.push(VectorStmt::Serial {
            var: shell.var.clone(),
            lower: expr_to_string(&shell.lower),
            upper: expr_to_string(&shell.upper),
            body,
        });
    }
    out
}

/// Emits a statement vectorized over its loops at depth ≥ `level`
/// (substituting `lo:hi` sections for the loop variables).
fn emit_vector_statement(ctx: &StmtCtx, level: usize, result: &mut VectorizeResult) -> VectorStmt {
    let mut lhs = ctx.assign.lhs.clone();
    let mut rhs = ctx.assign.rhs.clone();
    let mut dims = 0;
    for shell in ctx.loops.iter().skip(level) {
        let section = Expr::var(&format!(
            "{}:{}",
            expr_to_string(&shell.lower),
            expr_to_string(&shell.upper)
        ));
        lhs = lhs.substitute_var(&shell.var, &section);
        rhs = rhs.substitute_var(&shell.var, &section);
        dims += 1;
    }
    if dims > 0 {
        result.vectorized_statements += 1;
        result.vector_dimensions += dims;
    }
    VectorStmt::Statement {
        id: ctx.id,
        text: format!("{} = {}", expr_to_string(&lhs), expr_to_string(&rhs)),
        vector_dims: dims,
    }
}

/// Conservative fallback: the statement wrapped in all its remaining serial
/// loops.
fn emit_fully_serial(ctx: &StmtCtx, level: usize) -> VectorStmt {
    let stmt = VectorStmt::Statement {
        id: ctx.id,
        text: format!("{} = {}", expr_to_string(&ctx.assign.lhs), expr_to_string(&ctx.assign.rhs)),
        vector_dims: 0,
    };
    let mut cur = stmt;
    for shell in ctx.loops.iter().skip(level).rev() {
        cur = VectorStmt::Serial {
            var: shell.var.clone(),
            lower: expr_to_string(&shell.lower),
            upper: expr_to_string(&shell.upper),
            body: vec![cur],
        };
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::{build_dependence_graph, TestChoice};
    use delin_frontend::parse_program;
    use delin_numeric::Assumptions;

    fn run(src: &str) -> VectorizeResult {
        let p = parse_program(src).unwrap();
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::DelinearizationFirst);
        vectorize(&p, &g)
    }

    #[test]
    fn independent_loop_vectorizes() {
        let r = run("
            REAL D(0:9)
            DO 1 i = 0, 4
        1   D(i) = D(i + 5)
            END
        ");
        assert_eq!(r.vectorized_statements, 1);
        let text = r.render();
        assert!(text.contains("D(0:4) = D(0:4 + 5)"), "{text}");
        assert!(!text.contains("DO "), "{text}");
    }

    #[test]
    fn recurrence_stays_serial() {
        let r = run("
            REAL D(0:9)
            DO 1 i = 0, 8
        1   D(i + 1) = D(i)
            END
        ");
        assert_eq!(r.vectorized_statements, 0);
        let text = r.render();
        assert!(text.contains("DO I = 0, 8"), "{text}");
        assert!(text.contains("D(I + 1) = D(I)"), "{text}");
    }

    #[test]
    fn motivating_example_vectorizes_with_delinearization() {
        let src = "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ";
        let r = run(src);
        assert_eq!(r.vectorized_statements, 1);
        assert_eq!(r.vector_dimensions, 2);
        let text = r.render();
        assert!(text.contains("C(0:4 + 10 * 0:9) = C(0:4 + 10 * 0:9 + 5)"), "{text}");
        // Without delinearization the statement stays fully serial.
        let p = parse_program(src).unwrap();
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::BatteryOnly);
        let r = vectorize(&p, &g);
        assert_eq!(r.vectorized_statements, 0);
    }

    #[test]
    fn loop_distribution_orders_statements() {
        // S2 feeds S1 across iterations? No: S1 writes A, S2 reads A at the
        // same iteration: loop-independent edge S1 -> S2; both vectorize,
        // S1 printed before S2.
        let r = run("
            REAL A(0:9), B(0:9)
            DO 1 i = 0, 9
              A(i) = 1
        1   B(i) = A(i)
            END
        ");
        assert_eq!(r.vectorized_statements, 2);
        let text = r.render();
        let a_pos = text.find("A(0:9) = 1").expect("A statement");
        let b_pos = text.find("B(0:9) = A(0:9)").expect("B statement");
        assert!(a_pos < b_pos, "{text}");
    }

    #[test]
    fn partial_vectorization_outer_serial() {
        // Outer-carried recurrence, inner independent: the i loop stays
        // serial, the j loop vectorizes.
        let r = run("
            REAL A(0:10, 0:10)
            DO 1 i = 1, 9
            DO 1 j = 1, 9
        1   A(i + 1, j) = A(i, j)
            END
        ");
        assert_eq!(r.vectorized_statements, 1);
        assert_eq!(r.vector_dimensions, 1);
        let text = r.render();
        assert!(text.contains("DO I = 1, 9"), "{text}");
        assert!(text.contains("A(I + 1, 1:9) = A(I, 1:9)"), "{text}");
        assert!(!text.contains("DO J"), "{text}");
    }

    #[test]
    fn mixed_cycle_and_free_statement() {
        // S1 is a recurrence (serial); S2 is independent of everything
        // (vector).
        let r = run("
            REAL A(0:20), B(0:20), C(0:20)
            DO 1 i = 0, 9
              A(i + 1) = A(i)
        1   B(i) = C(i)
            END
        ");
        assert_eq!(r.vectorized_statements, 1);
        let text = r.render();
        assert!(text.contains("B(0:9) = C(0:9)"), "{text}");
        assert!(text.contains("DO I = 0, 9"), "{text}");
    }

    #[test]
    fn statements_outside_loops() {
        let r = run("
            REAL A(0:9)
            X = 1
            A(0) = X
            END
        ");
        assert_eq!(r.total_statements, 2);
        assert_eq!(r.vectorized_statements, 0);
        let text = r.render();
        let x = text.find("X = 1").unwrap();
        let a = text.find("A(0) = X").unwrap();
        assert!(x < a);
    }
}
