//! A VIC-like vectorizer built on delinearization.
//!
//! The paper's algorithm "has been implemented at Moscow State University
//! in a vectorizer named VIC"; this crate reproduces that setting. The
//! pipeline translates serial mini-FORTRAN into vector (FORTRAN-90 style)
//! form:
//!
//! 1. [`deps`] — build the data-dependence graph: for every pair of
//!    references to the same array (or scalar) with at least one write,
//!    construct the Section 2 dependence problem and test it —
//!    delinearization first, with the classical battery as fallback; edges
//!    carry direction vectors and levels and are classified true/anti/
//!    output after the fact, as the paper prescribes;
//! 2. [`scc`] — Tarjan's strongly-connected components over the
//!    level-filtered graph;
//! 3. [`codegen`] — Allen–Kennedy loop distribution: statements not on a
//!    dependence cycle at a level vectorize at that level, cycles are kept
//!    serial and recursed into;
//! 4. [`pipeline`] — the driver: parse → induction substitution →
//!    linearize aliased arrays → analyze → vectorize → print;
//! 5. [`batch`] — the corpus driver: stream many program units through the
//!    pipeline on a bounded worker pool, sharing one verdict cache across
//!    units (optionally bounded via `DELIN_CACHE_CAP` and persisted across
//!    processes via [`persist`]), with a deterministic corpus-level report. The runner is
//!    fault-tolerant: each unit runs under a resource budget ([`delin_dep::budget`])
//!    and behind a panic boundary, so a pathological or crashing unit
//!    degrades to a per-unit failure row instead of taking the batch down;
//! 6. [`chaos`] — a deterministic, seeded fault-injection harness (compiled
//!    out unless the `chaos` cargo feature is on) that proves the above;
//! 7. [`serve`] — analysis as a service: a long-lived jsonl request/response
//!    loop over the batch engine (hand-rolled JSON lives in [`json`]), with
//!    per-request budgets, bounded admission, and cancellation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod cache;
pub mod chaos;
pub mod codegen;
pub mod deps;
pub mod json;
pub mod persist;
pub mod pipeline;
pub mod scc;
pub mod serve;

pub use batch::{
    BatchConfig, BatchJob, BatchRunner, BatchStats, BatchUnit, UnitOutcome, UnitReport,
};
pub use cache::{cache_cap_from_env, env_key, CacheLookup, CachedOutcome, VerdictCache};
pub use chaos::{ChaosCtx, ChaosPlan, FaultKind};
pub use codegen::{vectorize, VectorStmt};
pub use deps::{
    build_dependence_graph, build_dependence_graph_in, build_dependence_graph_with,
    workers_from_env, DepEdge, DepGraph, DepKind, DepStats, EngineConfig, TestChoice, VerdictStats,
};
pub use persist::LoadReport;
pub use pipeline::{run_pipeline, run_pipeline_in, PipelineConfig, PipelineReport};
pub use serve::{serve, serve_in, ServeConfig, ServeSummary};
