//! Analysis as a service: a long-lived jsonl daemon over the batch engine.
//!
//! [`serve`] reads newline-delimited JSON requests from any [`BufRead`],
//! feeds them through a channel into [`BatchRunner::run_jobs_in`]'s worker
//! pool, and streams one JSON response per unit back over any
//! [`Write`] — tagged with the client's request id, carrying the verdict
//! edges, the scheduling-independent [`crate::deps::VerdictStats`], and any
//! degradation reasons. The request protocol (documented in the repository
//! README's "Serving" section):
//!
//! * **Analyze** — `{"id": "r1", "source": "...", "name"?: "...",
//!   "assumptions"?: {"N": 1}, "budget"?: {"nodes": 10000,
//!   "deadline_ms": 500}, "edges"?: false}`. `assumptions` maps symbols to
//!   lower bounds; `budget` overrides the configured per-request allowance
//!   (enforced **per unit** — each request's deadline clock starts when its
//!   analysis starts, not when the daemon did).
//! * **Cancel** — `{"cancel": "r1"}` trips the in-flight request's
//!   [`CancelToken`]; its analysis degrades conservatively (the response
//!   still arrives, attributed `cancelled`).
//! * **Shutdown** — `{"shutdown": true}` stops admission, acknowledges, and
//!   drains in-flight work.
//!
//! Every response is a single line with a `"type"` field: `"result"`,
//! `"cancel_ok"`, `"shutdown"`, or `"error"` (machine-readable `error`
//! codes: `invalid_json`, `invalid_request`, `oversized`, `overloaded`,
//! `unknown_id`, `internal`). Malformed input of any shape gets a
//! structured error, never a panic or a hang.
//!
//! # Admission control
//!
//! At most [`ServeConfig::max_in_flight`] requests are admitted at once —
//! admitted meaning "response not yet written". Excess requests are
//! rejected immediately with an `overloaded` error: the daemon never queues
//! unboundedly and never blocks the reader on analysis progress.
//!
//! # Determinism
//!
//! Result responses are a pure function of the request (source,
//! assumptions, budget) — the per-unit fold-time attribution of
//! [`crate::batch`] makes the embedded statistics independent of worker
//! count, arrival order, and cache sharing, so the *bytes* of each
//! response are too. Response *interleaving* is scheduling-dependent under
//! parallel workers; with `workers = 1` responses additionally arrive in
//! request order (what the golden-stream gate pins).
//!
//! # Shutdown
//!
//! The caller owns the daemon-level [`CancelToken`]: tripping it (e.g. from
//! a SIGINT handler) stops admission at the next input line and reaches
//! every in-flight request *immediately* — per-request tokens are
//! [`CancelToken::child`]ren of the session token, itself a child of the
//! daemon token, so the very next budget probe inside the solver observes
//! the ancestor flag. No watcher thread, no polling: the session spawns
//! exactly one auxiliary thread (the runner pool) and none survive it. A
//! reader blocked on a quiet input stream stays blocked until the next
//! line, EOF, or (on transports with read timeouts) the next idle probe;
//! binaries that need harder guarantees close the input instead.
//!
//! # Client-gone and idle clients
//!
//! A response write (or request read) failing with `EPIPE`/`ECONNRESET`
//! means the client vanished: the session treats that as the *connection's*
//! cancellation —
//! pending requests degrade conservatively, their (unsendable) responses
//! are dropped on the dead transport, and the session ends with
//! [`ServeSummary::client_gone`] set instead of a transport error. With
//! [`ServeConfig::idle_timeout_ms`] set and a transport whose reads time
//! out (returning `WouldBlock`/`TimedOut`, e.g. a Unix socket with a read
//! timeout), a client that sends nothing for that long gets a structured
//! `idle_timeout` error and its session is drained the same way.
//!
//! # Concurrent connections
//!
//! This module serves **one** transport. [`multi`] multiplexes many
//! concurrent connections onto one shared runner and cache with
//! per-connection fairness quotas — that is what `delin_serve --socket`
//! runs.

use crate::batch::{
    BatchConfig, BatchJob, BatchRunner, BatchStats, BatchUnit, UnitOutcome, UnitReport,
};
use crate::cache::VerdictCache;
use crate::deps::DepEdge;
use crate::json::{self, Json};
use delin_dep::budget::{BudgetSpec, CancelToken};
use delin_numeric::Assumptions;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

#[path = "serve_multi.rs"]
pub mod multi;

/// Configuration of the serving layer.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The batch engine configuration requests run under. Per-request
    /// budgets override [`BatchConfig::budget`]; a config-level
    /// cancellation token is superseded by the per-request tokens (use the
    /// `shutdown` argument of [`serve`] for daemon-wide cancellation).
    ///
    /// [`ServeConfig::default`] disables retries so a client's budget is
    /// honored exactly — a degraded verdict is reported, not silently
    /// re-run under an escalated allowance.
    pub batch: BatchConfig,
    /// Requests admitted at once (admitted = response not yet written);
    /// further requests are rejected with an `overloaded` error. Clamped to
    /// at least 1.
    pub max_in_flight: usize,
    /// Longest accepted request line in bytes; longer lines are consumed
    /// (bounded memory) and rejected with an `oversized` error.
    pub max_request_bytes: usize,
    /// Maximum quiet time on the request stream before the session is ended
    /// with an `idle_timeout` error (pending requests degrade
    /// conservatively, their responses are still flushed). `None` disables.
    /// Enforced only on transports whose reads time out — a read returning
    /// `WouldBlock`/`TimedOut` is the idle probe; a transport that blocks
    /// forever is never probed (stdin sessions are not idle-limited).
    pub idle_timeout_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchConfig {
                retry: crate::batch::RetryPolicy { max_retries: 0, escalation: 1 },
                ..BatchConfig::default()
            },
            max_in_flight: 64,
            max_request_bytes: 1 << 20,
            idle_timeout_ms: None,
        }
    }
}

/// What one serving session did, returned when the input ends (EOF,
/// shutdown request, or daemon cancellation).
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Analyze requests admitted into the worker pool.
    pub admitted: usize,
    /// Result responses written.
    pub completed: usize,
    /// Analyze requests rejected with `overloaded`.
    pub rejected: usize,
    /// Cancel messages received (known or unknown id).
    pub cancel_requests: usize,
    /// Error responses written for malformed or unserviceable input
    /// (everything except `overloaded`, which [`ServeSummary::rejected`]
    /// counts).
    pub protocol_errors: usize,
    /// Corpus-level totals from the underlying batch run.
    pub batch: BatchStats,
    /// First I/O error observed while reading requests or writing
    /// responses, if any. Output errors stop nothing (later writes are
    /// attempted); input errors end the session like EOF. Client-gone
    /// write failures (`EPIPE`/`ECONNRESET`) are *not* recorded here —
    /// they set [`ServeSummary::client_gone`] instead.
    pub io_error: Option<String>,
    /// The client vanished mid-session (a response write or request read
    /// failed with `EPIPE`/`ECONNRESET`/`ECONNABORTED`): its pending
    /// requests were cancelled and drained conservatively.
    pub client_gone: bool,
    /// Sessions ended by [`ServeConfig::idle_timeout_ms`] (0 or 1 for a
    /// single session; a counter so the multi-connection layer can sum it).
    pub idle_timeouts: usize,
}

/// One admitted request awaiting its response.
struct Pending {
    id: String,
    cancel: CancelToken,
}

/// Serves one jsonl session over the given transport. See the module docs
/// for the protocol. Returns when the input reaches EOF, a shutdown request
/// arrives, or `shutdown` is tripped (checked before each line).
pub fn serve<R, W>(
    input: R,
    output: W,
    config: &ServeConfig,
    shutdown: &CancelToken,
) -> ServeSummary
where
    R: BufRead,
    W: Write + Send,
{
    serve_in(input, output, config, shutdown, None)
}

/// [`serve`] against a caller-owned shared verdict cache, which then warms
/// across sessions (and, if the owner persists it, across restarts). When
/// `cache` is `None` the session owns its cache and
/// [`BatchConfig::cache_file`] is honored directly.
pub fn serve_in<R, W>(
    input: R,
    output: W,
    config: &ServeConfig,
    shutdown: &CancelToken,
    cache: Option<&VerdictCache>,
) -> ServeSummary
where
    R: BufRead,
    W: Write + Send,
{
    let (tx, rx) = mpsc::channel::<BatchJob>();
    let pending: Mutex<HashMap<u64, Pending>> = Mutex::new(HashMap::new());
    // The session token: a child of the daemon-wide shutdown token, the
    // parent of every per-request token. Daemon shutdown reaches in-flight
    // budgets through the ancestor chain (event-driven, no watcher
    // thread); a client-gone write failure cancels just this session.
    let session = shutdown.child();
    let out = SessionOut::new(output, session.clone());
    let completed = AtomicUsize::new(0);
    let runner = BatchRunner::new(config.batch.clone());
    let max_in_flight = config.max_in_flight.max(1);
    let idle_timeout = config.idle_timeout_ms.map(Duration::from_millis);

    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut cancel_requests = 0usize;
    let mut protocol_errors = 0usize;
    let mut idle_timeouts = 0usize;

    let batch = std::thread::scope(|scope| {
        // Completion sink: render and stream the response on the worker
        // that finished the unit, then release the admission slot. The
        // pending entry is removed only *after* the write, so back-pressure
        // on the output keeps the slot occupied — that is what makes
        // "overloaded" deterministic instead of racy for a blocked client.
        let sink = |tag: u64, report: &UnitReport| {
            let id = lock_recover(&pending).get(&tag).map(|p| p.id.clone());
            let line = render_result(id.as_deref(), report);
            out.line(&line);
            lock_recover(&pending).remove(&tag);
            completed.fetch_add(1, Ordering::SeqCst);
        };
        let runner_handle = scope.spawn(move || runner.run_jobs_in(rx, cache, false, sink));

        let mut input = input;
        let mut next_tag = 0u64;
        let mut reader = LineBuf::new();
        let mut idle_since = Instant::now();
        loop {
            if session.is_cancelled() {
                break;
            }
            let read = match reader.read_line(&mut input, config.max_request_bytes) {
                Ok(read) => read,
                // A signal (e.g. the SIGINT that trips `shutdown`) lands as
                // an interrupted read; re-check the token at the loop top
                // instead of treating it as a transport failure.
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // A peer-reset read is the same client-gone case as a
                    // broken-pipe write: drain, don't error.
                    if is_client_gone(e.kind()) {
                        out.client_vanished();
                    } else {
                        out.record_io_error(&e.to_string());
                    }
                    break;
                }
            };
            let oversized = match read {
                LineRead::Eof => break,
                // The transport's read timed out mid-wait: the idle probe.
                // Partial-line progress is preserved in `reader`; a slow
                // writer that never completes a line is idle all the same.
                LineRead::Idle => {
                    if session.is_cancelled() {
                        break;
                    }
                    if let Some(limit) = idle_timeout {
                        if idle_since.elapsed() >= limit {
                            idle_timeouts += 1;
                            out.line(&render_error(
                                None,
                                "idle_timeout",
                                "no request within the idle timeout",
                            ));
                            // Drain pending work conservatively: cancel the
                            // session (children degrade), then fall out of
                            // the loop to flush responses.
                            session.cancel();
                            break;
                        }
                    }
                    continue;
                }
                LineRead::Line { oversized } => oversized,
            };
            idle_since = Instant::now();
            let buf = reader.take();
            if oversized {
                protocol_errors += 1;
                out.line(&render_error(None, "oversized", "request line too long"));
                continue;
            }
            if buf.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let Ok(line) = std::str::from_utf8(&buf) else {
                protocol_errors += 1;
                out.line(&render_error(None, "invalid_json", "invalid utf-8"));
                continue;
            };
            let value = match json::parse(line) {
                Ok(value) => value,
                Err(e) => {
                    protocol_errors += 1;
                    out.line(&render_error(None, "invalid_json", &e.to_string()));
                    continue;
                }
            };
            match interpret(&value) {
                Ok(Request::Shutdown) => {
                    out.line("{\"type\":\"shutdown\"}");
                    break;
                }
                Ok(Request::Cancel(id)) => {
                    cancel_requests += 1;
                    let mut found = false;
                    for p in lock_recover(&pending).values() {
                        if p.id == id {
                            p.cancel.cancel();
                            found = true;
                        }
                    }
                    if found {
                        out.line(&render_cancel_ok(&id));
                    } else {
                        protocol_errors += 1;
                        out.line(&render_error(
                            Some(&id),
                            "unknown_id",
                            "no such request in flight",
                        ));
                    }
                }
                Ok(Request::Analyze(req)) => {
                    {
                        let slots = lock_recover(&pending).len();
                        if slots >= max_in_flight {
                            rejected += 1;
                            out.line(&render_error(
                                Some(&req.id),
                                "overloaded",
                                "too many requests in flight",
                            ));
                            continue;
                        }
                    }
                    let cancel = session.child();
                    let tag = next_tag;
                    next_tag += 1;
                    lock_recover(&pending)
                        .insert(tag, Pending { id: req.id.clone(), cancel: cancel.clone() });
                    let job = job_for(req, &config.batch.budget, cancel, tag);
                    admitted += 1;
                    if tx.send(job).is_err() {
                        // The runner is gone (it cannot exit before `tx`
                        // drops in normal operation); degrade structurally.
                        admitted -= 1;
                        let id = lock_recover(&pending).remove(&tag).map(|p| p.id);
                        protocol_errors += 1;
                        out.line(&render_error(
                            id.as_deref(),
                            "internal",
                            "worker pool unavailable",
                        ));
                    }
                }
                Err((id, detail)) => {
                    protocol_errors += 1;
                    out.line(&render_error(id.as_deref(), "invalid_request", &detail));
                }
            }
        }
        drop(tx);
        runner_handle.join()
    });

    let batch = match batch {
        Ok(stats) => stats,
        // The runner survives unit and stream panics by design; a panic
        // escaping it is a bug, reported as an empty session rather than
        // propagated into the daemon loop.
        Err(_) => empty_batch_stats(1),
    };
    let (io_error, client_gone) = out.into_parts();
    ServeSummary {
        admitted,
        completed: completed.into_inner(),
        rejected,
        cancel_requests,
        protocol_errors,
        batch,
        io_error,
        client_gone,
        idle_timeouts,
    }
}

/// The `cancel_ok` acknowledgement line for request `id`.
pub(crate) fn render_cancel_ok(id: &str) -> String {
    let mut line = String::from("{\"id\":");
    json::write_str(&mut line, id);
    line.push_str(",\"type\":\"cancel_ok\"}");
    line
}

/// Builds the batch job for a validated analyze request: the request's
/// budget overrides layered over `base`, the per-request cancellation token
/// attached.
pub(crate) fn job_for(
    req: AnalyzeRequest,
    base: &BudgetSpec,
    cancel: CancelToken,
    tag: u64,
) -> BatchJob {
    let mut spec = base.clone();
    if let Some(nodes) = req.budget_nodes {
        spec.node_limit = nodes;
    }
    if let Some(ms) = req.budget_deadline_ms {
        spec.deadline_ms = Some(ms);
    }
    spec.cancel = Some(cancel);
    let name = req.name.unwrap_or_else(|| req.id.clone());
    let unit = BatchUnit::new(name, req.source).with_assumptions(req.assumptions);
    BatchJob { unit, budget: Some(spec), want_edges: req.edges, tag }
}

/// The all-zero [`BatchStats`] reported when a runner panic escapes (a bug
/// by construction; the session degrades to an empty report instead of
/// propagating).
pub(crate) fn empty_batch_stats(stream_failures: usize) -> BatchStats {
    BatchStats {
        units: Vec::new(),
        unit_count: 0,
        parse_failures: 0,
        failed_units: 0,
        stream_failures,
        totals: crate::deps::DepStats::default(),
        distinct_problems: None,
        cross_unit_hits: 0,
        vectorized_statements: 0,
        cache_capacity: 0,
        cache_evictions: 0,
        persistent_loaded: 0,
        persistent_hits: 0,
        persistent_saved: 0,
        persist_error: None,
    }
}

/// A validated analyze request.
pub(crate) struct AnalyzeRequest {
    pub(crate) id: String,
    pub(crate) name: Option<String>,
    pub(crate) source: String,
    pub(crate) assumptions: Assumptions,
    pub(crate) budget_nodes: Option<u64>,
    pub(crate) budget_deadline_ms: Option<u64>,
    pub(crate) edges: bool,
}

pub(crate) enum Request {
    Analyze(AnalyzeRequest),
    Cancel(String),
    Shutdown,
}

/// Validates one parsed request. The protocol is strict: unknown fields are
/// rejected (with the offending name in the error detail), so a client typo
/// like `"budgets"` fails loudly instead of silently running unbudgeted.
/// Errors carry the request's `id` when one was legible, for correlation.
pub(crate) fn interpret(value: &Json) -> Result<Request, (Option<String>, String)> {
    let Some(map) = value.as_obj() else {
        return Err((None, "request must be a JSON object".to_string()));
    };
    let legible_id = map.get("id").and_then(Json::as_str).map(str::to_string);
    let fail = |detail: &str| Err((legible_id.clone(), detail.to_string()));

    if map.contains_key("cancel") {
        if map.len() != 1 {
            return fail("cancel takes no other fields");
        }
        return match map.get("cancel").and_then(Json::as_str) {
            Some(id) => Ok(Request::Cancel(id.to_string())),
            None => fail("cancel must name a request id string"),
        };
    }
    if map.contains_key("shutdown") {
        if map.len() != 1 {
            return fail("shutdown takes no other fields");
        }
        return match map.get("shutdown").and_then(Json::as_bool) {
            Some(true) => Ok(Request::Shutdown),
            _ => fail("shutdown must be true"),
        };
    }

    for key in map.keys() {
        if !matches!(key.as_str(), "id" | "name" | "source" | "assumptions" | "budget" | "edges") {
            return fail(&format!("unknown field {key:?}"));
        }
    }
    let Some(id) = map.get("id").and_then(Json::as_str) else {
        return fail("id must be a string");
    };
    let Some(source) = map.get("source").and_then(Json::as_str) else {
        return fail("source must be a string");
    };
    let name = match map.get("name") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s.to_string()),
            None => return fail("name must be a string"),
        },
    };
    let mut assumptions = Assumptions::new();
    if let Some(v) = map.get("assumptions") {
        let Some(bounds) = v.as_obj() else {
            return fail("assumptions must map symbols to integer lower bounds");
        };
        for (sym, bound) in bounds {
            let Some(lb) = bound.as_i64() else {
                return fail("assumptions must map symbols to integer lower bounds");
            };
            assumptions.set_lower_bound(sym.as_str(), i128::from(lb));
        }
    }
    let mut budget_nodes = None;
    let mut budget_deadline_ms = None;
    if let Some(v) = map.get("budget") {
        let Some(budget) = v.as_obj() else {
            return fail("budget must be an object");
        };
        for key in budget.keys() {
            if !matches!(key.as_str(), "nodes" | "deadline_ms") {
                return fail(&format!("unknown budget field {key:?}"));
            }
        }
        if let Some(v) = budget.get("nodes") {
            match v.as_u64() {
                Some(n) => budget_nodes = Some(n),
                None => return fail("budget.nodes must be a non-negative integer"),
            }
        }
        if let Some(v) = budget.get("deadline_ms") {
            match v.as_u64() {
                Some(ms) => budget_deadline_ms = Some(ms),
                None => return fail("budget.deadline_ms must be a non-negative integer"),
            }
        }
    }
    let edges = match map.get("edges") {
        None => true,
        Some(v) => match v.as_bool() {
            Some(b) => b,
            None => return fail("edges must be a boolean"),
        },
    };
    Ok(Request::Analyze(AnalyzeRequest {
        id: id.to_string(),
        name,
        source: source.to_string(),
        assumptions,
        budget_nodes,
        budget_deadline_ms,
        edges,
    }))
}

/// Renders one error response line. `id` is `null` when the offending line
/// never yielded one.
pub(crate) fn render_error(id: Option<&str>, code: &str, detail: &str) -> String {
    let mut out = String::from("{\"id\":");
    match id {
        Some(id) => json::write_str(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"type\":\"error\",\"error\":");
    json::write_str(&mut out, code);
    out.push_str(",\"detail\":");
    json::write_str(&mut out, detail);
    out.push('}');
    out
}

/// Renders one result response line. Every field is deterministic for a
/// given request: the statistics come from
/// [`crate::deps::DepStats::verdict_stats`] (no wall-clock figures), the
/// edge list and fingerprint from the fold in source-pair order.
pub(crate) fn render_result(id: Option<&str>, report: &UnitReport) -> String {
    let mut out = String::from("{\"id\":");
    match id {
        Some(id) => json::write_str(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"type\":\"result\",\"name\":");
    json::write_str(&mut out, &report.name);
    match &report.outcome {
        UnitOutcome::Analyzed => out.push_str(",\"outcome\":\"analyzed\""),
        UnitOutcome::ParseError(e) => {
            out.push_str(",\"outcome\":\"parse_error\",\"error\":");
            json::write_str(&mut out, e);
        }
        UnitOutcome::Failed { reason, attempts } => {
            out.push_str(",\"outcome\":\"failed\",\"error\":");
            json::write_str(&mut out, reason);
            out.push_str(&format!(",\"attempts\":{attempts}"));
        }
    }
    out.push_str(&format!(
        ",\"edges\":{},\"edges_fp\":\"{:016x}\",\"vectorized\":{}",
        report.edges, report.edges_fp, report.vectorized_statements
    ));
    out.push_str(",\"dep_edges\":[");
    for (i, edge) in report.dep_edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_edge(&mut out, edge);
    }
    out.push(']');
    let v = report.stats.verdict_stats();
    out.push_str(&format!(
        ",\"stats\":{{\"pairs\":{},\"independent\":{},\"conservative\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"solver_nodes\":{},\"refine_queries\":{},\"subtree_reuses\":{},\
         \"nodes_saved\":{},\"degraded\":{}",
        v.pairs_tested,
        v.proven_independent,
        v.conservative_pairs,
        v.cache_hits,
        v.cache_misses,
        v.solver_nodes,
        v.refine_queries,
        v.subtree_reuses,
        v.nodes_saved,
        v.degraded_pairs
    ));
    out.push_str(",\"degraded_by\":{");
    for (i, (reason, n)) in v.degraded_by.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(&mut out, &reason.to_string());
        out.push_str(&format!(":{n}"));
    }
    out.push('}');
    for (label, counts) in [("decided_by", &v.decided_by), ("independent_by", &v.independent_by)] {
        out.push_str(&format!(",\"{label}\":{{"));
        for (i, (name, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push_str(&format!(":{n}"));
        }
        out.push('}');
    }
    out.push_str("}}");
    out
}

fn render_edge(out: &mut String, edge: &DepEdge) {
    out.push_str(&format!("{{\"src\":{},\"dst\":{},\"kind\":", edge.src.0, edge.dst.0));
    json::write_str(
        out,
        match edge.kind {
            crate::deps::DepKind::True => "true",
            crate::deps::DepKind::Anti => "anti",
            crate::deps::DepKind::Output => "output",
        },
    );
    out.push_str(",\"array\":");
    json::write_str(out, &edge.array);
    out.push_str(",\"dirs\":[");
    for (i, dv) in edge.dir_vecs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_str(out, &dv.to_string());
    }
    out.push_str("],\"level\":");
    match edge.level {
        Some(level) => out.push_str(&level.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(",\"tested_by\":");
    json::write_str(out, edge.tested_by);
    out.push('}');
}

/// Write-error kinds that mean the client vanished rather than the
/// transport misbehaving: the session drains instead of recording a fatal
/// error, and the daemon (in the multi-connection layer) keeps serving
/// everyone else.
pub(crate) fn is_client_gone(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// The session's shared response sink: the writer, the first transport
/// error, and the client-gone flag behind one lock, so response lines never
/// interleave. A client-gone write failure ([`is_client_gone`]) cancels the
/// session token — pending requests degrade and drain — instead of landing
/// in the fatal error slot; other write errors are recorded (first wins)
/// and later writes are still attempted, since the transport may recover.
pub(crate) struct SessionOut<W> {
    out: Mutex<W>,
    io_error: Mutex<Option<String>>,
    gone: AtomicBool,
    session: CancelToken,
}

impl<W: Write> SessionOut<W> {
    pub(crate) fn new(out: W, session: CancelToken) -> SessionOut<W> {
        SessionOut {
            out: Mutex::new(out),
            io_error: Mutex::new(None),
            gone: AtomicBool::new(false),
            session,
        }
    }

    /// Appends one response line (plus newline), flushing so interactive
    /// clients see it immediately. After client-gone, writes become no-ops:
    /// the responses are undeliverable by definition.
    pub(crate) fn line(&self, line: &str) {
        if self.gone.load(Ordering::Acquire) {
            return;
        }
        let mut guard = lock_recover(&self.out);
        let result = guard
            .write_all(line.as_bytes())
            .and_then(|()| guard.write_all(b"\n"))
            .and_then(|()| guard.flush());
        drop(guard);
        if let Err(e) = result {
            if is_client_gone(e.kind()) {
                self.client_vanished();
            } else {
                self.record_io_error(&e.to_string());
            }
        }
    }

    /// Marks the client gone (idempotent) and cancels the session so
    /// pending requests degrade and drain.
    pub(crate) fn client_vanished(&self) {
        if !self.gone.swap(true, Ordering::AcqRel) {
            self.session.cancel();
        }
    }

    /// Records a fatal transport error (first one wins).
    pub(crate) fn record_io_error(&self, detail: &str) {
        let mut slot = lock_recover(&self.io_error);
        if slot.is_none() {
            *slot = Some(detail.to_string());
        }
    }

    /// Consumes the sink: `(io_error, client_gone)` for the summary.
    pub(crate) fn into_parts(self) -> (Option<String>, bool) {
        let io_error = self.io_error.into_inner().unwrap_or_else(PoisonError::into_inner);
        (io_error, self.gone.into_inner())
    }
}

pub(crate) enum LineRead {
    Eof,
    /// The transport's read timed out (`WouldBlock`/`TimedOut`) with no
    /// complete line available: the idle probe. Partial-line progress is
    /// preserved for the next call.
    Idle,
    Line {
        oversized: bool,
    },
}

/// A bounded, idle-aware line accumulator. Never keeps more than `max + 1`
/// bytes: the tail of an oversized line is consumed and discarded, so a
/// hostile client cannot grow daemon memory with one giant line. A final
/// line without a terminator is returned as a line (mid-stream EOF still
/// gets a response), and partial progress survives [`LineRead::Idle`]
/// returns, so a request split across read timeouts still reassembles.
pub(crate) struct LineBuf {
    buf: Vec<u8>,
    total: usize,
}

impl LineBuf {
    pub(crate) fn new() -> LineBuf {
        LineBuf { buf: Vec::new(), total: 0 }
    }

    /// Takes the completed line (call once per [`LineRead::Line`]),
    /// resetting for the next one. One trailing `\r` is stripped, so CRLF
    /// clients are served transparently.
    pub(crate) fn take(&mut self) -> Vec<u8> {
        self.total = 0;
        let mut buf = std::mem::take(&mut self.buf);
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        buf
    }

    pub(crate) fn read_line<R: BufRead>(
        &mut self,
        input: &mut R,
        max: usize,
    ) -> std::io::Result<LineRead> {
        loop {
            let available = match input.fill_buf() {
                Ok(available) => available,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineRead::Idle);
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                return Ok(if self.total == 0 {
                    LineRead::Eof
                } else {
                    LineRead::Line { oversized: self.total > max }
                });
            }
            let (chunk, done) = match available.iter().position(|&b| b == b'\n') {
                Some(newline) => (&available[..newline], true),
                None => (available, false),
            };
            let keep = chunk.len().min((max + 1).saturating_sub(self.buf.len()));
            self.buf.extend_from_slice(&chunk[..keep]);
            self.total += chunk.len();
            let consumed = chunk.len() + usize::from(done);
            input.consume(consumed);
            if done {
                return Ok(LineRead::Line { oversized: self.total > max });
            }
        }
    }
}

/// Locks a mutex, recovering the guard when a previous holder panicked. The
/// protected values (the pending-request registry, the output writer, the
/// error slot) are only observed between whole operations, so recovery is
/// safe.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn req(id: &str, source: &str) -> String {
        format!("{{\"id\":{},\"source\":{}}}", json::str_token(id), json::str_token(source))
    }

    const SRC: &str = "REAL A(0:99)\nDO 1 i = 1, 50\n1   A(i) = A(i - 1)\nEND\n";

    fn serve_script(script: &str, config: &ServeConfig) -> (Vec<String>, ServeSummary) {
        let mut out: Vec<u8> = Vec::new();
        let summary = serve(Cursor::new(script.as_bytes()), &mut out, config, &CancelToken::new());
        let text = String::from_utf8(out).expect("responses are utf-8");
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn analyze_request_round_trips() {
        let script = format!("{}\n", req("r1", SRC));
        let config = ServeConfig {
            batch: BatchConfig { workers: 1, ..BatchConfig::default() },
            ..ServeConfig::default()
        };
        let (lines, summary) = serve_script(&script, &config);
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(
            lines[0].starts_with("{\"id\":\"r1\",\"type\":\"result\",\"name\":\"r1\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"outcome\":\"analyzed\""));
        assert!(lines[0].contains("\"dep_edges\":[{\"src\":"));
        assert_eq!(summary.admitted, 1);
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.protocol_errors, 0);
        assert_eq!(summary.io_error, None);
        // The response is itself valid JSON under our own parser.
        assert!(json::parse(&lines[0]).is_ok());
    }

    #[test]
    fn malformed_lines_get_structured_errors() {
        let script = "not json\n{\"id\":\"a\"}\n{\"cancel\":\"nope\"}\n{\"shutdown\":true}\n";
        let (lines, summary) = serve_script(script, &ServeConfig::default());
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[0].contains("\"error\":\"invalid_json\""), "{}", lines[0]);
        assert!(lines[1].contains("\"error\":\"invalid_request\""), "{}", lines[1]);
        assert!(lines[2].contains("\"error\":\"unknown_id\""), "{}", lines[2]);
        assert_eq!(lines[3], "{\"type\":\"shutdown\"}");
        assert_eq!(summary.protocol_errors, 3);
        assert_eq!(summary.admitted, 0);
    }

    #[test]
    fn unknown_fields_are_rejected_with_the_field_name() {
        let script = "{\"id\":\"x\",\"source\":\"END\\n\",\"bogus\":1}\n";
        let (lines, _) = serve_script(script, &ServeConfig::default());
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"id\":\"x\""), "{}", lines[0]);
        assert!(lines[0].contains("unknown field \\\"bogus\\\""), "{}", lines[0]);
    }

    #[test]
    fn oversized_lines_are_consumed_and_rejected() {
        let big = "x".repeat(4096);
        let script = format!("{{\"id\":\"{big}\"}}\n{}\n", req("after", SRC));
        let config = ServeConfig {
            max_request_bytes: 1024,
            batch: BatchConfig { workers: 1, ..BatchConfig::default() },
            ..ServeConfig::default()
        };
        let (lines, summary) = serve_script(&script, &config);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("\"error\":\"oversized\""), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":\"after\""), "the stream recovers: {}", lines[1]);
        assert_eq!(summary.admitted, 1);
    }

    #[test]
    fn bounded_reader_handles_split_lines() {
        // A reader that hands out one byte at a time exercises every
        // chunk-boundary path in read_line_bounded.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let data = b"abc\ndefgh\nij";
        let mut reader = std::io::BufReader::with_capacity(1, OneByte(data));
        let mut lines = LineBuf::new();
        assert!(matches!(
            lines.read_line(&mut reader, 5).unwrap(),
            LineRead::Line { oversized: false }
        ));
        assert_eq!(lines.take(), b"abc");
        assert!(matches!(
            lines.read_line(&mut reader, 4).unwrap(),
            LineRead::Line { oversized: true }
        ));
        lines.take();
        assert!(matches!(
            lines.read_line(&mut reader, 5).unwrap(),
            LineRead::Line { oversized: false }
        ));
        assert_eq!(lines.take(), b"ij", "unterminated final line is still a line");
        assert!(matches!(lines.read_line(&mut reader, 5).unwrap(), LineRead::Eof));
    }

    #[test]
    fn partial_lines_survive_idle_probes() {
        // A reader that alternates one payload byte with a WouldBlock
        // models a socket under a read timeout: the accumulated prefix must
        // persist across Idle returns and reassemble into one line.
        struct Stutter<'a>(&'a [u8], bool);
        impl std::io::Read for Stutter<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 {
                    self.1 = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.1 = true;
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut reader = std::io::BufReader::with_capacity(1, Stutter(b"wx\r\nyz", false));
        let mut lines = LineBuf::new();
        let mut idles = 0usize;
        loop {
            match lines.read_line(&mut reader, 64).unwrap() {
                LineRead::Idle => idles += 1,
                LineRead::Line { oversized } => {
                    assert!(!oversized);
                    break;
                }
                LineRead::Eof => panic!("line arrives before EOF"),
            }
        }
        assert!(idles >= 2, "every other read stalls");
        assert_eq!(lines.take(), b"wx", "CR stripped, progress preserved across idles");
    }
}
