//! The batch engine: many program units through one pipeline.
//!
//! The ROADMAP's scaling step beyond PR 1's single-unit engine: a
//! [`BatchRunner`] streams [`BatchUnit`]s from any iterator (so corpora
//! larger than memory can be processed one unit at a time), drives them
//! through [`crate::pipeline::run_pipeline_in`] on a bounded pool of unit
//! workers, and shares **one** canonicalizing [`VerdictCache`] across all
//! units, so a subscript shape solved in one unit is a cache hit in every
//! other unit that repeats it (cross-unit memoization).
//!
//! # Worker budgeting
//!
//! [`BatchConfig::workers`] is the *total* thread budget. It is split
//! between unit-level parallelism (how many units are in flight) and the
//! per-unit dependence-pair worklist so the two levels never oversubscribe:
//! `unit_parallelism × per-unit engine workers ≤ workers`. With the default
//! auto split, each in-flight unit runs its worklist serially — for corpora
//! of many small units that is the efficient shape. `workers = 1` is the
//! fully serial reference path.
//!
//! # Determinism contract
//!
//! For any worker count and any unit arrival order, the per-unit edges
//! (counts and fingerprints), the per-unit [`DepStats::verdict_stats`], and
//! the corpus totals in [`BatchStats`] are byte-identical under
//! [`BatchStats::render`]:
//!
//! * verdicts are pure functions of the canonical cache key
//!   ([`crate::cache`]), so *which* unit populates a shared entry first
//!   cannot change any verdict;
//! * per-unit cache hit/miss and charged-work counters attribute each
//!   canonical problem to its first reference **in that unit's source-pair
//!   order** (see [`DepStats::attempts_by`]), making them equal to a
//!   private-cache run of the same unit — sharing changes who executes,
//!   never what a unit reports;
//! * unit reports are collected into a name-sorted table, so scheduling
//!   cannot leak into the rendered output.
//!
//! Only the corpus-level sharing counters ([`BatchStats::distinct_problems`],
//! [`BatchStats::cross_unit_hits`]) and wall-clock nanos depend on whether
//! the shared cache is enabled — and the former two are themselves
//! deterministic for a given unit *set*, because the set of distinct
//! canonical keys is order-independent.

use crate::cache::VerdictCache;
use crate::deps::{workers_from_env, DepEdge, DepStats, TestChoice, VerdictStats};
use crate::pipeline::{run_pipeline_in, PipelineConfig};
use delin_numeric::Assumptions;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// One program unit of a batch: a named mini-FORTRAN source plus the
/// symbolic assumptions it is analyzed under.
#[derive(Debug, Clone)]
pub struct BatchUnit {
    /// Unique display name (unit reports are sorted by it).
    pub name: String,
    /// Mini-FORTRAN source text.
    pub source: String,
    /// Symbolic assumptions for this unit (e.g. `N ≥ 2`). Units with
    /// different assumptions safely share the batch cache: lookups are
    /// keyed per-unit (see [`crate::cache::env_key`]).
    pub assumptions: Assumptions,
}

impl BatchUnit {
    /// A unit with no symbolic assumptions.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchUnit {
        BatchUnit { name: name.into(), source: source.into(), assumptions: Assumptions::new() }
    }

    /// Replaces the unit's assumptions.
    #[must_use]
    pub fn with_assumptions(mut self, assumptions: Assumptions) -> BatchUnit {
        self.assumptions = assumptions;
        self
    }
}

/// Configuration of the batch engine.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Which dependence tests drive the analysis.
    pub choice: TestChoice,
    /// Total worker-thread budget across both scheduling levels; `0` means
    /// one per available CPU (or `DELIN_WORKERS` when set), `1` is fully
    /// serial.
    pub workers: usize,
    /// Units in flight at once; `0` (auto) uses the whole budget at the
    /// unit level with serial per-unit worklists. Clamped to `workers`.
    pub unit_parallelism: usize,
    /// Share one verdict cache across all units (cross-unit memoization).
    pub shared_cache: bool,
    /// With `shared_cache` off, still memoize within each unit.
    pub cache: bool,
    /// Apply induction-variable substitution.
    pub induction: bool,
    /// Linearize `EQUIVALENCE`-aliased arrays first.
    pub linearize: bool,
    /// Derive symbol bounds from loop bounds (loops execute at least once).
    pub infer_loop_assumptions: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            choice: TestChoice::default(),
            workers: workers_from_env(),
            unit_parallelism: 0,
            shared_cache: true,
            cache: true,
            induction: true,
            linearize: true,
            infer_loop_assumptions: true,
        }
    }
}

impl BatchConfig {
    /// Resolves the two-level worker split: `(unit workers, engine workers
    /// per unit)`, with `unit × engine ≤ total budget`.
    pub fn worker_split(&self) -> (usize, usize) {
        let auto = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let total = if self.workers == 0 { auto() } else { self.workers }.max(1);
        let units = if self.unit_parallelism == 0 { total } else { self.unit_parallelism };
        let units = units.clamp(1, total);
        (units, (total / units).max(1))
    }
}

/// What the batch engine did with one unit. Everything here is
/// deterministic: scheduling-dependent wall-clock figures live only in
/// [`UnitReport::stats`]' nanos fields, which [`BatchStats::render`] omits.
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// The unit's name.
    pub name: String,
    /// The parse failure, if the unit was rejected.
    pub parse_error: Option<String>,
    /// Dependence edges emitted.
    pub edges: usize,
    /// Order-sensitive fingerprint of the full edge list (statements,
    /// kinds, direction vectors, levels) — byte-identical edges iff equal.
    pub edges_fp: u64,
    /// Statements the vectorizer emitted in vector form.
    pub vectorized_statements: usize,
    /// Full engine statistics for the unit.
    pub stats: DepStats,
}

impl UnitReport {
    /// The deterministic one-line table row for this unit.
    pub fn render_row(&self) -> String {
        if let Some(e) = &self.parse_error {
            return format!("{}: PARSE ERROR: {e}", self.name);
        }
        let v = self.stats.verdict_stats();
        format!(
            "{}: pairs={} independent={} conservative={} cache={}h/{}m nodes={} \
             edges={} fp={:016x} vectorized={}",
            self.name,
            v.pairs_tested,
            v.proven_independent,
            v.conservative_pairs,
            v.cache_hits,
            v.cache_misses,
            v.solver_nodes,
            self.edges,
            self.edges_fp,
            self.vectorized_statements
        )
    }
}

/// The corpus-level aggregate of a batch run.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-unit reports, sorted by unit name (ties broken structurally) so
    /// arrival order cannot leak into the output.
    pub units: Vec<UnitReport>,
    /// Units that failed to parse.
    pub parse_failures: usize,
    /// Sum of all unit statistics.
    pub totals: DepStats,
    /// Distinct canonical problems in the shared cache at the end of the
    /// run; `None` when the shared cache was disabled.
    pub distinct_problems: Option<usize>,
    /// Unit-local first references that were already present in the shared
    /// cache because *another* unit computed them: the work cross-unit
    /// memoization saved. `0` without a shared cache.
    pub cross_unit_hits: usize,
    /// Total vectorized statements across units.
    pub vectorized_statements: usize,
}

impl BatchStats {
    /// The scheduling-independent corpus totals.
    pub fn verdict_totals(&self) -> VerdictStats {
        self.totals.verdict_stats()
    }

    /// Renders the deterministic corpus table: per-unit rows (name-sorted)
    /// plus corpus totals. Contains no wall-clock figures, so two runs of
    /// the same unit set render byte-identically for any worker count and
    /// any arrival order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for unit in &self.units {
            let _ = writeln!(out, "{}", unit.render_row());
        }
        let t = self.totals.verdict_stats();
        let _ = writeln!(
            out,
            "corpus: units={} failures={} pairs={} independent={} conservative={} \
             cache={}h/{}m nodes={} vectorized={}",
            self.units.len(),
            self.parse_failures,
            t.pairs_tested,
            t.proven_independent,
            t.conservative_pairs,
            t.cache_hits,
            t.cache_misses,
            t.solver_nodes,
            self.vectorized_statements
        );
        let decided: Vec<String> =
            t.decided_by.iter().map(|(name, n)| format!("{name}={n}")).collect();
        let _ = writeln!(out, "decided-by: {}", decided.join(" "));
        match self.distinct_problems {
            Some(d) => {
                let _ = writeln!(
                    out,
                    "shared-cache: distinct={} cross-unit-hits={}",
                    d, self.cross_unit_hits
                );
            }
            None => {
                let _ = writeln!(out, "shared-cache: off");
            }
        }
        out
    }
}

/// Streams program units through the pipeline under a [`BatchConfig`].
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    config: BatchConfig,
}

impl BatchRunner {
    /// A runner with the given configuration.
    pub fn new(config: BatchConfig) -> BatchRunner {
        BatchRunner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Runs every unit the iterator yields and aggregates the corpus
    /// report. Units are pulled from the iterator one at a time as workers
    /// free up, so the whole corpus never needs to be resident at once.
    pub fn run<I>(&self, units: I) -> BatchStats
    where
        I: IntoIterator<Item = BatchUnit>,
        I::IntoIter: Send,
    {
        let (unit_workers, engine_workers) = self.config.worker_split();
        let shared = self.config.shared_cache.then(VerdictCache::shared);

        let mut reports: Vec<UnitReport> = if unit_workers <= 1 {
            units
                .into_iter()
                .map(|u| self.process_unit(&u, engine_workers, shared.as_ref()))
                .collect()
        } else {
            let stream = Mutex::new(units.into_iter());
            let sink = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..unit_workers {
                    scope.spawn(|| loop {
                        // Hold the stream lock only while pulling: units
                        // larger than the lock hold-time stream freely.
                        let unit = stream.lock().expect("unit stream poisoned").next();
                        let Some(unit) = unit else { break };
                        let report = self.process_unit(&unit, engine_workers, shared.as_ref());
                        sink.lock().expect("report sink poisoned").push(report);
                    });
                }
            });
            sink.into_inner().expect("report sink poisoned")
        };

        // Name-sorted output: arrival order and scheduling cannot leak.
        reports.sort_by(|a, b| (&a.name, a.edges_fp, a.edges).cmp(&(&b.name, b.edges_fp, b.edges)));

        let mut totals = DepStats::default();
        let mut parse_failures = 0;
        let mut vectorized_statements = 0;
        for r in &reports {
            totals.merge(&r.stats);
            parse_failures += usize::from(r.parse_error.is_some());
            vectorized_statements += r.vectorized_statements;
        }
        let distinct_problems = shared.as_ref().map(VerdictCache::len);
        // Every unit-local miss is a globally distinct problem unless some
        // other unit had already inserted it.
        let cross_unit_hits =
            distinct_problems.map_or(0, |d| totals.cache_misses.saturating_sub(d));
        BatchStats {
            units: reports,
            parse_failures,
            totals,
            distinct_problems,
            cross_unit_hits,
            vectorized_statements,
        }
    }

    fn process_unit(
        &self,
        unit: &BatchUnit,
        engine_workers: usize,
        shared: Option<&VerdictCache>,
    ) -> UnitReport {
        let config = PipelineConfig {
            choice: self.config.choice,
            induction: self.config.induction,
            linearize: self.config.linearize,
            assumptions: unit.assumptions.clone(),
            infer_loop_assumptions: self.config.infer_loop_assumptions,
            workers: engine_workers,
            cache: self.config.cache,
        };
        match run_pipeline_in(&unit.source, &config, shared) {
            Ok(report) => UnitReport {
                name: unit.name.clone(),
                parse_error: None,
                edges: report.graph.edges.len(),
                edges_fp: fingerprint_edges(&report.graph.edges),
                vectorized_statements: report.vectorization.vectorized_statements,
                stats: report.stats,
            },
            Err(e) => UnitReport {
                name: unit.name.clone(),
                parse_error: Some(e.to_string()),
                edges: 0,
                edges_fp: 0,
                vectorized_statements: 0,
                stats: DepStats::default(),
            },
        }
    }
}

/// A stable fingerprint of an edge list: hashes every structural field in
/// order, so equal fingerprints mean byte-identical edges in identical
/// order.
pub fn fingerprint_edges(edges: &[DepEdge]) -> u64 {
    let mut h = DefaultHasher::new();
    edges.len().hash(&mut h);
    for e in edges {
        e.src.hash(&mut h);
        e.dst.hash(&mut h);
        format!("{:?}", e.kind).hash(&mut h);
        e.array.hash(&mut h);
        format!("{:?}", e.dir_vecs).hash(&mut h);
        e.level.hash(&mut h);
        e.tested_by.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(name: &str, stride: i128, off: i128) -> BatchUnit {
        BatchUnit::new(
            name,
            format!(
                "REAL C(0:399)\nDO 1 i = 0, 4\nDO 1 j = 0, 9\n\
                 1   C(i + {stride}*j) = C(i + {stride}*j + {off})\nEND\n"
            ),
        )
    }

    fn units() -> Vec<BatchUnit> {
        vec![
            unit("u0-classic", 10, 5),
            unit("u1-repeat", 10, 5), // same shape as u0: cross-unit hit
            unit("u2-other", 12, 7),
            BatchUnit::new("u3-bad", "DO 1 i = \nEND\n"),
        ]
    }

    #[test]
    fn batch_processes_and_sorts_units() {
        let stats = BatchRunner::default().run(units());
        assert_eq!(stats.units.len(), 4);
        assert_eq!(stats.parse_failures, 1);
        let names: Vec<&str> = stats.units.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["u0-classic", "u1-repeat", "u2-other", "u3-bad"]);
        assert!(stats.totals.pairs_tested > 0);
        assert!(stats.vectorized_statements >= 3);
        let render = stats.render();
        assert!(render.contains("corpus: units=4 failures=1"), "{render}");
    }

    #[test]
    fn identical_units_share_cache_entries() {
        let stats = BatchRunner::default().run(units());
        // u1 repeats u0's canonical problems exactly.
        assert!(stats.cross_unit_hits > 0, "{:?}", stats.distinct_problems);
        let d = stats.distinct_problems.expect("shared cache on by default");
        assert!(d > 0);
        assert_eq!(stats.totals.verdict_stats().cache_misses, d + stats.cross_unit_hits);
    }

    #[test]
    fn arrival_order_and_workers_do_not_change_the_render() {
        let base = BatchRunner::default().run(units());
        let mut reversed = units();
        reversed.reverse();
        let rev = BatchRunner::default().run(reversed);
        assert_eq!(base.render(), rev.render());

        for workers in [1, 2, 5] {
            let runner = BatchRunner::new(BatchConfig { workers, ..BatchConfig::default() });
            assert_eq!(runner.run(units()).render(), base.render(), "workers={workers}");
        }
    }

    #[test]
    fn shared_cache_toggle_preserves_unit_reports() {
        let on = BatchRunner::default().run(units());
        let off = BatchRunner::new(BatchConfig { shared_cache: false, ..BatchConfig::default() })
            .run(units());
        assert_eq!(off.distinct_problems, None);
        assert_eq!(off.cross_unit_hits, 0);
        for (a, b) in on.units.iter().zip(&off.units) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.edges_fp, b.edges_fp);
            assert_eq!(a.stats.verdict_stats(), b.stats.verdict_stats());
        }
    }

    #[test]
    fn worker_split_never_oversubscribes() {
        for workers in 1..=8 {
            for unit_parallelism in 0..=8 {
                let c = BatchConfig { workers, unit_parallelism, ..BatchConfig::default() };
                let (u, e) = c.worker_split();
                assert!(u * e <= workers, "{workers}/{unit_parallelism} -> {u}x{e}");
                assert!(u >= 1 && e >= 1);
            }
        }
    }

    #[test]
    fn streaming_pulls_lazily() {
        // An iterator that counts how far it was consumed; the runner must
        // drain it completely without collecting it up front.
        let produced = std::sync::atomic::AtomicUsize::new(0);
        let it = (0..6i128).map(|k| {
            produced.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            unit(&format!("s{k}"), 10 + k, 3)
        });
        let stats = BatchRunner::new(BatchConfig { workers: 2, ..BatchConfig::default() }).run(it);
        assert_eq!(stats.units.len(), 6);
        assert_eq!(produced.load(std::sync::atomic::Ordering::SeqCst), 6);
    }
}
