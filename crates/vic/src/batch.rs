//! The batch engine: many program units through one pipeline.
//!
//! The ROADMAP's scaling step beyond PR 1's single-unit engine: a
//! [`BatchRunner`] streams [`BatchUnit`]s from any iterator (so corpora
//! larger than memory can be processed one unit at a time), drives them
//! through [`crate::pipeline::run_pipeline_in`] on a bounded pool of unit
//! workers, and shares **one** canonicalizing [`VerdictCache`] across all
//! units, so a subscript shape solved in one unit is a cache hit in every
//! other unit that repeats it (cross-unit memoization).
//!
//! # Worker budgeting
//!
//! [`BatchConfig::workers`] is the *total* thread budget. It is split
//! between unit-level parallelism (how many units are in flight) and the
//! per-unit dependence-pair worklist so the two levels never oversubscribe:
//! `unit_parallelism × per-unit engine workers ≤ workers`. With the default
//! auto split, each in-flight unit runs its worklist serially — for corpora
//! of many small units that is the efficient shape. `workers = 1` is the
//! fully serial reference path.
//!
//! # Determinism contract
//!
//! For any worker count and any unit arrival order, the per-unit edges
//! (counts and fingerprints), the per-unit [`DepStats::verdict_stats`], and
//! the corpus totals in [`BatchStats`] are byte-identical under
//! [`BatchStats::render`]:
//!
//! * verdicts are pure functions of the canonical cache key
//!   ([`crate::cache`]), so *which* unit populates a shared entry first
//!   cannot change any verdict;
//! * per-unit cache hit/miss and charged-work counters attribute each
//!   canonical problem to its first reference **in that unit's source-pair
//!   order** (see [`DepStats::attempts_by`]), making them equal to a
//!   private-cache run of the same unit — sharing changes who executes,
//!   never what a unit reports;
//! * unit reports are collected into a name-sorted table, so scheduling
//!   cannot leak into the rendered output.
//!
//! Only the corpus-level sharing counters ([`BatchStats::distinct_problems`],
//! [`BatchStats::cross_unit_hits`]) and wall-clock nanos depend on whether
//! the shared cache is enabled — and the former two are themselves
//! deterministic for a given unit *set*, because the set of distinct
//! canonical keys is order-independent.
//!
//! # Fault tolerance
//!
//! One pathological unit must not take the batch down. Three mechanisms,
//! designed to compose:
//!
//! * **resource budgets** — every unit runs its dependence analysis under
//!   [`BatchConfig::budget`] (node limit, optional `DELIN_DEADLINE_MS`
//!   deadline, optional cancellation). Exhaustion degrades individual pair
//!   verdicts to the conservative `Unknown` (recorded per
//!   [`delin_dep::budget::DegradeReason`] in [`DepStats::degraded_by`] and
//!   surfaced in the unit's report row) instead of running away;
//! * **panic isolation** — each unit attempt runs behind
//!   [`std::panic::catch_unwind`]. A panicking unit (or a panicking
//!   dependence worker inside it — the engine re-raises at the unit
//!   boundary) yields [`UnitOutcome::Failed`] with the panic message, and
//!   the thread-local solver node counter is drained so the leak cannot
//!   corrupt the next unit on that worker. The shared stream, sink, and
//!   cache recover from lock poisoning, and the shared cache resets a
//!   mid-compute cell whose owner unwound;
//! * **retry with escalation** — a failed *or budget-degraded* attempt is
//!   retried up to [`RetryPolicy::max_retries`] times, each retry under a
//!   budget multiplied by [`RetryPolicy::escalation`] (saturating, so the
//!   backoff is bounded). Only the final attempt's report is kept, which
//!   keeps reports deterministic.

use crate::cache::{cache_cap_from_env, KeyMode, VerdictCache};
use crate::chaos::{ChaosCtx, ChaosPlan, FaultKind};
use crate::deps::{
    incremental_from_env, workers_from_env, DepEdge, DepStats, TestChoice, VerdictStats,
};
use crate::persist;
use crate::pipeline::{run_pipeline_in, PipelineConfig};
use delin_dep::budget::BudgetSpec;
use delin_numeric::Assumptions;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One program unit of a batch: a named mini-FORTRAN source plus the
/// symbolic assumptions it is analyzed under.
#[derive(Debug, Clone)]
pub struct BatchUnit {
    /// Unique display name (unit reports are sorted by it).
    pub name: String,
    /// Mini-FORTRAN source text.
    pub source: String,
    /// Symbolic assumptions for this unit (e.g. `N ≥ 2`). Units with
    /// different assumptions safely share the batch cache: lookups are
    /// keyed per-unit (see [`crate::cache::env_key`]).
    pub assumptions: Assumptions,
}

impl BatchUnit {
    /// A unit with no symbolic assumptions.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> BatchUnit {
        BatchUnit { name: name.into(), source: source.into(), assumptions: Assumptions::new() }
    }

    /// Replaces the unit's assumptions.
    #[must_use]
    pub fn with_assumptions(mut self, assumptions: Assumptions) -> BatchUnit {
        self.assumptions = assumptions;
        self
    }

    /// A stable structural fingerprint over everything that determines the
    /// unit's analysis: name, source, and the full assumption environment.
    /// Equal fingerprints mean a recorded trace replays this unit
    /// byte-identically; the trace layer (`delin_corpus::trace`) and its
    /// differential suites compare streams by this without materializing
    /// both sides.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.name.hash(&mut h);
        self.source.hash(&mut h);
        self.assumptions.default_lower_bound().hash(&mut h);
        for (sym, lb) in self.assumptions.iter() {
            sym.name().hash(&mut h);
            lb.hash(&mut h);
        }
        h.finish()
    }
}

/// One scheduled item of a channel-fed batch: a [`BatchUnit`] plus the
/// per-job controls the serving layer needs. [`BatchRunner::run`] wraps
/// plain units into default jobs; [`BatchRunner::run_jobs`] accepts them
/// directly (for example off an [`std::sync::mpsc::Receiver`], which turns
/// the runner's pull loop into a long-lived work queue).
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The unit to analyze.
    pub unit: BatchUnit,
    /// Per-job resource budget; `None` inherits [`BatchConfig::budget`].
    /// Like the config-level budget it is armed afresh per attempt, so
    /// deadlines are per-unit, never per-batch.
    pub budget: Option<BudgetSpec>,
    /// Collect the full dependence edge list into [`UnitReport::dep_edges`]
    /// (off for plain batch runs, which only need counts + fingerprints).
    pub want_edges: bool,
    /// Opaque tag echoed to the completion sink; the serving layer keys
    /// responses by it. Plain batch runs leave it `0`.
    pub tag: u64,
}

impl From<BatchUnit> for BatchJob {
    fn from(unit: BatchUnit) -> BatchJob {
        BatchJob { unit, budget: None, want_edges: false, tag: 0 }
    }
}

/// Configuration of the batch engine.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Which dependence tests drive the analysis.
    pub choice: TestChoice,
    /// Total worker-thread budget across both scheduling levels; `0` means
    /// one per available CPU (or `DELIN_WORKERS` when set), `1` is fully
    /// serial.
    pub workers: usize,
    /// Units in flight at once; `0` (auto) uses the whole budget at the
    /// unit level with serial per-unit worklists. Clamped to `workers`.
    pub unit_parallelism: usize,
    /// Share one verdict cache across all units (cross-unit memoization).
    pub shared_cache: bool,
    /// With `shared_cache` off, still memoize within each unit.
    pub cache: bool,
    /// Verdict-cache key representation (see [`KeyMode`]): structural
    /// fingerprints (default) or rendered strings (the A/B baseline).
    /// Applies to the shared cross-unit cache and to per-unit private
    /// caches alike. Pure perf knob — every report is byte-identical
    /// either way. The default reads `DELIN_KEYING`.
    pub keying: KeyMode,
    /// Incremental exact solving (see
    /// [`crate::deps::EngineConfig::incremental`]): refinement queries
    /// replay memoized solve subtrees, and cached verdicts carry their
    /// solver state across units. A pure perf knob — edges and verdicts
    /// are identical either way. The default reads `DELIN_INCREMENTAL`
    /// (`0` disables, the A/B baseline).
    pub incremental: bool,
    /// Arena miss path (see [`crate::deps::EngineConfig::arena`]):
    /// per-worker scratch reuse for decision problems and solver buffers.
    /// A pure perf knob — every report is byte-identical either way. The
    /// default reads `DELIN_ARENA` (`0` disables, the A/B baseline).
    pub arena: bool,
    /// Apply induction-variable substitution.
    pub induction: bool,
    /// Linearize `EQUIVALENCE`-aliased arrays first.
    pub linearize: bool,
    /// Derive symbol bounds from loop bounds (loops execute at least once).
    pub infer_loop_assumptions: bool,
    /// Entry capacity of the shared cross-unit cache — and of per-unit
    /// private caches — in entries; `0` = unbounded (the historical
    /// behavior). Bounded caches evict least-recently-used entries;
    /// per-unit rows and corpus totals are byte-identical under any
    /// capacity (only the eviction counter itself, rendered only when a
    /// capacity is set, observes eviction). The default reads
    /// `DELIN_CACHE_CAP`.
    pub cache_cap: usize,
    /// Persistent verdict-cache file (see [`crate::persist`]). When set
    /// (and the shared cache is enabled under fingerprint keying), the
    /// runner seeds the shared cache from this file before the batch and
    /// rewrites it atomically after — a later run starts warm. Stale,
    /// corrupt, truncated or wrong-version files degrade to a cold start.
    pub cache_file: Option<PathBuf>,
    /// Per-unit resource budget for dependence analysis. Armed afresh for
    /// every unit attempt, so one slow unit cannot consume another's
    /// allowance. The default reads `DELIN_DEADLINE_MS`.
    pub budget: BudgetSpec,
    /// Retry policy for failed or budget-degraded unit attempts.
    pub retry: RetryPolicy,
    /// Deterministic fault-injection plan; compiled out (statically `None`)
    /// without the `chaos` cargo feature.
    pub chaos: Option<ChaosPlan>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            choice: TestChoice::default(),
            workers: workers_from_env(),
            unit_parallelism: 0,
            shared_cache: true,
            cache: true,
            keying: KeyMode::from_env(),
            incremental: incremental_from_env(),
            arena: delin_dep::exact::arena_from_env(),
            induction: true,
            linearize: true,
            infer_loop_assumptions: true,
            cache_cap: cache_cap_from_env(),
            cache_file: None,
            budget: BudgetSpec::default(),
            retry: RetryPolicy::default(),
            chaos: ChaosPlan::from_env(),
        }
    }
}

/// How failed or degraded unit attempts are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first; `0` disables retry.
    pub max_retries: u32,
    /// Budget multiplier applied per retry (node limit and deadline,
    /// saturating — the escalation is bounded by `u64::MAX`, never a
    /// runaway).
    pub escalation: u64,
}

impl Default for RetryPolicy {
    /// One retry under a 4× budget.
    fn default() -> Self {
        RetryPolicy { max_retries: 1, escalation: 4 }
    }
}

impl BatchConfig {
    /// Resolves the two-level worker split: `(unit workers, engine workers
    /// per unit)`, with `unit × engine ≤ total budget`.
    pub fn worker_split(&self) -> (usize, usize) {
        let auto = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let total = if self.workers == 0 { auto() } else { self.workers }.max(1);
        let units = if self.unit_parallelism == 0 { total } else { self.unit_parallelism };
        let units = units.clamp(1, total);
        (units, (total / units).max(1))
    }
}

/// How processing one unit ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome {
    /// The unit was analyzed (possibly with budget-degraded pairs — see
    /// [`DepStats::degraded_pairs`]).
    Analyzed,
    /// The unit was rejected by the parser.
    ParseError(String),
    /// Every attempt panicked: the unit is reported failed and the batch
    /// moves on. `reason` is the (deterministic) panic message of the last
    /// attempt; `attempts` counts how many were made.
    Failed {
        /// Panic message of the final attempt.
        reason: String,
        /// Total attempts made (initial try plus retries).
        attempts: u32,
    },
}

/// What the batch engine did with one unit. Everything here is
/// deterministic: scheduling-dependent wall-clock figures live only in
/// [`UnitReport::stats`]' nanos fields, which [`BatchStats::render`] omits.
#[derive(Debug, Clone)]
pub struct UnitReport {
    /// The unit's name.
    pub name: String,
    /// How processing ended.
    pub outcome: UnitOutcome,
    /// Dependence edges emitted.
    pub edges: usize,
    /// Order-sensitive fingerprint of the full edge list (statements,
    /// kinds, direction vectors, levels) — byte-identical edges iff equal.
    pub edges_fp: u64,
    /// Statements the vectorizer emitted in vector form.
    pub vectorized_statements: usize,
    /// Full engine statistics for the unit.
    pub stats: DepStats,
    /// Sorted fingerprints of the canonical problems charged to this unit
    /// (see [`crate::deps::DepGraph::charged_keys`]); the batch unions them
    /// to count corpus-wide distinct problems.
    pub charged_keys: Vec<u64>,
    /// The full dependence edge list, populated only when the job asked for
    /// it ([`BatchJob::want_edges`]); empty for plain [`BatchRunner::run`]
    /// batches, which report only [`UnitReport::edges`]/[`UnitReport::edges_fp`].
    pub dep_edges: Vec<DepEdge>,
}

impl UnitReport {
    /// The parse failure, if the unit was rejected.
    pub fn parse_error(&self) -> Option<&str> {
        match &self.outcome {
            UnitOutcome::ParseError(e) => Some(e),
            _ => None,
        }
    }

    /// The deterministic one-line table row for this unit.
    pub fn render_row(&self) -> String {
        match &self.outcome {
            UnitOutcome::ParseError(e) => return format!("{}: PARSE ERROR: {e}", self.name),
            UnitOutcome::Failed { reason, attempts } => {
                return format!("{}: FAILED after {attempts} attempt(s): {reason}", self.name)
            }
            UnitOutcome::Analyzed => {}
        }
        let v = self.stats.verdict_stats();
        // `degraded=` is appended only when something degraded, so clean
        // runs keep the historical byte-identical row.
        let mut tail = String::new();
        // `saved=` appears only when the incremental solver replayed a
        // subtree, and `degraded=` only when something degraded, so
        // incremental-off, reuse-free, clean rows keep the historical
        // byte-identical shape.
        if v.subtree_reuses > 0 {
            tail.push_str(&format!(" saved={}/{}", v.nodes_saved, v.subtree_reuses));
        }
        if v.degraded_pairs > 0 {
            tail.push_str(&format!(" degraded={}", v.degraded_pairs));
        }
        format!(
            "{}: pairs={} independent={} conservative={} cache={}h/{}m nodes={} \
             edges={} fp={:016x} vectorized={}{tail}",
            self.name,
            v.pairs_tested,
            v.proven_independent,
            v.conservative_pairs,
            v.cache_hits,
            v.cache_misses,
            v.solver_nodes,
            self.edges,
            self.edges_fp,
            self.vectorized_statements
        )
    }
}

/// The corpus-level aggregate of a batch run.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-unit reports, sorted by unit name (ties broken structurally) so
    /// arrival order cannot leak into the output. Empty when the caller
    /// opted out of collection ([`BatchRunner::run_jobs`] with
    /// `collect_reports = false` — long-lived servers stream reports
    /// through the sink instead of accumulating them here).
    pub units: Vec<UnitReport>,
    /// Units processed. Equal to `units.len()` when reports were collected;
    /// still counts every unit when they were not.
    pub unit_count: usize,
    /// Units that failed to parse.
    pub parse_failures: usize,
    /// Units whose every attempt panicked ([`UnitOutcome::Failed`]).
    pub failed_units: usize,
    /// Times the unit *stream* itself panicked while being pulled. The
    /// puller treats a panicking iterator as exhausted (after recovering
    /// the lock), so a broken stream truncates the batch instead of
    /// wedging it.
    pub stream_failures: usize,
    /// Sum of all unit statistics.
    pub totals: DepStats,
    /// Distinct canonical problems charged across all units (the union of
    /// per-unit [`UnitReport::charged_keys`]); `None` when the shared cache
    /// was disabled. Counting charged keys instead of live cache entries
    /// keeps the figure deterministic even when failed attempts left
    /// partial state behind.
    pub distinct_problems: Option<usize>,
    /// Unit-local first references that were already present in the shared
    /// cache because *another* unit computed them: the work cross-unit
    /// memoization saved. `0` without a shared cache.
    pub cross_unit_hits: usize,
    /// Total vectorized statements across units.
    pub vectorized_statements: usize,
    /// Shared-cache entry capacity in force (`0` = unbounded). Rendered
    /// (with [`BatchStats::cache_evictions`]) only when nonzero, so
    /// unbounded corpora keep the historical render.
    pub cache_capacity: usize,
    /// Entries the shared cache evicted during this run. Deterministic for
    /// a fixed arrival order on one worker; scheduling-dependent otherwise,
    /// which is why it lives outside [`VerdictStats`] and the per-unit rows.
    pub cache_evictions: u64,
    /// Verdicts seeded into the shared cache from [`BatchConfig::cache_file`]
    /// before the run. `0` when no file was given (or it was cold/invalid).
    pub persistent_loaded: usize,
    /// Unit lookups answered by a disk-seeded entry: the work the
    /// persistent tier saved this process. Excluded from [`BatchStats::render`]
    /// so warm and cold runs stay byte-identical.
    pub persistent_hits: u64,
    /// Entries written back to [`BatchConfig::cache_file`] after the run.
    pub persistent_saved: usize,
    /// I/O error from the post-run flush, if any: persistence failures
    /// never fail the batch, they surface here.
    pub persist_error: Option<String>,
}

impl BatchStats {
    /// The scheduling-independent corpus totals.
    pub fn verdict_totals(&self) -> VerdictStats {
        self.totals.verdict_stats()
    }

    /// Renders the deterministic corpus table: per-unit rows (name-sorted)
    /// plus corpus totals. Contains no wall-clock figures, so two runs of
    /// the same unit set render byte-identically for any worker count and
    /// any arrival order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for unit in &self.units {
            let _ = writeln!(out, "{}", unit.render_row());
        }
        let t = self.totals.verdict_stats();
        // Failure/degradation segments appear only when nonzero: clean runs
        // render the historical corpus line byte for byte.
        let mut tail = String::new();
        if self.failed_units > 0 {
            let _ = write!(tail, " failed={}", self.failed_units);
        }
        if self.stream_failures > 0 {
            let _ = write!(tail, " stream-failures={}", self.stream_failures);
        }
        if t.degraded_pairs > 0 {
            let _ = write!(tail, " degraded={}", t.degraded_pairs);
        }
        let _ = writeln!(
            out,
            "corpus: units={} failures={} pairs={} independent={} conservative={} \
             cache={}h/{}m nodes={} vectorized={}{tail}",
            self.unit_count,
            self.parse_failures,
            t.pairs_tested,
            t.proven_independent,
            t.conservative_pairs,
            t.cache_hits,
            t.cache_misses,
            t.solver_nodes,
            self.vectorized_statements
        );
        let decided: Vec<String> =
            t.decided_by.iter().map(|(name, n)| format!("{name}={n}")).collect();
        let _ = writeln!(out, "decided-by: {}", decided.join(" "));
        // Attributes degradation to its budget axis (nodes / deadline /
        // cancelled); absent on clean runs, so those keep the historical
        // render. This is what makes a ctrl-C'd corpus report legible as
        // "partial because cancelled" rather than merely degraded.
        if t.degraded_pairs > 0 {
            let reasons: Vec<String> =
                t.degraded_by.iter().map(|(reason, n)| format!("{reason}={n}")).collect();
            let _ = writeln!(out, "degraded-by: {}", reasons.join(" "));
        }
        // Rendered only when the engine refined at all, so battery-only
        // corpora keep the historical render.
        if t.refine_queries > 0 {
            let _ = writeln!(
                out,
                "incremental: refines={} subtree-reuses={} nodes-saved={}",
                t.refine_queries, t.subtree_reuses, t.nodes_saved
            );
        }
        match self.distinct_problems {
            Some(d) => {
                // The capacity segment appears only when a bound is set:
                // unbounded corpora keep the historical line, and the
                // eviction counter (the one scheduling-sensitive figure)
                // stays out of determinism-checked renders by default.
                let mut cache_tail = String::new();
                if self.cache_capacity > 0 {
                    let _ = write!(
                        cache_tail,
                        " capacity={} evictions={}",
                        self.cache_capacity, self.cache_evictions
                    );
                }
                let _ = writeln!(
                    out,
                    "shared-cache: distinct={} cross-unit-hits={}{cache_tail}",
                    d, self.cross_unit_hits
                );
            }
            None => {
                let _ = writeln!(out, "shared-cache: off");
            }
        }
        out
    }
}

/// Streams program units through the pipeline under a [`BatchConfig`].
#[derive(Debug, Clone, Default)]
pub struct BatchRunner {
    config: BatchConfig,
}

impl BatchRunner {
    /// A runner with the given configuration.
    pub fn new(config: BatchConfig) -> BatchRunner {
        BatchRunner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Runs every unit the iterator yields and aggregates the corpus
    /// report. Units are pulled from the iterator one at a time as workers
    /// free up, so the whole corpus never needs to be resident at once.
    ///
    /// Fault tolerance: a panicking unit becomes a [`UnitOutcome::Failed`]
    /// row (after retries), a panicking *stream* is treated as exhausted
    /// (counted in [`BatchStats::stream_failures`]), and the shared
    /// stream/sink/cache locks recover from poisoning — the batch always
    /// completes and always returns a report for every unit it received.
    pub fn run<I>(&self, units: I) -> BatchStats
    where
        I: IntoIterator<Item = BatchUnit>,
        I::IntoIter: Send,
    {
        self.run_jobs(units.into_iter().map(BatchJob::from), true, |_, _| {})
    }

    /// Runs every job the iterator yields, invoking `sink(tag, report)` as
    /// each unit completes. This is the channel-fed entry point: handing it
    /// an [`std::sync::mpsc::Receiver`]'s iterator turns the worker pool
    /// into a long-lived service loop that blocks for work and drains when
    /// the sender side hangs up.
    ///
    /// `collect_reports` controls whether per-unit reports are also
    /// accumulated into [`BatchStats::units`]; servers pass `false` so an
    /// unbounded request stream cannot grow the report table without bound
    /// (corpus totals are still aggregated incrementally).
    ///
    /// The sink runs on the worker that finished the unit, outside all
    /// runner locks, so it may block (e.g. on response back-pressure)
    /// without stalling other workers.
    pub fn run_jobs<I, F>(&self, jobs: I, collect_reports: bool, sink: F) -> BatchStats
    where
        I: IntoIterator<Item = BatchJob>,
        I::IntoIter: Send,
        F: Fn(u64, &UnitReport) + Sync,
    {
        self.run_jobs_in(jobs, None, collect_reports, sink)
    }

    /// [`BatchRunner::run_jobs`] against a caller-owned shared cache.
    ///
    /// When `external` is `Some`, it is used as the shared verdict cache
    /// regardless of [`BatchConfig::shared_cache`], and the persistent tier
    /// ([`BatchConfig::cache_file`]) is **not** loaded or saved here — the
    /// cache outlives this batch, so its owner decides when to persist.
    /// Cache counters in the returned stats ([`BatchStats::cache_evictions`],
    /// [`BatchStats::persistent_hits`]) are deltas over this run.
    pub fn run_jobs_in<I, F>(
        &self,
        jobs: I,
        external: Option<&VerdictCache>,
        collect_reports: bool,
        sink: F,
    ) -> BatchStats
    where
        I: IntoIterator<Item = BatchJob>,
        I::IntoIter: Send,
        F: Fn(u64, &UnitReport) + Sync,
    {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let (unit_workers, engine_workers) = self.config.worker_split();
        let owned = (external.is_none() && self.config.shared_cache)
            .then(|| VerdictCache::shared_with_cap(self.config.keying, self.config.cache_cap));
        let shared = external.or(owned.as_ref());
        // Warm start: seed an owned shared cache from the persistent tier
        // before any unit runs. Invalid files load partially or not at all.
        // External caches are seeded (and flushed) by their owner.
        let mut persistent_loaded = 0;
        if let (Some(cache), Some(path)) = (owned.as_ref(), self.config.cache_file.as_ref()) {
            persistent_loaded = persist::load(cache, path).loaded;
        }
        // Counter snapshots: an owned cache starts at zero, an external one
        // carries history from earlier batches — report this run's share.
        let evictions_before = shared.map_or(0, VerdictCache::evictions);
        let persistent_hits_before = shared.map_or(0, VerdictCache::persistent_hits);
        let stream_panics = AtomicUsize::new(0);

        let mut agg = if unit_workers <= 1 {
            let mut it = jobs.into_iter();
            let mut agg = Aggregate::new(collect_reports);
            loop {
                match catch_unwind(AssertUnwindSafe(|| it.next())) {
                    Ok(Some(job)) => {
                        let report = self.run_unit(&job, engine_workers, shared);
                        sink(job.tag, &report);
                        agg.absorb(report);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        stream_panics.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                }
            }
            agg
        } else {
            let stream = Mutex::new(jobs.into_iter());
            let agg = Mutex::new(Aggregate::new(collect_reports));
            std::thread::scope(|scope| {
                for _ in 0..unit_workers {
                    scope.spawn(|| loop {
                        // Hold the stream lock only while pulling: units
                        // larger than the lock hold-time stream freely. A
                        // previously-poisoned lock is recovered (the
                        // iterator state is whatever the panicking `next`
                        // left behind), and a panicking pull is treated as
                        // end-of-stream for this worker. A blocking pull
                        // (a channel with no job ready) holds the lock —
                        // which is fine: the stream is the one source of
                        // work, so waiting workers would block either way.
                        let job = {
                            let mut guard = lock_recover(&stream);
                            match catch_unwind(AssertUnwindSafe(|| guard.next())) {
                                Ok(j) => j,
                                Err(_) => {
                                    stream_panics.fetch_add(1, Ordering::SeqCst);
                                    None
                                }
                            }
                        };
                        let Some(job) = job else { break };
                        let report = self.run_unit(&job, engine_workers, shared);
                        sink(job.tag, &report);
                        lock_recover(&agg).absorb(report);
                    });
                }
            });
            agg.into_inner().unwrap_or_else(PoisonError::into_inner)
        };

        // Name-sorted output: arrival order and scheduling cannot leak.
        agg.reports
            .sort_by(|a, b| (&a.name, a.edges_fp, a.edges).cmp(&(&b.name, b.edges_fp, b.edges)));

        let distinct_problems = shared.is_some().then_some(agg.charged.len());
        // Every unit-local miss is a globally distinct problem unless some
        // other unit had already charged it.
        let cross_unit_hits =
            distinct_problems.map_or(0, |d| agg.totals.cache_misses.saturating_sub(d));
        // Flush the persistent tier on the way out (clean or cancelled runs
        // alike — degraded verdicts are never memoized, so the cache holds
        // only sound entries). I/O failure degrades to a reported error.
        let mut persistent_saved = 0;
        let mut persist_error = None;
        if let (Some(cache), Some(path)) = (owned.as_ref(), self.config.cache_file.as_ref()) {
            match persist::save(cache, path) {
                Ok(n) => persistent_saved = n,
                Err(e) => persist_error = Some(format!("{path:?}: {e}")),
            }
        }
        BatchStats {
            units: agg.reports,
            unit_count: agg.count,
            parse_failures: agg.parse_failures,
            failed_units: agg.failed_units,
            stream_failures: stream_panics.into_inner(),
            totals: agg.totals,
            distinct_problems,
            cross_unit_hits,
            vectorized_statements: agg.vectorized_statements,
            cache_capacity: shared.map_or(0, |c| c.capacity()),
            cache_evictions: shared.map_or(0, |c| c.evictions()).saturating_sub(evictions_before),
            persistent_loaded,
            persistent_hits: shared
                .map_or(0, |c| c.persistent_hits())
                .saturating_sub(persistent_hits_before),
            persistent_saved,
            persist_error,
        }
    }

    /// Processes one unit: attempt, catch panics, retry under an escalated
    /// budget, and always return a report. The job's own budget (when set)
    /// replaces the config budget as the base of the escalation ladder, so
    /// per-request allowances are honored exactly when retries are off.
    fn run_unit(
        &self,
        job: &BatchJob,
        engine_workers: usize,
        shared: Option<&VerdictCache>,
    ) -> UnitReport {
        let unit = &job.unit;
        let base_budget = job.budget.as_ref().unwrap_or(&self.config.budget);
        let attempts = self.config.retry.max_retries.saturating_add(1);
        let mut reason = String::new();
        for attempt in 0..attempts {
            let mut budget = if attempt == 0 {
                base_budget.clone()
            } else {
                base_budget.escalated(self.config.retry.escalation.saturating_pow(attempt))
            };
            let chaos =
                self.config.chaos.map(|plan| ChaosCtx { plan, unit: unit.name.clone(), attempt });
            let unit_fault = chaos.as_ref().and_then(ChaosCtx::unit_fault);
            if let Some(fault) = unit_fault {
                if fault != FaultKind::Panic {
                    budget = ChaosCtx::faulted_spec(fault, &budget);
                }
            }
            // A budget-starved attempt must not be rescued by verdicts other
            // units already memoized: whether a key is present depends on
            // arrival order, and a rescue would leak that order into the
            // starved unit's degradation stats. Starved attempts therefore
            // run against a private cache only.
            let attempt_shared =
                if unit_fault.is_some_and(|f| f != FaultKind::Panic) { None } else { shared };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if unit_fault == Some(FaultKind::Panic) {
                    panic!("{}", crate::chaos::CHAOS_PANIC_MSG);
                }
                self.process_unit_attempt(job, engine_workers, attempt_shared, budget, chaos)
            }));
            // Drain the thread-local solver node and refinement counters
            // unconditionally: a panic mid-solve would otherwise leak this
            // attempt's tallies into whatever this worker thread processes
            // next.
            delin_dep::exact::reset_thread_nodes();
            delin_dep::exact::reset_thread_refine();
            match outcome {
                Ok(report) => {
                    // A degraded-but-complete attempt is worth one escalated
                    // retry too: the next budget may afford the full proof.
                    if report.stats.degraded_pairs > 0 && attempt + 1 < attempts {
                        continue;
                    }
                    return report;
                }
                Err(payload) => reason = panic_message(payload),
            }
        }
        UnitReport {
            name: unit.name.clone(),
            outcome: UnitOutcome::Failed { reason, attempts },
            edges: 0,
            edges_fp: 0,
            vectorized_statements: 0,
            stats: DepStats::default(),
            charged_keys: Vec::new(),
            dep_edges: Vec::new(),
        }
    }

    fn process_unit_attempt(
        &self,
        job: &BatchJob,
        engine_workers: usize,
        shared: Option<&VerdictCache>,
        budget: BudgetSpec,
        chaos: Option<ChaosCtx>,
    ) -> UnitReport {
        let unit = &job.unit;
        let config = PipelineConfig {
            choice: self.config.choice,
            induction: self.config.induction,
            linearize: self.config.linearize,
            assumptions: unit.assumptions.clone(),
            infer_loop_assumptions: self.config.infer_loop_assumptions,
            workers: engine_workers,
            cache: self.config.cache,
            keying: self.config.keying,
            incremental: self.config.incremental,
            arena: self.config.arena,
            cache_cap: self.config.cache_cap,
            budget,
            chaos,
        };
        match run_pipeline_in(&unit.source, &config, shared) {
            Ok(report) => UnitReport {
                name: unit.name.clone(),
                outcome: UnitOutcome::Analyzed,
                edges: report.graph.edges.len(),
                edges_fp: fingerprint_edges(&report.graph.edges),
                vectorized_statements: report.vectorization.vectorized_statements,
                stats: report.stats,
                charged_keys: report.graph.charged_keys.clone(),
                dep_edges: if job.want_edges { report.graph.edges } else { Vec::new() },
            },
            Err(e) => UnitReport {
                name: unit.name.clone(),
                outcome: UnitOutcome::ParseError(e.to_string()),
                edges: 0,
                edges_fp: 0,
                vectorized_statements: 0,
                stats: DepStats::default(),
                charged_keys: Vec::new(),
                dep_edges: Vec::new(),
            },
        }
    }
}

/// Incrementally folded corpus totals: what [`BatchStats`] needs beyond the
/// (optional) report table, accumulated per completed unit so a server that
/// never collects reports still gets exact totals.
struct Aggregate {
    reports: Vec<UnitReport>,
    collect: bool,
    count: usize,
    totals: DepStats,
    parse_failures: usize,
    failed_units: usize,
    vectorized_statements: usize,
    charged: HashSet<u64>,
}

impl Aggregate {
    fn new(collect: bool) -> Aggregate {
        Aggregate {
            reports: Vec::new(),
            collect,
            count: 0,
            totals: DepStats::default(),
            parse_failures: 0,
            failed_units: 0,
            vectorized_statements: 0,
            charged: HashSet::new(),
        }
    }

    fn absorb(&mut self, report: UnitReport) {
        self.count += 1;
        self.totals.merge(&report.stats);
        self.parse_failures += usize::from(matches!(report.outcome, UnitOutcome::ParseError(_)));
        self.failed_units += usize::from(matches!(report.outcome, UnitOutcome::Failed { .. }));
        self.vectorized_statements += report.vectorized_statements;
        self.charged.extend(report.charged_keys.iter().copied());
        if self.collect {
            self.reports.push(report);
        }
    }
}

/// Locks a mutex, recovering the guard when a previous holder panicked.
/// The protected values (a unit iterator and a report vector) are only
/// observed between whole operations, so recovery is safe: a poisoned sink
/// holds every fully-pushed report, and a poisoned stream resumes wherever
/// the panicking `next` left off.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Extracts a human-readable message from a panic payload. `panic!` with a
/// format string yields `String`, `panic!` with a literal yields `&str`;
/// anything else is reported generically.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// A stable fingerprint of an edge list: hashes every structural field in
/// order, so equal fingerprints mean byte-identical edges in identical
/// order.
pub fn fingerprint_edges(edges: &[DepEdge]) -> u64 {
    let mut h = DefaultHasher::new();
    edges.len().hash(&mut h);
    for e in edges {
        e.src.hash(&mut h);
        e.dst.hash(&mut h);
        format!("{:?}", e.kind).hash(&mut h);
        e.array.hash(&mut h);
        format!("{:?}", e.dir_vecs).hash(&mut h);
        e.level.hash(&mut h);
        e.tested_by.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(name: &str, stride: i128, off: i128) -> BatchUnit {
        BatchUnit::new(
            name,
            format!(
                "REAL C(0:399)\nDO 1 i = 0, 4\nDO 1 j = 0, 9\n\
                 1   C(i + {stride}*j) = C(i + {stride}*j + {off})\nEND\n"
            ),
        )
    }

    fn units() -> Vec<BatchUnit> {
        vec![
            unit("u0-classic", 10, 5),
            unit("u1-repeat", 10, 5), // same shape as u0: cross-unit hit
            unit("u2-other", 12, 7),
            BatchUnit::new("u3-bad", "DO 1 i = \nEND\n"),
        ]
    }

    #[test]
    fn unit_fingerprint_tracks_every_field() {
        let base = unit("u0", 10, 5);
        assert_eq!(base.fingerprint(), unit("u0", 10, 5).fingerprint());
        assert_ne!(base.fingerprint(), unit("u1", 10, 5).fingerprint());
        assert_ne!(base.fingerprint(), unit("u0", 12, 5).fingerprint());
        let mut assumptions = delin_numeric::Assumptions::new();
        assumptions.set_lower_bound("NX", 2);
        assert_ne!(
            base.fingerprint(),
            unit("u0", 10, 5).with_assumptions(assumptions).fingerprint()
        );
    }

    #[test]
    fn batch_processes_and_sorts_units() {
        let stats = BatchRunner::default().run(units());
        assert_eq!(stats.units.len(), 4);
        assert_eq!(stats.parse_failures, 1);
        let names: Vec<&str> = stats.units.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["u0-classic", "u1-repeat", "u2-other", "u3-bad"]);
        assert!(stats.totals.pairs_tested > 0);
        assert!(stats.vectorized_statements >= 3);
        let render = stats.render();
        assert!(render.contains("corpus: units=4 failures=1"), "{render}");
    }

    #[test]
    fn identical_units_share_cache_entries() {
        let stats = BatchRunner::default().run(units());
        // u1 repeats u0's canonical problems exactly.
        assert!(stats.cross_unit_hits > 0, "{:?}", stats.distinct_problems);
        let d = stats.distinct_problems.expect("shared cache on by default");
        assert!(d > 0);
        assert_eq!(stats.totals.verdict_stats().cache_misses, d + stats.cross_unit_hits);
    }

    #[test]
    fn arrival_order_and_workers_do_not_change_the_render() {
        let base = BatchRunner::default().run(units());
        let mut reversed = units();
        reversed.reverse();
        let rev = BatchRunner::default().run(reversed);
        assert_eq!(base.render(), rev.render());

        for workers in [1, 2, 5] {
            let runner = BatchRunner::new(BatchConfig { workers, ..BatchConfig::default() });
            assert_eq!(runner.run(units()).render(), base.render(), "workers={workers}");
        }
    }

    #[test]
    fn shared_cache_toggle_preserves_unit_reports() {
        let on = BatchRunner::default().run(units());
        let off = BatchRunner::new(BatchConfig { shared_cache: false, ..BatchConfig::default() })
            .run(units());
        assert_eq!(off.distinct_problems, None);
        assert_eq!(off.cross_unit_hits, 0);
        for (a, b) in on.units.iter().zip(&off.units) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.edges_fp, b.edges_fp);
            assert_eq!(a.stats.verdict_stats(), b.stats.verdict_stats());
        }
    }

    #[test]
    fn worker_split_never_oversubscribes() {
        for workers in 1..=8 {
            for unit_parallelism in 0..=8 {
                let c = BatchConfig { workers, unit_parallelism, ..BatchConfig::default() };
                let (u, e) = c.worker_split();
                assert!(u * e <= workers, "{workers}/{unit_parallelism} -> {u}x{e}");
                assert!(u >= 1 && e >= 1);
            }
        }
    }

    /// A panicking unit stream must truncate the batch, not wedge or kill
    /// it: units pulled before the panic are still fully processed and the
    /// failure is counted.
    #[test]
    fn panicking_stream_truncates_batch() {
        for workers in [1, 3] {
            let it = (0..5i128).map(|k| {
                if k == 2 {
                    panic!("stream exploded");
                }
                unit(&format!("s{k}"), 10 + k, 3)
            });
            let stats = BatchRunner::new(BatchConfig { workers, ..BatchConfig::default() }).run(it);
            assert!(stats.stream_failures >= 1, "workers={workers}");
            // The faulted element is lost; serially the whole tail is too
            // (the one puller stops), while parallel pullers may still
            // drain elements after the faulted one.
            assert!(stats.units.len() < 5, "workers={workers}: {:?}", stats.units.len());
            if workers == 1 {
                assert_eq!(stats.units.len(), 2);
            }
            assert!(stats.units.iter().all(|u| u.outcome == UnitOutcome::Analyzed));
            assert!(stats.render().contains("stream-failures="), "{}", stats.render());
        }
    }

    /// A zero-node budget degrades the classic unit's delinearization
    /// proof; the report row and corpus line must say so, and the verdicts
    /// must stay conservative (no independence claimed by delinearization).
    #[test]
    fn budget_degradation_is_reported_per_unit() {
        let config = BatchConfig {
            workers: 1,
            budget: BudgetSpec::nodes_only(0),
            retry: RetryPolicy { max_retries: 0, escalation: 4 },
            ..BatchConfig::default()
        };
        let stats = BatchRunner::new(config).run(vec![unit("u0-classic", 10, 5)]);
        let report = &stats.units[0];
        assert_eq!(report.outcome, UnitOutcome::Analyzed);
        assert!(report.stats.degraded_pairs > 0, "{:?}", report.stats);
        assert!(report.render_row().contains(" degraded="), "{}", report.render_row());
        assert!(stats.render().contains(" degraded="), "{}", stats.render());
    }

    /// A cancelled batch still produces a *conservative partial report*:
    /// every unit is analyzed (no failures), every dependence decision
    /// degrades to the sound `Unknown` verdict attributed to cancellation,
    /// and no independence is claimed anywhere. This is what the corpus
    /// binary's ctrl-C handler relies on — it only trips the token.
    #[test]
    fn cancelled_batch_degrades_conservatively() {
        let cancel = delin_dep::budget::CancelToken::new();
        cancel.cancel(); // ctrl-C arrived before (or during) the batch
        let config = BatchConfig {
            workers: 2,
            budget: BudgetSpec { cancel: Some(cancel), ..BudgetSpec::nodes_only(1_000_000) },
            retry: RetryPolicy { max_retries: 1, escalation: 4 },
            ..BatchConfig::default()
        };
        let stats = BatchRunner::new(config).run(units());
        assert_eq!(stats.units.len(), 4);
        assert_eq!(stats.failed_units, 0);
        let totals = stats.totals.verdict_stats();
        // Escalated retries cannot out-budget a cancellation, so every
        // tested pair stays degraded-by-cancellation and conservative.
        assert_eq!(totals.degraded_pairs, totals.pairs_tested, "{totals:?}");
        assert_eq!(
            totals.degraded_by.get(&delin_dep::budget::DegradeReason::Cancelled).copied(),
            Some(totals.pairs_tested),
            "{totals:?}"
        );
        assert_eq!(totals.proven_independent, 0, "{totals:?}");
        let render = stats.render();
        assert!(render.contains("cancelled"), "degradation must be attributed:\n{render}");
    }

    /// An escalated retry turns a first-attempt degradation into a clean
    /// report: node budget 1 is too small for the classic unit, 4× retries
    /// reach... still too small, but a large escalation factor succeeds.
    #[test]
    fn degraded_attempts_retry_with_escalated_budget() {
        let config = BatchConfig {
            workers: 1,
            budget: BudgetSpec::nodes_only(1),
            retry: RetryPolicy { max_retries: 1, escalation: 1_000_000 },
            ..BatchConfig::default()
        };
        let stats = BatchRunner::new(config).run(vec![unit("u0-classic", 10, 5)]);
        let report = &stats.units[0];
        assert_eq!(report.outcome, UnitOutcome::Analyzed);
        assert_eq!(report.stats.degraded_pairs, 0, "{:?}", report.stats);
        assert!(report.stats.proven_independent >= 1);
        // And without the retry the degradation would have stuck:
        let stuck = BatchRunner::new(BatchConfig {
            workers: 1,
            budget: BudgetSpec::nodes_only(1),
            retry: RetryPolicy { max_retries: 0, escalation: 1 },
            ..BatchConfig::default()
        })
        .run(vec![unit("u0-classic", 10, 5)]);
        assert!(stuck.units[0].stats.degraded_pairs > 0);
    }

    /// With injected faults active, the batch still completes, every unit
    /// gets a report, and the render is byte-identical across worker
    /// counts: the fault set is a pure function of the seed, never of
    /// scheduling.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_faulted_batch_is_deterministic_across_workers() {
        // Pick a seed that actually faults at least one of our units.
        let seed = (0..500u64)
            .find(|&s| {
                let plan = ChaosPlan::new(s);
                units().iter().any(|u| plan.unit_fault(&u.name, 0).is_some())
            })
            .expect("some seed in 0..500 must fault a unit");
        let run = |workers: usize| {
            BatchRunner::new(BatchConfig {
                workers,
                chaos: Some(ChaosPlan::new(seed)),
                ..BatchConfig::default()
            })
            .run(units())
        };
        let base = run(1);
        assert_eq!(base.units.len(), 4, "every unit reports, faulted or not");
        for workers in [3, 0] {
            assert_eq!(run(workers).render(), base.render(), "workers={workers}");
        }
    }

    #[test]
    fn streaming_pulls_lazily() {
        // An iterator that counts how far it was consumed; the runner must
        // drain it completely without collecting it up front.
        let produced = std::sync::atomic::AtomicUsize::new(0);
        let it = (0..6i128).map(|k| {
            produced.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            unit(&format!("s{k}"), 10 + k, 3)
        });
        let stats = BatchRunner::new(BatchConfig { workers: 2, ..BatchConfig::default() }).run(it);
        assert_eq!(stats.units.len(), 6);
        assert_eq!(produced.load(std::sync::atomic::Ordering::SeqCst), 6);
    }
}
