//! Dependence-graph construction for the vectorizer.
//!
//! For every pair of references to the same array (with at least one
//! write), a Section 2 dependence problem is built over the union of both
//! statements' normalized loop variables, tested — delinearization first —
//! and turned into direction-vector-labelled edges. Dependences whose
//! leftmost non-`=` direction is `>` flow backwards and are reversed;
//! loop-independent (all-`=`) dependences follow textual order. Edge kinds
//! (true/anti/output) are assigned *after* testing, as the paper notes.

use delin_core::DelinearizationTest;
use delin_dep::acyclic::AcyclicTest;
use delin_dep::banerjee::BanerjeeTest;
use delin_dep::dirvec::{summarize, Dir, DirVec};
use delin_dep::gcd::GcdTest;
use delin_dep::hierarchy;
use delin_dep::problem::DependenceProblem;
use delin_dep::residue::LoopResidueTest;
use delin_dep::siv::SivTest;
use delin_dep::svpc::SvpcTest;
use delin_dep::verdict::{DependenceTest, Verdict};
use delin_frontend::access::{AccessKind, AccessSite, Subscript};
use delin_frontend::ast::{Program, StmtId};
use delin_numeric::{Assumptions, SymPoly};
use std::collections::BTreeMap;

/// The classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (flow).
    True,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// One dependence edge of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement.
    pub src: StmtId,
    /// Sink statement.
    pub dst: StmtId,
    /// Kind (true/anti/output).
    pub kind: DepKind,
    /// The involved array (or scalar).
    pub array: String,
    /// Direction vectors over the common loops (summarized; all leading
    /// atoms are `<` or `=` after reversal).
    pub dir_vecs: Vec<DirVec>,
    /// Carrying level: 1-based index of the outermost loop that carries the
    /// dependence; `None` for loop-independent edges.
    pub level: Option<usize>,
    /// Which dependence test decided this pair.
    pub tested_by: &'static str,
}

/// Statistics from graph construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Reference pairs examined.
    pub pairs_tested: usize,
    /// Pairs proven independent.
    pub proven_independent: usize,
    /// Pairs proven independent, per deciding test.
    pub independent_by: BTreeMap<&'static str, usize>,
    /// Pairs that fell back to the conservative all-`*` answer.
    pub conservative_pairs: usize,
}

/// The dependence graph of a program.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Statements in source order.
    pub stmts: Vec<StmtId>,
    /// Edges.
    pub edges: Vec<DepEdge>,
    /// Construction statistics.
    pub stats: DepStats,
}

impl DepGraph {
    /// Edges out of a statement.
    pub fn successors(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.src == s)
    }

    /// `true` when some edge connects the pair in either direction.
    pub fn connected(&self, a: StmtId, b: StmtId) -> bool {
        self.edges
            .iter()
            .any(|e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
    }
}

/// Which dependence tests drive the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TestChoice {
    /// Delinearization first; classical battery on `Unknown` (the VIC
    /// configuration).
    #[default]
    DelinearizationFirst,
    /// Delinearization only.
    DelinearizationOnly,
    /// Classical battery only (the ablation baseline: GCD + Banerjee +
    /// exact single-index tests + SVPC + Acyclic + Loop Residue).
    BatteryOnly,
}

/// Builds the dependence graph of a program.
pub fn build_dependence_graph(
    program: &Program,
    assumptions: &Assumptions,
    choice: TestChoice,
) -> DepGraph {
    let sites = delin_frontend::access::collect_accesses(program, assumptions);
    let mut stmts: Vec<StmtId> = Vec::new();
    program.visit_assigns(&mut |a| stmts.push(a.id));
    let mut graph = DepGraph { stmts, ..DepGraph::default() };

    for i in 0..sites.len() {
        for j in 0..sites.len() {
            // Each unordered pair once; same-site pairs only for writes
            // (self output deps are subsumed by the W-W pair of the same
            // site, which `i == j` covers).
            if j < i {
                continue;
            }
            let a = &sites[i];
            let b = &sites[j];
            if a.array != b.array {
                continue;
            }
            if a.kind != AccessKind::Write && b.kind != AccessKind::Write {
                continue;
            }
            if i == j && a.kind != AccessKind::Write {
                continue;
            }
            graph.stats.pairs_tested += 1;
            analyze_pair(a, b, assumptions, choice, &mut graph);
        }
    }
    graph
}

/// Builds the dependence problem for a pair of sites: variables are the
/// source loops then the sink loops; one equation per array dimension
/// where both subscripts are affine.
pub fn pair_problem(a: &AccessSite, b: &AccessSite) -> DependenceProblem<SymPoly> {
    let mut builder = DependenceProblem::<SymPoly>::builder();
    let common = a.common_loops_with(b);
    let src_vars: Vec<usize> = a
        .loops
        .iter()
        .map(|l| builder.var(format!("{}1", l.var), l.upper.clone()))
        .collect();
    let snk_vars: Vec<usize> = b
        .loops
        .iter()
        .map(|l| builder.var(format!("{}2", l.var), l.upper.clone()))
        .collect();
    for k in 0..common {
        builder.common_pair(src_vars[k], snk_vars[k]);
    }
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        if let (Subscript::Affine(fa), Subscript::Affine(fb)) = (sa, sb) {
            let _ = builder.equation_from_subscripts(fa, &src_vars, fb, &snk_vars);
        }
    }
    builder.build()
}

/// Converts a symbolic problem to a concrete one when every quantity is a
/// known integer.
pub fn concretize(p: &DependenceProblem<SymPoly>) -> Option<DependenceProblem<i128>> {
    if !p.is_concrete() {
        return None;
    }
    let mut b = DependenceProblem::<i128>::builder();
    for v in p.vars() {
        b.var(v.name.clone(), v.upper.as_constant()?);
    }
    for eq in p.equations() {
        b.equation(
            eq.c0.as_constant()?,
            eq.coeffs.iter().map(|c| c.as_constant()).collect::<Option<Vec<_>>>()?,
        );
    }
    for (x, y) in p.common_loops() {
        b.common_pair(*x, *y);
    }
    Some(b.build())
}

/// Runs the configured tests; returns the verdict and the deciding test's
/// name.
fn decide(
    problem: &DependenceProblem<SymPoly>,
    assumptions: &Assumptions,
    choice: TestChoice,
) -> (Verdict, &'static str) {
    let mut sym = problem.clone();
    {
        // Install assumptions (the builder clears them on build()).
        let mut b = DependenceProblem::<SymPoly>::builder();
        for v in sym.vars() {
            b.var(v.name.clone(), v.upper.clone());
        }
        for eq in sym.equations() {
            b.equation(eq.c0.clone(), eq.coeffs.clone());
        }
        for (x, y) in sym.common_loops() {
            b.common_pair(*x, *y);
        }
        b.assumptions(assumptions.clone());
        sym = b.build();
    }
    let concrete = concretize(&sym);

    let delin = DelinearizationTest::default();
    let run_delin = |name: &'static str| -> (Verdict, &'static str) {
        match &concrete {
            Some(c) => (DependenceTest::<i128>::test(&delin, c), name),
            None => (DependenceTest::<SymPoly>::test(&delin, &sym), name),
        }
    };
    let run_battery = || -> (Verdict, &'static str) {
        if let Some(c) = &concrete {
            let tests: Vec<(&'static str, Verdict)> = vec![
                ("gcd", GcdTest.test(c)),
                ("siv", SivTest.test(c)),
                ("svpc", SvpcTest.test(c)),
                ("acyclic", AcyclicTest.test(c)),
                ("loop-residue", LoopResidueTest.test(c)),
                ("banerjee", BanerjeeTest.test(c)),
            ];
            for (name, v) in &tests {
                if v.is_independent() {
                    return (Verdict::Independent, name);
                }
            }
            // Direction vectors through the Banerjee hierarchy in the
            // classical mode: exact on single-index equations, real-valued
            // (the paper's reading) on coupled multi-index equations.
            let oracle = hierarchy::banerjee_oracle_classical();
            let dirs = hierarchy::direction_vectors(c, &oracle);
            if dirs.is_empty() {
                return (Verdict::Independent, "banerjee");
            }
            (Verdict::dependent_with_dirs(dirs), "banerjee")
        } else {
            let v = GcdTest.test(&sym);
            if v.is_independent() {
                return (Verdict::Independent, "gcd");
            }
            let oracle = hierarchy::banerjee_oracle_classical();
            let dirs = hierarchy::direction_vectors(&sym, &oracle);
            if dirs.is_empty() {
                return (Verdict::Independent, "banerjee");
            }
            (Verdict::dependent_with_dirs(dirs), "banerjee")
        }
    };

    match choice {
        TestChoice::DelinearizationOnly => run_delin("delinearization"),
        TestChoice::BatteryOnly => run_battery(),
        TestChoice::DelinearizationFirst => {
            let (v, name) = run_delin("delinearization");
            if v.is_unknown() {
                run_battery()
            } else {
                (v, name)
            }
        }
    }
}

fn analyze_pair(
    a: &AccessSite,
    b: &AccessSite,
    assumptions: &Assumptions,
    choice: TestChoice,
    graph: &mut DepGraph,
) {
    let problem = pair_problem(a, b);
    let common = a.common_loops_with(b);
    let (verdict, tested_by) = decide(&problem, assumptions, choice);
    match verdict {
        Verdict::Independent => {
            graph.stats.proven_independent += 1;
            *graph.stats.independent_by.entry(tested_by).or_insert(0) += 1;
        }
        Verdict::Dependent { info, .. } => {
            let dirs = if info.dir_vecs.is_empty() {
                vec![DirVec::any(common)]
            } else {
                info.dir_vecs
            };
            emit_edges(a, b, &dirs, tested_by, graph);
        }
        Verdict::Unknown => {
            graph.stats.conservative_pairs += 1;
            emit_edges(a, b, &[DirVec::any(common)], "conservative", graph);
        }
    }
}

/// Splits direction vectors into atomic forward/backward/loop-independent
/// classes and emits oriented, classified edges.
fn emit_edges(
    a: &AccessSite,
    b: &AccessSite,
    dirs: &[DirVec],
    tested_by: &'static str,
    graph: &mut DepGraph,
) {
    let mut forward: Vec<DirVec> = Vec::new(); // a -> b
    let mut backward: Vec<DirVec> = Vec::new(); // b -> a (reversed vectors)
    let mut loop_independent = false;
    for dv in dirs {
        for atom in dv.atomic_decompositions() {
            if atom.0.iter().all(|d| *d == Dir::Eq) {
                loop_independent = true;
            } else if atom.is_backward() {
                backward.push(atom.reverse());
            } else {
                forward.push(atom);
            }
        }
    }
    forward.sort();
    forward.dedup();
    backward.sort();
    backward.dedup();

    let mut push = |src: &AccessSite, dst: &AccessSite, dirs: Vec<DirVec>, level: Option<usize>| {
        if src.stmt == dst.stmt && level.is_none() {
            return; // intra-statement, same iteration: not a dependence edge
        }
        let kind = match (src.kind, dst.kind) {
            (AccessKind::Write, AccessKind::Read) => DepKind::True,
            (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
            (AccessKind::Write, AccessKind::Write) => DepKind::Output,
            (AccessKind::Read, AccessKind::Read) => return,
        };
        graph.edges.push(DepEdge {
            src: src.stmt,
            dst: dst.stmt,
            kind,
            array: src.array.clone(),
            dir_vecs: summarize(dirs),
            level,
            tested_by,
        });
    };

    // Carried dependences, grouped by carrying level.
    for (vectors, (src, dst)) in [(forward, (a, b)), (backward, (b, a))] {
        let mut by_level: BTreeMap<usize, Vec<DirVec>> = BTreeMap::new();
        for v in vectors {
            let level = v.0.iter().position(|d| *d == Dir::Lt).map(|p| p + 1);
            if let Some(l) = level {
                by_level.entry(l).or_default().push(v);
            }
        }
        for (level, vs) in by_level {
            push(src, dst, vs, Some(level));
        }
    }
    // Loop-independent dependence follows textual order.
    if loop_independent {
        let eq = vec![DirVec(vec![Dir::Eq; a.common_loops_with(b)])];
        if a.stmt <= b.stmt {
            push(a, b, eq, None);
        } else {
            push(b, a, eq, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_frontend::parse_program;

    fn graph(src: &str) -> DepGraph {
        let p = parse_program(src).unwrap();
        build_dependence_graph(&p, &Assumptions::new(), TestChoice::DelinearizationFirst)
    }

    #[test]
    fn intro_dependent_loop() {
        // D(i+1) = D(i): true dependence carried by the loop, distance 1.
        let g = graph(
            "
            REAL D(0:9)
            DO 1 i = 0, 8
        1   D(i + 1) = D(i)
            END
        ",
        );
        assert_eq!(g.stats.pairs_tested, 2); // W-W and W-R
        let true_edges: Vec<_> =
            g.edges.iter().filter(|e| e.kind == DepKind::True).collect();
        assert_eq!(true_edges.len(), 1);
        assert_eq!(true_edges[0].level, Some(1));
        assert_eq!(true_edges[0].dir_vecs, vec![DirVec(vec![Dir::Lt])]);
        // The W-W pair (same site with itself) is independent:
        // i1 + 1 = i2 + 1 with i1 != i2 impossible... actually i1 = i2 is
        // the only solution: loop-independent self-output-dep is dropped.
        assert!(g
            .edges
            .iter()
            .all(|e| !(e.kind == DepKind::Output && e.src == e.dst)));
    }

    #[test]
    fn intro_independent_loop() {
        // D(i) = D(i+5) over i in [0,4]: no dependence at all.
        let g = graph(
            "
            REAL D(0:9)
            DO 1 i = 0, 4
        1   D(i) = D(i + 5)
            END
        ",
        );
        let array_edges: Vec<_> = g.edges.iter().filter(|e| e.array == "D").collect();
        assert!(array_edges.iter().all(|e| e.kind == DepKind::Output), "{array_edges:?}");
        assert!(g.stats.proven_independent >= 1);
    }

    #[test]
    fn motivating_example_needs_delinearization() {
        let src = "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ";
        let p = parse_program(src).unwrap();
        // With delinearization: the W-R pair is proven independent.
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::DelinearizationFirst);
        assert!(g.edges.iter().all(|e| e.kind != DepKind::True), "{:?}", g.edges);
        assert_eq!(g.stats.independent_by.get("delinearization"), Some(&1));
        // Battery only: the pair cannot be disproven; a true or anti edge
        // appears.
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::BatteryOnly);
        assert!(g.edges.iter().any(|e| e.kind != DepKind::Output));
    }

    #[test]
    fn backward_vectors_are_reversed() {
        // A(i) = A(i+1): the write at i touches what iteration i-1 read;
        // raw direction is '>', so the edge is an anti dependence read->write
        // with '<'.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i) = A(i + 1)
            END
        ",
        );
        let anti: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::Anti).collect();
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0].dir_vecs, vec![DirVec(vec![Dir::Lt])]);
        assert_eq!(anti[0].level, Some(1));
        assert!(g.edges.iter().all(|e| e.kind != DepKind::True));
    }

    #[test]
    fn loop_independent_ordering() {
        // S1 writes A(i); S2 reads A(i): loop-independent true dep S1->S2.
        let g = graph(
            "
            REAL A(0:9), B(0:9)
            DO 1 i = 0, 9
              A(i) = 1
        1   B(i) = A(i)
            END
        ",
        );
        let t: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::True).collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].level, None);
        assert!(t[0].src < t[0].dst);
    }

    #[test]
    fn scalar_dependences() {
        // Q accumulates: true, anti, and output deps on Q.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 9
        1   Q = Q + A(i)
            END
        ",
        );
        let kinds: Vec<DepKind> = g
            .edges
            .iter()
            .filter(|e| e.array == "Q")
            .map(|e| e.kind)
            .collect();
        assert!(kinds.contains(&DepKind::True));
        assert!(kinds.contains(&DepKind::Output));
    }

    #[test]
    fn symbolic_bounds_analyzed() {
        // Independent even with symbolic N (needs N >= 1 to know bounds
        // behave; without assumptions the conservative answer is kept).
        let src = "
            REAL A(0:N + N)
            DO 1 i = 0, N - 1
        1   A(i) = A(i + N)
            END
        ";
        let p = parse_program(src).unwrap();
        let mut assume = Assumptions::new();
        assume.set_lower_bound("N", 1);
        let g = build_dependence_graph(&p, &assume, TestChoice::DelinearizationFirst);
        // A(i1) = A(i2 + N) requires i1 - i2 = N with i's in [0, N-1]:
        // Banerjee range [-(N-1) - N, (N-1) - N] = [.., -1] < 0: independent.
        assert!(g.edges.iter().all(|e| e.kind == DepKind::Output), "{:?}", g.edges);
    }

    #[test]
    fn opaque_subscripts_are_conservative() {
        // Fully opaque subscripts: no equations at all, so every direction
        // survives and carried edges appear in both orientations.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 9
        1   A(IFUN(i)) = A(IFUN(i + 1)) + 1
            END
        ",
        );
        assert!(g.edges.iter().any(|e| e.level == Some(1)), "{:?}", g.edges);
        // A second dimension with an affine subscript restores precision:
        // A(IFUN(i), i) can only collide within an iteration.
        let g = graph(
            "
            REAL A(0:9, 0:9)
            DO 1 i = 0, 9
        1   A(IFUN(i), i) = A(IFUN(i + 1), i) + 1
            END
        ",
        );
        assert!(g.edges.iter().all(|e| e.level.is_none()), "{:?}", g.edges);
    }

    #[test]
    fn graph_helpers() {
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i + 1) = A(i)
            END
        ",
        );
        let s = g.stmts[0];
        assert!(g.connected(s, s) || !g.edges.is_empty());
        assert!(g.successors(s).count() >= 1);
    }
}
