//! Dependence-graph construction for the vectorizer.
//!
//! For every pair of references to the same array (with at least one
//! write), a Section 2 dependence problem is built over the union of both
//! statements' normalized loop variables, tested — delinearization first —
//! and turned into direction-vector-labelled edges. Dependences whose
//! leftmost non-`=` direction is `>` flow backwards and are reversed;
//! loop-independent (all-`=`) dependences follow textual order. Edge kinds
//! (true/anti/output) are assigned *after* testing, as the paper notes.
//!
//! The pair-testing loop is the scalability bottleneck of the whole
//! pipeline, so [`build_dependence_graph_with`] shards the reference-pair
//! worklist across scoped worker threads ([`EngineConfig::workers`]) and
//! memoizes verdicts of canonicalized problems ([`crate::cache`]). Results
//! are folded back into the graph in source-pair order, so the emitted
//! edges are identical for any worker count; `workers = 1` runs the exact
//! serial code path.

use crate::cache::{CacheLookup, CachedOutcome, KeyMode, VerdictCache};
use crate::chaos::{ChaosCtx, FaultKind};
use delin_core::DelinearizationTest;
use delin_dep::acyclic::AcyclicTest;
use delin_dep::banerjee::BanerjeeTest;
use delin_dep::budget::{BudgetSpec, DegradeReason, ResourceBudget};
use delin_dep::dirvec::{summarize, Dir, DirVec};
use delin_dep::exact::{arena_from_env, SubtreeStore};
use delin_dep::gcd::GcdTest;
use delin_dep::hierarchy;
use delin_dep::problem::{DependenceProblem, ProblemArena, ProblemBuilder};
use delin_dep::residue::LoopResidueTest;
use delin_dep::siv::SivTest;
use delin_dep::svpc::SvpcTest;
use delin_dep::verdict::{DependenceTest, Verdict};
use delin_frontend::access::{AccessKind, AccessSite, Subscript};
use delin_frontend::ast::{Program, StmtId};
use delin_numeric::{Assumptions, SymPoly};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// The classification of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (flow).
    True,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

/// One dependence edge of the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement.
    pub src: StmtId,
    /// Sink statement.
    pub dst: StmtId,
    /// Kind (true/anti/output).
    pub kind: DepKind,
    /// The involved array (or scalar).
    pub array: String,
    /// Direction vectors over the common loops (summarized; all leading
    /// atoms are `<` or `=` after reversal).
    pub dir_vecs: Vec<DirVec>,
    /// Carrying level: 1-based index of the outermost loop that carries the
    /// dependence; `None` for loop-independent edges.
    pub level: Option<usize>,
    /// Which dependence test decided this pair.
    pub tested_by: &'static str,
}

/// Statistics from graph construction.
///
/// Every field except the wall-clock timings is deterministic for a given
/// program/configuration, independent of the worker count — see
/// [`DepStats::verdict_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Reference pairs examined.
    pub pairs_tested: usize,
    /// Pairs proven independent.
    pub proven_independent: usize,
    /// Pairs proven independent, per deciding test.
    pub independent_by: BTreeMap<&'static str, usize>,
    /// Pairs that fell back to the conservative all-`*` answer.
    pub conservative_pairs: usize,
    /// Pairs decided by each test (any verdict), cache hits included.
    pub decided_by: BTreeMap<&'static str, usize>,
    /// Test invocations charged to this run, per technique. With caching
    /// enabled each distinct canonical problem is charged exactly once, at
    /// its *first reference in source-pair order* — not at whichever pair's
    /// worker happened to compute it — so the counts are deterministic for
    /// any worker count, and a run against a shared cross-unit cache
    /// reports the same numbers as a run with a private cache (the shared
    /// cache changes who *executes*, never what a unit is charged).
    pub attempts_by: BTreeMap<&'static str, usize>,
    /// Pairs whose canonical problem was already charged to this run (see
    /// [`DepStats::attempts_by`] for the attribution rule).
    pub cache_hits: usize,
    /// Pairs charged as this run's first reference of their canonical
    /// problem.
    pub cache_misses: usize,
    /// Exact-solver search nodes charged across all decisions (same
    /// attribution rule as [`DepStats::attempts_by`]).
    pub solver_nodes: u64,
    /// Direction-refinement queries issued against the incremental
    /// solve-tree store (same attribution rule as
    /// [`DepStats::attempts_by`]: each canonical problem charged once, at
    /// its first reference in source-pair order).
    pub refine_queries: u64,
    /// Refinement queries answered by replaying a memoized subtree instead
    /// of re-enumerating. Zero when incremental solving is disabled.
    pub subtree_reuses: u64,
    /// Exact-solver nodes the subtree replays avoided re-spending (the
    /// incremental win; compare against [`DepStats::solver_nodes`]).
    pub nodes_saved: u64,
    /// Entries evicted from the verdict cache while this run executed, to
    /// respect [`DepStats::cache_capacity`]. Deterministic for a serial run
    /// with a fixed arrival order; under concurrent workers (or a cache
    /// shared with concurrently-running units) the victim choice depends on
    /// scheduling. Deliberately **excluded** from [`VerdictStats`] and every
    /// determinism-checked report — eviction never changes verdicts or
    /// attribution, only who re-computes. `0` with an unbounded cache.
    pub cache_evictions: u64,
    /// The verdict-cache entry capacity in force (`0` = unbounded; see
    /// `DELIN_CACHE_CAP`).
    pub cache_capacity: usize,
    /// Pairs whose verdict was reached under an exhausted resource budget
    /// and therefore degraded to a conservative answer. Deterministic for
    /// node-limit budgets; deadline and cancellation trips depend on wall
    /// clock by nature.
    pub degraded_pairs: usize,
    /// Degraded pairs broken down by the budget axis that tripped.
    pub degraded_by: BTreeMap<DegradeReason, usize>,
    /// Total wall-clock nanoseconds spent testing pairs. Not deterministic.
    pub test_nanos: u128,
    /// Wall-clock nanoseconds per deciding test. Not deterministic.
    pub nanos_by: BTreeMap<&'static str, u128>,
}

/// The scheduling-independent subset of [`DepStats`]: equal between serial
/// and parallel runs of the same configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerdictStats {
    /// Reference pairs examined.
    pub pairs_tested: usize,
    /// Pairs proven independent.
    pub proven_independent: usize,
    /// Pairs proven independent, per deciding test.
    pub independent_by: BTreeMap<&'static str, usize>,
    /// Pairs that fell back to the conservative all-`*` answer.
    pub conservative_pairs: usize,
    /// Pairs decided by each test.
    pub decided_by: BTreeMap<&'static str, usize>,
    /// Executed test invocations per technique.
    pub attempts_by: BTreeMap<&'static str, usize>,
    /// Pairs answered from the verdict cache.
    pub cache_hits: usize,
    /// Pairs that had to be solved.
    pub cache_misses: usize,
    /// Exact-solver search nodes spent across all decisions.
    pub solver_nodes: u64,
    /// Direction-refinement queries issued.
    pub refine_queries: u64,
    /// Refinement queries answered from a memoized subtree.
    pub subtree_reuses: u64,
    /// Exact-solver nodes the subtree replays avoided.
    pub nodes_saved: u64,
    /// Pairs degraded by budget exhaustion.
    pub degraded_pairs: usize,
    /// Degraded pairs per tripped budget axis.
    pub degraded_by: BTreeMap<DegradeReason, usize>,
}

impl DepStats {
    /// Everything except wall-clock timings.
    ///
    /// Each distinct canonical problem is computed exactly once even under
    /// parallel construction (racing workers block on the same cache cell),
    /// so hit/miss counts, executed attempts, and solver node totals are
    /// all deterministic — only the `nanos` fields vary run to run.
    pub fn verdict_stats(&self) -> VerdictStats {
        VerdictStats {
            pairs_tested: self.pairs_tested,
            proven_independent: self.proven_independent,
            independent_by: self.independent_by.clone(),
            conservative_pairs: self.conservative_pairs,
            decided_by: self.decided_by.clone(),
            attempts_by: self.attempts_by.clone(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            solver_nodes: self.solver_nodes,
            refine_queries: self.refine_queries,
            subtree_reuses: self.subtree_reuses,
            nodes_saved: self.nodes_saved,
            degraded_pairs: self.degraded_pairs,
            degraded_by: self.degraded_by.clone(),
        }
    }

    /// A compact multi-line human-readable summary, used by the bench
    /// binaries.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pairs: {} tested, {} independent, {} conservative",
            self.pairs_tested, self.proven_independent, self.conservative_pairs
        );
        let _ = writeln!(
            out,
            "cache: {} hits / {} misses, solver nodes: {}, test time: {:.3} ms",
            self.cache_hits,
            self.cache_misses,
            self.solver_nodes,
            self.test_nanos as f64 / 1.0e6
        );
        // Only rendered when the incremental solver actually refined, so
        // battery-only (and incremental-off, reuse-free) runs keep the
        // historical summary shape.
        if self.refine_queries > 0 {
            let _ = writeln!(
                out,
                "refines: {} queries, {} subtree reuses, {} nodes saved",
                self.refine_queries, self.subtree_reuses, self.nodes_saved
            );
        }
        // Only rendered when a bounded cache actually evicted, keeping the
        // historical summary shape for unbounded runs.
        if self.cache_evictions > 0 {
            let _ = writeln!(
                out,
                "evictions: {} (capacity {})",
                self.cache_evictions, self.cache_capacity
            );
        }
        // Only rendered when something actually degraded, so budget-clean
        // runs keep the historical byte-identical summary.
        if self.degraded_pairs > 0 {
            let by: Vec<String> =
                self.degraded_by.iter().map(|(reason, n)| format!("{reason}={n}")).collect();
            let _ = writeln!(out, "degraded: {} pairs ({})", self.degraded_pairs, by.join(", "));
        }
        let names: std::collections::BTreeSet<&'static str> =
            self.decided_by.keys().chain(self.attempts_by.keys()).copied().collect();
        let mut by_test: Vec<String> = Vec::new();
        for name in names {
            let decided = self.decided_by.get(name).copied().unwrap_or(0);
            let attempts = self.attempts_by.get(name).copied().unwrap_or(0);
            let nanos = self.nanos_by.get(name).copied().unwrap_or(0);
            by_test.push(format!(
                "{name}: {decided} decided, {attempts} ran, {:.3} ms",
                nanos as f64 / 1.0e6
            ));
        }
        let _ = writeln!(out, "per-test: {}", by_test.join("; "));
        out
    }

    /// Accumulates another run's statistics into this one. The bench
    /// binaries use this to aggregate over a whole corpus.
    pub fn merge(&mut self, other: &DepStats) {
        self.pairs_tested += other.pairs_tested;
        self.proven_independent += other.proven_independent;
        self.conservative_pairs += other.conservative_pairs;
        for (name, n) in &other.independent_by {
            *self.independent_by.entry(name).or_insert(0) += n;
        }
        for (name, n) in &other.decided_by {
            *self.decided_by.entry(name).or_insert(0) += n;
        }
        for (name, n) in &other.attempts_by {
            *self.attempts_by.entry(name).or_insert(0) += n;
        }
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_capacity = self.cache_capacity.max(other.cache_capacity);
        self.solver_nodes += other.solver_nodes;
        self.refine_queries += other.refine_queries;
        self.subtree_reuses += other.subtree_reuses;
        self.nodes_saved += other.nodes_saved;
        self.degraded_pairs += other.degraded_pairs;
        for (reason, n) in &other.degraded_by {
            *self.degraded_by.entry(*reason).or_insert(0) += n;
        }
        self.test_nanos += other.test_nanos;
        for (name, n) in &other.nanos_by {
            *self.nanos_by.entry(name).or_insert(0) += n;
        }
    }

    /// Folds one pair's outcome in, attributing cached work to the first
    /// reference of each canonical problem in fold (source-pair) order.
    /// `seen_keys` is the per-run set of already-charged key fingerprints.
    fn absorb(&mut self, pair: &PairOutcome, seen_keys: &mut HashSet<u64>) {
        let outcome = &*pair.outcome;
        self.pairs_tested += 1;
        *self.decided_by.entry(outcome.tested_by).or_insert(0) += 1;
        let charged = match pair.key_fp {
            Some(fp) => {
                let first = seen_keys.insert(fp);
                if first {
                    self.cache_misses += 1;
                } else {
                    self.cache_hits += 1;
                }
                first
            }
            // Cache disabled: every pair executed its own decision.
            None => true,
        };
        if charged {
            for name in &outcome.attempts {
                *self.attempts_by.entry(name).or_insert(0) += 1;
            }
            self.solver_nodes += outcome.solver_nodes;
            // The reuse counters ride the same single-charge rule: a pair
            // that hits the verdict cache contributes *nothing* here even
            // though the entry it reused also reused subtrees — otherwise a
            // refinement could be double-counted (once as a cache hit, once
            // as a subtree reuse). See `cache_hits_charge_reuse_counters_once`.
            self.refine_queries += outcome.refine_queries;
            self.subtree_reuses += outcome.subtree_reuses;
            self.nodes_saved += outcome.nodes_saved;
        }
        if let Some(reason) = outcome.degraded {
            self.degraded_pairs += 1;
            *self.degraded_by.entry(reason).or_insert(0) += 1;
        }
        self.test_nanos += pair.nanos;
        *self.nanos_by.entry(outcome.tested_by).or_insert(0) += pair.nanos;
    }
}

/// The dependence graph of a program.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Statements in source order.
    pub stmts: Vec<StmtId>,
    /// Edges.
    pub edges: Vec<DepEdge>,
    /// Construction statistics.
    pub stats: DepStats,
    /// Sorted fingerprints of the canonical problems charged to this run
    /// (empty when the verdict cache is disabled). The batch layer unions
    /// these across units to count corpus-wide distinct problems without
    /// consulting live cache state — which keeps the count deterministic
    /// even when some units fail or are retried.
    pub charged_keys: Vec<u64>,
}

impl DepGraph {
    /// Edges out of a statement.
    pub fn successors(&self, s: StmtId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.src == s)
    }

    /// `true` when some edge connects the pair in either direction.
    pub fn connected(&self, a: StmtId, b: StmtId) -> bool {
        self.edges.iter().any(|e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
    }
}

/// Which dependence tests drive the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TestChoice {
    /// Delinearization first; classical battery on `Unknown` (the VIC
    /// configuration).
    #[default]
    DelinearizationFirst,
    /// Delinearization only.
    DelinearizationOnly,
    /// Classical battery only (the ablation baseline: GCD + Banerjee +
    /// exact single-index tests + SVPC + Acyclic + Loop Residue).
    BatteryOnly,
}

/// Configuration of the dependence-graph engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Which dependence tests drive the analysis.
    pub choice: TestChoice,
    /// Worker threads for the pair worklist; `0` means one per available
    /// CPU. `1` runs the serial code path (bit-for-bit the pre-parallel
    /// behaviour); any other count produces identical edges and verdict
    /// stats because results are folded in source-pair order.
    pub workers: usize,
    /// Memoize verdicts of canonicalized problems (see [`crate::cache`]).
    pub cache: bool,
    /// Key representation for the verdict cache (see [`KeyMode`]): 128-bit
    /// structural fingerprints (the default hot path) or eagerly rendered
    /// canonical strings (the A/B baseline). Pure perf knob — hits, misses,
    /// verdicts and edges are identical either way. Defaults to
    /// [`KeyMode::from_env`] (`DELIN_KEYING`). Ignored when a shared cache
    /// is passed in (the cache carries its own mode).
    pub keying: KeyMode,
    /// Incremental exact solving: direction-refinement queries replay
    /// memoized solve subtrees (see [`delin_dep::exact::SubtreeStore`])
    /// instead of re-enumerating, and the verdict cache stores each
    /// problem's solver state alongside its verdict. Off reproduces the
    /// fresh-solve engine node for node — the A/B baseline; verdicts and
    /// edges are identical either way. Defaults to
    /// [`incremental_from_env`].
    pub incremental: bool,
    /// Entry capacity for the private verdict cache (`0` = unbounded; see
    /// [`crate::cache::cache_cap_from_env`] / `DELIN_CACHE_CAP`). Bounded
    /// caches evict least-recently-used entries; edges, verdicts and all
    /// determinism-checked statistics are identical under any capacity.
    /// Ignored when a shared cache is passed in (the cache carries its own
    /// capacity).
    pub cache_cap: usize,
    /// The arena miss path: decisions lease their working problems from a
    /// per-worker [`ProblemArena`] (capacity-reusing `clone_from` instead
    /// of builder rebuilds) and the exact solvers reuse per-worker DFS
    /// scratch. Off reproduces the allocate-per-step engine — the
    /// `DELIN_ARENA=0` A/B baseline; edges, verdicts, node counts and every
    /// determinism-checked statistic are identical either way. Defaults to
    /// [`arena_from_env`].
    pub arena: bool,
    /// Resource budget specification. Armed once per graph construction
    /// (the deadline covers the whole run); each pair then observes the
    /// armed limits through a fresh trip flag, so exhaustion degrades that
    /// pair to a conservative verdict without corrupting its neighbours.
    pub budget: BudgetSpec,
    /// Deterministic fault injection, threaded in by the batch layer.
    /// `None` (always, unless the `chaos` cargo feature is enabled *and* a
    /// seed was requested) runs the engine unfaulted.
    pub chaos: Option<ChaosCtx>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            choice: TestChoice::default(),
            workers: workers_from_env(),
            cache: true,
            keying: KeyMode::from_env(),
            incremental: incremental_from_env(),
            arena: arena_from_env(),
            cache_cap: crate::cache::cache_cap_from_env(),
            budget: BudgetSpec::default(),
            chaos: None,
        }
    }
}

/// The default worker count: the `DELIN_WORKERS` environment variable when
/// set to a number, else `0` (one worker per available CPU).
///
/// CI runs the whole test suite under `DELIN_WORKERS=1` and
/// `DELIN_WORKERS=4` so that any scheduling-dependence in code using
/// default configurations fails the determinism gate.
pub fn workers_from_env() -> usize {
    std::env::var("DELIN_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The default incremental-solving switch: on, unless the
/// `DELIN_INCREMENTAL` environment variable is set to `0`.
///
/// The bench binaries and CI use `DELIN_INCREMENTAL=0` as the A/B baseline:
/// it must produce byte-identical edges and verdicts, spending strictly
/// more solver nodes on any workload with reusable refinements.
pub fn incremental_from_env() -> bool {
    std::env::var("DELIN_INCREMENTAL").map(|v| v != "0").unwrap_or(true)
}

impl EngineConfig {
    /// The worker-thread count after resolving `0` to the machine's
    /// available parallelism and clamping by the worklist length.
    pub fn effective_workers(&self, worklist_len: usize) -> usize {
        let auto = || std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let requested = if self.workers == 0 { auto() } else { self.workers };
        requested.max(1).min(worklist_len.max(1))
    }
}

/// Builds the dependence graph of a program with the default engine
/// configuration (all cores, verdict cache enabled) and the given test
/// choice.
pub fn build_dependence_graph(
    program: &Program,
    assumptions: &Assumptions,
    choice: TestChoice,
) -> DepGraph {
    build_dependence_graph_with(
        program,
        assumptions,
        &EngineConfig { choice, ..EngineConfig::default() },
    )
}

/// The outcome of testing one reference pair, recorded off-thread and
/// folded into the graph in source-pair order.
///
/// Holds the cache's `Arc` directly: a cache hit costs one reference-count
/// bump, never a clone of the outcome payload (the per-entry `attempts`
/// vector in particular). Verdict, attempts and the incremental-solving
/// counters are pure functions of the cache key; the fold charges them to
/// the first reference of the key in source-pair order, never to later
/// hits.
struct PairOutcome {
    outcome: Arc<CachedOutcome>,
    /// Wall-clock spent by *this* pair (lookup included), not by whoever
    /// computed the entry.
    nanos: u128,
    /// Fingerprint of the canonical cache key; `None` when the cache is
    /// disabled (every pair then counts as its own first reference).
    key_fp: Option<u64>,
}

/// Builds the dependence graph of a program under an explicit engine
/// configuration, with a private verdict cache (when enabled).
pub fn build_dependence_graph_with(
    program: &Program,
    assumptions: &Assumptions,
    config: &EngineConfig,
) -> DepGraph {
    build_dependence_graph_in(program, assumptions, config, None)
}

/// Builds the dependence graph of a program under an explicit engine
/// configuration, optionally against a shared cross-unit verdict cache
/// (see [`crate::batch`]).
///
/// When `shared` is given it is used regardless of `config.cache`; lookups
/// key on this unit's `assumptions`, so units with conflicting assumption
/// environments can safely share one cache. The emitted edges and the
/// [`DepStats::verdict_stats`] subset are identical whether the cache is
/// private, shared, or shared-and-pre-populated by other units: verdicts
/// are pure functions of the cache key, and cached work is charged to the
/// first reference in source-pair order (not to whoever computed it).
pub fn build_dependence_graph_in(
    program: &Program,
    assumptions: &Assumptions,
    config: &EngineConfig,
    shared: Option<&VerdictCache>,
) -> DepGraph {
    let sites = delin_frontend::access::collect_accesses(program, assumptions);
    let mut stmts: Vec<StmtId> = Vec::new();
    program.visit_assigns(&mut |a| stmts.push(a.id));
    let mut graph = DepGraph { stmts, ..DepGraph::default() };

    // The worklist: every unordered pair of sites on the same array with at
    // least one write; same-site pairs only for writes (self output deps
    // are subsumed by the W-W pair of the same site, which `i == j`
    // covers).
    let mut worklist: Vec<(usize, usize)> = Vec::new();
    for i in 0..sites.len() {
        for j in i..sites.len() {
            let a = &sites[i];
            let b = &sites[j];
            if a.array != b.array {
                continue;
            }
            if a.kind != AccessKind::Write && b.kind != AccessKind::Write {
                continue;
            }
            if i == j && a.kind != AccessKind::Write {
                continue;
            }
            worklist.push((i, j));
        }
    }

    let private = (shared.is_none() && config.cache)
        .then(|| VerdictCache::shared_with_cap(config.keying, config.cache_cap));
    let cache = shared.or(private.as_ref());
    // Snapshot so a shared cache only charges this run the evictions that
    // happened during it (best-effort attribution under concurrency; exact
    // for private caches — and excluded from all determinism contracts).
    let evictions_before = cache.map_or(0, VerdictCache::evictions);
    let workers = config.effective_workers(worklist.len());
    // Arm once: the deadline clock covers the whole construction. Pairs
    // derive per-pair trip flags from this via `ResourceBudget::fresh`.
    let budget = config.budget.arm();
    let ctx = PairCtx {
        assumptions,
        choice: config.choice,
        cache,
        incremental: config.incremental,
        arena: config.arena,
        budget: &budget,
        chaos: config.chaos.as_ref(),
    };

    // Site-pair blocks: maximal runs of worklist entries sharing a source
    // site. The sharded path hands out whole blocks, so one worker tests a
    // block's pairs back to back — consecutive misses share subscript
    // structure, and the canonicalizer/fingerprint pass streams over one
    // block's similarly-shaped problems instead of ping-ponging between
    // unrelated sites. (The serial path already walks blocks in order.)
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut block_start = 0;
    for k in 1..=worklist.len() {
        if k == worklist.len() || worklist[k].0 != worklist[block_start].0 {
            blocks.push((block_start, k));
            block_start = k;
        }
    }

    let outcomes: Vec<PairOutcome> = if workers <= 1 {
        worklist.iter().map(|&(i, j)| test_pair(&sites[i], &sites[j], (i, j), &ctx)).collect()
    } else {
        run_sharded(&sites, &worklist, &blocks, &ctx, workers)
    };

    let mut seen_keys: HashSet<u64> = HashSet::new();
    for (&(i, j), outcome) in worklist.iter().zip(&outcomes) {
        graph.stats.absorb(outcome, &mut seen_keys);
        fold_outcome(&sites[i], &sites[j], outcome, &mut graph);
    }
    let mut charged: Vec<u64> = seen_keys.into_iter().collect();
    charged.sort_unstable();
    graph.charged_keys = charged;
    graph.stats.cache_capacity = cache.map_or(0, VerdictCache::capacity);
    graph.stats.cache_evictions =
        cache.map_or(0, VerdictCache::evictions).saturating_sub(evictions_before);
    graph
}

/// Everything a pair decision needs besides the pair itself; one borrow
/// bundle shared by the serial and sharded paths.
#[derive(Clone, Copy)]
struct PairCtx<'a> {
    assumptions: &'a Assumptions,
    choice: TestChoice,
    cache: Option<&'a VerdictCache>,
    incremental: bool,
    arena: bool,
    /// The run-armed budget; pairs observe it via `fresh()`.
    budget: &'a ResourceBudget,
    chaos: Option<&'a ChaosCtx>,
}

/// Runs the worklist on `workers` scoped threads with work stealing: an
/// atomic cursor hands out site-pair *blocks* (runs of pairs sharing a
/// source site — see the block construction in
/// [`build_dependence_graph_in`]), each worker keeps `(index, outcome)`
/// locally, and the merged results are re-ordered by index so the fold is
/// independent of scheduling (block handout changes who computes, never
/// what is computed).
///
/// A panicking worker (a bug in a dependence test, or an injected chaos
/// fault) does not bring the process down here: every worker is joined
/// first — so no outcome is silently dropped and the scope never detaches
/// a thread — and then exactly one captured payload is re-raised with
/// [`std::panic::resume_unwind`]. The batch layer catches it at the unit
/// boundary and converts it into a per-unit failure.
fn run_sharded(
    sites: &[AccessSite],
    worklist: &[(usize, usize)],
    blocks: &[(usize, usize)],
    ctx: &PairCtx<'_>,
    workers: usize,
) -> Vec<PairOutcome> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<PairOutcome>> = Vec::with_capacity(worklist.len());
    slots.resize_with(worklist.len(), || None);

    let chunks: Vec<Vec<(usize, PairOutcome)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, PairOutcome)> = Vec::new();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= blocks.len() {
                            break;
                        }
                        let (start, end) = blocks[b];
                        for (off, &(i, j)) in worklist[start..end].iter().enumerate() {
                            let outcome = test_pair(&sites[i], &sites[j], (i, j), ctx);
                            local.push((start + off, outcome));
                        }
                    }
                    local
                })
            })
            .collect();
        let mut done: Vec<Vec<(usize, PairOutcome)>> = Vec::with_capacity(handles.len());
        let mut payload: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(local) => done.push(local),
                Err(p) => payload = Some(p),
            }
        }
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
        done
    });

    for (k, outcome) in chunks.into_iter().flatten() {
        slots[k] = Some(outcome);
    }
    // Every worklist index should have produced exactly one outcome. If a
    // slot is nevertheless empty (a worker ended without reporting — which
    // the join/re-raise above is designed to prevent), substitute the
    // conservative degraded outcome instead of crashing the engine: the
    // pair keeps every direction vector and is attributed to
    // [`DegradeReason::Lost`].
    slots.into_iter().map(|s| s.unwrap_or_else(lost_outcome)).collect()
}

/// The conservative stand-in for a pair whose outcome never arrived:
/// `Unknown` (all directions survive), charged as its own reference,
/// degraded by [`DegradeReason::Lost`] so reports attribute the gap.
fn lost_outcome() -> PairOutcome {
    PairOutcome {
        outcome: Arc::new(CachedOutcome {
            verdict: Verdict::Unknown,
            tested_by: "degraded",
            attempts: Vec::new(),
            solver_nodes: 0,
            refine_queries: 0,
            subtree_reuses: 0,
            nodes_saved: 0,
            solver_state: None,
            degraded: Some(DegradeReason::Lost),
        }),
        nanos: 0,
        key_fp: None,
    }
}

/// Tests one reference pair, through the verdict cache when enabled.
///
/// Chaos pair faults are applied *here*, outside the cache: a panic fault
/// unwinds before any lookup, and a budget fault bypasses the cache
/// entirely (computing under the exhausted budget, charging the pair as
/// its own reference) so injected degradation can never leak into — or be
/// masked by — memoized full-budget entries.
fn test_pair(
    a: &AccessSite,
    b: &AccessSite,
    pair: (usize, usize),
    ctx: &PairCtx<'_>,
) -> PairOutcome {
    let started = std::time::Instant::now();
    if let Some(chaos) = ctx.chaos {
        match chaos.pair_fault(pair.0, pair.1) {
            Some(FaultKind::Panic) => panic!("{}", crate::chaos::CHAOS_PANIC_MSG),
            Some(fault) => {
                let spec =
                    ChaosCtx::faulted_spec(fault, &BudgetSpec::nodes_only(ctx.budget.node_limit()));
                let problem = pair_problem(a, b);
                let computed = decide_counted(
                    &problem,
                    ctx.assumptions,
                    ctx.choice,
                    &spec.arm(),
                    ctx.incremental,
                    ctx.arena,
                );
                return PairOutcome {
                    outcome: Arc::new(computed),
                    nanos: started.elapsed().as_nanos(),
                    key_fp: None,
                };
            }
            None => {}
        }
    }
    let problem = if ctx.arena { pair_problem_pooled(a, b) } else { pair_problem(a, b) };
    let outcome = match ctx.cache {
        Some(cache) => {
            let CacheLookup { outcome, key_fp, .. } =
                cache.lookup(ctx.assumptions, &problem, |canonical| {
                    // The per-pair budget is armed inside the compute slot:
                    // only a miss spends solver effort, so a hit never pays
                    // for the tracker.
                    decide_counted(
                        canonical,
                        ctx.assumptions,
                        ctx.choice,
                        &ctx.budget.fresh(),
                        ctx.incremental,
                        ctx.arena,
                    )
                });
            // A hit shares the cache entry's `Arc` — no payload clone.
            PairOutcome { outcome, nanos: 0, key_fp: Some(key_fp) }
        }
        None => {
            let computed = decide_counted(
                &problem,
                ctx.assumptions,
                ctx.choice,
                &ctx.budget.fresh(),
                ctx.incremental,
                ctx.arena,
            );
            PairOutcome { outcome: Arc::new(computed), nanos: 0, key_fp: None }
        }
    };
    if ctx.arena {
        recycle_pair_problem(problem);
    }
    PairOutcome { nanos: started.elapsed().as_nanos(), ..outcome }
}

/// Runs [`decide`] with exact-solver node and refinement accounting
/// around it.
///
/// When `incremental` is on the decision refines through a private
/// [`SubtreeStore`] created here — private, so the counters stay pure
/// functions of the canonical problem regardless of scheduling — and the
/// store is stowed in the returned outcome: the verdict cache memoizes it
/// alongside the verdict, which is how sibling refinements across a unit
/// (and across units sharing one cache) reach the same subtrees.
fn decide_counted(
    problem: &DependenceProblem<SymPoly>,
    assumptions: &Assumptions,
    choice: TestChoice,
    budget: &ResourceBudget,
    incremental: bool,
    arena: bool,
) -> CachedOutcome {
    let _ = delin_dep::exact::take_thread_nodes();
    delin_dep::exact::reset_thread_refine();
    let store = incremental.then(|| Arc::new(SubtreeStore::new()));
    let (verdict, tested_by, attempts) =
        decide(problem, assumptions, choice, budget, incremental, arena, store.as_ref());
    let refine = delin_dep::exact::take_thread_refine();
    CachedOutcome {
        verdict,
        tested_by,
        attempts,
        solver_nodes: delin_dep::exact::take_thread_nodes(),
        refine_queries: refine.refine_queries,
        subtree_reuses: refine.subtree_reuses,
        nodes_saved: refine.nodes_saved,
        solver_state: store,
        degraded: budget.tripped(),
    }
}

/// Builds the dependence problem for a pair of sites: variables are the
/// source loops then the sink loops; one equation per array dimension
/// where both subscripts are affine.
pub fn pair_problem(a: &AccessSite, b: &AccessSite) -> DependenceProblem<SymPoly> {
    let mut builder = DependenceProblem::<SymPoly>::builder();
    let common = a.common_loops_with(b);
    let src_vars: Vec<usize> =
        a.loops.iter().map(|l| builder.var(format!("{}1", l.var), l.upper.clone())).collect();
    let snk_vars: Vec<usize> =
        b.loops.iter().map(|l| builder.var(format!("{}2", l.var), l.upper.clone())).collect();
    for k in 0..common {
        builder.common_pair(src_vars[k], snk_vars[k]);
    }
    for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
        if let (Subscript::Affine(fa), Subscript::Affine(fb)) = (sa, sb) {
            let _ = builder.equation_from_subscripts(fa, &src_vars, fb, &snk_vars);
        }
    }
    builder.build()
}

/// The worker's recycled storage for per-pair problem construction (arena
/// path): a builder that overwrites retired slots in place plus the pool
/// of retired problems feeding it. Per thread, so no locking on the pair
/// hot path.
#[derive(Default)]
struct PairScratch {
    builder: ProblemBuilder<SymPoly>,
    free: Vec<DependenceProblem<SymPoly>>,
    src_vars: Vec<usize>,
    snk_vars: Vec<usize>,
}

/// Retired problems a worker keeps for pair construction; one is in
/// flight at a time, the rest cover shape churn across site-pair blocks.
const PAIR_SLABS: usize = 4;

thread_local! {
    static PAIR_SCRATCH: RefCell<PairScratch> = RefCell::new(PairScratch::default());
}

/// [`pair_problem`] through the worker's recycled storage: byte-identical
/// problems, but the builder overwrites the previous pair's vectors, rows
/// and name strings instead of allocating fresh ones. Falls back to the
/// allocating path if the scratch is unavailable (re-entrancy).
fn pair_problem_pooled(a: &AccessSite, b: &AccessSite) -> DependenceProblem<SymPoly> {
    PAIR_SCRATCH.with(|cell| {
        let Ok(mut scratch) = cell.try_borrow_mut() else {
            return pair_problem(a, b);
        };
        let s = &mut *scratch;
        if let Some(slab) = s.free.pop() {
            s.builder.recycle(slab);
        }
        let common = a.common_loops_with(b);
        s.src_vars.clear();
        s.snk_vars.clear();
        for l in &a.loops {
            s.src_vars.push(s.builder.var_suffixed(&l.var, '1', &l.upper));
        }
        for l in &b.loops {
            s.snk_vars.push(s.builder.var_suffixed(&l.var, '2', &l.upper));
        }
        for k in 0..common {
            s.builder.common_pair(s.src_vars[k], s.snk_vars[k]);
        }
        for (sa, sb) in a.subscripts.iter().zip(&b.subscripts) {
            if let (Subscript::Affine(fa), Subscript::Affine(fb)) = (sa, sb) {
                let _ = s.builder.equation_from_subscripts(fa, &s.src_vars, fb, &s.snk_vars);
            }
        }
        s.builder.build()
    })
}

/// Returns a pair problem's storage to the worker's pool once its verdict
/// is in, closing the recycle loop of [`pair_problem_pooled`].
fn recycle_pair_problem(problem: DependenceProblem<SymPoly>) {
    PAIR_SCRATCH.with(|cell| {
        if let Ok(mut s) = cell.try_borrow_mut() {
            if s.free.len() < PAIR_SLABS {
                s.free.push(problem);
            }
        }
    });
}

/// Converts a symbolic problem to a concrete one when every quantity is a
/// known integer.
pub fn concretize(p: &DependenceProblem<SymPoly>) -> Option<DependenceProblem<i128>> {
    if !p.is_concrete() {
        return None;
    }
    let mut b = DependenceProblem::<i128>::builder();
    for v in p.vars() {
        b.var(v.name.clone(), v.upper.as_constant()?);
    }
    for eq in p.equations() {
        b.equation(
            eq.c0.as_constant()?,
            eq.coeffs.iter().map(|c| c.as_constant()).collect::<Option<Vec<_>>>()?,
        );
    }
    for (x, y) in p.common_loops() {
        b.common_pair(*x, *y);
    }
    Some(b.build())
}

/// Runs the configured tests; returns the verdict, the deciding test's
/// name, and the names of the test invocations that executed.
///
/// Budget checks bracket every expensive phase: an exhausted budget at
/// entry, between the delinearization pass and the classical battery, or
/// before direction-vector refinement short-circuits to the conservative
/// `Unknown` with `tested_by = "degraded"`. Inside the delinearization
/// pass the same budget throttles the exact solver node by node.
fn decide(
    problem: &DependenceProblem<SymPoly>,
    assumptions: &Assumptions,
    choice: TestChoice,
    budget: &ResourceBudget,
    incremental: bool,
    arena: bool,
    store: Option<&Arc<SubtreeStore>>,
) -> (Verdict, &'static str, Vec<&'static str>) {
    if budget.exhausted().is_some() {
        return (Verdict::Unknown, "degraded", Vec::new());
    }
    // The decision works on a copy of the canonical problem with this
    // unit's assumptions installed. The arena path leases that copy from
    // the worker's recycled pool and installs the assumptions in place;
    // the legacy path reproduces the old engine — a clone followed by a
    // full rebuild through a fresh builder (the builder clears assumptions
    // on build(), hence the round trip).
    let sym = if arena {
        let mut sym = DECIDE_ARENA.with(|a| a.borrow_mut().lease_clone(problem));
        sym.set_assumptions(assumptions.clone());
        sym
    } else {
        let sym = problem.clone();
        let mut b = DependenceProblem::<SymPoly>::builder();
        for v in sym.vars() {
            b.var(v.name.clone(), v.upper.clone());
        }
        for eq in sym.equations() {
            b.equation(eq.c0.clone(), eq.coeffs.clone());
        }
        for (x, y) in sym.common_loops() {
            b.common_pair(*x, *y);
        }
        b.assumptions(assumptions.clone());
        b.build()
    };
    let concrete = concretize(&sym);

    let mut delin = DelinearizationTest::with_budget(budget.clone());
    delin.config.incremental = incremental;
    delin.config.arena = arena;
    delin.config.solve_store = store.map(Arc::clone);
    let delin = delin;
    let run_delin =
        |name: &'static str, attempts: &mut Vec<&'static str>| -> (Verdict, &'static str) {
            attempts.push(name);
            match &concrete {
                Some(c) => (DependenceTest::<i128>::test(&delin, c), name),
                None => (DependenceTest::<SymPoly>::test(&delin, &sym), name),
            }
        };
    let run_battery = |attempts: &mut Vec<&'static str>| -> (Verdict, &'static str) {
        if let Some(c) = &concrete {
            let tests: Vec<(&'static str, Verdict)> = vec![
                ("gcd", GcdTest.test(c)),
                ("siv", SivTest.test(c)),
                ("svpc", SvpcTest.test(c)),
                ("acyclic", AcyclicTest.test(c)),
                ("loop-residue", LoopResidueTest.test(c)),
                ("banerjee", BanerjeeTest.test(c)),
            ];
            for (name, _) in &tests {
                attempts.push(name);
            }
            for (name, v) in &tests {
                if v.is_independent() {
                    return (Verdict::Independent, name);
                }
            }
            if budget.exhausted().is_some() {
                return (Verdict::Unknown, "degraded");
            }
            // Direction vectors through the Banerjee hierarchy in the
            // classical mode: exact on single-index equations, real-valued
            // (the paper's reading) on coupled multi-index equations.
            attempts.push("dir-vectors");
            let oracle = hierarchy::banerjee_oracle_classical();
            let dirs = hierarchy::direction_vectors(c, &oracle);
            if dirs.is_empty() {
                return (Verdict::Independent, "banerjee");
            }
            (Verdict::dependent_with_dirs(dirs), "banerjee")
        } else {
            attempts.push("gcd");
            let v = GcdTest.test(&sym);
            if v.is_independent() {
                return (Verdict::Independent, "gcd");
            }
            if budget.exhausted().is_some() {
                return (Verdict::Unknown, "degraded");
            }
            attempts.push("dir-vectors");
            let oracle = hierarchy::banerjee_oracle_classical();
            let dirs = hierarchy::direction_vectors(&sym, &oracle);
            if dirs.is_empty() {
                return (Verdict::Independent, "banerjee");
            }
            (Verdict::dependent_with_dirs(dirs), "banerjee")
        }
    };

    let mut attempts: Vec<&'static str> = Vec::new();
    let (verdict, tested_by) = match choice {
        TestChoice::DelinearizationOnly => run_delin("delinearization", &mut attempts),
        TestChoice::BatteryOnly => run_battery(&mut attempts),
        TestChoice::DelinearizationFirst => {
            let (v, name) = run_delin("delinearization", &mut attempts);
            if v.is_unknown() {
                if budget.exhausted().is_some() {
                    (Verdict::Unknown, "degraded")
                } else {
                    run_battery(&mut attempts)
                }
            } else {
                (v, name)
            }
        }
    };
    if arena {
        DECIDE_ARENA.with(|a| a.borrow_mut().recycle(sym));
    }
    (verdict, tested_by, attempts)
}

thread_local! {
    /// The worker's recycled pool for [`decide`]'s working problems (arena
    /// path): each decision leases its assumption-installed copy of the
    /// canonical problem here and returns it on exit, so after warmup the
    /// install step reuses the previous decision's buffers.
    static DECIDE_ARENA: RefCell<ProblemArena<SymPoly>> = RefCell::new(ProblemArena::new());
}

/// Applies one pair's outcome to the graph: bumps verdict counters and
/// emits the classified edges. Called in source-pair order.
fn fold_outcome(a: &AccessSite, b: &AccessSite, pair: &PairOutcome, graph: &mut DepGraph) {
    let outcome = &*pair.outcome;
    let common = a.common_loops_with(b);
    match &outcome.verdict {
        Verdict::Independent => {
            graph.stats.proven_independent += 1;
            *graph.stats.independent_by.entry(outcome.tested_by).or_insert(0) += 1;
        }
        Verdict::Dependent { info, .. } => {
            let dirs = if info.dir_vecs.is_empty() {
                vec![DirVec::any(common)]
            } else {
                info.dir_vecs.clone()
            };
            emit_edges(a, b, &dirs, outcome.tested_by, graph);
        }
        Verdict::Unknown => {
            graph.stats.conservative_pairs += 1;
            emit_edges(a, b, &[DirVec::any(common)], "conservative", graph);
        }
    }
}

/// Splits direction vectors into atomic forward/backward/loop-independent
/// classes and emits oriented, classified edges.
fn emit_edges(
    a: &AccessSite,
    b: &AccessSite,
    dirs: &[DirVec],
    tested_by: &'static str,
    graph: &mut DepGraph,
) {
    let mut forward: Vec<DirVec> = Vec::new(); // a -> b
    let mut backward: Vec<DirVec> = Vec::new(); // b -> a (reversed vectors)
    let mut loop_independent = false;
    for dv in dirs {
        for atom in dv.atomic_decompositions() {
            if atom.0.iter().all(|d| *d == Dir::Eq) {
                loop_independent = true;
            } else if atom.is_backward() {
                backward.push(atom.reverse());
            } else {
                forward.push(atom);
            }
        }
    }
    forward.sort();
    forward.dedup();
    backward.sort();
    backward.dedup();

    let mut push = |src: &AccessSite, dst: &AccessSite, dirs: Vec<DirVec>, level: Option<usize>| {
        if src.stmt == dst.stmt && level.is_none() {
            return; // intra-statement, same iteration: not a dependence edge
        }
        let kind = match (src.kind, dst.kind) {
            (AccessKind::Write, AccessKind::Read) => DepKind::True,
            (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
            (AccessKind::Write, AccessKind::Write) => DepKind::Output,
            (AccessKind::Read, AccessKind::Read) => return,
        };
        graph.edges.push(DepEdge {
            src: src.stmt,
            dst: dst.stmt,
            kind,
            array: src.array.clone(),
            dir_vecs: summarize(dirs),
            level,
            tested_by,
        });
    };

    // Carried dependences, grouped by carrying level.
    for (vectors, (src, dst)) in [(forward, (a, b)), (backward, (b, a))] {
        let mut by_level: BTreeMap<usize, Vec<DirVec>> = BTreeMap::new();
        for v in vectors {
            let level = v.0.iter().position(|d| *d == Dir::Lt).map(|p| p + 1);
            if let Some(l) = level {
                by_level.entry(l).or_default().push(v);
            }
        }
        for (level, vs) in by_level {
            push(src, dst, vs, Some(level));
        }
    }
    // Loop-independent dependence follows textual order.
    if loop_independent {
        let eq = vec![DirVec(vec![Dir::Eq; a.common_loops_with(b)])];
        if a.stmt <= b.stmt {
            push(a, b, eq, None);
        } else {
            push(b, a, eq, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_frontend::parse_program;

    fn graph(src: &str) -> DepGraph {
        let p = parse_program(src).unwrap();
        build_dependence_graph(&p, &Assumptions::new(), TestChoice::DelinearizationFirst)
    }

    #[test]
    fn intro_dependent_loop() {
        // D(i+1) = D(i): true dependence carried by the loop, distance 1.
        let g = graph(
            "
            REAL D(0:9)
            DO 1 i = 0, 8
        1   D(i + 1) = D(i)
            END
        ",
        );
        assert_eq!(g.stats.pairs_tested, 2); // W-W and W-R
        let true_edges: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::True).collect();
        assert_eq!(true_edges.len(), 1);
        assert_eq!(true_edges[0].level, Some(1));
        assert_eq!(true_edges[0].dir_vecs, vec![DirVec(vec![Dir::Lt])]);
        // The W-W pair (same site with itself) is independent:
        // i1 + 1 = i2 + 1 with i1 != i2 impossible... actually i1 = i2 is
        // the only solution: loop-independent self-output-dep is dropped.
        assert!(g.edges.iter().all(|e| !(e.kind == DepKind::Output && e.src == e.dst)));
    }

    #[test]
    fn intro_independent_loop() {
        // D(i) = D(i+5) over i in [0,4]: no dependence at all.
        let g = graph(
            "
            REAL D(0:9)
            DO 1 i = 0, 4
        1   D(i) = D(i + 5)
            END
        ",
        );
        let array_edges: Vec<_> = g.edges.iter().filter(|e| e.array == "D").collect();
        assert!(array_edges.iter().all(|e| e.kind == DepKind::Output), "{array_edges:?}");
        assert!(g.stats.proven_independent >= 1);
    }

    #[test]
    fn motivating_example_needs_delinearization() {
        let src = "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ";
        let p = parse_program(src).unwrap();
        // With delinearization: the W-R pair is proven independent.
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::DelinearizationFirst);
        assert!(g.edges.iter().all(|e| e.kind != DepKind::True), "{:?}", g.edges);
        assert_eq!(g.stats.independent_by.get("delinearization"), Some(&1));
        // Battery only: the pair cannot be disproven; a true or anti edge
        // appears.
        let g = build_dependence_graph(&p, &Assumptions::new(), TestChoice::BatteryOnly);
        assert!(g.edges.iter().any(|e| e.kind != DepKind::Output));
    }

    #[test]
    fn backward_vectors_are_reversed() {
        // A(i) = A(i+1): the write at i touches what iteration i-1 read;
        // raw direction is '>', so the edge is an anti dependence read->write
        // with '<'.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i) = A(i + 1)
            END
        ",
        );
        let anti: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::Anti).collect();
        assert_eq!(anti.len(), 1);
        assert_eq!(anti[0].dir_vecs, vec![DirVec(vec![Dir::Lt])]);
        assert_eq!(anti[0].level, Some(1));
        assert!(g.edges.iter().all(|e| e.kind != DepKind::True));
    }

    #[test]
    fn loop_independent_ordering() {
        // S1 writes A(i); S2 reads A(i): loop-independent true dep S1->S2.
        let g = graph(
            "
            REAL A(0:9), B(0:9)
            DO 1 i = 0, 9
              A(i) = 1
        1   B(i) = A(i)
            END
        ",
        );
        let t: Vec<_> = g.edges.iter().filter(|e| e.kind == DepKind::True).collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].level, None);
        assert!(t[0].src < t[0].dst);
    }

    #[test]
    fn scalar_dependences() {
        // Q accumulates: true, anti, and output deps on Q.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 9
        1   Q = Q + A(i)
            END
        ",
        );
        let kinds: Vec<DepKind> =
            g.edges.iter().filter(|e| e.array == "Q").map(|e| e.kind).collect();
        assert!(kinds.contains(&DepKind::True));
        assert!(kinds.contains(&DepKind::Output));
    }

    #[test]
    fn symbolic_bounds_analyzed() {
        // Independent even with symbolic N (needs N >= 1 to know bounds
        // behave; without assumptions the conservative answer is kept).
        let src = "
            REAL A(0:N + N)
            DO 1 i = 0, N - 1
        1   A(i) = A(i + N)
            END
        ";
        let p = parse_program(src).unwrap();
        let mut assume = Assumptions::new();
        assume.set_lower_bound("N", 1);
        let g = build_dependence_graph(&p, &assume, TestChoice::DelinearizationFirst);
        // A(i1) = A(i2 + N) requires i1 - i2 = N with i's in [0, N-1]:
        // Banerjee range [-(N-1) - N, (N-1) - N] = [.., -1] < 0: independent.
        assert!(g.edges.iter().all(|e| e.kind == DepKind::Output), "{:?}", g.edges);
    }

    #[test]
    fn opaque_subscripts_are_conservative() {
        // Fully opaque subscripts: no equations at all, so every direction
        // survives and carried edges appear in both orientations.
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 9
        1   A(IFUN(i)) = A(IFUN(i + 1)) + 1
            END
        ",
        );
        assert!(g.edges.iter().any(|e| e.level == Some(1)), "{:?}", g.edges);
        // A second dimension with an affine subscript restores precision:
        // A(IFUN(i), i) can only collide within an iteration.
        let g = graph(
            "
            REAL A(0:9, 0:9)
            DO 1 i = 0, 9
        1   A(IFUN(i), i) = A(IFUN(i + 1), i) + 1
            END
        ",
        );
        assert!(g.edges.iter().all(|e| e.level.is_none()), "{:?}", g.edges);
    }

    /// A zero-node budget starves the exact solver, so the motivating
    /// example's delinearization proof is out of reach — the pair must
    /// degrade to a conservative answer (counted per tripped axis), never
    /// to a bogus independence claim.
    #[test]
    fn zero_node_budget_degrades_but_stays_sound() {
        let src = "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ";
        let p = parse_program(src).unwrap();
        let config = EngineConfig {
            workers: 1,
            budget: BudgetSpec::nodes_only(0),
            ..EngineConfig::default()
        };
        let g = build_dependence_graph_with(&p, &Assumptions::new(), &config);
        assert!(g.stats.degraded_pairs > 0, "{:?}", g.stats);
        assert!(g.stats.degraded_by.contains_key(&DegradeReason::Nodes), "{:?}", g.stats);
        // Independence may still be proven by solver-free interval
        // reasoning (that proof is sound under any budget) — only the
        // starved solver's own answers degrade, and those surface as
        // degraded pairs above, never as extra independence.
        let rendered = g.stats.render_summary();
        assert!(rendered.contains("degraded:"), "{rendered}");
    }

    /// An already-expired deadline short-circuits every decision at entry:
    /// all pairs degrade, all edges are the conservative all-`*` answer,
    /// and the outcome is identical for any worker count.
    #[test]
    fn expired_deadline_degrades_every_pair() {
        let src = "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i + 1) = A(i)
            END
        ";
        let p = parse_program(src).unwrap();
        let spec = BudgetSpec { node_limit: 1_000_000, deadline_ms: Some(0), cancel: None };
        let run = |workers: usize| {
            let config = EngineConfig { workers, budget: spec.clone(), ..EngineConfig::default() };
            build_dependence_graph_with(&p, &Assumptions::new(), &config)
        };
        let g = run(1);
        assert_eq!(g.stats.degraded_pairs, g.stats.pairs_tested);
        assert_eq!(g.stats.conservative_pairs, g.stats.pairs_tested);
        assert_eq!(g.stats.decided_by.get("degraded"), Some(&g.stats.pairs_tested));
        assert_eq!(g.stats.degraded_by.get(&DegradeReason::Deadline), Some(&g.stats.pairs_tested));
        let g4 = run(4);
        assert_eq!(g.stats.verdict_stats(), g4.stats.verdict_stats());
        assert_eq!(g.edges, g4.edges);
    }

    /// Satellite bugfix audit: a pair that hits the verdict cache reuses an
    /// entry whose own refinements reused subtrees. The fold must charge
    /// the entry's attempts, solver nodes, *and* reuse counters exactly
    /// once — at the key's first reference in source-pair order — never
    /// once per referencing pair, and never a second time because the hit
    /// "also" reused a subtree.
    #[test]
    fn cache_hits_charge_reuse_counters_once() {
        // B's pairs canonicalize to exactly A's problems (variable names
        // and array names are dropped), so the second statement's pairs are
        // pure verdict-cache hits.
        let doubled = parse_program(
            "
            REAL A(0:9), B(0:9)
            DO 1 i = 0, 8
              A(i + 1) = A(i)
        1   B(i + 1) = B(i)
            END
        ",
        )
        .unwrap();
        let single = parse_program(
            "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i + 1) = A(i)
            END
        ",
        )
        .unwrap();
        let config = EngineConfig { workers: 1, incremental: true, ..EngineConfig::default() };
        let g2 = build_dependence_graph_with(&doubled, &Assumptions::new(), &config);
        let g1 = build_dependence_graph_with(&single, &Assumptions::new(), &config);

        assert_eq!(g2.stats.pairs_tested, 2 * g1.stats.pairs_tested);
        assert_eq!(g2.stats.cache_hits, g1.stats.pairs_tested, "B's pairs must hit");
        assert_eq!(g2.stats.cache_misses, g1.stats.cache_misses);
        // The dependent W-R problem refines and reuses; the counters (and
        // every other charged quantity) must match the single-array run
        // exactly — cache hits charge nothing.
        assert!(g2.stats.refine_queries > 0, "{:?}", g2.stats);
        assert!(g2.stats.subtree_reuses > 0, "{:?}", g2.stats);
        assert_eq!(g2.stats.refine_queries, g1.stats.refine_queries);
        assert_eq!(g2.stats.subtree_reuses, g1.stats.subtree_reuses);
        assert_eq!(g2.stats.nodes_saved, g1.stats.nodes_saved);
        assert_eq!(g2.stats.solver_nodes, g1.stats.solver_nodes);
        assert_eq!(g2.stats.attempts_by, g1.stats.attempts_by);
    }

    /// The incremental toggle is a pure perf knob: identical edges and
    /// verdicts, strictly fewer solver nodes when refinements reuse.
    #[test]
    fn incremental_toggle_preserves_graphs_and_saves_nodes() {
        let p = parse_program(
            "
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 1)
            END
        ",
        )
        .unwrap();
        let run = |incremental: bool| {
            let config = EngineConfig { workers: 1, incremental, ..EngineConfig::default() };
            build_dependence_graph_with(&p, &Assumptions::new(), &config)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.edges, off.edges);
        assert_eq!(on.stats.proven_independent, off.stats.proven_independent);
        assert_eq!(on.stats.conservative_pairs, off.stats.conservative_pairs);
        assert_eq!(on.stats.decided_by, off.stats.decided_by);
        assert_eq!(on.stats.refine_queries, off.stats.refine_queries);
        assert_eq!(off.stats.subtree_reuses, 0);
        assert_eq!(off.stats.nodes_saved, 0);
        assert!(on.stats.subtree_reuses > 0, "{:?}", on.stats);
        assert!(on.stats.nodes_saved > 0, "{:?}", on.stats);
        assert!(on.stats.solver_nodes < off.stats.solver_nodes, "{:?}", (on.stats, off.stats));
        let rendered = on.stats.render_summary();
        assert!(rendered.contains("refines:"), "{rendered}");
    }

    #[test]
    fn graph_helpers() {
        let g = graph(
            "
            REAL A(0:9)
            DO 1 i = 0, 8
        1   A(i + 1) = A(i)
            END
        ",
        );
        let s = g.stmts[0];
        assert!(g.connected(s, s) || !g.edges.is_empty());
        assert!(g.successors(s).count() >= 1);
    }
}
