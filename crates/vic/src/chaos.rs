//! Deterministic fault injection for the analysis runtime.
//!
//! The robustness contract of the batch engine — panics isolated per unit,
//! budget exhaustion degrading to conservative verdicts, reports
//! byte-identical for any worker count *modulo the injected failures* — is
//! only worth anything if it can be exercised on demand. This module
//! injects faults at three granularities:
//!
//! * **unit** — a whole program unit panics on arrival, or runs under a
//!   zero-node / already-expired budget;
//! * **pair** — one reference-pair decision panics (the unit's worker
//!   unwinds; [`crate::batch`] catches, retries, and attributes);
//! * **solver** — one reference-pair decision runs under an exhausted
//!   budget and degrades to `Unknown` (exercises the degraded-not-memoized
//!   cache policy, since the faulted pair bypasses the shared cache).
//!
//! Every decision is a pure function of `(seed, site identity)` — a
//! splitmix64-style hash, no RNG state, no ordering sensitivity — so a
//! given seed produces the *same* fault set for any worker count, arrival
//! order, or retry schedule. That determinism is what lets the chaos suite
//! assert byte-identical corpus reports across `workers ∈ {1, 4, auto}`
//! while faults are firing.
//!
//! The whole module is compiled in both configurations, but with the
//! `chaos` cargo feature **off** (the default, and the only configuration
//! shipped by `cargo build`), [`ChaosPlan`] is an *uninhabited* enum: no
//! plan value can exist, `Option<ChaosPlan>` is statically `None`, and
//! every injection site in the engine folds to the no-fault path at
//! compile time. Production builds therefore carry zero chaos overhead and
//! cannot be faulted by any environment variable.

use delin_dep::budget::BudgetSpec;

/// The kind of fault injected at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the injection site (exercises unwind isolation).
    Panic,
    /// Run under a zero-node budget (deterministic exhaustion).
    Nodes,
    /// Run under an already-expired deadline.
    Deadline,
}

/// The panic payload of every injected panic, at every granularity.
///
/// Deliberately constant and site-free: a unit whose workers hit several
/// injected pair panics reports whichever payload it caught, so the
/// payload must not encode the pair — otherwise the unit's failure reason
/// would depend on thread scheduling and break report byte-identity.
pub const CHAOS_PANIC_MSG: &str = "chaos: injected panic";

/// A seeded fault-injection plan (feature `chaos` enabled).
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed mixed into every site decision.
    pub seed: u64,
    /// Unit-fault rate in permille (out of 1000).
    pub unit_rate: u16,
    /// Pair/solver-fault rate in permille (out of 1000).
    pub pair_rate: u16,
}

/// A seeded fault-injection plan (feature `chaos` disabled: uninhabited,
/// so no plan can exist and injection sites compile to nothing).
#[cfg(not(feature = "chaos"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPlan {}

#[cfg(feature = "chaos")]
impl ChaosPlan {
    /// A plan with the default rates: roughly one unit in four faulted,
    /// roughly three pair decisions in a hundred faulted.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan { seed, unit_rate: 250, pair_rate: 30 }
    }

    /// The plan requested by the `DELIN_CHAOS_SEED` environment variable,
    /// if set to a number.
    pub fn from_env() -> Option<ChaosPlan> {
        std::env::var("DELIN_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).map(ChaosPlan::new)
    }

    /// The fault (if any) for processing `unit` on retry `attempt`.
    pub fn unit_fault(&self, unit: &str, attempt: u32) -> Option<FaultKind> {
        self.decide(self.unit_rate, &format!("unit:{unit}:{attempt}"))
    }

    /// The fault (if any) for deciding reference pair `(src, dst)` of
    /// `unit` on retry `attempt`. Keyed on the worklist site indices, which
    /// are a pure function of the unit's source.
    pub fn pair_fault(
        &self,
        unit: &str,
        attempt: u32,
        src: usize,
        dst: usize,
    ) -> Option<FaultKind> {
        self.decide(self.pair_rate, &format!("pair:{unit}:{attempt}:{src}:{dst}"))
    }

    fn decide(&self, rate: u16, site: &str) -> Option<FaultKind> {
        let h = site_hash(self.seed, site);
        if h % 1000 >= u64::from(rate) {
            return None;
        }
        Some(match (h / 1000) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Nodes,
            _ => FaultKind::Deadline,
        })
    }
}

#[cfg(not(feature = "chaos"))]
impl ChaosPlan {
    /// Chaos is compiled out: there is never a plan in the environment.
    pub fn from_env() -> Option<ChaosPlan> {
        None
    }

    /// Unreachable (no plan value exists with the feature off).
    pub fn unit_fault(&self, _unit: &str, _attempt: u32) -> Option<FaultKind> {
        match *self {}
    }

    /// Unreachable (no plan value exists with the feature off).
    pub fn pair_fault(
        &self,
        _unit: &str,
        _attempt: u32,
        _src: usize,
        _dst: usize,
    ) -> Option<FaultKind> {
        match *self {}
    }
}

/// A plan bound to the unit (and retry attempt) it is faulting, threaded
/// from [`crate::batch`] through the engine so pair-granular sites can key
/// their decisions. Uninhabited whenever [`ChaosPlan`] is.
#[derive(Debug, Clone)]
pub struct ChaosCtx {
    /// The active plan.
    pub plan: ChaosPlan,
    /// The unit being processed.
    pub unit: String,
    /// The 0-based retry attempt — retries draw an independent fault set,
    /// so an escalated retry is not doomed to replay the same faults.
    pub attempt: u32,
}

impl ChaosCtx {
    /// The fault (if any) for this unit as a whole.
    pub fn unit_fault(&self) -> Option<FaultKind> {
        self.plan.unit_fault(&self.unit, self.attempt)
    }

    /// The fault (if any) for one reference-pair decision.
    pub fn pair_fault(&self, src: usize, dst: usize) -> Option<FaultKind> {
        self.plan.pair_fault(&self.unit, self.attempt, src, dst)
    }

    /// Applies a budget-class fault to a spec: [`FaultKind::Nodes`] zeroes
    /// the node allowance, [`FaultKind::Deadline`] arms an already-expired
    /// deadline. [`FaultKind::Panic`] leaves the spec alone (the caller
    /// panics instead).
    pub fn faulted_spec(fault: FaultKind, spec: &BudgetSpec) -> BudgetSpec {
        match fault {
            FaultKind::Panic => spec.clone(),
            FaultKind::Nodes => BudgetSpec { node_limit: 0, ..spec.clone() },
            FaultKind::Deadline => BudgetSpec { deadline_ms: Some(0), ..spec.clone() },
        }
    }
}

/// splitmix64-style avalanche: decisions depend on every bit of the seed
/// and the site identity, nothing else.
#[cfg(feature = "chaos")]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(feature = "chaos")]
fn site_hash(seed: u64, site: &str) -> u64 {
    let mut h = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    for b in site.bytes() {
        h = mix(h ^ u64::from(b));
    }
    h
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::new(42);
        let b = ChaosPlan::new(42);
        for i in 0..50 {
            assert_eq!(a.unit_fault("u", i), b.unit_fault("u", i));
            assert_eq!(a.pair_fault("u", 0, i as usize, 2), b.pair_fault("u", 0, i as usize, 2));
        }
        // Some seed pair must disagree somewhere across a modest site set
        // (rates are permille, so scan enough sites).
        let c = ChaosPlan::new(43);
        let differs = (0..2000)
            .any(|i| a.unit_fault(&format!("u{i}"), 0) != c.unit_fault(&format!("u{i}"), 0));
        assert!(differs, "different seeds must produce different fault sets");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = ChaosPlan::new(7);
        let fired =
            (0..4000).filter(|i| plan.unit_fault(&format!("unit-{i}"), 0).is_some()).count();
        // 250‰ of 4000 = 1000 expected; accept a generous band.
        assert!((600..1400).contains(&fired), "unit faults fired: {fired}");
        let kinds: std::collections::HashSet<_> =
            (0..4000).filter_map(|i| plan.unit_fault(&format!("unit-{i}"), 0)).collect();
        assert_eq!(kinds.len(), 3, "all three fault kinds must occur: {kinds:?}");
    }

    #[test]
    fn env_gate_parses_seed() {
        // Do not mutate the process environment (tests run in parallel);
        // just pin the parse contract via new().
        assert_eq!(ChaosPlan::new(9).seed, 9);
    }

    #[test]
    fn faulted_specs_degrade_deterministically() {
        let spec = BudgetSpec::nodes_only(1000);
        let z = ChaosCtx::faulted_spec(FaultKind::Nodes, &spec);
        assert_eq!(z.node_limit, 0);
        let d = ChaosCtx::faulted_spec(FaultKind::Deadline, &spec);
        assert_eq!(d.deadline_ms, Some(0));
        assert!(d.arm().exhausted().is_some(), "expired deadline must trip immediately");
        let p = ChaosCtx::faulted_spec(FaultKind::Panic, &spec);
        assert_eq!(p.node_limit, 1000);
    }
}
