//! Deterministic fault injection for the analysis runtime.
//!
//! The robustness contract of the batch engine — panics isolated per unit,
//! budget exhaustion degrading to conservative verdicts, reports
//! byte-identical for any worker count *modulo the injected failures* — is
//! only worth anything if it can be exercised on demand. This module
//! injects faults at three granularities:
//!
//! * **unit** — a whole program unit panics on arrival, or runs under a
//!   zero-node / already-expired budget;
//! * **pair** — one reference-pair decision panics (the unit's worker
//!   unwinds; [`crate::batch`] catches, retries, and attributes);
//! * **solver** — one reference-pair decision runs under an exhausted
//!   budget and degrades to `Unknown` (exercises the degraded-not-memoized
//!   cache policy, since the faulted pair bypasses the shared cache).
//!
//! Every decision is a pure function of `(seed, site identity)` — a
//! splitmix64-style hash, no RNG state, no ordering sensitivity — so a
//! given seed produces the *same* fault set for any worker count, arrival
//! order, or retry schedule. That determinism is what lets the chaos suite
//! assert byte-identical corpus reports across `workers ∈ {1, 4, auto}`
//! while faults are firing.
//!
//! The whole module is compiled in both configurations, but with the
//! `chaos` cargo feature **off** (the default, and the only configuration
//! shipped by `cargo build`), [`ChaosPlan`] is an *uninhabited* enum: no
//! plan value can exist, `Option<ChaosPlan>` is statically `None`, and
//! every injection site in the engine folds to the no-fault path at
//! compile time. Production builds therefore carry zero chaos overhead and
//! cannot be faulted by any environment variable.

use delin_dep::budget::BudgetSpec;

/// The kind of fault injected at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Panic at the injection site (exercises unwind isolation).
    Panic,
    /// Run under a zero-node budget (deterministic exhaustion).
    Nodes,
    /// Run under an already-expired deadline.
    Deadline,
}

/// The panic payload of every injected panic, at every granularity.
///
/// Deliberately constant and site-free: a unit whose workers hit several
/// injected pair panics reports whichever payload it caught, so the
/// payload must not encode the pair — otherwise the unit's failure reason
/// would depend on thread scheduling and break report byte-identity.
pub const CHAOS_PANIC_MSG: &str = "chaos: injected panic";

/// A seeded fault-injection plan (feature `chaos` enabled).
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed mixed into every site decision.
    pub seed: u64,
    /// Unit-fault rate in permille (out of 1000).
    pub unit_rate: u16,
    /// Pair/solver-fault rate in permille (out of 1000).
    pub pair_rate: u16,
}

/// A seeded fault-injection plan (feature `chaos` disabled: uninhabited,
/// so no plan can exist and injection sites compile to nothing).
#[cfg(not(feature = "chaos"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPlan {}

#[cfg(feature = "chaos")]
impl ChaosPlan {
    /// A plan with the default rates: roughly one unit in four faulted,
    /// roughly three pair decisions in a hundred faulted.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan { seed, unit_rate: 250, pair_rate: 30 }
    }

    /// The plan requested by the `DELIN_CHAOS_SEED` environment variable,
    /// if set to a number.
    pub fn from_env() -> Option<ChaosPlan> {
        std::env::var("DELIN_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).map(ChaosPlan::new)
    }

    /// The fault (if any) for processing `unit` on retry `attempt`.
    pub fn unit_fault(&self, unit: &str, attempt: u32) -> Option<FaultKind> {
        self.decide(self.unit_rate, &format!("unit:{unit}:{attempt}"))
    }

    /// The fault (if any) for deciding reference pair `(src, dst)` of
    /// `unit` on retry `attempt`. Keyed on the worklist site indices, which
    /// are a pure function of the unit's source.
    pub fn pair_fault(
        &self,
        unit: &str,
        attempt: u32,
        src: usize,
        dst: usize,
    ) -> Option<FaultKind> {
        self.decide(self.pair_rate, &format!("pair:{unit}:{attempt}:{src}:{dst}"))
    }

    fn decide(&self, rate: u16, site: &str) -> Option<FaultKind> {
        let h = site_hash(self.seed, site);
        if h % 1000 >= u64::from(rate) {
            return None;
        }
        Some(match (h / 1000) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Nodes,
            _ => FaultKind::Deadline,
        })
    }
}

#[cfg(not(feature = "chaos"))]
impl ChaosPlan {
    /// Chaos is compiled out: there is never a plan in the environment.
    pub fn from_env() -> Option<ChaosPlan> {
        None
    }

    /// Unreachable (no plan value exists with the feature off).
    pub fn unit_fault(&self, _unit: &str, _attempt: u32) -> Option<FaultKind> {
        match *self {}
    }

    /// Unreachable (no plan value exists with the feature off).
    pub fn pair_fault(
        &self,
        _unit: &str,
        _attempt: u32,
        _src: usize,
        _dst: usize,
    ) -> Option<FaultKind> {
        match *self {}
    }
}

/// A plan bound to the unit (and retry attempt) it is faulting, threaded
/// from [`crate::batch`] through the engine so pair-granular sites can key
/// their decisions. Uninhabited whenever [`ChaosPlan`] is.
#[derive(Debug, Clone)]
pub struct ChaosCtx {
    /// The active plan.
    pub plan: ChaosPlan,
    /// The unit being processed.
    pub unit: String,
    /// The 0-based retry attempt — retries draw an independent fault set,
    /// so an escalated retry is not doomed to replay the same faults.
    pub attempt: u32,
}

impl ChaosCtx {
    /// The fault (if any) for this unit as a whole.
    pub fn unit_fault(&self) -> Option<FaultKind> {
        self.plan.unit_fault(&self.unit, self.attempt)
    }

    /// The fault (if any) for one reference-pair decision.
    pub fn pair_fault(&self, src: usize, dst: usize) -> Option<FaultKind> {
        self.plan.pair_fault(&self.unit, self.attempt, src, dst)
    }

    /// Applies a budget-class fault to a spec: [`FaultKind::Nodes`] zeroes
    /// the node allowance, [`FaultKind::Deadline`] arms an already-expired
    /// deadline. [`FaultKind::Panic`] leaves the spec alone (the caller
    /// panics instead).
    pub fn faulted_spec(fault: FaultKind, spec: &BudgetSpec) -> BudgetSpec {
        match fault {
            FaultKind::Panic => spec.clone(),
            FaultKind::Nodes => BudgetSpec { node_limit: 0, ..spec.clone() },
            FaultKind::Deadline => BudgetSpec { deadline_ms: Some(0), ..spec.clone() },
        }
    }
}

/// splitmix64-style avalanche: decisions depend on every bit of the seed
/// and the site identity, nothing else. (Used by both the feature-gated
/// engine faults and the always-compiled transport faults below.)
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn site_hash(seed: u64, site: &str) -> u64 {
    let mut h = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    for b in site.bytes() {
        h = mix(h ^ u64::from(b));
    }
    h
}

// ---------------------------------------------------------------------------
// Transport faults
// ---------------------------------------------------------------------------
//
// Unlike the engine faults above, the transport layer is **always
// compiled**: the wrappers are pure adapter types over any reader/writer,
// cost nothing unless a transport is actually wrapped, and are needed by
// the (always-built) `delin_loadgen` bench binary and the serving test
// suites. The same determinism contract applies: every decision is a pure
// function of `(seed, connection index)`.

/// A connection-level transport fault, injected by wrapping one side of a
/// client connection. Each models a distinct real-world failure the
/// multi-connection daemon must confine to the faulted client:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportFault {
    /// The peer vanishes after `after` bytes of its request stream have
    /// been read — a mid-request disconnect (possibly mid-line: the
    /// half-written-line case) or a killed socket. Reads then fail with
    /// `ConnectionReset`.
    CutRead {
        /// Bytes readable before the reset.
        after: usize,
    },
    /// The peer's socket dies on the response side after `after` response
    /// bytes — writes then fail with `BrokenPipe` (the client-gone path).
    CutWrite {
        /// Bytes writable before the pipe breaks.
        after: usize,
    },
    /// The peer goes silent: reads yield `WouldBlock` forever (a stalled
    /// writer on the client side; trips the daemon's idle timeout).
    Stall,
}

/// A seeded per-connection transport fault plan: which connections of a
/// multi-client run are faulted, and how, as a pure function of
/// `(seed, connection index)` — the same connection set faults identically
/// for any accept order or thread schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportPlan {
    /// Seed mixed into every connection decision.
    pub seed: u64,
    /// Faulted-connection rate in permille (out of 1000).
    pub rate: u16,
}

impl TransportPlan {
    /// A plan with the default rate: roughly one connection in four.
    pub fn new(seed: u64) -> TransportPlan {
        TransportPlan { seed, rate: 250 }
    }

    /// The fault (if any) for connection number `conn`. Cut points land in
    /// `[1, 257)` bytes, early enough to interrupt the first requests.
    pub fn connection_fault(&self, conn: u64) -> Option<TransportFault> {
        let h = site_hash(self.seed, &format!("conn:{conn}"));
        if h % 1000 >= u64::from(self.rate) {
            return None;
        }
        let after = 1 + (h / 1000 % 256) as usize;
        Some(match (h / 256_000) % 3 {
            0 => TransportFault::CutRead { after },
            1 => TransportFault::CutWrite { after },
            _ => TransportFault::Stall,
        })
    }
}

/// A reader that injects [`TransportFault::CutRead`] / [`TransportFault::Stall`]
/// over any inner reader. Wrap it in a `BufReader` to feed the daemon.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    fault: Option<TransportFault>,
    seen: usize,
}

impl<R: std::io::Read> FaultyReader<R> {
    /// Wraps `inner` under `fault` (write-side faults are ignored here).
    pub fn new(inner: R, fault: Option<TransportFault>) -> FaultyReader<R> {
        FaultyReader { inner, fault, seen: 0 }
    }
}

impl<R: std::io::Read> std::io::Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.fault {
            Some(TransportFault::Stall) => Err(std::io::ErrorKind::WouldBlock.into()),
            Some(TransportFault::CutRead { after }) => {
                if self.seen >= after {
                    return Err(std::io::ErrorKind::ConnectionReset.into());
                }
                let cap = buf.len().min(after - self.seen);
                let n = self.inner.read(&mut buf[..cap])?;
                self.seen += n;
                Ok(n)
            }
            _ => self.inner.read(buf),
        }
    }
}

/// A writer that injects [`TransportFault::CutWrite`] over any inner
/// writer: after the cut point, every write fails with `BrokenPipe` — how
/// a vanished client looks to the daemon's response path.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    fault: Option<TransportFault>,
    seen: usize,
}

impl<W: std::io::Write> FaultyWriter<W> {
    /// Wraps `inner` under `fault` (read-side faults are ignored here).
    pub fn new(inner: W, fault: Option<TransportFault>) -> FaultyWriter<W> {
        FaultyWriter { inner, fault, seen: 0 }
    }
}

impl<W: std::io::Write> std::io::Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.fault {
            Some(TransportFault::CutWrite { after }) => {
                if self.seen >= after {
                    return Err(std::io::ErrorKind::BrokenPipe.into());
                }
                let cap = buf.len().min(after - self.seen);
                let n = self.inner.write(&buf[..cap])?;
                self.seen += n;
                Ok(n)
            }
            _ => self.inner.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod transport_tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn plans_are_deterministic_and_cover_all_faults() {
        let plan = TransportPlan::new(11);
        for conn in 0..100 {
            assert_eq!(plan.connection_fault(conn), plan.connection_fault(conn));
        }
        let kinds: std::collections::HashSet<_> = (0..4000)
            .filter_map(|c| plan.connection_fault(c))
            .map(|f| std::mem::discriminant(&f))
            .collect();
        assert_eq!(kinds.len(), 3, "all three transport faults must occur");
        let fired = (0..4000).filter(|&c| plan.connection_fault(c).is_some()).count();
        assert!((600..1400).contains(&fired), "faults fired: {fired}");
    }

    #[test]
    fn cut_read_delivers_a_prefix_then_resets() {
        let data = b"hello world";
        let mut r = FaultyReader::new(&data[..], Some(TransportFault::CutRead { after: 5 }));
        let mut buf = Vec::new();
        let err = r.read_to_end(&mut buf).expect_err("must reset");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(buf, b"hello", "exactly the prefix before the cut");
    }

    #[test]
    fn stall_yields_would_block() {
        let mut r = FaultyReader::new(&b"x"[..], Some(TransportFault::Stall));
        let mut buf = [0u8; 1];
        assert_eq!(r.read(&mut buf).unwrap_err().kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn cut_write_accepts_a_prefix_then_breaks() {
        let mut sink = Vec::new();
        let mut w = FaultyWriter::new(&mut sink, Some(TransportFault::CutWrite { after: 3 }));
        assert_eq!(w.write(b"abcdef").unwrap(), 3);
        assert_eq!(w.write(b"def").unwrap_err().kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(sink, b"abc");
    }

    #[test]
    fn unfaulted_wrappers_are_transparent() {
        let mut r = FaultyReader::new(&b"pass"[..], None);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"pass");
        let mut sink = Vec::new();
        let mut w = FaultyWriter::new(&mut sink, None);
        w.write_all(b"pass").unwrap();
        assert_eq!(sink, b"pass");
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::new(42);
        let b = ChaosPlan::new(42);
        for i in 0..50 {
            assert_eq!(a.unit_fault("u", i), b.unit_fault("u", i));
            assert_eq!(a.pair_fault("u", 0, i as usize, 2), b.pair_fault("u", 0, i as usize, 2));
        }
        // Some seed pair must disagree somewhere across a modest site set
        // (rates are permille, so scan enough sites).
        let c = ChaosPlan::new(43);
        let differs = (0..2000)
            .any(|i| a.unit_fault(&format!("u{i}"), 0) != c.unit_fault(&format!("u{i}"), 0));
        assert!(differs, "different seeds must produce different fault sets");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = ChaosPlan::new(7);
        let fired =
            (0..4000).filter(|i| plan.unit_fault(&format!("unit-{i}"), 0).is_some()).count();
        // 250‰ of 4000 = 1000 expected; accept a generous band.
        assert!((600..1400).contains(&fired), "unit faults fired: {fired}");
        let kinds: std::collections::HashSet<_> =
            (0..4000).filter_map(|i| plan.unit_fault(&format!("unit-{i}"), 0)).collect();
        assert_eq!(kinds.len(), 3, "all three fault kinds must occur: {kinds:?}");
    }

    #[test]
    fn env_gate_parses_seed() {
        // Do not mutate the process environment (tests run in parallel);
        // just pin the parse contract via new().
        assert_eq!(ChaosPlan::new(9).seed, 9);
    }

    #[test]
    fn faulted_specs_degrade_deterministically() {
        let spec = BudgetSpec::nodes_only(1000);
        let z = ChaosCtx::faulted_spec(FaultKind::Nodes, &spec);
        assert_eq!(z.node_limit, 0);
        let d = ChaosCtx::faulted_spec(FaultKind::Deadline, &spec);
        assert_eq!(d.deadline_ms, Some(0));
        assert!(d.arm().exhausted().is_some(), "expired deadline must trip immediately");
        let p = ChaosCtx::faulted_spec(FaultKind::Panic, &spec);
        assert_eq!(p.node_limit, 1000);
    }
}
