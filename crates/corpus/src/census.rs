//! Linearized-reference census (the measurement behind Fig. 1).
//!
//! A reference is *linearized* when a single subscript dimension is an
//! affine function of two or more loop variables whose coefficients have
//! different magnitudes (the paper's "different order contributions"), or
//! has symbolic (run-time dimensioning) coefficients. The census counts
//! the outermost loop nests containing at least one such reference,
//! exactly the quantity Fig. 1 tabulates for RiCEPS.

use delin_frontend::access::{collect_accesses, Subscript};
use delin_frontend::ast::Program;
use delin_frontend::induction::substitute_inductions;
use delin_numeric::Assumptions;
use std::collections::BTreeSet;

/// Census outcome for one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CensusResult {
    /// Outermost loop nests containing at least one linearized reference.
    pub linearized_nests: usize,
    /// All outermost loop nests.
    pub total_nests: usize,
    /// Individual linearized references.
    pub linearized_refs: usize,
    /// References whose linearization came from an induction variable
    /// (detected only after substitution).
    pub induction_variables: usize,
}

/// Is this subscript a linearized index?
fn is_linearized(sub: &Subscript) -> bool {
    let Subscript::Affine(a) = sub else {
        return false;
    };
    if a.num_vars() < 2 {
        return false;
    }
    // Different orders of contribution: coefficient magnitudes differ, or
    // some coefficient is symbolic (run-time dimensioning).
    let mut mags = BTreeSet::new();
    for (_, c) in a.terms() {
        match c.as_constant() {
            Some(v) => {
                mags.insert(v.unsigned_abs());
            }
            None => return true, // symbolic stride
        }
    }
    mags.len() >= 2
}

/// Runs the census on a program. Induction variables are substituted first
/// (the paper counts the BOAST `IB` pattern as a linearized reference).
pub fn census(program: &Program, assumptions: &Assumptions) -> CensusResult {
    let (substituted, reports) = substitute_inductions(program);
    let sites = collect_accesses(&substituted, assumptions);
    let mut result = CensusResult { induction_variables: reports.len(), ..CensusResult::default() };
    let mut linearized_nest_ids: BTreeSet<u32> = BTreeSet::new();
    let mut all_nest_ids: BTreeSet<u32> = BTreeSet::new();
    for site in &sites {
        let Some(outer) = site.loops.first() else {
            continue;
        };
        all_nest_ids.insert(outer.uid);
        // A reference counts when it has exactly one dimension carrying a
        // linearized index (multi-dimensional arrays may also have one
        // linearized dimension after partial linearization).
        if site.subscripts.iter().any(is_linearized) {
            result.linearized_refs += 1;
            linearized_nest_ids.insert(outer.uid);
        }
    }
    result.linearized_nests = linearized_nest_ids.len();
    result.total_nests = all_nest_ids.len();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_frontend::parse_program;

    fn run(src: &str) -> CensusResult {
        census(&parse_program(src).unwrap(), &Assumptions::new())
    }

    #[test]
    fn detects_hand_linearized_nest() {
        let r = run("
            REAL C(0:99)
            DO 1 i = 0, 4
            DO 1 j = 0, 9
        1   C(i + 10*j) = C(i + 10*j + 5)
            END
        ");
        assert_eq!(r.linearized_nests, 1);
        assert_eq!(r.total_nests, 1);
        assert_eq!(r.linearized_refs, 2);
    }

    #[test]
    fn multidimensional_references_not_counted() {
        let r = run("
            REAL A(0:9, 0:9)
            DO 1 i = 0, 9
            DO 1 j = 0, 9
        1   A(i, j) = A(i, j) + 1
            END
        ");
        assert_eq!(r.linearized_nests, 0);
        assert_eq!(r.total_nests, 1);
    }

    #[test]
    fn unit_stride_combinations_not_counted() {
        // i + j has equal coefficient magnitudes: a diagonal access, not a
        // linearized multidimensional one.
        let r = run("
            REAL A(0:99)
            DO 1 i = 0, 9
            DO 1 j = 0, 9
        1   A(i + j) = 0
            END
        ");
        assert_eq!(r.linearized_nests, 0);
    }

    #[test]
    fn symbolic_run_time_dimensioning_counted() {
        let r = run("
            REAL A(0:NX*NY - 1)
            DO 1 j = 0, NY - 1
            DO 1 i = 0, NX - 1
        1   A(i + NX*j) = 0
            END
        ");
        assert_eq!(r.linearized_nests, 1);
    }

    #[test]
    fn induction_variable_nests_counted() {
        let r = run("
            REAL B(0:999)
            IB = -1
            DO 1 I = 0, 9
            DO 1 J = 0, 9
            DO 1 K = 0, 9
              IB = IB + 1
        1   B(IB) = B(IB) + 1
            END
        ");
        assert_eq!(r.induction_variables, 1);
        assert_eq!(r.linearized_nests, 1);
    }

    #[test]
    fn counts_nests_not_references() {
        let r = run("
            REAL A(0:99), B(0:99)
            DO 1 i = 0, 9
            DO 1 j = 0, 9
              A(i + 10*j) = 1
        1   B(i + 10*j) = 2
            DO 2 i = 0, 9
        2   A(i) = 3
            END
        ");
        assert_eq!(r.linearized_refs, 2);
        assert_eq!(r.linearized_nests, 1);
        assert_eq!(r.total_nests, 2);
    }
}
