//! Streamable [`BatchUnit`] sources for the batch engine.
//!
//! Both sources are lazy iterators — nothing is generated until the batch
//! runner pulls the next unit — and every unit is a pure function of its
//! identity (`(spec)` for RiCEPS, `(seed, index)` for the generated
//! workload), *not* of the position in the stream. Shuffling or reversing
//! the stream therefore yields the same unit set, which is what makes the
//! batch determinism contract testable on these sources.

use crate::riceps::{all_benchmarks, generate, generate_scaled};
use delin_numeric::Assumptions;
use delin_vic::batch::BatchUnit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The eight synthetic RiCEPS programs as batch units, at the Fig. 1 size
/// class, or scaled down to roughly `lines` lines each when given.
///
/// Units with run-time dimensioning carry the paper's Section 4 premise as
/// assumptions (`NX ≥ 2`, `NY ≥ 2` — the arrays are real), exercising the
/// environment-keyed sharing of the batch cache.
pub fn riceps_units(lines: Option<usize>) -> impl Iterator<Item = BatchUnit> {
    all_benchmarks().into_iter().map(move |spec| {
        let source = match lines {
            Some(l) => generate_scaled(&spec, l),
            None => generate(&spec),
        };
        let mut assumptions = Assumptions::new();
        if spec.run_time_dimensioning {
            assumptions.set_lower_bound("NX", 2);
            assumptions.set_lower_bound("NY", 2);
        }
        BatchUnit::new(format!("riceps/{}", spec.name), source).with_assumptions(assumptions)
    })
}

/// `count` generated workload units for `seed`.
///
/// Every third unit uses symbolic strides with a *varying* lower bound on
/// the stride symbol, so a corpus mixes units whose assumption environments
/// agree (sharing cache entries) with units whose environments differ
/// (which must not share — see `delin_vic::cache`).
pub fn generated_units(count: usize, seed: u64) -> impl Iterator<Item = BatchUnit> {
    (0..count).map(move |index| generated_unit(seed, index))
}

/// The `index`-th generated unit of the `seed` workload — deterministic in
/// `(seed, index)` alone.
pub fn generated_unit(seed: u64, index: usize) -> BatchUnit {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index as u64),
    );
    let offset = rng.gen_range(0..7) as i128;
    if index.is_multiple_of(3) {
        // Symbolic strides (run-time dimensioning). The NX lower bound
        // cycles so different units land in different cache environments.
        let lb = 1 + (index / 3 % 4) as i128;
        let mut assumptions = Assumptions::new();
        assumptions.set_lower_bound("NX", lb);
        let source = format!(
            "REAL W(0:99999)\n\
             DO 1 J = 0, NY - 1\n\
             DO 1 I = 0, NX - 1 - {offset}\n\
             1 W(I + NX*J) = W(I + NX*J + {offset}) + 1\n\
             END\n"
        );
        BatchUnit::new(format!("gen/{index:04}-sym{lb}"), source).with_assumptions(assumptions)
    } else {
        // Hand-linearized constant strides; the I range stops short of the
        // row end, so the nest is independent iff offset fits the row.
        let stride = 8 + rng.gen_range(0..9) as i128;
        let upper = stride - 1 - offset.max(1);
        let source = format!(
            "REAL W(0:99999)\n\
             DO 1 J = 0, 9\n\
             DO 1 I = 0, {upper}\n\
             1 W(I + {stride}*J) = W(I + {stride}*J + {offset}) + 1\n\
             END\n"
        );
        BatchUnit::new(format!("gen/{index:04}"), source)
    }
}

/// `count` refinement-heavy units for `seed`.
///
/// Every nest carries a *real* loop-carried dependence: the read trails the
/// write by a small offset inside the same row, so the exact solver cannot
/// disprove the pair and must refine the full direction-vector hierarchy
/// instead. Strides and offsets are drawn from small pools, so a corpus
/// repeats canonical problems heavily — this is the hit-dominated,
/// refinement-bound workload of the bench harness (`batch_corpus --bench`),
/// where the cost of *keying* a lookup is most visible.
pub fn refinement_units(count: usize, seed: u64) -> impl Iterator<Item = BatchUnit> {
    (0..count).map(move |index| refinement_unit(seed, index))
}

/// The `index`-th refinement-heavy unit of the `seed` workload —
/// deterministic in `(seed, index)` alone.
pub fn refinement_unit(seed: u64, index: usize) -> BatchUnit {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0xd605_1b4e_98cf_b1a1).wrapping_add(index as u64),
    );
    let stride = [8i128, 12, 16, 20][rng.gen_range(0..4)];
    let offset = 1 + rng.gen_range(0..3) as i128;
    let plane = stride * 10;
    let upper = stride - 1;
    // W(x) = W(x - offset) with I ≥ offset keeps the read in the same row:
    // iteration (K, J, I) reads the value written at (K, J, I - offset) —
    // a dependence carried by the innermost loop, direction (=, =, <).
    let source = format!(
        "REAL W(0:99999)\n\
         DO 1 K = 0, 3\n\
         DO 1 J = 0, 9\n\
         DO 1 I = {offset}, {upper}\n\
         1 W(I + {stride}*J + {plane}*K) = W(I + {stride}*J + {plane}*K - {offset}) + 1\n\
         END\n"
    );
    BatchUnit::new(format!("ref/{index:04}-s{stride}o{offset}"), source)
}

/// `count` pair-dense units for `seed`: each unit is one two-deep nest with
/// [`DENSE_STATEMENTS`] statements over the same linearized array, so a
/// single unit yields hundreds of reference pairs while parsing stays
/// cheap. Strides are drawn from a small pool, making a large corpus
/// heavily cache-hit-dominated — this is the stream that lets trace-driven
/// full runs reach millions of pairs in seconds.
pub fn dense_units(count: usize, seed: u64) -> impl Iterator<Item = BatchUnit> {
    (0..count).map(move |index| dense_unit(seed, index))
}

/// Statements per [`dense_unit`] nest.
pub const DENSE_STATEMENTS: usize = 12;

/// The `index`-th pair-dense unit of the `seed` workload — deterministic in
/// `(seed, index)` alone.
pub fn dense_unit(seed: u64, index: usize) -> BatchUnit {
    let mut rng = SmallRng::seed_from_u64(
        seed.wrapping_mul(0xa076_1d64_78bd_642f).wrapping_add(index as u64),
    );
    let stride = [16i128, 24, 32, 48][rng.gen_range(0..4)];
    let base = rng.gen_range(0..3) as i128;
    let mut source = String::from("REAL W(0:99999)\nDO 1 J = 0, 9\nDO 1 I = 0, 7\n");
    for s in 0..DENSE_STATEMENTS {
        // Distinct constant offsets per statement keep every reference in
        // the same row family; offsets cycle through a small pool so the
        // canonical problems repeat across units (cache-hit-dominated).
        let off = base + (s as i128 % 4);
        source.push_str(&format!(
            "1 W(I + {stride}*J + {s}) = W(I + {stride}*J + {s} + {off}) + 1\n"
        ));
    }
    source.push_str("END\n");
    BatchUnit::new(format!("dense/{index:06}-s{stride}b{base}"), source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riceps_units_cover_the_suite() {
        let units: Vec<BatchUnit> = riceps_units(Some(120)).collect();
        assert_eq!(units.len(), 8);
        assert!(units.iter().any(|u| u.name == "riceps/BOAST"));
        // Run-time-dimensioned programs carry symbolic assumptions.
        let boast = units.iter().find(|u| u.name == "riceps/BOAST").unwrap();
        assert!(!boast.assumptions.is_empty());
        let qcd = units.iter().find(|u| u.name == "riceps/QCD").unwrap();
        assert!(qcd.assumptions.is_empty());
    }

    #[test]
    fn generated_units_are_position_independent() {
        let forward: Vec<BatchUnit> = generated_units(12, 7).collect();
        let mut backward: Vec<BatchUnit> = generated_units(12, 7).collect();
        backward.reverse();
        for unit in &forward {
            let twin = backward.iter().find(|u| u.name == unit.name).unwrap();
            assert_eq!(unit.source, twin.source);
            assert_eq!(unit.assumptions, twin.assumptions);
        }
        // Different seeds give different corpora.
        let other: Vec<BatchUnit> = generated_units(12, 8).collect();
        assert!(forward.iter().zip(&other).any(|(a, b)| a.source != b.source));
    }

    #[test]
    fn refinement_units_carry_real_dependences() {
        let units: Vec<BatchUnit> = refinement_units(6, 3).collect();
        assert_eq!(units.len(), 6);
        // Deterministic in (seed, index), independent of stream position.
        let again: Vec<BatchUnit> = refinement_units(6, 3).collect();
        for (a, b) in units.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.source, b.source);
        }
        for u in &units {
            delin_frontend::parse_program(&u.source).unwrap_or_else(|e| panic!("{}: {e}", u.name));
        }
        // The workload's premise: the nest is dependent, so the engine
        // refines direction vectors rather than proving independence.
        let report = delin_vic::pipeline::run_pipeline(
            &units[0].source,
            &delin_vic::pipeline::PipelineConfig::default(),
        )
        .unwrap();
        assert!(!report.graph.edges.is_empty(), "refinement unit must be dependent");
        assert!(
            report.graph.edges.iter().any(|e| !e.dir_vecs.is_empty()),
            "dependence must carry refined direction vectors"
        );
    }

    #[test]
    fn dense_units_are_pair_dense_and_deterministic() {
        let units: Vec<BatchUnit> = dense_units(4, 5).collect();
        let again: Vec<BatchUnit> = dense_units(4, 5).collect();
        for (a, b) in units.iter().zip(&again) {
            assert_eq!((&a.name, &a.source), (&b.name, &b.source));
        }
        for u in &units {
            delin_frontend::parse_program(&u.source).unwrap_or_else(|e| panic!("{}: {e}", u.name));
        }
        // The stream's reason to exist: many pairs per parsed unit.
        let stats = delin_vic::batch::BatchRunner::new(delin_vic::batch::BatchConfig {
            workers: 1,
            ..delin_vic::batch::BatchConfig::default()
        })
        .run(units);
        let pairs = stats.totals.verdict_stats().pairs_tested;
        assert!(pairs >= 4 * 100, "dense units must be pair-dense, got {pairs} pairs");
    }

    #[test]
    fn generated_units_mix_environments() {
        let units: Vec<BatchUnit> = generated_units(24, 1).collect();
        let symbolic: Vec<&BatchUnit> =
            units.iter().filter(|u| !u.assumptions.is_empty()).collect();
        assert!(symbolic.len() >= 8);
        // At least two distinct NX lower bounds appear.
        let mut bounds: Vec<i128> = symbolic
            .iter()
            .map(|u| u.assumptions.lower_bound(&delin_numeric::Sym::new("NX")))
            .collect();
        bounds.sort_unstable();
        bounds.dedup();
        assert!(bounds.len() >= 2, "{bounds:?}");
        // Every unit parses.
        for u in &units {
            delin_frontend::parse_program(&u.source).unwrap_or_else(|e| panic!("{}: {e}", u.name));
        }
    }
}
