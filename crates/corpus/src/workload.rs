//! Random dependence-problem workloads for the precision and scaling
//! experiments.
//!
//! [`linearized_problem`] draws random *linearized* pair equations — the
//! family the paper's technique targets: a reference `A(Σ ck·xk + off1)`
//! against `A(Σ ck·xk + off2)` where the strides `ck` are products of
//! dimension extents. [`scaling_problem`] produces the same family with a
//! controlled number of loop variables for the O(n) scaling study (E7).

use delin_dep::problem::DependenceProblem;
use rand::Rng;

/// Parameters of the random linearized family.
#[derive(Debug, Clone)]
pub struct LinearizedSpec {
    /// Number of loops per reference (the equation has `2·loops` vars).
    pub loops: usize,
    /// Inclusive range of per-dimension extents.
    pub extent_range: (i128, i128),
    /// Inclusive range of the constant offset between the two references.
    pub offset_range: (i128, i128),
    /// Probability that a loop's iteration range covers only part of the
    /// dimension (making independence more likely).
    pub partial_range_prob: f64,
}

impl Default for LinearizedSpec {
    fn default() -> Self {
        LinearizedSpec {
            loops: 2,
            extent_range: (4, 12),
            offset_range: (-30, 30),
            partial_range_prob: 0.5,
        }
    }
}

/// Draws one random linearized dependence problem
/// (`Σ ck·x1k − Σ ck·x2k + off = 0`).
pub fn linearized_problem<R: Rng>(rng: &mut R, spec: &LinearizedSpec) -> DependenceProblem<i128> {
    let n = spec.loops;
    // Dimension extents and the resulting strides (column-major).
    let mut extents = Vec::with_capacity(n);
    for _ in 0..n {
        extents.push(rng.gen_range(spec.extent_range.0..=spec.extent_range.1));
    }
    let mut strides = Vec::with_capacity(n);
    let mut s = 1i128;
    for e in &extents {
        strides.push(s);
        s *= e;
    }
    // Loop bounds: full or partial dimension coverage.
    let mut uppers = Vec::with_capacity(n);
    for e in &extents {
        if rng.gen_bool(spec.partial_range_prob) {
            uppers.push(rng.gen_range(1..=(e - 1).max(1)));
        } else {
            uppers.push(e - 1);
        }
    }
    let offset = rng.gen_range(spec.offset_range.0..=spec.offset_range.1);
    // Equation over (x1..., x2...): Σ s_k x1k − Σ s_k x2k − offset = 0.
    let mut coeffs = Vec::with_capacity(2 * n);
    coeffs.extend(strides.iter().copied());
    coeffs.extend(strides.iter().map(|s| -s));
    let mut bounds = Vec::with_capacity(2 * n);
    bounds.extend(uppers.iter().copied());
    bounds.extend(uppers.iter().copied());

    let mut b = DependenceProblem::<i128>::builder();
    let mut src = Vec::new();
    let mut snk = Vec::new();
    for (k, u) in bounds.iter().enumerate() {
        let side = if k < n { 1 } else { 2 };
        let idx = b.var(format!("x{side}_{}", k % n), *u);
        if k < n {
            src.push(idx);
        } else {
            snk.push(idx);
        }
    }
    for k in 0..n {
        b.common_pair(src[k], snk[k]);
    }
    b.equation(-offset, coeffs);
    b.build()
}

/// A deterministic linearized problem with `loops` loop variables per side
/// and geometric strides — the scaling workload: the paper's motivating
/// example generalized to `loops` dimensions. Strides are `base^k`; every
/// variable ranges over `[0, base/2 − 1]` and the constant offset is
/// `base/2`, so the lowest dimension can never supply a residue of
/// `±base/2` and the problem is always independent (every technique does
/// full work).
///
/// # Panics
///
/// Panics unless `base` is even and at least 4.
pub fn scaling_problem(loops: usize, base: i128) -> DependenceProblem<i128> {
    assert!(base >= 4 && base % 2 == 0, "base must be even and >= 4");
    let half = base / 2;
    let mut coeffs = Vec::with_capacity(2 * loops);
    let mut bounds = Vec::with_capacity(2 * loops);
    let mut s = 1i128;
    for _ in 0..loops {
        coeffs.push(s);
        bounds.push(half - 1);
        s = s.saturating_mul(base);
    }
    let strides: Vec<i128> = coeffs.clone();
    coeffs.extend(strides.iter().map(|c| -c));
    bounds.extend_from_within(..loops);
    DependenceProblem::single_equation(-half, coeffs, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_core::DelinearizationTest;
    use delin_dep::exact::{ExactSolver, SolveOutcome};
    use delin_dep::verdict::DependenceTest;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linearized_problems_are_well_formed() {
        let mut rng = SmallRng::seed_from_u64(7);
        let spec = LinearizedSpec::default();
        for _ in 0..50 {
            let p = linearized_problem(&mut rng, &spec);
            assert_eq!(p.num_vars(), 4);
            assert_eq!(p.equations().len(), 1);
            assert_eq!(p.common_loops().len(), 2);
            assert!(p.is_concrete());
            // Strides mirror between the two sides.
            let eq = &p.equations()[0];
            for k in 0..2 {
                assert_eq!(eq.coeffs[k], -eq.coeffs[k + 2]);
            }
        }
    }

    #[test]
    fn scaling_problem_is_always_independent() {
        let solver = ExactSolver::default();
        for loops in 1..=6 {
            let p = scaling_problem(loops, 10);
            assert_eq!(p.num_vars(), 2 * loops);
            assert_eq!(solver.solve(&p), SolveOutcome::NoSolution, "loops={loops}");
            assert!(DelinearizationTest::default().test(&p).is_independent(), "loops={loops}");
        }
    }

    #[test]
    fn delinearization_sound_on_the_random_family() {
        let mut rng = SmallRng::seed_from_u64(42);
        let spec = LinearizedSpec::default();
        let solver = ExactSolver::default();
        let t = DelinearizationTest::default();
        let mut independents = 0;
        for _ in 0..300 {
            let p = linearized_problem(&mut rng, &spec);
            let truth = solver.solve(&p);
            let got = t.test(&p);
            match truth {
                SolveOutcome::Solution(_) => {
                    assert!(got.is_dependent(), "unsound on {p}");
                }
                SolveOutcome::NoSolution => {
                    if got.is_independent() {
                        independents += 1;
                    }
                }
                SolveOutcome::Degraded(_) => {}
            }
        }
        // The family is linearized, so delinearization should prove many
        // independences.
        assert!(independents > 10, "only {independents} proven independent");
    }
}
