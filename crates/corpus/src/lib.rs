//! Synthetic benchmark corpus and workload generators.
//!
//! The paper's only external artifact is the RiCEPS benchmark suite
//! (Fig. 1), which is not publicly available. [`riceps`] generates a
//! *synthetic* mini-FORTRAN stand-in for each of the eight programs,
//! matching the paper's reported size and number of loop nests containing
//! linearized references; [`census`] implements the detector that measures
//! those counts (reproducing Fig. 1 as experiment E1). [`workload`]
//! generates the random linearized dependence problems used by the
//! precision (E8) and scaling (E7) experiments. [`stream`] adapts the
//! RiCEPS programs and a generated nest family into lazy
//! `delin_vic::batch::BatchUnit` streams for the batch engine. [`trace`]
//! records and replays unit streams as compact checksummed binary traces,
//! and [`sample`] picks SimPoint-style weighted representative subsets of
//! a corpus so CI measures seconds while full runs measure millions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod riceps;
pub mod sample;
pub mod stream;
pub mod trace;
pub mod workload;

pub use census::{census, CensusResult};
pub use riceps::{all_benchmarks, BenchmarkSpec, ExpectedCount};
pub use sample::{sample_units, SampleConfig, SamplePlan, WeightedEstimate};
pub use stream::{dense_units, generated_unit, generated_units, riceps_units};
pub use trace::{TraceError, TraceReader, TraceWriter};
pub use workload::{linearized_problem, scaling_problem, LinearizedSpec};
