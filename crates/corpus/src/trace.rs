//! Compact binary record/replay of dependence-problem streams.
//!
//! A *trace* captures a [`BatchUnit`] stream — the exact corpus a bench or
//! CI run analyzed — as a versioned, checksummed record file, so the same
//! workload replays byte-identically later (and elsewhere) without
//! regenerating it from generator code that may since have changed. This is
//! the record half of the ROADMAP's trace-driven corpus scaling: CI replays
//! a small recorded suite in seconds, `--full` replays (or streams) a
//! multi-million-pair trace, and both are the *same bytes* the recording
//! run produced.
//!
//! # Format
//!
//! A small fixed header followed by self-delimiting records, mirroring the
//! persistent verdict-cache tier (`delin_vic::persist`):
//!
//! ```text
//! magic    b"DELINTR\x01"                      8 bytes
//! version  u32 LE                              format revision
//! record*  u32 len · u64 checksum · payload    until end of file
//! ```
//!
//! Each record payload packs one unit: name, mini-FORTRAN source, and the
//! unit's assumption environment (default lower bound plus per-symbol
//! bounds). Every record carries its own length prefix and FxHash checksum,
//! so truncation, bit flips, and malformed payloads are all detected **at
//! the first bad record** with a structured [`TraceError`] naming the
//! record index — the valid prefix is still usable, but a replay that wants
//! fidelity fails loudly instead of analyzing a silently shortened corpus.
//!
//! Unlike the verdict-cache tier, traces carry no fingerprints — only plain
//! bytes — so a trace written by one build replays under any other build of
//! the same format version.

use delin_numeric::Assumptions;
use delin_vic::batch::BatchUnit;
use std::fmt;
use std::hash::Hasher as _;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: "DELINTR" plus a format byte.
pub const MAGIC: &[u8; 8] = b"DELINTR\x01";

/// Format revision; bump on any layout change.
pub const VERSION: u32 = 1;

/// A structured trace-format failure. Every decoding error names the
/// zero-based record index at which trust ended; everything before it
/// decoded cleanly.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the trace magic.
    BadMagic,
    /// The file's format revision is not [`VERSION`].
    BadVersion {
        /// Revision found in the header.
        found: u32,
    },
    /// The file ends mid-record: the length prefix promises more bytes
    /// than remain.
    Truncated {
        /// Index of the incomplete record.
        record: usize,
    },
    /// A record's payload does not match its checksum.
    Corrupt {
        /// Index of the mismatching record.
        record: usize,
    },
    /// A record's framing and checksum were valid but its payload does not
    /// decode as a unit (an encoder bug or a crafted file).
    Malformed {
        /// Index of the undecodable record.
        record: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a delin trace (bad magic)"),
            TraceError::BadVersion { found } => {
                write!(f, "unsupported trace version {found} (expected {VERSION})")
            }
            TraceError::Truncated { record } => {
                write!(f, "trace truncated at record {record}")
            }
            TraceError::Corrupt { record } => {
                write!(f, "trace checksum mismatch at record {record}")
            }
            TraceError::Malformed { record } => {
                write!(f, "trace record {record} is framed correctly but does not decode")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = fxhash::FxHasher::default();
    h.write(payload);
    h.finish()
}

// ---------------------------------------------------------------- encoding

fn push_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_i128(b: &mut Vec<u8>, v: i128) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn push_bytes(b: &mut Vec<u8>, v: &[u8]) {
    push_u32(b, v.len() as u32);
    b.extend_from_slice(v);
}

/// Packs one unit into a record payload (no framing).
pub fn encode_unit(unit: &BatchUnit) -> Vec<u8> {
    let mut b = Vec::with_capacity(unit.name.len() + unit.source.len() + 32);
    push_bytes(&mut b, unit.name.as_bytes());
    push_bytes(&mut b, unit.source.as_bytes());
    push_i128(&mut b, unit.assumptions.default_lower_bound());
    push_u32(&mut b, unit.assumptions.len() as u32);
    for (sym, lb) in unit.assumptions.iter() {
        push_bytes(&mut b, sym.name().as_bytes());
        push_i128(&mut b, lb);
    }
    b
}

/// Decodes one record payload back into a unit. `None` means the payload
/// is malformed (wrong structure, over-long lengths, trailing garbage).
pub fn decode_unit(payload: &[u8]) -> Option<BatchUnit> {
    struct R<'a> {
        buf: &'a [u8],
        pos: usize,
    }
    impl<'a> R<'a> {
        fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let out = self.buf.get(self.pos..end)?;
            self.pos = end;
            Some(out)
        }
        fn u32(&mut self) -> Option<u32> {
            self.bytes(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        }
        fn i128(&mut self) -> Option<i128> {
            self.bytes(16).map(|b| i128::from_le_bytes(b.try_into().unwrap()))
        }
        fn blob(&mut self) -> Option<&'a [u8]> {
            let n = self.u32()? as usize;
            self.bytes(n)
        }
    }
    let mut r = R { buf: payload, pos: 0 };
    let name = String::from_utf8(r.blob()?.to_vec()).ok()?;
    let source = String::from_utf8(r.blob()?.to_vec()).ok()?;
    let default_lb = r.i128()?;
    let mut assumptions = if default_lb == 0 {
        Assumptions::new()
    } else {
        Assumptions::with_default_lower_bound(default_lb)
    };
    let n = r.u32()? as usize;
    for _ in 0..n {
        let sym = String::from_utf8(r.blob()?.to_vec()).ok()?;
        assumptions.set_lower_bound(sym.as_str(), r.i128()?);
    }
    if r.pos != payload.len() {
        return None; // trailing garbage inside a checksummed payload
    }
    Some(BatchUnit::new(name, source).with_assumptions(assumptions))
}

/// Frames one unit as `len · checksum · payload` onto `out`.
pub fn frame_unit(out: &mut Vec<u8>, unit: &BatchUnit) {
    let payload = encode_unit(unit);
    push_u32(out, payload.len() as u32);
    push_u64(out, checksum(&payload));
    out.extend_from_slice(&payload);
}

// ------------------------------------------------------------------ writer

/// Streams units into a trace, one framed record per unit. Nothing is
/// buffered beyond the writer `W` itself, so multi-million-unit corpora
/// record in constant memory.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    written: usize,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `out` by writing the header.
    pub fn new(mut out: W) -> std::io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(TraceWriter { out, written: 0 })
    }

    /// Appends one unit record.
    pub fn write_unit(&mut self, unit: &BatchUnit) -> std::io::Result<()> {
        let mut frame = Vec::new();
        frame_unit(&mut frame, unit);
        self.out.write_all(&frame)?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and returns the number of records written.
    pub fn finish(mut self) -> std::io::Result<usize> {
        self.out.flush()?;
        Ok(self.written)
    }
}

/// Records every unit of `units` to `path` (written atomically via a
/// sibling temporary file) and returns the record count.
pub fn record<I>(path: &Path, units: I) -> std::io::Result<usize>
where
    I: IntoIterator<Item = BatchUnit>,
{
    let tmp = path.with_extension("tmp");
    let file = std::fs::File::create(&tmp)?;
    let mut writer = TraceWriter::new(std::io::BufWriter::new(file))?;
    for unit in units {
        writer.write_unit(&unit)?;
    }
    let written = writer.finish()?;
    std::fs::rename(&tmp, path)?;
    Ok(written)
}

// ------------------------------------------------------------------ reader

/// Streams units back out of a trace.
///
/// The reader is an `Iterator<Item = BatchUnit>` that stops at end-of-file
/// *or* at the first invalid record; after iteration, [`TraceReader::error`]
/// distinguishes the two. This split lets a replay feed the batch engine a
/// plain unit iterator (the engine never sees half-decoded records) while
/// the caller still fails loudly when the trace was not fully trusted.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    /// Records decoded so far.
    decoded: usize,
    /// The error that stopped iteration, if any.
    error: Option<TraceError>,
}

impl TraceReader<BufReader<std::fs::File>> {
    /// Opens `path` and validates the header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        TraceReader::new(BufReader::new(std::fs::File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Validates the header on `input` and positions at the first record.
    pub fn new(mut input: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 8];
        read_exact_or(&mut input, &mut magic, TraceError::BadMagic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut version = [0u8; 4];
        read_exact_or(&mut input, &mut version, TraceError::BadVersion { found: 0 })?;
        let found = u32::from_le_bytes(version);
        if found != VERSION {
            return Err(TraceError::BadVersion { found });
        }
        Ok(TraceReader { input, decoded: 0, error: None })
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> usize {
        self.decoded
    }

    /// The error that ended iteration, if iteration did not end cleanly at
    /// end-of-file.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Consumes the reader, yielding `Ok(records_decoded)` on a clean
    /// end-of-file and the stopping error otherwise.
    pub fn finish(self) -> Result<usize, TraceError> {
        match self.error {
            None => Ok(self.decoded),
            Some(e) => Err(e),
        }
    }

    /// Reads the next framed record, or `None` at a clean end-of-file.
    fn next_record(&mut self) -> Result<Option<BatchUnit>, TraceError> {
        let record = self.decoded;
        let mut len = [0u8; 4];
        match self.input.read(&mut len)? {
            0 => return Ok(None), // clean end of file
            4 => {}
            n => {
                // A partial length prefix: try to complete it, treating a
                // short read as truncation.
                if self.input.read_exact(&mut len[n..]).is_err() {
                    return Err(TraceError::Truncated { record });
                }
            }
        }
        let len = u32::from_le_bytes(len) as usize;
        let mut sum = [0u8; 8];
        read_exact_or(&mut self.input, &mut sum, TraceError::Truncated { record })?;
        let sum = u64::from_le_bytes(sum);
        let mut payload = vec![0u8; len];
        read_exact_or(&mut self.input, &mut payload, TraceError::Truncated { record })?;
        if checksum(&payload) != sum {
            return Err(TraceError::Corrupt { record });
        }
        match decode_unit(&payload) {
            Some(unit) => {
                self.decoded += 1;
                Ok(Some(unit))
            }
            None => Err(TraceError::Malformed { record }),
        }
    }
}

fn read_exact_or<R: Read>(
    input: &mut R,
    buf: &mut [u8],
    err: TraceError,
) -> Result<(), TraceError> {
    input.read_exact(buf).map_err(|_| err)
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = BatchUnit;

    fn next(&mut self) -> Option<BatchUnit> {
        if self.error.is_some() {
            return None; // fused: trust ended at the first bad record
        }
        match self.next_record() {
            Ok(unit) => unit,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// Reads a whole trace into memory, failing on the first invalid record.
pub fn read_all(path: &Path) -> Result<Vec<BatchUnit>, TraceError> {
    let mut reader = TraceReader::open(path)?;
    let units: Vec<BatchUnit> = reader.by_ref().collect();
    reader.finish()?;
    Ok(units)
}

/// Header-and-framing summary of a trace file, for `delin_trace info`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// The file inspected.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Format revision from the header.
    pub version: u32,
    /// Records that decoded cleanly.
    pub units: usize,
    /// Total source bytes across decoded units.
    pub source_bytes: u64,
    /// Units carrying a non-empty assumption environment.
    pub symbolic_units: usize,
}

/// Scans `path`, validating every record, and summarizes it.
pub fn info(path: &Path) -> Result<TraceInfo, TraceError> {
    let bytes = std::fs::metadata(path)?.len();
    let mut reader = TraceReader::open(path)?;
    let mut source_bytes = 0u64;
    let mut symbolic_units = 0usize;
    for unit in reader.by_ref() {
        source_bytes += unit.source.len() as u64;
        symbolic_units += usize::from(!unit.assumptions.is_empty());
    }
    let units = reader.finish()?;
    Ok(TraceInfo {
        path: path.to_path_buf(),
        bytes,
        version: VERSION,
        units,
        source_bytes,
        symbolic_units,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(i: usize) -> BatchUnit {
        let mut assumptions = Assumptions::new();
        if i % 2 == 1 {
            assumptions.set_lower_bound("NX", 1 + i as i128);
        }
        BatchUnit::new(
            format!("t/{i:03}"),
            format!("REAL W(0:99)\nDO 1 I = 0, 9\n1 W(I + {i}) = W(I)\nEND\n"),
        )
        .with_assumptions(assumptions)
    }

    fn write_trace(units: &[BatchUnit]) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for u in units {
            w.write_unit(u).unwrap();
        }
        w.finish().unwrap();
        out
    }

    #[test]
    fn unit_codec_round_trips() {
        for i in 0..4 {
            let u = unit(i);
            let decoded = decode_unit(&encode_unit(&u)).expect("decodes");
            assert_eq!(decoded.name, u.name);
            assert_eq!(decoded.source, u.source);
            assert_eq!(decoded.assumptions, u.assumptions);
        }
    }

    #[test]
    fn default_lower_bound_survives_the_codec() {
        let u =
            BatchUnit::new("d", "END\n").with_assumptions(Assumptions::with_default_lower_bound(3));
        let decoded = decode_unit(&encode_unit(&u)).unwrap();
        assert_eq!(decoded.assumptions.default_lower_bound(), 3);
    }

    #[test]
    fn stream_round_trips_in_order() {
        let units: Vec<BatchUnit> = (0..5).map(unit).collect();
        let bytes = write_trace(&units);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let back: Vec<BatchUnit> = reader.by_ref().collect();
        assert_eq!(reader.finish().unwrap(), 5);
        assert_eq!(back.len(), units.len());
        for (a, b) in units.iter().zip(&back) {
            assert_eq!((&a.name, &a.source, &a.assumptions), (&b.name, &b.source, &b.assumptions));
        }
    }

    #[test]
    fn trailing_garbage_in_payload_is_malformed() {
        let mut payload = encode_unit(&unit(0));
        payload.push(0x55);
        assert!(decode_unit(&payload).is_none());
    }

    #[test]
    fn truncated_and_corrupt_streams_stop_at_first_bad_record() {
        let units: Vec<BatchUnit> = (0..3).map(unit).collect();
        let bytes = write_trace(&units);

        // Truncation mid-final-record.
        let cut = &bytes[..bytes.len() - 7];
        let mut reader = TraceReader::new(cut).unwrap();
        let ok: Vec<BatchUnit> = reader.by_ref().collect();
        assert_eq!(ok.len(), 2);
        assert!(matches!(reader.finish(), Err(TraceError::Truncated { record: 2 })));

        // A bit flip inside the second record's payload.
        let mut flipped = bytes.clone();
        let second_start = 12 + 12 + encode_unit(&units[0]).len();
        flipped[second_start + 12 + 4] ^= 0x01;
        let mut reader = TraceReader::new(&flipped[..]).unwrap();
        let ok: Vec<BatchUnit> = reader.by_ref().collect();
        assert_eq!(ok.len(), 1);
        assert!(matches!(reader.finish(), Err(TraceError::Corrupt { record: 1 })));
    }

    #[test]
    fn bad_magic_and_version_are_rejected_up_front() {
        let bytes = write_trace(&[unit(0)]);
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(TraceReader::new(&bad_magic[..]), Err(TraceError::BadMagic)));

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(matches!(
            TraceReader::new(&bad_version[..]),
            Err(TraceError::BadVersion { found: 99 })
        ));
    }
}
