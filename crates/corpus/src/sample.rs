//! SimPoint-style representative sampling of unit corpora.
//!
//! The full benchmark corpora are getting too large to analyze on every CI
//! run, and most units are near-duplicates of each other (the generators
//! draw from small structural pools on purpose). Borrowing the SimPoint
//! architecture — cluster cheap per-interval feature vectors, then simulate
//! only one representative per cluster, weighted by cluster size — this
//! module clusters *units* by a cheap structural feature vector and emits a
//! weighted representative subset whose weighted verdict counts estimate
//! the full corpus.
//!
//! # Feature vectors
//!
//! Features must be far cheaper than the quantity they predict (SimPoint
//! profiles basic blocks precisely because it cannot afford cycle-accurate
//! simulation everywhere). Here the expensive thing is dependence analysis,
//! so features come from a parse-and-collect pass only — no dependence test
//! runs. Per unit ([`FEATURE_NAMES`]):
//!
//! * **sites / writes** — access-site counts (the equation count of the
//!   dependence problems the unit will generate);
//! * **depth** — deepest normalized loop nest (subscript depth);
//! * **coupling** — most loop variables appearing in a single subscript;
//! * **sym-arity** — distinct symbolic coefficient names plus assumption
//!   environment size;
//! * **zif / siv / miv / symbolic** — the technique-outcome histogram:
//!   subscripts bucketed by the structural class that determines which
//!   dependence technique decides them (constant, single-index, coupled
//!   multi-index, run-time dimensioned);
//! * **linearized** — subscripts the paper's census counts as linearized
//!   (different-order contributions), the delinearization workload proper.
//!
//! # Clustering
//!
//! Seeded k-means (k-means++ initialization, deterministic tie-breaking
//! everywhere) over min-max-normalized vectors. For one seed the plan —
//! assignments, representatives, and weights — is a pure function of the
//! unit sequence, so two runs (or two worker counts: the sampler never
//! threads) produce identical subsets.

use crate::census;
use delin_frontend::access::{collect_accesses, Subscript};
use delin_frontend::induction::substitute_inductions;
use delin_frontend::parse_program;
use delin_vic::batch::BatchUnit;
use delin_vic::deps::VerdictStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Names of the per-unit feature dimensions, in vector order.
pub const FEATURE_NAMES: &[&str] = &[
    "sites",
    "writes",
    "depth",
    "coupling",
    "sym_arity",
    "zif",
    "siv",
    "miv",
    "symbolic",
    "linearized",
];

/// One unit's structural feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFeatures {
    /// The unit's name.
    pub name: String,
    /// One entry per [`FEATURE_NAMES`] dimension.
    pub vector: Vec<f64>,
}

/// Computes the feature vector of one unit. Units that fail to parse get
/// the all-zero vector, which clusters them together (they are all equally
/// trivial to "analyze").
pub fn unit_features(unit: &BatchUnit) -> UnitFeatures {
    let mut v = vec![0.0; FEATURE_NAMES.len()];
    if let Ok(program) = parse_program(&unit.source) {
        let (substituted, _) = substitute_inductions(&program);
        let sites = collect_accesses(&substituted, &unit.assumptions);
        let mut symbols: BTreeSet<String> = BTreeSet::new();
        for (sym, _) in unit.assumptions.iter() {
            symbols.insert(sym.name().to_string());
        }
        let mut depth = 0usize;
        let mut coupling = 0usize;
        let mut zif = 0usize;
        let mut siv = 0usize;
        let mut miv = 0usize;
        let mut symbolic = 0usize;
        let mut linearized = 0usize;
        let mut writes = 0usize;
        for site in &sites {
            writes += usize::from(matches!(site.kind, delin_frontend::access::AccessKind::Write));
            depth = depth.max(site.loops.len());
            for sub in &site.subscripts {
                let Subscript::Affine(a) = sub else { continue };
                coupling = coupling.max(a.num_vars());
                let mut has_symbolic = false;
                let mut magnitudes: BTreeSet<u128> = BTreeSet::new();
                for (_, c) in a.terms() {
                    match c.as_constant() {
                        Some(value) => {
                            magnitudes.insert(value.unsigned_abs());
                        }
                        None => {
                            has_symbolic = true;
                            for sym in c.symbols() {
                                symbols.insert(sym.name().to_string());
                            }
                        }
                    }
                }
                match (has_symbolic, a.num_vars()) {
                    (true, _) => symbolic += 1,
                    (false, 0) => zif += 1,
                    (false, 1) => siv += 1,
                    (false, _) => miv += 1,
                }
                if a.num_vars() >= 2 && (has_symbolic || magnitudes.len() >= 2) {
                    linearized += 1;
                }
            }
        }
        v[0] = sites.len() as f64;
        v[1] = writes as f64;
        v[2] = depth as f64;
        v[3] = coupling as f64;
        v[4] = symbols.len() as f64;
        v[5] = zif as f64;
        v[6] = siv as f64;
        v[7] = miv as f64;
        v[8] = symbolic as f64;
        v[9] = linearized as f64;
    }
    UnitFeatures { name: unit.name.clone(), vector: v }
}

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleConfig {
    /// Target cluster count (clamped to the corpus size).
    pub clusters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
    /// Iteration cap (assignments usually stabilize far earlier).
    pub iterations: usize,
}

impl Default for SampleConfig {
    fn default() -> SampleConfig {
        SampleConfig { clusters: 8, seed: 0xde11_4ea1, iterations: 64 }
    }
}

/// One cluster's elected representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Representative {
    /// Index of the representative unit in the input sequence.
    pub index: usize,
    /// The representative unit's name.
    pub name: String,
    /// Cluster size: how many corpus units this representative stands for
    /// (including itself). Weighted estimates scale the representative's
    /// per-unit statistics by this count.
    pub weight: usize,
}

/// A weighted representative subset of a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePlan {
    /// Elected representatives, sorted by input index.
    pub representatives: Vec<Representative>,
    /// Cluster id of every input unit (parallel to the input sequence).
    pub assignments: Vec<usize>,
    /// Units in the input sequence.
    pub total_units: usize,
}

impl SamplePlan {
    /// Fraction of the corpus the sampled run actually analyzes.
    pub fn sampled_fraction(&self) -> f64 {
        if self.total_units == 0 {
            return 0.0;
        }
        self.representatives.len() as f64 / self.total_units as f64
    }
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Min-max normalizes each dimension in place so no feature dominates the
/// distance metric by unit of measure alone. Constant dimensions become 0.
fn normalize(vectors: &mut [Vec<f64>]) {
    if vectors.is_empty() {
        return;
    }
    let dims = vectors[0].len();
    for d in 0..dims {
        let min = vectors.iter().map(|v| v[d]).fold(f64::INFINITY, f64::min);
        let max = vectors.iter().map(|v| v[d]).fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        for v in vectors.iter_mut() {
            v[d] = if range > 0.0 { (v[d] - min) / range } else { 0.0 };
        }
    }
}

/// Clusters `features` with seeded k-means and elects one weighted
/// representative per cluster. Deterministic for a fixed config: ties in
/// every argmin/argmax break toward the lowest index.
pub fn sample_features(features: &[UnitFeatures], config: &SampleConfig) -> SamplePlan {
    let n = features.len();
    if n == 0 {
        return SamplePlan { representatives: Vec::new(), assignments: Vec::new(), total_units: 0 };
    }
    let mut vectors: Vec<Vec<f64>> = features.iter().map(|f| f.vector.clone()).collect();
    normalize(&mut vectors);
    let k = config.clusters.clamp(1, n);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // k-means++ initialization: the first centroid is drawn uniformly, each
    // later one proportionally to squared distance from the chosen set.
    let mut centroids: Vec<Vec<f64>> = vec![vectors[rng.gen_range(0..n)].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = vectors
            .iter()
            .map(|v| centroids.iter().map(|c| squared_distance(v, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total > 0.0 {
            // Inverse-CDF draw over the d² weights; deterministic in seed.
            // (The vendored rand shim has no float ranges, so the uniform
            // fraction comes from an integer draw.)
            let mut target = rng.gen_range(0..1_000_000u64) as f64 / 1.0e6 * total;
            let mut chosen = 0;
            for (i, w) in d2.iter().enumerate() {
                chosen = i;
                if target < *w {
                    break;
                }
                target -= w;
            }
            chosen
        } else {
            rng.gen_range(0..n) // all points coincide with a centroid
        };
        centroids.push(vectors[next].clone());
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..config.iterations.max(1) {
        // Assignment step (ties toward the lowest cluster id).
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = squared_distance(v, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step; an emptied cluster is reseeded to the point farthest
        // from its centroid set (lowest index on ties) so k never shrinks.
        for c in 0..k {
            let members: Vec<&Vec<f64>> =
                vectors.iter().zip(&assignments).filter(|(_, &a)| a == c).map(|(v, _)| v).collect();
            if members.is_empty() {
                let far = vectors
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| {
                        let da = centroids
                            .iter()
                            .map(|x| squared_distance(a, x))
                            .fold(f64::INFINITY, f64::min);
                        let db = centroids
                            .iter()
                            .map(|x| squared_distance(b, x))
                            .fold(f64::INFINITY, f64::min);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal).then(ib.cmp(ia))
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = vectors[far].clone();
                changed = true;
                continue;
            }
            let dims = centroids[c].len();
            let mut mean = vec![0.0; dims];
            for v in &members {
                for (m, x) in mean.iter_mut().zip(v.iter()) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= members.len() as f64;
            }
            centroids[c] = mean;
        }
        if !changed {
            break;
        }
    }

    // Elect the member closest to each centroid (lowest index on ties).
    let mut representatives = Vec::new();
    for (c, centroid) in centroids.iter().enumerate().take(k) {
        let mut best: Option<(usize, f64)> = None;
        let mut weight = 0usize;
        for (i, v) in vectors.iter().enumerate() {
            if assignments[i] != c {
                continue;
            }
            weight += 1;
            let d = squared_distance(v, centroid);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((index, _)) = best {
            representatives.push(Representative {
                index,
                name: features[index].name.clone(),
                weight,
            });
        }
    }
    representatives.sort_by_key(|r| r.index);
    SamplePlan { representatives, assignments, total_units: n }
}

/// Convenience: features then clustering in one call.
pub fn sample_units(units: &[BatchUnit], config: &SampleConfig) -> SamplePlan {
    let features: Vec<UnitFeatures> = units.iter().map(unit_features).collect();
    sample_features(&features, config)
}

/// The weighted full-corpus estimate extrapolated from representative
/// verdict statistics: each representative's scheduling-independent counts,
/// scaled by its cluster weight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightedEstimate {
    /// Estimated reference pairs across the full corpus.
    pub pairs_tested: f64,
    /// Estimated pairs proven independent.
    pub proven_independent: f64,
    /// Estimated conservative (all-`*`) pairs.
    pub conservative_pairs: f64,
    /// Estimated exact-solver nodes.
    pub solver_nodes: f64,
    /// Estimated pairs per deciding technique.
    pub decided_by: BTreeMap<String, f64>,
}

impl WeightedEstimate {
    /// Extrapolates from per-representative stats, ordered like
    /// [`SamplePlan::representatives`].
    pub fn from_stats(plan: &SamplePlan, rep_stats: &[VerdictStats]) -> WeightedEstimate {
        let mut est = WeightedEstimate::default();
        for (rep, stats) in plan.representatives.iter().zip(rep_stats) {
            let w = rep.weight as f64;
            est.pairs_tested += w * stats.pairs_tested as f64;
            est.proven_independent += w * stats.proven_independent as f64;
            est.conservative_pairs += w * stats.conservative_pairs as f64;
            est.solver_nodes += w * stats.solver_nodes as f64;
            for (&name, &count) in &stats.decided_by {
                *est.decided_by.entry(name.to_string()).or_insert(0.0) += w * count as f64;
            }
        }
        est
    }

    /// The verdict-mix error of this estimate against the measured full
    /// corpus, in percent: the worst of (a) the relative pair-count error
    /// and (b) the absolute difference of each verdict-mix share
    /// (independent, conservative, and per-technique decided-by, all as
    /// fractions of pairs tested).
    pub fn mix_error_pct(&self, full: &VerdictStats) -> f64 {
        let full_pairs = full.pairs_tested as f64;
        if full_pairs == 0.0 {
            return if self.pairs_tested == 0.0 { 0.0 } else { 100.0 };
        }
        let est_pairs = self.pairs_tested.max(f64::MIN_POSITIVE);
        let mut worst = (self.pairs_tested - full_pairs).abs() / full_pairs;
        let mut shares: Vec<(f64, f64)> = vec![
            (self.proven_independent / est_pairs, full.proven_independent as f64 / full_pairs),
            (self.conservative_pairs / est_pairs, full.conservative_pairs as f64 / full_pairs),
        ];
        let mut techniques: BTreeSet<String> = self.decided_by.keys().cloned().collect();
        techniques.extend(full.decided_by.keys().map(|k| k.to_string()));
        for t in techniques {
            let est = self.decided_by.get(&t).copied().unwrap_or(0.0) / est_pairs;
            let measured =
                full.decided_by.get(t.as_str()).copied().unwrap_or(0) as f64 / full_pairs;
            shares.push((est, measured));
        }
        for (est, measured) in shares {
            worst = worst.max((est - measured).abs());
        }
        worst * 100.0
    }
}

/// Cheap corpus-level census sanity used by the bench layer's sampled
/// reports: how many units the census would call linearized at all.
pub fn linearized_unit_count(units: &[BatchUnit]) -> usize {
    units
        .iter()
        .filter(|u| {
            parse_program(&u.source)
                .map(|p| census::census(&p, &u.assumptions).linearized_refs > 0)
                .unwrap_or(false)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{generated_units, refinement_units};

    #[test]
    fn features_are_structural_and_deterministic() {
        let units: Vec<BatchUnit> = generated_units(9, 7).collect();
        let a: Vec<UnitFeatures> = units.iter().map(unit_features).collect();
        let b: Vec<UnitFeatures> = units.iter().map(unit_features).collect();
        assert_eq!(a, b);
        for f in &a {
            assert_eq!(f.vector.len(), FEATURE_NAMES.len());
        }
        // Generated units are two-deep nests with coupled subscripts.
        let classic = &a[1]; // index 1: constant-stride variant
        assert!(classic.vector[2] >= 2.0, "depth: {:?}", classic.vector);
        assert!(classic.vector[3] >= 2.0, "coupling: {:?}", classic.vector);
        // Symbolic-stride units (every third) report symbolic subscripts.
        assert!(a[0].vector[8] > 0.0, "symbolic: {:?}", a[0].vector);
        assert_eq!(a[1].vector[8], 0.0, "constant unit: {:?}", a[1].vector);
    }

    #[test]
    fn unparseable_units_get_zero_vectors() {
        let f = unit_features(&BatchUnit::new("bad", "DO 1 i = \nEND\n"));
        assert!(f.vector.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn sampling_is_deterministic_and_covers_the_corpus() {
        let units: Vec<BatchUnit> = generated_units(18, 7).chain(refinement_units(12, 3)).collect();
        let config = SampleConfig { clusters: 5, seed: 11, iterations: 64 };
        let a = sample_units(&units, &config);
        let b = sample_units(&units, &config);
        assert_eq!(a, b, "fixed seed must reproduce the plan exactly");
        assert_eq!(a.total_units, units.len());
        assert!(!a.representatives.is_empty());
        assert!(a.representatives.len() <= 5);
        let total_weight: usize = a.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(total_weight, units.len(), "weights must partition the corpus");
        assert!(a.sampled_fraction() < 1.0, "sampling must actually shrink the corpus");
        // A different seed is allowed to pick different representatives but
        // must still partition the corpus.
        let c = sample_units(&units, &SampleConfig { seed: 12, ..config });
        let w: usize = c.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(w, units.len());
    }

    #[test]
    fn clusters_clamp_to_corpus_size() {
        let units: Vec<BatchUnit> = generated_units(3, 7).collect();
        let plan = sample_units(&units, &SampleConfig { clusters: 50, seed: 1, iterations: 8 });
        assert!(plan.representatives.len() <= 3);
        let w: usize = plan.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(w, 3);
    }

    #[test]
    fn weighted_estimate_is_exact_on_identical_units() {
        // Ten copies of one unit cluster together; the weighted estimate
        // from the single representative must reproduce the full corpus
        // verdict mix exactly.
        let units: Vec<BatchUnit> = (0..10)
            .map(|i| {
                BatchUnit::new(
                    format!("same/{i}"),
                    "REAL C(0:399)\nDO 1 i = 0, 4\nDO 1 j = 0, 9\n\
                     1   C(i + 10*j) = C(i + 10*j + 5)\nEND\n",
                )
            })
            .collect();
        let plan = sample_units(&units, &SampleConfig { clusters: 3, seed: 7, iterations: 16 });
        let runner = delin_vic::batch::BatchRunner::new(delin_vic::batch::BatchConfig {
            workers: 1,
            ..delin_vic::batch::BatchConfig::default()
        });
        let full = runner.run(units.clone());
        let reps: Vec<BatchUnit> =
            plan.representatives.iter().map(|r| units[r.index].clone()).collect();
        let rep_stats: Vec<VerdictStats> = {
            let stats = runner.run(reps);
            plan.representatives
                .iter()
                .map(|r| {
                    stats
                        .units
                        .iter()
                        .find(|u| u.name == units[r.index].name)
                        .expect("representative report")
                        .stats
                        .verdict_stats()
                })
                .collect()
        };
        let est = WeightedEstimate::from_stats(&plan, &rep_stats);
        let full_totals = full.totals.verdict_stats();
        assert_eq!(est.pairs_tested, full_totals.pairs_tested as f64);
        assert!(est.mix_error_pct(&full_totals) < 1e-9, "{}", est.mix_error_pct(&full_totals));
    }
}
