//! Synthetic RiCEPS-like corpus (Fig. 1 substitution).
//!
//! The real RiCEPS suite (Porterfield 1989) is not available, so each of
//! the eight programs is replaced by a deterministic synthetic
//! mini-FORTRAN program with the same reported size class and the same
//! number of loop nests containing linearized references. The kernels
//! mirror what the paper describes: run-time dimensioning via symbolic
//! strides for the large codes (BOAST, CCM), hand-linearized constant
//! strides elsewhere, multi-loop induction variables in BOAST, and
//! ordinary multidimensional code as filler.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Expected Fig. 1 count of linearized loop nests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedCount {
    /// The paper reports "more than" this many.
    AtLeast(usize),
    /// The paper reports exactly this many.
    Exactly(usize),
}

impl ExpectedCount {
    /// Does a measured count satisfy the expectation?
    pub fn matches(&self, measured: usize) -> bool {
        match *self {
            ExpectedCount::AtLeast(n) => measured > n,
            ExpectedCount::Exactly(n) => measured == n,
        }
    }
}

impl std::fmt::Display for ExpectedCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpectedCount::AtLeast(n) => write!(f, ">{n}"),
            ExpectedCount::Exactly(n) => write!(f, "{n}"),
        }
    }
}

/// One benchmark of the synthetic suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Program name (as in Fig. 1).
    pub name: &'static str,
    /// Program domain (Fig. 1's "Type" column).
    pub domain: &'static str,
    /// Approximate line count reported in Fig. 1.
    pub lines: usize,
    /// Expected number of loop nests with linearized references.
    pub expected: ExpectedCount,
    /// Whether the program uses run-time dimensioning (symbolic strides).
    pub run_time_dimensioning: bool,
    /// Whether the program contains multi-loop induction variables.
    pub induction_variables: bool,
}

/// The eight programs of Fig. 1.
pub fn all_benchmarks() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "BOAST",
            domain: "Reservoir Simulation",
            lines: 7000,
            expected: ExpectedCount::AtLeast(28),
            run_time_dimensioning: true,
            induction_variables: true,
        },
        BenchmarkSpec {
            name: "CCM",
            domain: "Atmospheric",
            lines: 24000,
            expected: ExpectedCount::AtLeast(24),
            run_time_dimensioning: true,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "LINPACKD",
            domain: "Linear Algebra",
            lines: 400,
            expected: ExpectedCount::Exactly(0),
            run_time_dimensioning: false,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "QCD",
            domain: "Quantum Chromodynamics",
            lines: 2000,
            expected: ExpectedCount::Exactly(2),
            run_time_dimensioning: false,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "SIMPLE",
            domain: "Fluid Flow",
            lines: 1000,
            expected: ExpectedCount::Exactly(0),
            run_time_dimensioning: false,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "SPHOT",
            domain: "Particle Transport",
            lines: 1000,
            expected: ExpectedCount::Exactly(2),
            run_time_dimensioning: false,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "TRACK",
            domain: "Trajectory Plot",
            lines: 4000,
            expected: ExpectedCount::Exactly(5),
            run_time_dimensioning: false,
            induction_variables: false,
        },
        BenchmarkSpec {
            name: "WANAL1",
            domain: "Wave Equation",
            lines: 2000,
            expected: ExpectedCount::Exactly(4),
            run_time_dimensioning: false,
            induction_variables: false,
        },
    ]
}

/// How many linearized nests the generator emits for a spec (Fig. 1's
/// exact counts; "more than n" becomes `n + 3`).
pub fn target_nests(spec: &BenchmarkSpec) -> usize {
    match spec.expected {
        ExpectedCount::AtLeast(n) => n + 3,
        ExpectedCount::Exactly(n) => n,
    }
}

/// Generates the synthetic program for a spec (deterministic), at the
/// spec's reported size class.
pub fn generate(spec: &BenchmarkSpec) -> String {
    generate_scaled(spec, spec.lines)
}

/// Generates a size-reduced variant with the same linearized-nest counts;
/// used by the quadratic-cost end-to-end vectorizer experiment (E9).
pub fn generate_scaled(spec: &BenchmarkSpec, lines: usize) -> String {
    let mut seed = [0u8; 32];
    for (i, b) in spec.name.bytes().enumerate() {
        seed[i % 32] ^= b;
    }
    let mut rng = SmallRng::from_seed(seed);
    let mut out = String::new();
    let _ = writeln!(out, "PROGRAM {}", spec.name);

    let linearized = target_nests(spec);
    // Declarations.
    let _ = writeln!(out, "REAL WORK(0:99999), GRID(0:99, 0:99), VEC(0:999)");
    let _ = writeln!(out, "REAL FLUX(0:99, 0:99, 0:9), ACC(0:999)");

    let mut nests = 0usize;
    let mut line_estimate = 6usize;
    let mut induction_done = !spec.induction_variables;

    // Linearized nests first.
    for n in 0..linearized {
        if !induction_done && n == 0 {
            // The BOAST pattern: a multi-loop induction variable.
            let _ = writeln!(out, "IB = -1");
            let _ = writeln!(out, "DO 9{n:03} I = 0, 9");
            let _ = writeln!(out, "DO 9{n:03} J = 0, 9");
            let _ = writeln!(out, "DO 9{n:03} K = 0, 9");
            let _ = writeln!(out, "  IB = IB + 1");
            let _ = writeln!(out, "  ACC(J) = ACC(J) + 1");
            let _ = writeln!(out, "9{n:03} WORK(IB) = WORK(IB) + 1");
            induction_done = true;
            nests += 1;
            line_estimate += 8;
            continue;
        }
        let offset = rng.gen_range(0..7);
        if spec.run_time_dimensioning {
            // Run-time dimensioning: symbolic strides. The I range stops
            // `offset` short of the row end so the shifted reference stays
            // within the same J-row (otherwise the dependence is real).
            let _ = writeln!(out, "DO 8{n:03} J = 0, NY - 1");
            let _ = writeln!(out, "DO 8{n:03} I = 0, NX - 1 - {offset}");
            let _ = writeln!(out, "8{n:03} WORK(I + NX*J) = WORK(I + NX*J + {offset}) + 1");
        } else {
            let stride = [10i128, 16, 100][rng.gen_range(0..3)];
            let ubound = stride - 1 - offset.max(1) as i128;
            let _ = writeln!(out, "DO 8{n:03} J = 0, 9");
            let _ = writeln!(out, "DO 8{n:03} I = 0, {}", ubound.max(1));
            let _ =
                writeln!(out, "8{n:03} WORK(I + {stride}*J) = WORK(I + {stride}*J + {offset}) + 1");
        }
        nests += 1;
        line_estimate += 4;
    }

    // Filler: ordinary multidimensional and 1-D nests plus scalar code up
    // to the reported size class.
    let mut filler = 0usize;
    while line_estimate + 2 < lines {
        match filler % 4 {
            0 => {
                let _ = writeln!(out, "DO 7{filler:04} I = 0, 99");
                let _ = writeln!(out, "DO 7{filler:04} J = 0, 99");
                let _ = writeln!(out, "7{filler:04} GRID(I, J) = GRID(I, J) + 1");
                line_estimate += 3;
            }
            1 => {
                let k = rng.gen_range(1..5);
                let _ = writeln!(out, "DO 7{filler:04} I = 0, 99");
                let _ = writeln!(out, "7{filler:04} VEC(I) = VEC(I + {k}) * 2");
                line_estimate += 2;
            }
            2 => {
                let _ = writeln!(out, "DO 7{filler:04} K = 0, 9");
                let _ = writeln!(out, "DO 7{filler:04} J = 0, 99");
                let _ = writeln!(out, "DO 7{filler:04} I = 0, 99");
                let _ = writeln!(out, "7{filler:04} FLUX(I, J, K) = FLUX(I, J, K) + GRID(I, J)");
                line_estimate += 4;
            }
            _ => {
                let c = rng.gen_range(1..100);
                let _ = writeln!(out, "S{filler:04} = S{filler:04} + {c}");
                line_estimate += 1;
            }
        }
        filler += 1;
    }
    let _ = writeln!(out, "END");
    debug_assert!(nests == linearized);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census;
    use delin_frontend::parse_program;
    use delin_numeric::Assumptions;

    #[test]
    fn figure1_metadata() {
        let specs = all_benchmarks();
        assert_eq!(specs.len(), 8);
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["BOAST", "CCM", "LINPACKD", "QCD", "SIMPLE", "SPHOT", "TRACK", "WANAL1"]
        );
        assert_eq!(specs.iter().map(|s| s.lines).sum::<usize>(), 41400);
        assert_eq!(ExpectedCount::AtLeast(28).to_string(), ">28");
        assert_eq!(ExpectedCount::Exactly(5).to_string(), "5");
        assert!(ExpectedCount::AtLeast(28).matches(31));
        assert!(!ExpectedCount::AtLeast(28).matches(28));
        assert!(ExpectedCount::Exactly(5).matches(5));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &all_benchmarks()[3]; // QCD
        assert_eq!(generate(spec), generate(spec));
    }

    #[test]
    fn generated_programs_parse_and_census_matches_figure1() {
        for spec in all_benchmarks() {
            let src = generate(&spec);
            let program = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let result = census(&program, &Assumptions::new());
            assert!(
                spec.expected.matches(result.linearized_nests),
                "{}: expected {}, measured {}",
                spec.name,
                spec.expected,
                result.linearized_nests
            );
            // Size class is approximately honoured (within 40%).
            let lines = src.lines().count();
            assert!(
                lines as f64 > spec.lines as f64 * 0.6,
                "{}: only {lines} lines generated for a {}-line program",
                spec.name,
                spec.lines
            );
        }
    }

    #[test]
    fn boast_contains_induction_pattern() {
        let spec = all_benchmarks().into_iter().find(|s| s.name == "BOAST").unwrap();
        let src = generate(&spec);
        assert!(src.contains("IB = IB + 1"));
        let program = parse_program(&src).unwrap();
        let result = census(&program, &Assumptions::new());
        assert_eq!(result.induction_variables, 1);
    }
}
