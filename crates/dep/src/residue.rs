//! The Simple Loop Residue test (Maydan–Hennessy–Lam 1991).
//!
//! Applicable when every constraint is a *difference* constraint
//! `x − y = c`, `x = c`, or comes from the variable bounds. The constraints
//! are turned into a graph with one node per variable plus a zero node and
//! one weighted edge per inequality `x − y ≤ c`; a negative-weight cycle
//! (a "loop" with negative "residue") proves infeasibility. Because
//! difference-constraint systems are totally unimodular, the real
//! relaxation is exact over the integers, so both answers are exact within
//! the applicability domain.

use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};

/// The Simple Loop Residue dependence test.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopResidueTest;

/// A difference constraint `u − v ≤ w` encoded as edge `v → u` with
/// weight `w` (Bellman–Ford convention: `d[u] ≤ d[v] + w`).
#[derive(Debug, Clone, Copy)]
struct Edge {
    from: usize,
    to: usize,
    weight: i128,
}

/// Extracts difference constraints; `None` when some constraint is not a
/// difference form.
fn difference_edges(problem: &DependenceProblem<i128>) -> Option<Vec<Edge>> {
    let n = problem.num_vars();
    let zero = n; // extra node representing the constant 0
    let mut edges = Vec::new();
    // Bounds: 0 ≤ x ≤ U  ⇒  x − 0 ≤ U and 0 − x ≤ 0.
    for (k, v) in problem.vars().iter().enumerate() {
        edges.push(Edge { from: zero, to: k, weight: v.upper });
        edges.push(Edge { from: k, to: zero, weight: 0 });
    }
    let push_le = |edges: &mut Vec<Edge>, x: usize, y: usize, c: i128| {
        // x − y ≤ c
        edges.push(Edge { from: y, to: x, weight: c });
    };
    let handle = |edges: &mut Vec<Edge>, c0: i128, coeffs: &[i128], is_eq: bool| -> bool {
        let active: Vec<usize> =
            coeffs.iter().enumerate().filter(|(_, &c)| c != 0).map(|(k, _)| k).collect();
        match active.len() {
            0 => {
                if is_eq && c0 != 0 {
                    // 0 = c0 ≠ 0: encode an immediate contradiction as a
                    // negative self-loop on the zero node.
                    edges.push(Edge { from: zero, to: zero, weight: -1 });
                }
                if !is_eq && c0 < 0 {
                    edges.push(Edge { from: zero, to: zero, weight: -1 });
                }
                true
            }
            1 => {
                let k = active[0];
                let a = coeffs[k];
                if a.abs() != 1 {
                    return false;
                }
                // a·x + c0 = 0  ⇒  x = -c0/a; as two ≤ constraints vs zero.
                // a·x + c0 ≥ 0  ⇒  x ≥ -c0 (a=1) or x ≤ c0 (a=-1).
                if is_eq {
                    let v = -c0 * a;
                    push_le(edges, k, zero, v);
                    push_le(edges, zero, k, -v);
                } else if a == 1 {
                    // x ≥ -c0 ⇔ 0 - x ≤ c0
                    push_le(edges, zero, k, c0);
                } else {
                    // -x + c0 ≥ 0 ⇔ x ≤ c0
                    push_le(edges, k, zero, c0);
                }
                true
            }
            2 => {
                let (x, y) = (active[0], active[1]);
                let (a, b) = (coeffs[x], coeffs[y]);
                // Must be x − y + c0 (= | ≥) 0 up to overall sign.
                let (x, y, c0) = if a == 1 && b == -1 {
                    (x, y, c0)
                } else if a == -1 && b == 1 {
                    (y, x, c0)
                } else {
                    return false;
                };
                // x − y + c0 = 0 ⇒ x − y ≤ -c0 and y − x ≤ c0.
                // x − y + c0 ≥ 0 ⇒ y − x ≤ c0.
                push_le(edges, y, x, c0);
                if is_eq {
                    push_le(edges, x, y, -c0);
                }
                true
            }
            _ => false,
        }
    };
    for eq in problem.equations() {
        if !handle(&mut edges, eq.c0, &eq.coeffs, true) {
            return None;
        }
    }
    for iq in problem.inequalities() {
        if !handle(&mut edges, iq.c0, &iq.coeffs, false) {
            return None;
        }
    }
    Some(edges)
}

/// Bellman–Ford: `Some(potentials)` when no negative cycle exists.
fn feasible_potentials(num_nodes: usize, edges: &[Edge]) -> Option<Vec<i128>> {
    let mut dist = vec![0i128; num_nodes];
    for _ in 0..num_nodes {
        let mut changed = false;
        for e in edges {
            let cand = dist[e.from].saturating_add(e.weight);
            if cand < dist[e.to] {
                dist[e.to] = cand;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
    }
    // One more pass: any further relaxation implies a negative cycle.
    for e in edges {
        if dist[e.from].saturating_add(e.weight) < dist[e.to] {
            return None;
        }
    }
    Some(dist)
}

impl DependenceTest<i128> for LoopResidueTest {
    fn name(&self) -> &'static str {
        "loop-residue"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        if problem.vars().iter().any(|v| v.upper < 0) {
            return Verdict::Independent;
        }
        let Some(edges) = difference_edges(problem) else {
            return Verdict::Unknown;
        };
        let n = problem.num_vars();
        match feasible_potentials(n + 1, &edges) {
            None => Verdict::Independent,
            Some(dist) => {
                // Shift potentials so the zero node sits at 0; the result
                // solves every difference constraint.
                let base = dist[n];
                let witness: Vec<i128> = (0..n).map(|k| dist[k] - base).collect();
                match problem.is_solution(&witness) {
                    Ok(true) => Verdict::Dependent {
                        exact: true,
                        info: DependenceInfo {
                            witness: Some(witness),
                            ..DependenceInfo::default()
                        },
                    },
                    _ => Verdict::Dependent { exact: false, info: DependenceInfo::default() },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirvec::Dir;
    use crate::exact::{ExactSolver, SolveOutcome};

    #[test]
    fn difference_chain() {
        // x - y = 3, y - z = 4, bounds [0,5]: x = z + 7 > 5: infeasible.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 5);
        b.var("y", 5);
        b.var("z", 5);
        b.equation(-3, vec![1, -1, 0]);
        b.equation(-4, vec![0, 1, -1]);
        let p = b.build();
        assert!(LoopResidueTest.test(&p).is_independent());
        // x - y = 3, y - z = 2: feasible (x=5,y=2,z=0).
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 5);
        b.var("y", 5);
        b.var("z", 5);
        b.equation(-3, vec![1, -1, 0]);
        b.equation(-2, vec![0, 1, -1]);
        let p = b.build();
        match LoopResidueTest.test(&p) {
            Verdict::Dependent { exact, info } => {
                assert!(exact);
                assert!(p.is_solution(&info.witness.unwrap()).unwrap());
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn works_with_direction_inequalities() {
        // x - y = 0 with direction `<` (y - x - 1 >= 0) is infeasible.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 8);
        let y = b.var("y", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build().with_direction(0, Dir::Lt).unwrap();
        assert!(LoopResidueTest.test(&p).is_independent());
    }

    #[test]
    fn inapplicable_shapes() {
        // Coefficient 10 is not a difference constraint.
        let p = DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(LoopResidueTest.test(&p).is_unknown());
        // Same-sign pair x + y = 2.
        let p = DependenceProblem::single_equation(-2, vec![1, 1], vec![5, 5]);
        assert!(LoopResidueTest.test(&p).is_unknown());
    }

    #[test]
    fn constant_contradictions() {
        let p = DependenceProblem::single_equation(7, vec![0, 0], vec![5, 5]);
        assert!(LoopResidueTest.test(&p).is_independent());
    }

    #[test]
    fn agrees_with_exact_on_difference_systems() {
        let solver = ExactSolver::default();
        for c1 in -7i128..=7 {
            for c2 in -7i128..=7 {
                let mut b = DependenceProblem::<i128>::builder();
                b.var("x", 4);
                b.var("y", 6);
                b.var("z", 3);
                b.equation(-c1, vec![1, -1, 0]);
                b.equation(-c2, vec![0, -1, 1]);
                let p = b.build();
                let got = LoopResidueTest.test(&p);
                match solver.solve(&p) {
                    SolveOutcome::Solution(_) => {
                        assert!(got.is_dependent(), "c1={c1} c2={c2}")
                    }
                    SolveOutcome::NoSolution => {
                        assert!(got.is_independent(), "c1={c1} c2={c2}")
                    }
                    SolveOutcome::Degraded(_) => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn single_var_equations() {
        // x = 3 within [0,5] plus x = 3 again: fine.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 5);
        b.equation(-3, vec![1]);
        b.equation(-3, vec![1]);
        let p = b.build();
        assert!(LoopResidueTest.test(&p).is_dependent());
        // x = 7 out of bounds: infeasible.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 5);
        b.equation(-7, vec![1]);
        let p = b.build();
        assert!(LoopResidueTest.test(&p).is_independent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&LoopResidueTest), "loop-residue");
    }
}
