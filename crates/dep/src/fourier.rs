//! Fourier–Motzkin elimination (Dantzig–Eaves 1973; Maydan–Hennessy–Lam
//! 1991), with optional Pugh-style normalization/tightening.
//!
//! Plain FM decides *real* feasibility of a conjunction of linear
//! inequalities; the paper lists it among the techniques that cannot
//! disprove the motivating linearized example. With Pugh's normalization —
//! dividing each constraint by the gcd of its coefficients and flooring the
//! constant — the eliminator reasons about integers and *does* disprove it,
//! exactly as the paper remarks (`[Pug91]` normalization "being applied to
//! this problem together with Fourier–Motzkin elimination returns
//! independent"). The cost is the classic constraint blow-up, which the
//! efficiency experiment (E7) measures against delinearization's `O(n)`.

use crate::problem::DependenceProblem;
use crate::verdict::{DependenceTest, Verdict};
use delin_numeric::gcd;
use delin_numeric::int::floor_div;

/// Fourier–Motzkin eliminator.
#[derive(Debug, Clone)]
pub struct FourierMotzkin {
    /// Apply integer normalization (divide by coefficient gcd, floor the
    /// bound). Off = pure real-valued FM.
    pub integer_tightening: bool,
    /// Abort (verdict `Unknown`) when more than this many constraints are
    /// alive at once.
    pub constraint_limit: usize,
}

impl Default for FourierMotzkin {
    fn default() -> Self {
        FourierMotzkin { integer_tightening: true, constraint_limit: 50_000 }
    }
}

impl FourierMotzkin {
    /// A real-valued (no tightening) eliminator.
    pub fn real() -> FourierMotzkin {
        FourierMotzkin { integer_tightening: false, ..FourierMotzkin::default() }
    }

    /// An integer-tightened eliminator (Pugh normalization).
    pub fn tightened() -> FourierMotzkin {
        FourierMotzkin::default()
    }
}

/// Cost counters for the efficiency experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FmStats {
    /// Total constraints ever created (including the initial ones).
    pub constraints_generated: usize,
    /// Peak number of simultaneously alive constraints.
    pub peak_alive: usize,
    /// Number of variable eliminations performed.
    pub eliminations: usize,
}

/// `Σ coeffs[k]·z_k ≤ bound`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Row {
    coeffs: Vec<i128>,
    bound: i128,
}

impl Row {
    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Pugh normalization: divide by the gcd of the coefficients and floor
    /// the bound (sound for integer solutions).
    fn tighten(&mut self) {
        let g = self.coeffs.iter().fold(0i128, |g, &c| gcd(g, c));
        if g > 1 {
            for c in &mut self.coeffs {
                *c /= g;
            }
            self.bound = floor_div(self.bound, g).expect("g > 1");
        }
    }
}

/// The outcome of running the eliminator, with cost counters.
#[derive(Debug, Clone)]
pub struct FmRun {
    /// The verdict.
    pub verdict: Verdict,
    /// Cost counters.
    pub stats: FmStats,
}

impl FourierMotzkin {
    /// Runs elimination to completion and returns the verdict plus stats.
    pub fn run(&self, problem: &DependenceProblem<i128>) -> FmRun {
        let mut stats = FmStats::default();
        if problem.vars().iter().any(|v| v.upper < 0) {
            return FmRun { verdict: Verdict::Independent, stats };
        }
        let n = problem.num_vars();
        let mut eqs: Vec<(Vec<i128>, i128)> =
            problem.equations().iter().map(|eq| (eq.coeffs.to_vec(), eq.c0)).collect();
        let mut rows: Vec<Row> = Vec::new();
        for iq in problem.inequalities() {
            rows.push(Row { coeffs: iq.coeffs.iter().map(|c| -c).collect(), bound: iq.c0 });
        }
        for (k, v) in problem.vars().iter().enumerate() {
            let mut up = vec![0i128; n];
            up[k] = 1;
            rows.push(Row { coeffs: up.clone(), bound: v.upper });
            up[k] = -1;
            rows.push(Row { coeffs: up, bound: 0 });
        }
        let mut remaining: Vec<usize> = (0..n).collect();

        // Pugh normalization of equalities: divide by the coefficient gcd
        // (divisibility failure proves independence) and substitute away
        // unit-coefficient variables exactly.
        if self.integer_tightening {
            loop {
                // Normalize every equality.
                for (coeffs, c0) in &mut eqs {
                    let g = coeffs.iter().fold(0i128, |g, &c| gcd(g, c));
                    if g == 0 {
                        if *c0 != 0 {
                            return FmRun { verdict: Verdict::Independent, stats };
                        }
                        continue;
                    }
                    if *c0 % g != 0 {
                        return FmRun { verdict: Verdict::Independent, stats };
                    }
                    if g > 1 {
                        for c in coeffs.iter_mut() {
                            *c /= g;
                        }
                        *c0 /= g;
                    }
                }
                eqs.retain(|(coeffs, _)| coeffs.iter().any(|&c| c != 0));
                // Find an equality with a unit-coefficient variable.
                let Some((ei, var)) = eqs.iter().enumerate().find_map(|(ei, (coeffs, _))| {
                    coeffs.iter().position(|&c| c.abs() == 1).map(|var| (ei, var))
                }) else {
                    break;
                };
                let (src_coeffs, src_c0) = eqs.swap_remove(ei);
                let s = src_coeffs[var]; // ±1
                stats.eliminations += 1;
                remaining.retain(|&k| k != var);
                // v = -s·(c0 + Σ_{k≠var} c_k z_k); substitute everywhere.
                let subst_eq = |coeffs: &mut Vec<i128>, c0: &mut i128| -> Option<()> {
                    let a_v = coeffs[var];
                    if a_v == 0 {
                        return Some(());
                    }
                    let f = a_v.checked_mul(s)?;
                    for (k, c) in coeffs.iter_mut().enumerate() {
                        *c = c.checked_sub(f.checked_mul(src_coeffs[k])?)?;
                    }
                    *c0 = c0.checked_sub(f.checked_mul(src_c0)?)?;
                    debug_assert_eq!(coeffs[var], 0);
                    Some(())
                };
                for (coeffs, c0) in &mut eqs {
                    if subst_eq(coeffs, c0).is_none() {
                        return FmRun { verdict: Verdict::Unknown, stats };
                    }
                }
                for row in &mut rows {
                    // Row: Σ a z ≤ b with a_v on v; substitution adds
                    // -a_v·s·(equation) to cancel v:
                    // new a_k = a_k - a_v·s·c_k, new b = b + a_v·s·c0.
                    let a_v = row.coeffs[var];
                    if a_v == 0 {
                        continue;
                    }
                    let Some(f) = a_v.checked_mul(s) else {
                        return FmRun { verdict: Verdict::Unknown, stats };
                    };
                    let mut ok = true;
                    for (k, c) in row.coeffs.iter_mut().enumerate() {
                        match f.checked_mul(src_coeffs[k]).and_then(|t| c.checked_sub(t)) {
                            Some(v) => *c = v,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    match f.checked_mul(src_c0).and_then(|t| row.bound.checked_add(t)) {
                        Some(b) if ok => row.bound = b,
                        _ => return FmRun { verdict: Verdict::Unknown, stats },
                    }
                    debug_assert_eq!(row.coeffs[var], 0);
                }
            }
        }

        // Remaining equalities become row pairs.
        for (coeffs, c0) in eqs {
            rows.push(Row { coeffs: coeffs.clone(), bound: -c0 });
            rows.push(Row { coeffs: coeffs.iter().map(|c| -c).collect(), bound: c0 });
        }
        stats.constraints_generated += rows.len();
        stats.peak_alive = rows.len();
        loop {
            if self.integer_tightening {
                for r in &mut rows {
                    r.tighten();
                }
            }
            self.dedup(&mut rows);
            // Constant rows decide feasibility of this level.
            if rows.iter().any(|r| r.is_constant() && r.bound < 0) {
                return FmRun { verdict: Verdict::Independent, stats };
            }
            rows.retain(|r| !r.is_constant());
            if remaining.is_empty() {
                // All variables eliminated without contradiction.
                return FmRun { verdict: Verdict::maybe_dependent(), stats };
            }
            // Pick the variable minimizing the pos*neg product; break ties
            // towards the smallest maximum |coefficient| so that
            // unit-coefficient variables are eliminated first (no
            // multiplier inflation, which lets tightening bite).
            let (pick_idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    let pos = rows.iter().filter(|r| r.coeffs[k] > 0).count();
                    let neg = rows.iter().filter(|r| r.coeffs[k] < 0).count();
                    let max_abs = rows.iter().map(|r| r.coeffs[k].abs()).max().unwrap_or(0);
                    (i, (pos * neg, max_abs))
                })
                .min_by_key(|&(_, cost)| cost)
                .expect("remaining nonempty");
            let var = remaining.swap_remove(pick_idx);
            stats.eliminations += 1;

            let (pos, rest): (Vec<Row>, Vec<Row>) =
                rows.into_iter().partition(|r| r.coeffs[var] > 0);
            let (neg, keep): (Vec<Row>, Vec<Row>) =
                rest.into_iter().partition(|r| r.coeffs[var] < 0);
            let mut next = keep;
            for p in &pos {
                for q in &neg {
                    let a = p.coeffs[var];
                    let b = -q.coeffs[var];
                    let Some(row) = combine(p, q, b, a) else {
                        return FmRun { verdict: Verdict::Unknown, stats };
                    };
                    next.push(row);
                    stats.constraints_generated += 1;
                    if next.len() > self.constraint_limit {
                        return FmRun { verdict: Verdict::Unknown, stats };
                    }
                }
            }
            stats.peak_alive = stats.peak_alive.max(next.len());
            rows = next;
        }
    }

    /// Removes duplicate rows, keeping the tightest bound per coefficient
    /// vector.
    fn dedup(&self, rows: &mut Vec<Row>) {
        use std::collections::HashMap;
        let mut best: HashMap<Vec<i128>, i128> = HashMap::new();
        for r in rows.drain(..) {
            best.entry(r.coeffs).and_modify(|b| *b = (*b).min(r.bound)).or_insert(r.bound);
        }
        rows.extend(best.into_iter().map(|(coeffs, bound)| Row { coeffs, bound }));
    }
}

/// `m1·p + m2·q` with checked arithmetic (`None` on overflow).
fn combine(p: &Row, q: &Row, m1: i128, m2: i128) -> Option<Row> {
    let mut coeffs = Vec::with_capacity(p.coeffs.len());
    for (a, b) in p.coeffs.iter().zip(&q.coeffs) {
        coeffs.push(a.checked_mul(m1)?.checked_add(b.checked_mul(m2)?)?);
    }
    let bound = p.bound.checked_mul(m1)?.checked_add(q.bound.checked_mul(m2)?)?;
    Some(Row { coeffs, bound })
}

impl DependenceTest<i128> for FourierMotzkin {
    fn name(&self) -> &'static str {
        if self.integer_tightening {
            "fourier-motzkin+tighten"
        } else {
            "fourier-motzkin"
        }
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        self.run(problem).verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirvec::Dir;
    use crate::exact::{ExactSolver, SolveOutcome};

    fn motivating() -> DependenceProblem<i128> {
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn real_fm_cannot_disprove_motivating_example() {
        // Real solutions exist (e.g. j fractional), so pure FM says maybe.
        assert!(FourierMotzkin::real().test(&motivating()).is_dependent());
    }

    #[test]
    fn tightened_fm_disproves_motivating_example() {
        // The paper: Pugh's normalization + FM returns independent.
        assert!(FourierMotzkin::tightened().test(&motivating()).is_independent());
    }

    #[test]
    fn real_infeasibility_detected_by_both() {
        let p = DependenceProblem::single_equation(-100, vec![1, -1], vec![4, 4]);
        assert!(FourierMotzkin::real().test(&p).is_independent());
        assert!(FourierMotzkin::tightened().test(&p).is_independent());
    }

    #[test]
    fn feasible_system() {
        let p = DependenceProblem::single_equation(-1, vec![1, -1], vec![8, 8]);
        assert!(FourierMotzkin::real().test(&p).is_dependent());
        assert!(FourierMotzkin::tightened().test(&p).is_dependent());
    }

    #[test]
    fn respects_directions() {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 8);
        let y = b.var("y", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        let lt = p.with_direction(0, Dir::Lt).unwrap();
        assert!(FourierMotzkin::real().test(&lt).is_independent());
        let eq = p.with_direction(0, Dir::Eq).unwrap();
        assert!(FourierMotzkin::real().test(&eq).is_dependent());
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        assert!(FourierMotzkin::real().test(&p).is_independent());
    }

    #[test]
    fn stats_are_populated() {
        let run = FourierMotzkin::tightened().run(&motivating());
        assert!(run.stats.constraints_generated >= 10);
        assert!(run.stats.eliminations > 0);
        assert!(run.stats.peak_alive > 0);
    }

    #[test]
    fn constraint_limit_aborts_to_unknown() {
        let fm = FourierMotzkin { integer_tightening: false, constraint_limit: 3 };
        // Needs more than 3 alive constraints.
        let v = fm.test(&motivating());
        assert!(v.is_unknown());
    }

    #[test]
    fn tightening_never_contradicts_exact_solver() {
        // Soundness: whenever tightened FM says independent, the exact
        // solver agrees there is no solution.
        let solver = ExactSolver::default();
        for c0 in -25i128..=25 {
            for a in [1i128, 2, 10] {
                for b in [-10i128, -3, 7] {
                    let p = DependenceProblem::single_equation(c0, vec![a, b, -1], vec![4, 5, 6]);
                    let v = FourierMotzkin::tightened().test(&p);
                    if v.is_independent() {
                        assert_eq!(
                            solver.solve(&p),
                            SolveOutcome::NoSolution,
                            "c0={c0} a={a} b={b}"
                        );
                    }
                    if let SolveOutcome::Solution(_) = solver.solve(&p) {
                        assert!(v.is_dependent(), "c0={c0} a={a} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(DependenceTest::<i128>::name(&FourierMotzkin::real()), "fourier-motzkin");
        assert_eq!(
            DependenceTest::<i128>::name(&FourierMotzkin::tightened()),
            "fourier-motzkin+tighten"
        );
    }
}
