//! The λ-test (Li–Yew–Zhu 1989) for coupled multidimensional subscripts.
//!
//! When a dependence system has several equations sharing variables
//! (coupled subscripts), per-equation Banerjee bounds miss the coupling.
//! The λ-test examines *linear combinations* `λ1·eq1 + λ2·eq2` chosen to
//! cancel one variable and applies the Banerjee bounds to each combination:
//! if any combined hyperplane misses the iteration box, the intersection
//! of the original hyperplanes misses it too, proving independence. Like
//! Banerjee, the test is real-valued, so it cannot disprove the paper's
//! motivating (single-equation) example — and on single-equation systems
//! it degenerates to Banerjee exactly.

use crate::banerjee::{equation_range, EquationRange};
use crate::problem::{DependenceProblem, LinEq};
use crate::verdict::{DependenceTest, Verdict};
use delin_numeric::Coeff;

/// The λ-test.
#[derive(Debug, Clone, Copy, Default)]
pub struct LambdaTest;

/// Builds `λ1·a + λ2·b` for two equations.
fn combine<C: Coeff>(a: &LinEq<C>, l1: &C, b: &LinEq<C>, l2: &C) -> Option<LinEq<C>> {
    let c0 = a.c0.checked_mul(l1).ok()?.checked_add(&b.c0.checked_mul(l2).ok()?).ok()?;
    let mut coeffs = Vec::with_capacity(a.coeffs.len());
    for (x, y) in a.coeffs.iter().zip(&b.coeffs) {
        coeffs.push(x.checked_mul(l1).ok()?.checked_add(&y.checked_mul(l2).ok()?).ok()?);
    }
    Some(LinEq { c0, coeffs: coeffs.into() })
}

impl<C: Coeff> DependenceTest<C> for LambdaTest {
    fn name(&self) -> &'static str {
        "lambda"
    }

    fn test(&self, problem: &DependenceProblem<C>) -> Verdict {
        let a = problem.assumptions();
        for v in problem.vars() {
            if v.upper.is_nonneg(a).is_false() {
                return Verdict::Independent;
            }
        }
        // Candidate combinations: every original equation, plus for every
        // pair of equations and every shared variable, the combination
        // canceling that variable.
        let eqs = problem.equations();
        let mut candidates: Vec<LinEq<C>> = eqs.to_vec();
        for i in 0..eqs.len() {
            for j in (i + 1)..eqs.len() {
                for k in 0..problem.num_vars() {
                    let ci = &eqs[i].coeffs[k];
                    let cj = &eqs[j].coeffs[k];
                    if ci.is_zero() || cj.is_zero() {
                        continue;
                    }
                    // λ1 = cj, λ2 = -ci cancels variable k.
                    let Ok(neg_ci) = ci.checked_neg() else { continue };
                    if let Some(comb) = combine(&eqs[i], cj, &eqs[j], &neg_ci) {
                        candidates.push(comb);
                    }
                }
            }
        }
        let mut decided_all = true;
        for eq in &candidates {
            match equation_range(problem, eq, &[]) {
                Some(EquationRange::EmptyRegion) => return Verdict::Independent,
                Some(EquationRange::Range(r)) => {
                    if r.min_positive(a) || r.max_negative(a) {
                        return Verdict::Independent;
                    }
                    if !r.signs_known(a) {
                        decided_all = false;
                    }
                }
                None => decided_all = false,
            }
        }
        if decided_all {
            Verdict::maybe_dependent()
        } else {
            Verdict::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banerjee::BanerjeeTest;

    #[test]
    fn degenerates_to_banerjee_on_single_equation() {
        let cases = [
            (-5i128, vec![1i128, 10, -1, -10], vec![4i128, 9, 4, 9]),
            (-100, vec![1, -1, 0, 0], vec![4, 4, 4, 4]),
            (0, vec![1, -1, 0, 0], vec![4, 4, 4, 4]),
        ];
        for (c0, coeffs, uppers) in cases {
            let p = DependenceProblem::single_equation(c0, coeffs, uppers);
            let lam = LambdaTest.test(&p);
            let ban = BanerjeeTest.test(&p);
            assert_eq!(lam.is_independent(), ban.is_independent());
        }
    }

    #[test]
    fn catches_coupled_subscripts() {
        // Coupled subscripts with i in [0,8], j in [0,22]:
        //   eq1: i - j = 0, eq2: i + j - 30 = 0.
        // Each hyperplane crosses the box (eq1 obviously; eq2 at e.g.
        // (8,22)), but their intersection is i = j = 15, outside i's range.
        // The combination canceling j, eq1 + eq2 = 2i - 30, ranges over
        // [-30, -14] on the box: independent.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("i", 8);
        b.var("j", 22);
        b.equation(0, vec![1, -1]);
        b.equation(-30, vec![1, 1]);
        let p = b.build();
        assert!(BanerjeeTest.test(&p).is_dependent(), "per-equation Banerjee misses this");
        assert!(LambdaTest.test(&p).is_independent());
    }

    #[test]
    fn coupled_but_feasible() {
        // eq1: i - j = 0, eq2: i + j - 8 = 0 => i = j = 4 inside the box.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("i", 8);
        b.var("j", 8);
        b.equation(0, vec![1, -1]);
        b.equation(-8, vec![1, 1]);
        let p = b.build();
        assert!(LambdaTest.test(&p).is_dependent());
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1], vec![-1]);
        assert!(LambdaTest.test(&p).is_independent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&LambdaTest), "lambda");
    }
}
