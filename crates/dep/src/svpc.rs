//! The Single Variable Per Constraint test (Maydan–Hennessy–Lam 1991).
//!
//! Applicable when every equation of the system constrains at most one
//! variable. Each such equation either fixes its variable to a rational
//! value (independent when the value is fractional or out of bounds) or is
//! a tautology/contradiction. Conflicting fixings across equations also
//! prove independence. Exact within its applicability domain.

use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};

/// The Single Variable Per Constraint dependence test.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvpcTest;

impl DependenceTest<i128> for SvpcTest {
    fn name(&self) -> &'static str {
        "svpc"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        if problem.vars().iter().any(|v| v.upper < 0) {
            return Verdict::Independent;
        }
        let n = problem.num_vars();
        let mut fixed: Vec<Option<i128>> = vec![None; n];
        for eq in problem.equations() {
            let active: Vec<usize> = eq.active_vars().collect();
            match active.len() {
                0 => {
                    if eq.c0 != 0 {
                        return Verdict::Independent;
                    }
                }
                1 => {
                    let k = active[0];
                    let a = eq.coeffs[k];
                    if eq.c0 % a != 0 {
                        return Verdict::Independent;
                    }
                    let v = -eq.c0 / a;
                    if v < 0 || v > problem.vars()[k].upper {
                        return Verdict::Independent;
                    }
                    match fixed[k] {
                        None => fixed[k] = Some(v),
                        Some(prev) if prev != v => return Verdict::Independent,
                        Some(_) => {}
                    }
                }
                _ => return Verdict::Unknown,
            }
        }
        // All equations are satisfiable and consistent. Build a witness
        // (free variables at 0) and validate it against the remaining
        // constraints (inequalities); failure downgrades exactness.
        let witness: Vec<i128> = fixed.iter().map(|f| f.unwrap_or(0)).collect();
        match problem.is_solution(&witness) {
            Ok(true) => Verdict::Dependent {
                exact: true,
                info: DependenceInfo { witness: Some(witness), ..DependenceInfo::default() },
            },
            _ => Verdict::Dependent { exact: false, info: DependenceInfo::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decides_single_var_systems() {
        // 2x = 6, y free: dependent with witness x=3.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.equation(-6, vec![2, 0]);
        let p = b.build();
        match SvpcTest.test(&p) {
            Verdict::Dependent { exact, info } => {
                assert!(exact);
                assert_eq!(info.witness, Some(vec![3, 0]));
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn detects_fractional_and_out_of_bounds() {
        let p = DependenceProblem::single_equation(-7, vec![2], vec![10]);
        assert!(SvpcTest.test(&p).is_independent()); // x = 3.5
        let p = DependenceProblem::single_equation(-22, vec![2], vec![10]);
        assert!(SvpcTest.test(&p).is_independent()); // x = 11 > 10
        let p = DependenceProblem::single_equation(4, vec![2], vec![10]);
        assert!(SvpcTest.test(&p).is_independent()); // x = -2 < 0
    }

    #[test]
    fn detects_conflicts() {
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.equation(-3, vec![1]); // x = 3
        b.equation(-4, vec![1]); // x = 4
        let p = b.build();
        assert!(SvpcTest.test(&p).is_independent());
        // Agreement is fine.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.equation(-3, vec![1]);
        b.equation(-6, vec![2]);
        let p = b.build();
        assert!(SvpcTest.test(&p).is_dependent());
    }

    #[test]
    fn contradictory_constant_equation() {
        let p = DependenceProblem::single_equation(5, vec![0, 0], vec![3, 3]);
        assert!(SvpcTest.test(&p).is_independent());
    }

    #[test]
    fn inapplicable_on_multivar() {
        // The paper lists SVPC among the tests that cannot disprove the
        // motivating example; in our framework it is simply inapplicable.
        let p = DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(SvpcTest.test(&p).is_unknown());
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1], vec![-2]);
        assert!(SvpcTest.test(&p).is_independent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&SvpcTest), "svpc");
    }
}
