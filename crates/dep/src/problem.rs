//! The constrained-equation form of a dependence question.
//!
//! Following the paper's Section 2, a dependence between two references
//! `A(f1(x̄), …, fl(x̄))` and `A(g1(ȳ), …, gl(ȳ))` exists iff there are
//! integers `αi ∈ [0, Xi]`, `βj ∈ [0, Yj]` with `fi(ᾱ) = gi(β̄)` for every
//! dimension `i`. After moving everything to one side, each dimension
//! yields one *linear equation* `c0 + Σ ck·zk = 0` over the combined
//! variable list `z̄ = (x̄, ȳ)`, each variable normalized to `[0, Zk]`.
//!
//! [`DependenceProblem`] holds that system, the pairing between source and
//! sink variables of *common* loops (needed for direction vectors), and
//! optional inequality constraints used to impose direction predicates.

use crate::dirvec::Dir;
use delin_numeric::{Affine, Assumptions, Coeff, NumericError, VarId};
use std::fmt;

/// One variable of a dependence problem: a normalized loop variable ranging
/// over `[0, upper]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo<C> {
    /// Human-readable name (e.g. `i1`, `j2`).
    pub name: String,
    /// Inclusive upper bound; the lower bound is always `0`.
    pub upper: C,
}

/// A linear equation `c0 + Σ coeffs[k]·z_k = 0` over the problem variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinEq<C> {
    /// The constant term.
    pub c0: C,
    /// One coefficient per problem variable (dense; zeros allowed).
    pub coeffs: Vec<C>,
}

impl<C: Coeff> LinEq<C> {
    /// Number of variables with a nonzero coefficient.
    pub fn num_active_vars(&self) -> usize {
        self.coeffs.iter().filter(|c| !c.is_zero()).count()
    }

    /// Indices of variables with a nonzero coefficient.
    pub fn active_vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.coeffs.iter().enumerate().filter(|(_, c)| !c.is_zero()).map(|(k, _)| k)
    }

    /// Evaluates `c0 + Σ coeffs[k]·vals[k]`.
    pub fn eval(&self, vals: &[C]) -> Result<C, NumericError> {
        let mut acc = self.c0.clone();
        for (c, v) in self.coeffs.iter().zip(vals) {
            acc = acc.checked_add(&c.checked_mul(v)?)?;
        }
        Ok(acc)
    }
}

/// A linear inequality `c0 + Σ coeffs[k]·z_k ≥ 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinIneq<C> {
    /// The constant term.
    pub c0: C,
    /// One coefficient per problem variable (dense; zeros allowed).
    pub coeffs: Vec<C>,
}

impl<C: Coeff> LinIneq<C> {
    /// Evaluates the left-hand side `c0 + Σ coeffs[k]·vals[k]`.
    pub fn eval(&self, vals: &[C]) -> Result<C, NumericError> {
        LinEq { c0: self.c0.clone(), coeffs: self.coeffs.clone() }.eval(vals)
    }
}

/// A dependence question in constrained-equation form.
///
/// Construct through [`ProblemBuilder`] or the convenience constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceProblem<C> {
    vars: Vec<VarInfo<C>>,
    equations: Vec<LinEq<C>>,
    inequalities: Vec<LinIneq<C>>,
    /// Per common loop, the (source-variable, sink-variable) index pair.
    common: Vec<(usize, usize)>,
    assumptions: Assumptions,
}

impl<C: Coeff> DependenceProblem<C> {
    /// Starts building a problem.
    pub fn builder() -> ProblemBuilder<C> {
        ProblemBuilder::new()
    }

    /// Convenience: a single-equation problem `c0 + Σ ck·zk = 0` with
    /// `zk ∈ [0, Zk]` and no common-loop pairing — the exact shape used
    /// throughout the paper's examples.
    ///
    /// # Panics
    ///
    /// Panics when `coeffs` and `uppers` have different lengths.
    pub fn single_equation(c0: C, coeffs: Vec<C>, uppers: Vec<C>) -> DependenceProblem<C> {
        assert_eq!(coeffs.len(), uppers.len(), "coefficient/bound length mismatch");
        let vars = uppers
            .into_iter()
            .enumerate()
            .map(|(k, u)| VarInfo { name: format!("z{}", k + 1), upper: u })
            .collect();
        DependenceProblem {
            vars,
            equations: vec![LinEq { c0, coeffs }],
            inequalities: Vec::new(),
            common: Vec::new(),
            assumptions: Assumptions::new(),
        }
    }

    /// The problem variables.
    pub fn vars(&self) -> &[VarInfo<C>] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The equations of the system.
    pub fn equations(&self) -> &[LinEq<C>] {
        &self.equations
    }

    /// The inequality constraints (each `… ≥ 0`).
    pub fn inequalities(&self) -> &[LinIneq<C>] {
        &self.inequalities
    }

    /// The common-loop pairing: for loop level `l` (0-based), the indices of
    /// the source and sink variables.
    pub fn common_loops(&self) -> &[(usize, usize)] {
        &self.common
    }

    /// Symbolic assumptions in force for this problem.
    pub fn assumptions(&self) -> &Assumptions {
        &self.assumptions
    }

    /// `true` when every coefficient, constant, and bound is a concrete
    /// integer.
    pub fn is_concrete(&self) -> bool {
        self.vars.iter().all(|v| v.upper.as_i128().is_some())
            && self
                .equations
                .iter()
                .all(|e| e.c0.as_i128().is_some() && e.coeffs.iter().all(|c| c.as_i128().is_some()))
            && self
                .inequalities
                .iter()
                .all(|e| e.c0.as_i128().is_some() && e.coeffs.iter().all(|c| c.as_i128().is_some()))
    }

    /// Returns a copy with a direction predicate imposed on common loop
    /// `level` as inequality/equation constraints:
    ///
    /// * `<` adds `y − x − 1 ≥ 0`;
    /// * `=` adds the equation `x − y = 0`;
    /// * `>` adds `x − y − 1 ≥ 0`;
    /// * `≤`, `≥`, `≠`, `*` likewise (`≠` is not convex and is rejected).
    ///
    /// # Errors
    ///
    /// Returns an error for `≠` (callers should split it into `<` and `>`)
    /// or when arithmetic overflows.
    pub fn with_direction(
        &self,
        level: usize,
        dir: Dir,
    ) -> Result<DependenceProblem<C>, NumericError> {
        let (x, y) = self.common[level];
        let n = self.num_vars();
        let mut out = self.clone();
        let coeffs_xy = |cx: i128, cy: i128| {
            let mut v: Vec<C> = (0..n).map(|_| C::zero()).collect();
            v[x] = C::from_i128(cx);
            v[y] = C::from_i128(cy);
            v
        };
        match dir {
            Dir::Any => {}
            Dir::Lt => {
                out.inequalities.push(LinIneq { c0: C::from_i128(-1), coeffs: coeffs_xy(-1, 1) })
            }
            Dir::Le => out.inequalities.push(LinIneq { c0: C::zero(), coeffs: coeffs_xy(-1, 1) }),
            Dir::Eq => out.equations.push(LinEq { c0: C::zero(), coeffs: coeffs_xy(1, -1) }),
            Dir::Ge => out.inequalities.push(LinIneq { c0: C::zero(), coeffs: coeffs_xy(1, -1) }),
            Dir::Gt => {
                out.inequalities.push(LinIneq { c0: C::from_i128(-1), coeffs: coeffs_xy(1, -1) })
            }
            Dir::Ne => {
                return Err(NumericError::NotConcrete {
                    what: "direction `!=` cannot be imposed as a convex constraint".into(),
                })
            }
        }
        Ok(out)
    }

    /// Returns a copy with all direction predicates of a vector imposed
    /// (element `l` applies to common loop `l`).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`DependenceProblem::with_direction`].
    pub fn with_directions(&self, dirs: &[Dir]) -> Result<DependenceProblem<C>, NumericError> {
        let mut p = self.clone();
        for (l, &d) in dirs.iter().enumerate() {
            p = p.with_direction(l, d)?;
        }
        Ok(p)
    }

    /// Returns a copy with one extra inequality `c0 + Σ coeffs[k]·z_k ≥ 0`
    /// (zero-extended to the variable count).
    pub fn with_inequality(&self, c0: C, mut coeffs: Vec<C>) -> DependenceProblem<C> {
        let mut out = self.clone();
        coeffs.resize_with(self.num_vars(), C::zero);
        out.inequalities.push(LinIneq { c0, coeffs });
        out
    }

    /// Checks a concrete assignment against all equations, inequalities and
    /// bounds; used by tests and the exact solver.
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation overflows.
    pub fn is_solution(&self, vals: &[C]) -> Result<bool, NumericError> {
        let a = &self.assumptions;
        for (v, val) in self.vars.iter().zip(vals) {
            if !val.is_nonneg(a).is_true() {
                return Ok(false);
            }
            if !val.le(&v.upper, a).is_true() {
                return Ok(false);
            }
        }
        for eq in &self.equations {
            if !eq.eval(vals)?.is_zero() {
                return Ok(false);
            }
        }
        for ineq in &self.inequalities {
            if !ineq.eval(vals)?.is_nonneg(a).is_true() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Incremental builder for [`DependenceProblem`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder<C> {
    vars: Vec<VarInfo<C>>,
    equations: Vec<LinEq<C>>,
    inequalities: Vec<LinIneq<C>>,
    common: Vec<(usize, usize)>,
    assumptions: Assumptions,
}

impl<C: Coeff> Default for ProblemBuilder<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Coeff> ProblemBuilder<C> {
    /// An empty builder.
    pub fn new() -> ProblemBuilder<C> {
        ProblemBuilder {
            vars: Vec::new(),
            equations: Vec::new(),
            inequalities: Vec::new(),
            common: Vec::new(),
            assumptions: Assumptions::new(),
        }
    }

    /// Adds a variable with range `[0, upper]`; returns its index.
    pub fn var(&mut self, name: impl Into<String>, upper: C) -> usize {
        self.vars.push(VarInfo { name: name.into(), upper });
        self.vars.len() - 1
    }

    /// Adds the equation `c0 + Σ coeffs[k]·z_k = 0`. Shorter coefficient
    /// vectors are zero-extended to the final variable count at build time.
    pub fn equation(&mut self, c0: C, coeffs: Vec<C>) -> &mut Self {
        self.equations.push(LinEq { c0, coeffs });
        self
    }

    /// Adds the inequality `c0 + Σ coeffs[k]·z_k ≥ 0` (zero-extended like
    /// equations).
    pub fn inequality(&mut self, c0: C, coeffs: Vec<C>) -> &mut Self {
        self.inequalities.push(LinIneq { c0, coeffs });
        self
    }

    /// Declares that source variable `x` and sink variable `y` instantiate
    /// the same common loop (order of calls = loop nesting order).
    pub fn common_pair(&mut self, x: usize, y: usize) -> &mut Self {
        self.common.push((x, y));
        self
    }

    /// Installs symbolic assumptions.
    pub fn assumptions(&mut self, a: Assumptions) -> &mut Self {
        self.assumptions = a;
        self
    }

    /// Builds an equation from the difference of two affine subscripts,
    /// where `src` is expressed over variables `src_map[k] = problem var` and
    /// `snk` likewise: the equation is `src(x̄) − snk(ȳ) = 0`.
    ///
    /// # Errors
    ///
    /// Returns an error on arithmetic overflow.
    pub fn equation_from_subscripts(
        &mut self,
        src: &Affine<C>,
        src_map: &[usize],
        snk: &Affine<C>,
        snk_map: &[usize],
    ) -> Result<&mut Self, NumericError> {
        let n = self.vars.len();
        let mut coeffs: Vec<C> = (0..n).map(|_| C::zero()).collect();
        let c0 = src.constant_part().checked_sub(snk.constant_part())?;
        // Guard against maps that don't cover the subscript variables.
        for (v, c) in src.terms() {
            let VarId(idx) = v;
            let slot = *src_map.get(idx as usize).ok_or_else(|| NumericError::NotConcrete {
                what: format!("source subscript variable {v} has no problem mapping"),
            })?;
            coeffs[slot] = coeffs[slot].checked_add(c)?;
        }
        for (v, c) in snk.terms() {
            let VarId(idx) = v;
            let slot = *snk_map.get(idx as usize).ok_or_else(|| NumericError::NotConcrete {
                what: format!("sink subscript variable {v} has no problem mapping"),
            })?;
            coeffs[slot] = coeffs[slot].checked_sub(c)?;
        }
        self.equations.push(LinEq { c0, coeffs });
        Ok(self)
    }

    /// Finalizes the problem, zero-extending all coefficient vectors.
    pub fn build(&mut self) -> DependenceProblem<C> {
        let n = self.vars.len();
        for eq in &mut self.equations {
            eq.coeffs.resize_with(n, C::zero);
        }
        for ineq in &mut self.inequalities {
            ineq.coeffs.resize_with(n, C::zero);
        }
        DependenceProblem {
            vars: std::mem::take(&mut self.vars),
            equations: std::mem::take(&mut self.equations),
            inequalities: std::mem::take(&mut self.inequalities),
            common: std::mem::take(&mut self.common),
            assumptions: std::mem::take(&mut self.assumptions),
        }
    }
}

impl<C: Coeff> fmt::Display for DependenceProblem<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for eq in &self.equations {
            write!(f, "0 = {}", eq.c0)?;
            for (k, c) in eq.coeffs.iter().enumerate() {
                if !c.is_zero() {
                    write!(f, " + {}*{}", c, self.vars[k].name)?;
                }
            }
            writeln!(f)?;
        }
        for ineq in &self.inequalities {
            write!(f, "0 <= {}", ineq.c0)?;
            for (k, c) in ineq.coeffs.iter().enumerate() {
                if !c.is_zero() {
                    write!(f, " + {}*{}", c, self.vars[k].name)?;
                }
            }
            writeln!(f)?;
        }
        for v in &self.vars {
            writeln!(f, "{} in [0, {}]", v.name, v.upper)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's motivating equation:
    /// `i1 + 10 j1 − i2 − 10 j2 − 5 = 0`, `i ∈ [0,4]`, `j ∈ [0,9]`.
    pub fn motivating() -> DependenceProblem<i128> {
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn single_equation_shape() {
        let p = motivating();
        assert_eq!(p.num_vars(), 4);
        assert_eq!(p.equations().len(), 1);
        assert_eq!(p.equations()[0].num_active_vars(), 4);
        assert!(p.is_concrete());
        assert!(p.inequalities().is_empty());
        assert_eq!(p.vars()[0].name, "z1");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn single_equation_validates() {
        let _ = DependenceProblem::single_equation(0i128, vec![1], vec![1, 2]);
    }

    #[test]
    fn builder_and_directions() {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(-1, vec![1, -1]); // i1 - i2 = 1
        b.common_pair(x, y);
        let p = b.build();
        assert_eq!(p.common_loops(), &[(0, 1)]);

        // i1 > i2 is consistent with i1 - i2 = 1
        let gt = p.with_direction(0, Dir::Gt).unwrap();
        assert!(gt.is_solution(&[1, 0]).unwrap());
        // i1 < i2 is not
        let lt = p.with_direction(0, Dir::Lt).unwrap();
        assert!(!lt.is_solution(&[1, 0]).unwrap());
        // = adds an equation making it infeasible together with i1-i2=1
        let eq = p.with_direction(0, Dir::Eq).unwrap();
        assert_eq!(eq.equations().len(), 2);
        assert!(!eq.is_solution(&[1, 0]).unwrap());
        // Ne is rejected
        assert!(p.with_direction(0, Dir::Ne).is_err());
        // Any leaves the problem unchanged
        let any = p.with_direction(0, Dir::Any).unwrap();
        assert_eq!(any, p);
        // with_directions applies element-wise
        let le = p.with_directions(&[Dir::Le]).unwrap();
        assert_eq!(le.inequalities().len(), 1);
    }

    #[test]
    fn is_solution_checks_everything() {
        let p = motivating();
        // i1=0..4, j1, i2, j2: equation has no integer solutions at all,
        // but is_solution only checks a given point.
        assert!(!p.is_solution(&[0, 0, 0, 0]).unwrap());
        // out-of-bounds rejected even if the equation holds:
        // 5 + 0 - 0 - 0 - 5 = 0 but i1=5 > 4.
        assert!(!p.is_solution(&[5, 0, 0, 0]).unwrap());
        // negative rejected
        assert!(!p.is_solution(&[-5, 1, 0, 1]).unwrap());
    }

    #[test]
    fn equation_from_subscripts() {
        use delin_numeric::Affine;
        // src: i + 10*j ; snk: i + 10*j + 5 over separate variable spaces
        let i = VarId(0);
        let j = VarId(1);
        let src = Affine::<i128>::var(i).checked_add(&Affine::var_scaled(j, 10)).unwrap();
        let snk = src.checked_add(&Affine::constant(5)).unwrap();
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 4);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation_from_subscripts(&src, &[i1, j1], &snk, &[i2, j2]).unwrap();
        let p = b.build();
        let eq = &p.equations()[0];
        assert_eq!(eq.c0, -5);
        assert_eq!(eq.coeffs, vec![1, 10, -1, -10]);
    }

    #[test]
    fn display_contains_structure() {
        let p = motivating();
        let s = p.to_string();
        assert!(s.contains("0 = -5"));
        assert!(s.contains("z1 in [0, 4]"));
    }

    #[test]
    fn lineq_eval_and_active() {
        let eq = LinEq { c0: -5i128, coeffs: vec![1, 10, -1, -10] };
        assert_eq!(eq.eval(&[5, 1, 0, 1]).unwrap(), 0);
        assert_eq!(eq.active_vars().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let ineq = LinIneq { c0: -1i128, coeffs: vec![1, 0, 0, 0] };
        assert_eq!(ineq.eval(&[3, 0, 0, 0]).unwrap(), 2);
    }
}
