//! The constrained-equation form of a dependence question.
//!
//! Following the paper's Section 2, a dependence between two references
//! `A(f1(x̄), …, fl(x̄))` and `A(g1(ȳ), …, gl(ȳ))` exists iff there are
//! integers `αi ∈ [0, Xi]`, `βj ∈ [0, Yj]` with `fi(ᾱ) = gi(β̄)` for every
//! dimension `i`. After moving everything to one side, each dimension
//! yields one *linear equation* `c0 + Σ ck·zk = 0` over the combined
//! variable list `z̄ = (x̄, ȳ)`, each variable normalized to `[0, Zk]`.
//!
//! [`DependenceProblem`] holds that system, the pairing between source and
//! sink variables of *common* loops (needed for direction vectors), and
//! optional inequality constraints used to impose direction predicates.

use crate::dirvec::Dir;
use delin_numeric::{Affine, Assumptions, Coeff, NumericError, VarId};
use std::fmt;
use std::ops::{Deref, DerefMut};

/// The number of coefficients a row stores inline. Real loop nests are at
/// most ~6 deep, and a dependence problem doubles the variables (source and
/// sink copies), so 12 inline slots cover the corpus without a heap row.
const INLINE_COEFFS: usize = 12;

/// A dense coefficient row with inline storage for up to [`INLINE_COEFFS`]
/// entries and heap spill beyond. Rows deref to `[C]`, so indexing,
/// iteration and slice passing read exactly like the `Vec<C>` they replace;
/// only construction changes (`Vec<C>` converts via `From`/`collect`).
///
/// `clone_from` reuses the receiver's storage — inline rows copy in place,
/// spilled rows reuse the heap vector's capacity — which is what lets the
/// solver's refinement scratch rebuild constrained problems without
/// touching the allocator.
#[derive(Debug)]
pub struct CoeffRow<C> {
    store: RowStore<C>,
}

#[derive(Debug)]
enum RowStore<C> {
    Inline { len: u8, slots: [C; INLINE_COEFFS] },
    Heap(Vec<C>),
}

impl<C: Coeff> CoeffRow<C> {
    /// An empty row.
    pub fn new() -> CoeffRow<C> {
        CoeffRow { store: RowStore::Inline { len: 0, slots: std::array::from_fn(|_| C::zero()) } }
    }

    /// A row of `n` zeros.
    pub fn zeroed(n: usize) -> CoeffRow<C> {
        let mut row = CoeffRow::new();
        row.resize_with(n, C::zero);
        row
    }

    /// Appends one coefficient, spilling to the heap past the inline
    /// capacity.
    pub fn push(&mut self, c: C) {
        match &mut self.store {
            RowStore::Inline { len, slots } => {
                let n = *len as usize;
                if n < INLINE_COEFFS {
                    slots[n] = c;
                    *len += 1;
                } else {
                    let mut v: Vec<C> = Vec::with_capacity(INLINE_COEFFS * 2);
                    v.extend(slots.iter_mut().map(|s| std::mem::replace(s, C::zero())));
                    v.push(c);
                    self.store = RowStore::Heap(v);
                }
            }
            RowStore::Heap(v) => v.push(c),
        }
    }

    /// Resizes to `n` entries, filling new slots with `f()` — the same
    /// contract as `Vec::resize_with` (truncated inline slots reset to
    /// zero so they own no stray memory).
    pub fn resize_with(&mut self, n: usize, mut f: impl FnMut() -> C) {
        match &mut self.store {
            RowStore::Inline { len, slots } => {
                let cur = *len as usize;
                if n <= INLINE_COEFFS {
                    for slot in &mut slots[cur.min(n)..cur.max(n)] {
                        *slot = if n > cur { f() } else { C::zero() };
                    }
                    *len = n as u8;
                } else {
                    let mut v: Vec<C> = Vec::with_capacity(n);
                    v.extend(slots[..cur].iter_mut().map(|s| std::mem::replace(s, C::zero())));
                    v.resize_with(n, f);
                    self.store = RowStore::Heap(v);
                }
            }
            RowStore::Heap(v) => v.resize_with(n, f),
        }
    }

    /// Resets the row to `n` zero entries, reusing existing storage (a
    /// heap row keeps its buffer; an inline row is just overwritten).
    pub fn reset_zeroed(&mut self, n: usize) {
        self.resize_with(n, C::zero);
        for c in self.as_mut_slice() {
            *c = C::zero();
        }
    }

    /// The coefficients as a slice.
    pub fn as_slice(&self) -> &[C] {
        match &self.store {
            RowStore::Inline { len, slots } => &slots[..*len as usize],
            RowStore::Heap(v) => v,
        }
    }

    /// The coefficients as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [C] {
        match &mut self.store {
            RowStore::Inline { len, slots } => &mut slots[..*len as usize],
            RowStore::Heap(v) => v,
        }
    }
}

impl<C: Coeff> Default for CoeffRow<C> {
    fn default() -> Self {
        CoeffRow::new()
    }
}

impl<C> Deref for CoeffRow<C> {
    type Target = [C];
    fn deref(&self) -> &[C] {
        match &self.store {
            RowStore::Inline { len, slots } => &slots[..*len as usize],
            RowStore::Heap(v) => v,
        }
    }
}

impl<C> DerefMut for CoeffRow<C> {
    fn deref_mut(&mut self) -> &mut [C] {
        match &mut self.store {
            RowStore::Inline { len, slots } => &mut slots[..*len as usize],
            RowStore::Heap(v) => v,
        }
    }
}

impl<C: Coeff> Clone for CoeffRow<C> {
    fn clone(&self) -> Self {
        let mut out = CoeffRow::new();
        for c in self.as_slice() {
            out.push(c.clone());
        }
        out
    }

    fn clone_from(&mut self, source: &Self) {
        if let (RowStore::Heap(dst), RowStore::Heap(src)) = (&mut self.store, &source.store) {
            dst.clone_from(src);
            return;
        }
        self.resize_with(source.len(), C::zero);
        for (dst, src) in self.as_mut_slice().iter_mut().zip(source.as_slice()) {
            dst.clone_from(src);
        }
    }
}

impl<C: PartialEq> PartialEq for CoeffRow<C> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<C: Eq> Eq for CoeffRow<C> {}

impl<C: PartialEq> PartialEq<Vec<C>> for CoeffRow<C> {
    fn eq(&self, other: &Vec<C>) -> bool {
        **self == **other
    }
}

impl<C: Coeff> From<Vec<C>> for CoeffRow<C> {
    fn from(v: Vec<C>) -> CoeffRow<C> {
        if v.len() <= INLINE_COEFFS {
            let mut it = v.into_iter();
            CoeffRow {
                store: RowStore::Inline {
                    len: it.len() as u8,
                    slots: std::array::from_fn(|_| it.next().unwrap_or_else(C::zero)),
                },
            }
        } else {
            CoeffRow { store: RowStore::Heap(v) }
        }
    }
}

impl<C: Coeff> FromIterator<C> for CoeffRow<C> {
    fn from_iter<T: IntoIterator<Item = C>>(iter: T) -> CoeffRow<C> {
        let mut row = CoeffRow::new();
        for c in iter {
            row.push(c);
        }
        row
    }
}

impl<'a, C> IntoIterator for &'a CoeffRow<C> {
    type Item = &'a C;
    type IntoIter = std::slice::Iter<'a, C>;
    fn into_iter(self) -> Self::IntoIter {
        self.deref().iter()
    }
}

/// One variable of a dependence problem: a normalized loop variable ranging
/// over `[0, upper]`.
#[derive(Debug, PartialEq, Eq)]
pub struct VarInfo<C> {
    /// Human-readable name (e.g. `i1`, `j2`).
    pub name: String,
    /// Inclusive upper bound; the lower bound is always `0`.
    pub upper: C,
}

impl<C: Clone> Clone for VarInfo<C> {
    fn clone(&self) -> Self {
        VarInfo { name: self.name.clone(), upper: self.upper.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.name.clone_from(&source.name);
        self.upper.clone_from(&source.upper);
    }
}

/// Shared evaluation core: `c0 + Σ coeffs[k]·vals[k]`, all borrowed.
fn eval_linear<C: Coeff>(c0: &C, coeffs: &[C], vals: &[C]) -> Result<C, NumericError> {
    let mut acc = c0.clone();
    for (c, v) in coeffs.iter().zip(vals) {
        acc = acc.checked_add(&c.checked_mul(v)?)?;
    }
    Ok(acc)
}

/// A linear equation `c0 + Σ coeffs[k]·z_k = 0` over the problem variables.
#[derive(Debug, PartialEq, Eq)]
pub struct LinEq<C> {
    /// The constant term.
    pub c0: C,
    /// One coefficient per problem variable (dense; zeros allowed).
    pub coeffs: CoeffRow<C>,
}

impl<C: Coeff> LinEq<C> {
    /// Number of variables with a nonzero coefficient.
    pub fn num_active_vars(&self) -> usize {
        self.coeffs.iter().filter(|c| !c.is_zero()).count()
    }

    /// Indices of variables with a nonzero coefficient.
    pub fn active_vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.coeffs.iter().enumerate().filter(|(_, c)| !c.is_zero()).map(|(k, _)| k)
    }

    /// Evaluates `c0 + Σ coeffs[k]·vals[k]`.
    pub fn eval(&self, vals: &[C]) -> Result<C, NumericError> {
        eval_linear(&self.c0, &self.coeffs, vals)
    }
}

impl<C: Coeff> Clone for LinEq<C> {
    fn clone(&self) -> Self {
        LinEq { c0: self.c0.clone(), coeffs: self.coeffs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.c0.clone_from(&source.c0);
        self.coeffs.clone_from(&source.coeffs);
    }
}

/// A linear inequality `c0 + Σ coeffs[k]·z_k ≥ 0`.
#[derive(Debug, PartialEq, Eq)]
pub struct LinIneq<C> {
    /// The constant term.
    pub c0: C,
    /// One coefficient per problem variable (dense; zeros allowed).
    pub coeffs: CoeffRow<C>,
}

impl<C: Coeff> LinIneq<C> {
    /// Evaluates the left-hand side `c0 + Σ coeffs[k]·vals[k]` borrowed —
    /// no clone of the constant or the coefficient row.
    pub fn eval(&self, vals: &[C]) -> Result<C, NumericError> {
        eval_linear(&self.c0, &self.coeffs, vals)
    }
}

impl<C: Coeff> Clone for LinIneq<C> {
    fn clone(&self) -> Self {
        LinIneq { c0: self.c0.clone(), coeffs: self.coeffs.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.c0.clone_from(&source.c0);
        self.coeffs.clone_from(&source.coeffs);
    }
}

/// A dependence question in constrained-equation form.
///
/// Construct through [`ProblemBuilder`] or the convenience constructors.
///
/// `clone_from` reuses the receiver's vectors, rows and strings, so a
/// scratch problem repeatedly rebuilt from the same base (the refinement
/// loop's pattern) stops allocating once it has seen the base's shape.
#[derive(Debug, PartialEq, Eq)]
pub struct DependenceProblem<C> {
    vars: Vec<VarInfo<C>>,
    equations: Vec<LinEq<C>>,
    inequalities: Vec<LinIneq<C>>,
    /// Per common loop, the (source-variable, sink-variable) index pair.
    common: Vec<(usize, usize)>,
    assumptions: Assumptions,
}

impl<C: Coeff> Clone for DependenceProblem<C> {
    fn clone(&self) -> Self {
        DependenceProblem {
            vars: self.vars.clone(),
            equations: self.equations.clone(),
            inequalities: self.inequalities.clone(),
            common: self.common.clone(),
            assumptions: self.assumptions.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.vars.clone_from(&source.vars);
        self.equations.clone_from(&source.equations);
        self.inequalities.clone_from(&source.inequalities);
        self.common.clone_from(&source.common);
        self.assumptions.clone_from(&source.assumptions);
    }
}

impl<C: Coeff> DependenceProblem<C> {
    /// Starts building a problem.
    pub fn builder() -> ProblemBuilder<C> {
        ProblemBuilder::new()
    }

    /// Convenience: a single-equation problem `c0 + Σ ck·zk = 0` with
    /// `zk ∈ [0, Zk]` and no common-loop pairing — the exact shape used
    /// throughout the paper's examples.
    ///
    /// # Panics
    ///
    /// Panics when `coeffs` and `uppers` have different lengths.
    pub fn single_equation(c0: C, coeffs: Vec<C>, uppers: Vec<C>) -> DependenceProblem<C> {
        assert_eq!(coeffs.len(), uppers.len(), "coefficient/bound length mismatch");
        let vars = uppers
            .into_iter()
            .enumerate()
            .map(|(k, u)| VarInfo { name: format!("z{}", k + 1), upper: u })
            .collect();
        DependenceProblem {
            vars,
            equations: vec![LinEq { c0, coeffs: coeffs.into() }],
            inequalities: Vec::new(),
            common: Vec::new(),
            assumptions: Assumptions::new(),
        }
    }

    /// The problem variables.
    pub fn vars(&self) -> &[VarInfo<C>] {
        &self.vars
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The equations of the system.
    pub fn equations(&self) -> &[LinEq<C>] {
        &self.equations
    }

    /// The inequality constraints (each `… ≥ 0`).
    pub fn inequalities(&self) -> &[LinIneq<C>] {
        &self.inequalities
    }

    /// The common-loop pairing: for loop level `l` (0-based), the indices of
    /// the source and sink variables.
    pub fn common_loops(&self) -> &[(usize, usize)] {
        &self.common
    }

    /// Symbolic assumptions in force for this problem.
    pub fn assumptions(&self) -> &Assumptions {
        &self.assumptions
    }

    /// Replaces the assumptions in force. This is how the engine installs
    /// a unit's environment on a canonical problem without rebuilding the
    /// variables and constraints through a fresh builder.
    pub fn set_assumptions(&mut self, a: Assumptions) {
        self.assumptions = a;
    }

    /// `true` when every coefficient, constant, and bound is a concrete
    /// integer.
    pub fn is_concrete(&self) -> bool {
        self.vars.iter().all(|v| v.upper.as_i128().is_some())
            && self
                .equations
                .iter()
                .all(|e| e.c0.as_i128().is_some() && e.coeffs.iter().all(|c| c.as_i128().is_some()))
            && self
                .inequalities
                .iter()
                .all(|e| e.c0.as_i128().is_some() && e.coeffs.iter().all(|c| c.as_i128().is_some()))
    }

    /// Returns a copy with a direction predicate imposed on common loop
    /// `level` as inequality/equation constraints:
    ///
    /// * `<` adds `y − x − 1 ≥ 0`;
    /// * `=` adds the equation `x − y = 0`;
    /// * `>` adds `x − y − 1 ≥ 0`;
    /// * `≤`, `≥`, `≠`, `*` likewise (`≠` is not convex and is rejected).
    ///
    /// # Errors
    ///
    /// Returns an error for `≠` (callers should split it into `<` and `>`)
    /// or when arithmetic overflows.
    pub fn with_direction(
        &self,
        level: usize,
        dir: Dir,
    ) -> Result<DependenceProblem<C>, NumericError> {
        let mut out = self.clone();
        out.impose_direction(level, dir)?;
        Ok(out)
    }

    /// The in-place core of [`DependenceProblem::with_direction`]: appends
    /// the predicate's constraint to this problem directly. The refinement
    /// loop applies a whole vector to one scratch clone instead of cloning
    /// the problem once per level.
    pub fn impose_direction(&mut self, level: usize, dir: Dir) -> Result<(), NumericError> {
        let (x, y) = self.common[level];
        let n = self.num_vars();
        let coeffs_xy = |cx: i128, cy: i128| {
            let mut v = CoeffRow::zeroed(n);
            v[x] = C::from_i128(cx);
            v[y] = C::from_i128(cy);
            v
        };
        match dir {
            Dir::Any => {}
            Dir::Lt => {
                self.inequalities.push(LinIneq { c0: C::from_i128(-1), coeffs: coeffs_xy(-1, 1) })
            }
            Dir::Le => self.inequalities.push(LinIneq { c0: C::zero(), coeffs: coeffs_xy(-1, 1) }),
            Dir::Eq => self.equations.push(LinEq { c0: C::zero(), coeffs: coeffs_xy(1, -1) }),
            Dir::Ge => self.inequalities.push(LinIneq { c0: C::zero(), coeffs: coeffs_xy(1, -1) }),
            Dir::Gt => {
                self.inequalities.push(LinIneq { c0: C::from_i128(-1), coeffs: coeffs_xy(1, -1) })
            }
            Dir::Ne => {
                return Err(NumericError::NotConcrete {
                    what: "direction `!=` cannot be imposed as a convex constraint".into(),
                })
            }
        }
        Ok(())
    }

    /// Returns a copy with all direction predicates of a vector imposed
    /// (element `l` applies to common loop `l`). One clone total, not one
    /// per level.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`DependenceProblem::with_direction`].
    pub fn with_directions(&self, dirs: &[Dir]) -> Result<DependenceProblem<C>, NumericError> {
        let mut p = self.clone();
        p.impose_directions(dirs)?;
        Ok(p)
    }

    /// In-place form of [`DependenceProblem::with_directions`].
    pub fn impose_directions(&mut self, dirs: &[Dir]) -> Result<(), NumericError> {
        for (l, &d) in dirs.iter().enumerate() {
            self.impose_direction(l, d)?;
        }
        Ok(())
    }

    /// Returns a copy with one extra inequality `c0 + Σ coeffs[k]·z_k ≥ 0`
    /// (zero-extended to the variable count).
    pub fn with_inequality(&self, c0: C, coeffs: impl Into<CoeffRow<C>>) -> DependenceProblem<C> {
        let mut out = self.clone();
        let mut coeffs = coeffs.into();
        coeffs.resize_with(self.num_vars(), C::zero);
        out.inequalities.push(LinIneq { c0, coeffs });
        out
    }

    /// Checks a concrete assignment against all equations, inequalities and
    /// bounds; used by tests and the exact solver.
    ///
    /// # Errors
    ///
    /// Returns an error when evaluation overflows.
    pub fn is_solution(&self, vals: &[C]) -> Result<bool, NumericError> {
        let a = &self.assumptions;
        for (v, val) in self.vars.iter().zip(vals) {
            if !val.is_nonneg(a).is_true() {
                return Ok(false);
            }
            if !val.le(&v.upper, a).is_true() {
                return Ok(false);
            }
        }
        for eq in &self.equations {
            if !eq.eval(vals)?.is_zero() {
                return Ok(false);
            }
        }
        for ineq in &self.inequalities {
            if !ineq.eval(vals)?.is_nonneg(a).is_true() {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Incremental builder for [`DependenceProblem`].
///
/// A builder can be fed retired problems through
/// [`ProblemBuilder::recycle`]; their vectors, coefficient rows and name
/// strings become spare storage that [`ProblemBuilder::var_args`] and
/// [`ProblemBuilder::equation_from_subscripts`] overwrite in place, so an
/// engine worker that rebuilds a problem per reference pair stops
/// allocating once the builder has seen the workload's largest shape.
#[derive(Debug)]
pub struct ProblemBuilder<C> {
    vars: Vec<VarInfo<C>>,
    equations: Vec<LinEq<C>>,
    inequalities: Vec<LinIneq<C>>,
    common: Vec<(usize, usize)>,
    assumptions: Assumptions,
    /// Retired variable slots; `var_args` pops and overwrites these.
    spare_vars: Vec<VarInfo<C>>,
    /// Retired equation slots; `equation_from_subscripts` pops and
    /// overwrites these.
    spare_eqs: Vec<LinEq<C>>,
}

/// Spare slots a builder retains across recycles — bounds the storage an
/// idle builder pins while covering the deepest nests the engine builds.
const BUILDER_SPARES: usize = 32;

impl<C: Coeff> Default for ProblemBuilder<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Coeff> ProblemBuilder<C> {
    /// An empty builder.
    pub fn new() -> ProblemBuilder<C> {
        ProblemBuilder {
            vars: Vec::new(),
            equations: Vec::new(),
            inequalities: Vec::new(),
            common: Vec::new(),
            assumptions: Assumptions::new(),
            spare_vars: Vec::new(),
            spare_eqs: Vec::new(),
        }
    }

    /// Reclaims a retired problem's storage: its vectors become the
    /// builder's working vectors (when the builder's own were consumed by
    /// a previous [`ProblemBuilder::build`]) and its variables and
    /// equations become spare slots for in-place overwriting. Purely an
    /// allocation-recycling hook — the built problems are identical with
    /// or without it.
    pub fn recycle(&mut self, mut slab: DependenceProblem<C>) {
        self.spare_vars.append(&mut slab.vars);
        self.spare_vars.truncate(BUILDER_SPARES);
        self.spare_eqs.append(&mut slab.equations);
        self.spare_eqs.truncate(BUILDER_SPARES);
        slab.inequalities.clear();
        slab.common.clear();
        if self.vars.capacity() == 0 {
            self.vars = slab.vars;
        }
        if self.equations.capacity() == 0 {
            self.equations = slab.equations;
        }
        if self.inequalities.capacity() == 0 {
            self.inequalities = slab.inequalities;
        }
        if self.common.capacity() == 0 {
            self.common = slab.common;
        }
    }

    /// Adds a variable with range `[0, upper]`; returns its index.
    pub fn var(&mut self, name: impl Into<String>, upper: C) -> usize {
        self.vars.push(VarInfo { name: name.into(), upper });
        self.vars.len() - 1
    }

    /// Like [`ProblemBuilder::var`], but renders the name and clones the
    /// bound into a recycled slot when one is available (see
    /// [`ProblemBuilder::recycle`]), so a warm builder adds the variable
    /// without allocating.
    pub fn var_args(&mut self, name: std::fmt::Arguments<'_>, upper: &C) -> usize {
        use std::fmt::Write as _;
        let mut slot = self.pop_spare_var();
        let _ = slot.name.write_fmt(name);
        slot.upper.clone_from(upper);
        self.vars.push(slot);
        self.vars.len() - 1
    }

    /// Like [`ProblemBuilder::var_args`] for the `{base}{suffix}` names the
    /// engine gives source/sink loop variables, assembled with plain string
    /// pushes instead of the formatting machinery.
    pub fn var_suffixed(&mut self, base: &str, suffix: char, upper: &C) -> usize {
        let mut slot = self.pop_spare_var();
        slot.name.push_str(base);
        slot.name.push(suffix);
        slot.upper.clone_from(upper);
        self.vars.push(slot);
        self.vars.len() - 1
    }

    /// A cleared variable slot: a recycled one when available, else fresh.
    fn pop_spare_var(&mut self) -> VarInfo<C> {
        match self.spare_vars.pop() {
            Some(mut s) => {
                s.name.clear();
                s
            }
            None => VarInfo { name: String::new(), upper: C::zero() },
        }
    }

    /// Adds the equation `c0 + Σ coeffs[k]·z_k = 0`. Shorter coefficient
    /// vectors are zero-extended to the final variable count at build time.
    pub fn equation(&mut self, c0: C, coeffs: impl Into<CoeffRow<C>>) -> &mut Self {
        self.equations.push(LinEq { c0, coeffs: coeffs.into() });
        self
    }

    /// Adds the inequality `c0 + Σ coeffs[k]·z_k ≥ 0` (zero-extended like
    /// equations).
    pub fn inequality(&mut self, c0: C, coeffs: impl Into<CoeffRow<C>>) -> &mut Self {
        self.inequalities.push(LinIneq { c0, coeffs: coeffs.into() });
        self
    }

    /// Declares that source variable `x` and sink variable `y` instantiate
    /// the same common loop (order of calls = loop nesting order).
    pub fn common_pair(&mut self, x: usize, y: usize) -> &mut Self {
        self.common.push((x, y));
        self
    }

    /// Installs symbolic assumptions.
    pub fn assumptions(&mut self, a: Assumptions) -> &mut Self {
        self.assumptions = a;
        self
    }

    /// Builds an equation from the difference of two affine subscripts,
    /// where `src` is expressed over variables `src_map[k] = problem var` and
    /// `snk` likewise: the equation is `src(x̄) − snk(ȳ) = 0`.
    ///
    /// # Errors
    ///
    /// Returns an error on arithmetic overflow.
    pub fn equation_from_subscripts(
        &mut self,
        src: &Affine<C>,
        src_map: &[usize],
        snk: &Affine<C>,
        snk_map: &[usize],
    ) -> Result<&mut Self, NumericError> {
        let n = self.vars.len();
        // Overwrite a recycled equation slot when one is available (see
        // `recycle`); the fresh-slot path is the historical behavior.
        let mut eq = match self.spare_eqs.pop() {
            Some(mut eq) => {
                eq.coeffs.reset_zeroed(n);
                eq
            }
            None => LinEq { c0: C::zero(), coeffs: CoeffRow::zeroed(n) },
        };
        eq.c0 = src.constant_part().checked_sub(snk.constant_part())?;
        let coeffs = &mut eq.coeffs;
        // Guard against maps that don't cover the subscript variables.
        for (v, c) in src.terms() {
            let VarId(idx) = v;
            let slot = *src_map.get(idx as usize).ok_or_else(|| NumericError::NotConcrete {
                what: format!("source subscript variable {v} has no problem mapping"),
            })?;
            coeffs[slot] = coeffs[slot].checked_add(c)?;
        }
        for (v, c) in snk.terms() {
            let VarId(idx) = v;
            let slot = *snk_map.get(idx as usize).ok_or_else(|| NumericError::NotConcrete {
                what: format!("sink subscript variable {v} has no problem mapping"),
            })?;
            coeffs[slot] = coeffs[slot].checked_sub(c)?;
        }
        self.equations.push(eq);
        Ok(self)
    }

    /// Finalizes the problem, zero-extending all coefficient vectors.
    pub fn build(&mut self) -> DependenceProblem<C> {
        let n = self.vars.len();
        for eq in &mut self.equations {
            eq.coeffs.resize_with(n, C::zero);
        }
        for ineq in &mut self.inequalities {
            ineq.coeffs.resize_with(n, C::zero);
        }
        DependenceProblem {
            vars: std::mem::take(&mut self.vars),
            equations: std::mem::take(&mut self.equations),
            inequalities: std::mem::take(&mut self.inequalities),
            common: std::mem::take(&mut self.common),
            assumptions: std::mem::take(&mut self.assumptions),
        }
    }
}

/// A recycling arena of [`DependenceProblem`]s for the miss path.
///
/// Each miss clones its canonical problem (to install the unit's
/// assumptions, to refine directions, …) and drops the clone moments later.
/// An arena intercepts that churn: [`ProblemArena::lease_clone`] overwrites
/// a previously-recycled problem in place via the capacity-reusing
/// `clone_from` chain (`Vec` → [`LinEq`]/[`LinIneq`] → [`CoeffRow`] →
/// `String`/`SymPoly`), so once warm a lease allocates only what genuinely
/// grew. Engine workers keep one arena per thread; slabs free in one drop
/// when the arena does.
#[derive(Debug, Default)]
pub struct ProblemArena<C> {
    free: Vec<DependenceProblem<C>>,
}

/// Slabs retained per arena; enough for the deepest lease nesting the
/// engine reaches (decision problem + refinement + probe), small enough
/// that an idle worker pins only a few problems' worth of memory.
const ARENA_SLABS: usize = 8;

impl<C: Coeff> ProblemArena<C> {
    /// An empty arena.
    pub fn new() -> ProblemArena<C> {
        ProblemArena { free: Vec::new() }
    }

    /// A copy of `template`, built into a recycled slab when one is
    /// available (a plain clone otherwise).
    pub fn lease_clone(&mut self, template: &DependenceProblem<C>) -> DependenceProblem<C> {
        match self.free.pop() {
            Some(mut slab) => {
                slab.clone_from(template);
                slab
            }
            None => template.clone(),
        }
    }

    /// Returns a problem to the arena for later reuse. Beyond
    /// [`ARENA_SLABS`] retained slabs the problem is simply dropped.
    pub fn recycle(&mut self, problem: DependenceProblem<C>) {
        if self.free.len() < ARENA_SLABS {
            self.free.push(problem);
        }
    }

    /// Number of recycled slabs currently held.
    pub fn slabs(&self) -> usize {
        self.free.len()
    }
}

impl<C: Coeff> fmt::Display for DependenceProblem<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for eq in &self.equations {
            write!(f, "0 = {}", eq.c0)?;
            for (k, c) in eq.coeffs.iter().enumerate() {
                if !c.is_zero() {
                    write!(f, " + {}*{}", c, self.vars[k].name)?;
                }
            }
            writeln!(f)?;
        }
        for ineq in &self.inequalities {
            write!(f, "0 <= {}", ineq.c0)?;
            for (k, c) in ineq.coeffs.iter().enumerate() {
                if !c.is_zero() {
                    write!(f, " + {}*{}", c, self.vars[k].name)?;
                }
            }
            writeln!(f)?;
        }
        for v in &self.vars {
            writeln!(f, "{} in [0, {}]", v.name, v.upper)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's motivating equation:
    /// `i1 + 10 j1 − i2 − 10 j2 − 5 = 0`, `i ∈ [0,4]`, `j ∈ [0,9]`.
    pub fn motivating() -> DependenceProblem<i128> {
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn single_equation_shape() {
        let p = motivating();
        assert_eq!(p.num_vars(), 4);
        assert_eq!(p.equations().len(), 1);
        assert_eq!(p.equations()[0].num_active_vars(), 4);
        assert!(p.is_concrete());
        assert!(p.inequalities().is_empty());
        assert_eq!(p.vars()[0].name, "z1");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn single_equation_validates() {
        let _ = DependenceProblem::single_equation(0i128, vec![1], vec![1, 2]);
    }

    #[test]
    fn builder_and_directions() {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(-1, vec![1, -1]); // i1 - i2 = 1
        b.common_pair(x, y);
        let p = b.build();
        assert_eq!(p.common_loops(), &[(0, 1)]);

        // i1 > i2 is consistent with i1 - i2 = 1
        let gt = p.with_direction(0, Dir::Gt).unwrap();
        assert!(gt.is_solution(&[1, 0]).unwrap());
        // i1 < i2 is not
        let lt = p.with_direction(0, Dir::Lt).unwrap();
        assert!(!lt.is_solution(&[1, 0]).unwrap());
        // = adds an equation making it infeasible together with i1-i2=1
        let eq = p.with_direction(0, Dir::Eq).unwrap();
        assert_eq!(eq.equations().len(), 2);
        assert!(!eq.is_solution(&[1, 0]).unwrap());
        // Ne is rejected
        assert!(p.with_direction(0, Dir::Ne).is_err());
        // Any leaves the problem unchanged
        let any = p.with_direction(0, Dir::Any).unwrap();
        assert_eq!(any, p);
        // with_directions applies element-wise
        let le = p.with_directions(&[Dir::Le]).unwrap();
        assert_eq!(le.inequalities().len(), 1);
    }

    #[test]
    fn is_solution_checks_everything() {
        let p = motivating();
        // i1=0..4, j1, i2, j2: equation has no integer solutions at all,
        // but is_solution only checks a given point.
        assert!(!p.is_solution(&[0, 0, 0, 0]).unwrap());
        // out-of-bounds rejected even if the equation holds:
        // 5 + 0 - 0 - 0 - 5 = 0 but i1=5 > 4.
        assert!(!p.is_solution(&[5, 0, 0, 0]).unwrap());
        // negative rejected
        assert!(!p.is_solution(&[-5, 1, 0, 1]).unwrap());
    }

    #[test]
    fn equation_from_subscripts() {
        use delin_numeric::Affine;
        // src: i + 10*j ; snk: i + 10*j + 5 over separate variable spaces
        let i = VarId(0);
        let j = VarId(1);
        let src = Affine::<i128>::var(i).checked_add(&Affine::var_scaled(j, 10)).unwrap();
        let snk = src.checked_add(&Affine::constant(5)).unwrap();
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 4);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation_from_subscripts(&src, &[i1, j1], &snk, &[i2, j2]).unwrap();
        let p = b.build();
        let eq = &p.equations()[0];
        assert_eq!(eq.c0, -5);
        assert_eq!(eq.coeffs, vec![1, 10, -1, -10]);
    }

    #[test]
    fn display_contains_structure() {
        let p = motivating();
        let s = p.to_string();
        assert!(s.contains("0 = -5"));
        assert!(s.contains("z1 in [0, 4]"));
    }

    #[test]
    fn lineq_eval_and_active() {
        let eq = LinEq { c0: -5i128, coeffs: vec![1, 10, -1, -10].into() };
        assert_eq!(eq.eval(&[5, 1, 0, 1]).unwrap(), 0);
        assert_eq!(eq.active_vars().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let ineq = LinIneq { c0: -1i128, coeffs: vec![1, 0, 0, 0].into() };
        assert_eq!(ineq.eval(&[3, 0, 0, 0]).unwrap(), 2);
    }
}
