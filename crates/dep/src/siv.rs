//! Exact single-index tests (Goff–Kennedy–Tseng 1991) and the bounded
//! two-variable Diophantine kernel.
//!
//! Dependence equations that involve at most two variables can be decided
//! exactly and in constant time: ZIV (no variables), strong SIV (equal
//! coefficients — yields a distance), weak-zero and weak-crossing SIV, and
//! the general two-variable case via extended gcd plus bounds intersection.
//! Delinearization leans on this: after separation, each dimension's
//! equation usually has one or two variables and is decided here exactly.

use crate::dirvec::{Dir, DirVec, DistDir, DistDirVec};
use crate::problem::{DependenceProblem, LinEq};
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};
use delin_numeric::int::{ceil_div, ext_gcd, floor_div};
use delin_numeric::{gcd, Interval};

/// Exact ZIV/SIV/two-variable dependence test. Applicable when every
/// equation of the system has at most two active variables; exact for a
/// single equation, conservative for systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct SivTest;

/// The decision for one equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoVarOutcome {
    /// No integer solution within bounds.
    Infeasible,
    /// Feasible; carries one witness `(value_of_first, value_of_second)`.
    Feasible {
        /// Witness for the first active variable (if any).
        x: i128,
        /// Witness for the second active variable (if any).
        y: i128,
    },
    /// Intermediate arithmetic overflowed `i128`; the equation is not
    /// decided (never happens for realistic loop bounds).
    Overflow,
}

/// Decides `a·x + b·y + c0 = 0` with `x ∈ [0, ux]`, `y ∈ [0, uy]` exactly.
///
/// Degenerate coefficient cases (`a = 0` and/or `b = 0`) are handled; when a
/// variable does not occur its witness is reported as `0`.
pub fn solve_two_var(a: i128, ux: i128, b: i128, uy: i128, c0: i128) -> TwoVarOutcome {
    if ux < 0 || uy < 0 {
        return TwoVarOutcome::Infeasible;
    }
    match (a == 0, b == 0) {
        (true, true) => {
            if c0 == 0 {
                TwoVarOutcome::Feasible { x: 0, y: 0 }
            } else {
                TwoVarOutcome::Infeasible
            }
        }
        (false, true) => match solve_one_var(a, ux, c0) {
            Some(x) => TwoVarOutcome::Feasible { x, y: 0 },
            None => TwoVarOutcome::Infeasible,
        },
        (true, false) => match solve_one_var(b, uy, c0) {
            Some(y) => TwoVarOutcome::Feasible { x: 0, y },
            None => TwoVarOutcome::Infeasible,
        },
        (false, false) => {
            let g = gcd(a, b);
            if c0 % g != 0 {
                return TwoVarOutcome::Infeasible;
            }
            solve_two_var_general(a, ux, b, uy, c0, g).unwrap_or(TwoVarOutcome::Overflow)
        }
    }
}

/// General case of [`solve_two_var`]; `None` signals `i128` overflow.
fn solve_two_var_general(
    a: i128,
    ux: i128,
    b: i128,
    uy: i128,
    c0: i128,
    g: i128,
) -> Option<TwoVarOutcome> {
    // Particular solution of a·x + b·y = -c0.
    let (g0, u, v) = ext_gcd(a, b);
    debug_assert_eq!(g0, g);
    let scale = -c0 / g;
    let x0 = u.checked_mul(scale)?;
    let y0 = v.checked_mul(scale)?;
    // General solution: x = x0 + (b/g)t, y = y0 - (a/g)t.
    let (bs, as_) = (b / g, a / g);
    let t_for = |coef: i128, base: i128, upper: i128| -> Option<Interval> {
        // 0 <= base + coef*t <= upper
        let room = upper.checked_sub(base)?;
        let nbase = base.checked_neg()?;
        if coef > 0 {
            Some(Interval::new(ceil_div(nbase, coef).ok()?, floor_div(room, coef).ok()?))
        } else {
            Some(Interval::new(ceil_div(room, coef).ok()?, floor_div(nbase, coef).ok()?))
        }
    };
    let tx = t_for(bs, x0, ux)?;
    let ty = t_for(-as_, y0, uy)?;
    let t = tx.intersect(&ty);
    if t.is_empty() {
        Some(TwoVarOutcome::Infeasible)
    } else {
        let x = x0.checked_add(bs.checked_mul(t.lo)?)?;
        let y = y0.checked_sub(as_.checked_mul(t.lo)?)?;
        Some(TwoVarOutcome::Feasible { x, y })
    }
}

fn solve_one_var(a: i128, upper: i128, c0: i128) -> Option<i128> {
    if c0 % a != 0 {
        return None;
    }
    let x = -c0 / a;
    (0..=upper).contains(&x).then_some(x)
}

/// Classification of a single equation for reporting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SivKind {
    /// No active variables.
    Ziv,
    /// One active variable (weak-zero SIV shape).
    WeakZero,
    /// Two active variables with `coeff_x == -coeff_y` (strong SIV: a
    /// constant distance exists).
    Strong,
    /// Two active variables with `coeff_x == coeff_y` (weak-crossing SIV).
    WeakCrossing,
    /// Any other two-variable equation.
    GeneralTwoVar,
    /// More than two active variables — not a SIV equation.
    Multi,
}

/// Classifies an equation by its active coefficients.
pub fn classify(eq: &LinEq<i128>) -> SivKind {
    let active: Vec<usize> = eq.active_vars().collect();
    match active.len() {
        0 => SivKind::Ziv,
        1 => SivKind::WeakZero,
        2 => {
            let (a, b) = (eq.coeffs[active[0]], eq.coeffs[active[1]]);
            if a == -b {
                SivKind::Strong
            } else if a == b {
                SivKind::WeakCrossing
            } else {
                SivKind::GeneralTwoVar
            }
        }
        _ => SivKind::Multi,
    }
}

/// Decides one equation exactly when it has ≤ 2 active variables.
/// Returns `None` for equations with more variables.
pub fn decide_equation(
    problem: &DependenceProblem<i128>,
    eq: &LinEq<i128>,
) -> Option<TwoVarOutcome> {
    let active: Vec<usize> = eq.active_vars().collect();
    match active.len() {
        0 => Some(if eq.c0 == 0 {
            TwoVarOutcome::Feasible { x: 0, y: 0 }
        } else {
            TwoVarOutcome::Infeasible
        }),
        1 => {
            let k = active[0];
            Some(solve_two_var(eq.coeffs[k], problem.vars()[k].upper, 0, 0, eq.c0))
        }
        2 => {
            let (kx, ky) = (active[0], active[1]);
            Some(solve_two_var(
                eq.coeffs[kx],
                problem.vars()[kx].upper,
                eq.coeffs[ky],
                problem.vars()[ky].upper,
                eq.c0,
            ))
        }
        _ => None,
    }
}

/// For a strong-SIV equation over a common pair, the constant dependence
/// distance `β − α`, when the dependence is feasible.
pub fn strong_siv_distance(
    problem: &DependenceProblem<i128>,
    eq: &LinEq<i128>,
    level: usize,
) -> Option<i128> {
    let (x, y) = *problem.common_loops().get(level)?;
    let a = eq.coeffs[x];
    if a == 0 || eq.coeffs[y] != -a {
        return None;
    }
    // Other variables must be absent for the distance to be forced.
    if eq.active_vars().any(|k| k != x && k != y) {
        return None;
    }
    // a(x - y) + c0 = 0  =>  y - x = c0/a.
    if eq.c0 % a != 0 {
        return None;
    }
    let d = eq.c0 / a;
    let z = problem.vars()[x].upper;
    (d.abs() <= z).then_some(d)
}

impl DependenceTest<i128> for SivTest {
    fn name(&self) -> &'static str {
        "siv"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        if problem.vars().iter().any(|v| v.upper < 0) {
            return Verdict::Independent;
        }
        let mut decided_all = true;
        for eq in problem.equations() {
            match decide_equation(problem, eq) {
                Some(TwoVarOutcome::Infeasible) => return Verdict::Independent,
                Some(TwoVarOutcome::Feasible { .. }) => {}
                Some(TwoVarOutcome::Overflow) | None => decided_all = false,
            }
        }
        if !decided_all {
            return Verdict::Unknown;
        }
        // Every equation is individually feasible. For a single-equation
        // problem without extra constraints this is exact; otherwise the
        // coupling between equations keeps it a "maybe".
        let exact = problem.equations().len() == 1 && problem.inequalities().is_empty();
        // Collect distance information from strong-SIV equations.
        let mut dist_dirs = Vec::new();
        if !problem.common_loops().is_empty() {
            let mut elems = Vec::with_capacity(problem.common_loops().len());
            let mut any_distance = false;
            for level in 0..problem.common_loops().len() {
                let d = problem
                    .equations()
                    .iter()
                    .find_map(|eq| strong_siv_distance(problem, eq, level));
                match d {
                    Some(d) => {
                        any_distance = true;
                        elems.push(DistDir::Dist(d));
                    }
                    None => elems.push(DistDir::Dir(Dir::Any)),
                }
            }
            if any_distance {
                dist_dirs.push(DistDirVec(elems));
            }
        }
        let dir_vecs: Vec<DirVec> = dist_dirs.iter().map(DistDirVec::to_dir_vec).collect();
        Verdict::Dependent { exact, info: DependenceInfo { dir_vecs, dist_dirs, witness: None } }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{ExactSolver, SolveOutcome};
    use proptest::prelude::*;

    #[test]
    fn two_var_kernel_basics() {
        // x - y = 5, x,y in [0,4]: infeasible.
        assert_eq!(solve_two_var(1, 4, -1, 4, -5), TwoVarOutcome::Infeasible);
        // x - y = 1, x,y in [0,8]: feasible.
        match solve_two_var(1, 8, -1, 8, -1) {
            TwoVarOutcome::Feasible { x, y } => assert_eq!(x - y - 1, 0),
            o => panic!("unexpected {o:?}"),
        }
        // 2x + 4y = 7: divisibility failure.
        assert_eq!(solve_two_var(2, 100, 4, 100, -7), TwoVarOutcome::Infeasible);
        // Degenerate cases.
        assert_eq!(solve_two_var(0, 4, 0, 4, 0), TwoVarOutcome::Feasible { x: 0, y: 0 });
        assert_eq!(solve_two_var(0, 4, 0, 4, 3), TwoVarOutcome::Infeasible);
        assert_eq!(solve_two_var(3, 4, 0, 0, -6), TwoVarOutcome::Feasible { x: 2, y: 0 });
        assert_eq!(solve_two_var(3, 1, 0, 0, -6), TwoVarOutcome::Infeasible);
        assert_eq!(solve_two_var(0, 0, 5, 4, -15), TwoVarOutcome::Feasible { x: 0, y: 3 });
        // Zero-trip loops.
        assert_eq!(solve_two_var(1, -1, 1, 4, 0), TwoVarOutcome::Infeasible);
    }

    proptest! {
        #[test]
        fn two_var_matches_brute_force(a in -8i128..8, b in -8i128..8, c0 in -40i128..40,
                                       ux in 0i128..12, uy in 0i128..12) {
            let got = solve_two_var(a, ux, b, uy, c0);
            let brute = (0..=ux).flat_map(|x| (0..=uy).map(move |y| (x, y)))
                .find(|&(x, y)| a * x + b * y + c0 == 0);
            match (got, brute) {
                (TwoVarOutcome::Infeasible, None) => {}
                (TwoVarOutcome::Feasible { x, y }, Some(_)) => {
                    prop_assert_eq!(a * x + b * y + c0, 0);
                    prop_assert!((0..=ux).contains(&x) || a == 0);
                    prop_assert!((0..=uy).contains(&y) || b == 0);
                }
                (got, brute) => prop_assert!(false, "kernel {:?} vs brute {:?}", got, brute),
            }
        }
    }

    #[test]
    fn classification() {
        let mk = |c0: i128, coeffs: Vec<i128>| LinEq { c0, coeffs: coeffs.into() };
        assert_eq!(classify(&mk(1, vec![0, 0])), SivKind::Ziv);
        assert_eq!(classify(&mk(1, vec![2, 0])), SivKind::WeakZero);
        assert_eq!(classify(&mk(1, vec![2, -2])), SivKind::Strong);
        assert_eq!(classify(&mk(1, vec![2, 2])), SivKind::WeakCrossing);
        assert_eq!(classify(&mk(1, vec![2, 3])), SivKind::GeneralTwoVar);
        assert_eq!(classify(&mk(1, vec![1, 1, 1])), SivKind::Multi);
    }

    #[test]
    fn strong_siv_distance_example() {
        // A(i+1) = A(i): i1 + 1 - i2 = 0 => distance 1.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(1, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        let eq = &p.equations()[0];
        assert_eq!(strong_siv_distance(&p, eq, 0), Some(1));
        let v = SivTest.test(&p);
        let info = v.info().unwrap();
        assert_eq!(info.dist_dirs, vec![DistDirVec(vec![DistDir::Dist(1)])]);
        assert_eq!(info.dir_vecs, vec![DirVec(vec![Dir::Lt])]);
    }

    #[test]
    fn strong_siv_out_of_range_distance() {
        // i1 - i2 = 100 over [0,8]: |distance| > bound: infeasible.
        let p = DependenceProblem::single_equation(-100, vec![1, -1], vec![8, 8]);
        assert!(SivTest.test(&p).is_independent());
    }

    #[test]
    fn unknown_on_miv() {
        let p = DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(SivTest.test(&p).is_unknown());
    }

    #[test]
    fn exactness_flag() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![8, 8]);
        match SivTest.test(&p) {
            Verdict::Dependent { exact, .. } => assert!(exact),
            o => panic!("unexpected {o:?}"),
        }
        // Two coupled equations: individually feasible, jointly not.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.equation(0, vec![1]); // x = 0
        b.equation(-1, vec![1]); // x = 1
        let p = b.build();
        // Each is feasible alone, but x can't be both; SIV spot-checks each
        // equation and the second one (x = 1) is feasible; first (x = 0)
        // feasible; so it reports non-exact dependence, which is sound
        // (conservative) though imprecise.
        match SivTest.test(&p) {
            Verdict::Dependent { exact, .. } => assert!(!exact),
            Verdict::Independent => {}
            o => panic!("unexpected {o:?}"),
        }
        // And the exact solver confirms the truth:
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn agrees_with_exact_on_single_two_var_equations() {
        let solver = ExactSolver::default();
        for a in [-5i128, -2, 1, 3] {
            for b in [-4i128, -1, 2, 6] {
                for c0 in -15i128..=15 {
                    let p = DependenceProblem::single_equation(c0, vec![a, b], vec![7, 9]);
                    let siv = SivTest.test(&p);
                    let exact = solver.solve(&p);
                    match exact {
                        SolveOutcome::Solution(_) => assert!(siv.is_dependent()),
                        SolveOutcome::NoSolution => assert!(siv.is_independent()),
                        SolveOutcome::Degraded(_) => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&SivTest), "siv");
    }
}
