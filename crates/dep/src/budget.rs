//! Resource budgets: node limits, monotonic deadlines, and cancellation.
//!
//! Exact Diophantine dependence testing is integer programming, and a
//! production engine serving whole corpora must survive adversarial
//! subscripts rather than merely fast ones. A [`ResourceBudget`] bounds a
//! unit of analysis work along three axes — exact-solver search nodes, a
//! monotonic wall-clock deadline, and an externally owned [`CancelToken`] —
//! and records *which* axis tripped first as a [`DegradeReason`]. Exceeding
//! a budget is never an error: every consumer degrades to the sound
//! conservative answer (`Verdict::Unknown`, "every direction survives") and
//! keeps going.
//!
//! Budgets are cheap to clone: the limits are plain values and the trip
//! flag is a shared atomic, so one budget can be handed to many solver
//! invocations and later asked whether *any* of them degraded. Engines that
//! want per-work-item attribution instead clone a fresh flag with
//! [`ResourceBudget::fresh`].
//!
//! The node-limit axis is fully deterministic (search nodes are a pure
//! function of the problem), so two runs under the same limits degrade
//! identically. The deadline and cancellation axes are wall-clock driven
//! and therefore inherently scheduling-dependent; they are opt-in and
//! documented as such wherever determinism contracts apply.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which resource axis exhausted first when an analysis degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeReason {
    /// The exact-solver search-node limit was exceeded.
    Nodes,
    /// The monotonic wall-clock deadline passed.
    Deadline,
    /// The owning [`CancelToken`] was cancelled.
    Cancelled,
    /// The outcome was lost inside the engine (e.g. a worker ended without
    /// reporting one). Not a resource axis, but a degradation reason all the
    /// same: consumers substitute the conservative answer instead of
    /// treating the gap as a bug worth crashing over.
    Lost,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DegradeReason::Nodes => "nodes",
            DegradeReason::Deadline => "deadline",
            DegradeReason::Cancelled => "cancelled",
            DegradeReason::Lost => "lost",
        })
    }
}

/// One node of a cancellation tree: a flag plus an optional parent link.
/// Cancellation is observed *upward* — a token is cancelled when its own
/// flag or any ancestor's flag is set — so tripping a root reaches every
/// descendant at the very next probe, with no watcher thread fanning the
/// signal out.
#[derive(Debug, Default)]
struct CancelNode {
    flag: AtomicBool,
    parent: Option<Arc<CancelNode>>,
}

impl CancelNode {
    fn is_set(&self) -> bool {
        if self.flag.load(Ordering::Acquire) {
            return true;
        }
        let mut node = &self.parent;
        while let Some(parent) = node {
            if parent.flag.load(Ordering::Acquire) {
                return true;
            }
            node = &parent.parent;
        }
        false
    }
}

/// A shared cancellation flag: cloned freely, cancelled once, observed by
/// every budget holding a clone.
///
/// Tokens form a tree (see [`CancelToken::child`]): cancelling a token
/// cancels every token derived from it, while a child's own cancellation
/// leaves its parent (and siblings) untouched. This is how the serving
/// layer scopes cancellation — daemon shutdown > connection > request —
/// without any polling thread relaying the daemon-wide signal into
/// per-request tokens.
///
/// [`CancelToken::cancel`] performs a single atomic store: it is safe to
/// call from a signal handler.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<CancelNode>);

impl CancelToken {
    /// A fresh, un-cancelled root token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token cancelled when *either* it or `self` (or any ancestor of
    /// `self`) is cancelled. Cancelling the child does not affect the
    /// parent. Chains stay shallow in practice (shutdown > connection >
    /// request is three levels); [`CancelToken::is_cancelled`] walks the
    /// chain with one atomic load per level.
    #[must_use]
    pub fn child(&self) -> CancelToken {
        CancelToken(Arc::new(CancelNode {
            flag: AtomicBool::new(false),
            parent: Some(self.0.clone()),
        }))
    }

    /// Requests cancellation of this token and every descendant. Idempotent;
    /// analyses drain quickly by degrading every remaining decision to
    /// `Unknown`. A single atomic store — async-signal-safe.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on this token or
    /// any of its ancestors.
    pub fn is_cancelled(&self) -> bool {
        self.0.is_set()
    }
}

/// How many search nodes between wall-clock/cancellation probes. Node
/// checks are branch-cheap and run every node; `Instant::now()` and the
/// atomic load are amortized over this stride.
const CLOCK_STRIDE: u64 = 256;

/// The default node limit: matches the engine's historical per-decision
/// solver budget, so an unconfigured budget reproduces pre-budget behaviour
/// exactly.
pub const DEFAULT_NODE_LIMIT: u64 = 1_000_000;

/// Trip-flag encoding (0 = clear) for the shared atomic.
fn encode(reason: DegradeReason) -> u8 {
    match reason {
        DegradeReason::Nodes => 1,
        DegradeReason::Deadline => 2,
        DegradeReason::Cancelled => 3,
        DegradeReason::Lost => 4,
    }
}

fn decode(code: u8) -> Option<DegradeReason> {
    match code {
        1 => Some(DegradeReason::Nodes),
        2 => Some(DegradeReason::Deadline),
        3 => Some(DegradeReason::Cancelled),
        4 => Some(DegradeReason::Lost),
        _ => None,
    }
}

/// An armed resource budget: limits plus a shared first-trip record.
#[derive(Debug, Clone)]
pub struct ResourceBudget {
    node_limit: u64,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// First exhaustion observed through this budget (or any clone of it);
    /// `0` until tripped.
    trip: Arc<AtomicU8>,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::with_node_limit(DEFAULT_NODE_LIMIT)
    }
}

impl ResourceBudget {
    /// A budget bounded by search nodes only.
    pub fn with_node_limit(node_limit: u64) -> ResourceBudget {
        ResourceBudget { node_limit, deadline: None, cancel: None, trip: Arc::default() }
    }

    /// An effectively unbounded budget.
    pub fn unlimited() -> ResourceBudget {
        ResourceBudget::with_node_limit(u64::MAX)
    }

    /// Adds an absolute monotonic deadline. The budget counts as expired
    /// once `Instant::now() >= deadline`, so a deadline of "now" is already
    /// expired — useful for deterministic expiry tests.
    #[must_use]
    pub fn deadline_at(mut self, deadline: Instant) -> ResourceBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Adds a deadline `timeout` from now.
    #[must_use]
    pub fn deadline_in(self, timeout: Duration) -> ResourceBudget {
        let now = Instant::now();
        self.deadline_at(now.checked_add(timeout).unwrap_or(now))
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> ResourceBudget {
        self.cancel = Some(cancel);
        self
    }

    /// The search-node limit.
    pub fn node_limit(&self) -> u64 {
        self.node_limit
    }

    /// A budget with the same limits but a fresh (untripped) trip record,
    /// for engines that attribute degradation per work item.
    pub fn fresh(&self) -> ResourceBudget {
        ResourceBudget { trip: Arc::default(), ..self.clone() }
    }

    /// Records the first exhaustion reason; later trips keep the first.
    pub fn trip(&self, reason: DegradeReason) {
        let _ = self.trip.compare_exchange(0, encode(reason), Ordering::AcqRel, Ordering::Acquire);
    }

    /// The first exhaustion recorded through this budget, if any.
    pub fn tripped(&self) -> Option<DegradeReason> {
        decode(self.trip.load(Ordering::Acquire))
    }

    /// Probes the wall-clock axes (cancellation first, then deadline),
    /// recording and returning the reason when exhausted. Does not consult
    /// the node limit — that is [`ResourceBudget::check`]'s job.
    pub fn exhausted(&self) -> Option<DegradeReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.trip(DegradeReason::Cancelled);
            return Some(DegradeReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(DegradeReason::Deadline);
            return Some(DegradeReason::Deadline);
        }
        None
    }

    /// Per-search-node probe: the node limit is checked on every call, the
    /// wall-clock axes every [`CLOCK_STRIDE`] nodes. Trips and returns the
    /// exhaustion reason as an error so solvers can `?` out of the search.
    ///
    /// # Errors
    ///
    /// Returns the [`DegradeReason`] that exhausted first.
    pub fn check(&self, nodes: u64) -> Result<(), DegradeReason> {
        if nodes > self.node_limit {
            self.trip(DegradeReason::Nodes);
            return Err(DegradeReason::Nodes);
        }
        if nodes.is_multiple_of(CLOCK_STRIDE) {
            if let Some(reason) = self.exhausted() {
                return Err(reason);
            }
        }
        Ok(())
    }
}

/// A *specification* of a resource budget, carried in configurations and
/// armed into a [`ResourceBudget`] at run start. Splitting spec from armed
/// budget keeps deadlines relative ("500 ms per run") rather than absolute,
/// so retries and fresh runs each get their full allowance.
#[derive(Debug, Clone)]
pub struct BudgetSpec {
    /// Exact-solver search-node limit per dependence decision.
    pub node_limit: u64,
    /// Wall-clock allowance in milliseconds per run; `None` means no
    /// deadline. `Some(0)` arms an already-expired deadline (every decision
    /// degrades — deterministic, used by expiry tests and fault injection).
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation, observed by every decision of the run.
    pub cancel: Option<CancelToken>,
}

impl Default for BudgetSpec {
    /// Node limit [`DEFAULT_NODE_LIMIT`]; deadline from the
    /// `DELIN_DEADLINE_MS` environment variable when set to a number, else
    /// none; no cancellation token.
    fn default() -> Self {
        BudgetSpec {
            node_limit: DEFAULT_NODE_LIMIT,
            deadline_ms: deadline_ms_from_env(),
            cancel: None,
        }
    }
}

/// The `DELIN_DEADLINE_MS` environment knob: a per-run wall-clock deadline
/// in milliseconds for every engine run that uses default budgets.
pub fn deadline_ms_from_env() -> Option<u64> {
    std::env::var("DELIN_DEADLINE_MS").ok().and_then(|v| v.parse().ok())
}

impl BudgetSpec {
    /// A spec bounded by search nodes only (no deadline, no cancellation,
    /// no environment consultation).
    pub fn nodes_only(node_limit: u64) -> BudgetSpec {
        BudgetSpec { node_limit, deadline_ms: None, cancel: None }
    }

    /// Arms the spec into a live budget: the deadline clock starts now.
    pub fn arm(&self) -> ResourceBudget {
        let mut budget = ResourceBudget::with_node_limit(self.node_limit);
        if let Some(ms) = self.deadline_ms {
            budget = budget.deadline_in(Duration::from_millis(ms));
        }
        if let Some(cancel) = &self.cancel {
            budget = budget.with_cancel(cancel.clone());
        }
        budget
    }

    /// The spec with node and deadline allowances multiplied by `factor`
    /// (saturating): the escalated budget a retry runs under.
    #[must_use]
    pub fn escalated(&self, factor: u64) -> BudgetSpec {
        BudgetSpec {
            node_limit: self.node_limit.saturating_mul(factor),
            deadline_ms: self.deadline_ms.map(|ms| ms.saturating_mul(factor)),
            cancel: self.cancel.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_limit_trips_and_records() {
        let b = ResourceBudget::with_node_limit(10);
        assert_eq!(b.check(10), Ok(()));
        assert_eq!(b.tripped(), None);
        assert_eq!(b.check(11), Err(DegradeReason::Nodes));
        assert_eq!(b.tripped(), Some(DegradeReason::Nodes));
    }

    #[test]
    fn first_trip_wins() {
        let b = ResourceBudget::with_node_limit(0);
        b.trip(DegradeReason::Deadline);
        b.trip(DegradeReason::Nodes);
        assert_eq!(b.tripped(), Some(DegradeReason::Deadline));
        // Clones share the record; fresh() does not.
        assert_eq!(b.clone().tripped(), Some(DegradeReason::Deadline));
        assert_eq!(b.fresh().tripped(), None);
    }

    #[test]
    fn expired_deadline_is_observed() {
        let b = ResourceBudget::unlimited().deadline_at(Instant::now());
        assert_eq!(b.exhausted(), Some(DegradeReason::Deadline));
        assert_eq!(b.tripped(), Some(DegradeReason::Deadline));
    }

    #[test]
    fn child_tokens_observe_ancestors_not_siblings() {
        let root = CancelToken::new();
        let conn = root.child();
        let req_a = conn.child();
        let req_b = conn.child();

        // A leaf's own cancellation stays scoped to the leaf.
        req_a.cancel();
        assert!(req_a.is_cancelled());
        assert!(!req_b.is_cancelled(), "sibling unaffected");
        assert!(!conn.is_cancelled(), "parent unaffected");
        assert!(!root.is_cancelled());

        // Cancelling an interior node reaches every descendant.
        conn.cancel();
        assert!(req_b.is_cancelled());
        assert!(!root.is_cancelled());

        // And a root cancellation reaches a fresh grandchild instantly —
        // this is the event path that replaced the serve-layer watcher
        // thread: no relay, the probe itself sees the ancestor flag.
        let root2 = CancelToken::new();
        let leaf = root2.child().child();
        root2.cancel();
        assert!(leaf.is_cancelled());
    }

    #[test]
    fn child_cancellation_degrades_budgets() {
        let shutdown = CancelToken::new();
        let request = shutdown.child();
        let b = ResourceBudget::unlimited().with_cancel(request.clone());
        assert_eq!(b.exhausted(), None);
        shutdown.cancel();
        assert_eq!(b.exhausted(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline() {
        let token = CancelToken::new();
        let b = ResourceBudget::unlimited().deadline_at(Instant::now()).with_cancel(token.clone());
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(b.exhausted(), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn clock_axes_probed_on_stride() {
        let b = ResourceBudget::unlimited().deadline_at(Instant::now());
        assert_eq!(b.check(1), Ok(()), "off-stride nodes skip the clock");
        assert_eq!(b.check(CLOCK_STRIDE), Err(DegradeReason::Deadline));
    }

    #[test]
    fn spec_arms_and_escalates() {
        let spec = BudgetSpec::nodes_only(100);
        assert_eq!(spec.arm().node_limit(), 100);
        let up = spec.escalated(4);
        assert_eq!(up.node_limit, 400);
        assert_eq!(up.deadline_ms, None);
        let timed = BudgetSpec { deadline_ms: Some(0), ..BudgetSpec::nodes_only(5) };
        assert_eq!(timed.escalated(3).deadline_ms, Some(0));
        assert_eq!(timed.arm().exhausted(), Some(DegradeReason::Deadline));
        assert_eq!(BudgetSpec { node_limit: u64::MAX, ..timed }.escalated(2).node_limit, u64::MAX);
    }

    #[test]
    fn reason_renders_lowercase() {
        assert_eq!(DegradeReason::Nodes.to_string(), "nodes");
        assert_eq!(DegradeReason::Deadline.to_string(), "deadline");
        assert_eq!(DegradeReason::Cancelled.to_string(), "cancelled");
        assert_eq!(DegradeReason::Lost.to_string(), "lost");
    }

    #[test]
    fn lost_round_trips_through_the_trip_flag() {
        let b = ResourceBudget::unlimited();
        b.trip(DegradeReason::Lost);
        assert_eq!(b.tripped(), Some(DegradeReason::Lost));
    }
}
