//! Dependence-analysis framework and baseline dependence tests.
//!
//! This crate provides the machinery a parallelizing compiler needs to
//! decide whether two array references in a loop nest may touch the same
//! memory location (paper Section 2):
//!
//! * [`problem`] — the constrained linear Diophantine system form of a
//!   dependence question: equations over normalized loop variables
//!   `z ∈ [0, Z]`, plus optional inequality constraints;
//! * [`dirvec`] — direction vectors, distance vectors, and their merge and
//!   summarization rules;
//! * [`verdict`] — the three-valued answer of a dependence test and the
//!   [`DependenceTest`] trait;
//! * the baseline tests the paper compares delinearization against:
//!   [`gcd`] (GCD test), [`banerjee`] (Banerjee inequalities, with
//!   direction-vector constraints), [`siv`] (the exact ZIV/SIV tests of
//!   Goff–Kennedy–Tseng), [`svpc`] (Single Variable Per Constraint),
//!   [`acyclic`] (Acyclic test), [`residue`] (Simple Loop Residue),
//!   [`shostak`] (Shostak's loop residues), [`fourier`] (Fourier–Motzkin
//!   elimination, real and integer-tightened), [`lambda`] (the λ-test);
//! * [`exact`] — an exact integer solver used as ground truth;
//! * [`hierarchy`] — direction-vector hierarchy refinement and
//!   distance-direction vector computation;
//! * [`budget`] — resource budgets (node limits, monotonic deadlines,
//!   cancellation) under which every solver degrades to a sound
//!   conservative `Unknown` instead of running away or aborting.
//!
//! The delinearization algorithm itself lives in the `delin-core` crate and
//! plugs into this framework through [`DependenceTest`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod banerjee;
pub mod budget;
pub mod dirvec;
pub mod exact;
pub mod fourier;
pub mod gcd;
pub mod hierarchy;
pub mod lambda;
pub mod problem;
pub mod residue;
pub mod shostak;
pub mod siv;
pub mod svpc;
pub mod verdict;

pub use budget::{BudgetSpec, CancelToken, DegradeReason, ResourceBudget};
pub use dirvec::{Dir, DirVec, DistDir, DistDirVec};
pub use problem::{
    CoeffRow, DependenceProblem, LinEq, LinIneq, ProblemArena, ProblemBuilder, VarInfo,
};
pub use verdict::{DependenceTest, Verdict};
