//! Test verdicts and the dependence-test trait.

use crate::dirvec::{DirVec, DistDirVec};
use crate::problem::DependenceProblem;
use delin_numeric::Coeff;
use std::fmt;

/// Detailed information attached to a (possible) dependence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DependenceInfo {
    /// The direction vectors under which the dependence may hold (empty
    /// means the test produced no direction information — callers should
    /// assume all-`*`).
    pub dir_vecs: Vec<DirVec>,
    /// Distance-direction vectors, when the test computed them.
    pub dist_dirs: Vec<DistDirVec>,
    /// A witness solution (values for all problem variables), when the test
    /// found a concrete one.
    pub witness: Option<Vec<i128>>,
}

/// The answer of a dependence test.
///
/// Inexact-but-conservative tests answer [`Verdict::Independent`] only when
/// they have a proof, and [`Verdict::Dependent`] with `exact: false` when
/// they merely failed to disprove the dependence. The exact solver answers
/// with `exact: true` and a witness. [`Verdict::Unknown`] means the test is
/// not applicable to the problem's shape (e.g. SVPC on a multi-variable
/// equation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The references are proven independent.
    Independent,
    /// A dependence may (or, when `exact`, does) exist.
    Dependent {
        /// `true` when a concrete solution is known to exist.
        exact: bool,
        /// Direction/distance information.
        info: DependenceInfo,
    },
    /// The test cannot handle this problem.
    Unknown,
}

impl Verdict {
    /// A "maybe dependent" verdict with no further information.
    pub fn maybe_dependent() -> Verdict {
        Verdict::Dependent { exact: false, info: DependenceInfo::default() }
    }

    /// A "maybe dependent" verdict carrying direction vectors.
    pub fn dependent_with_dirs(dir_vecs: Vec<DirVec>) -> Verdict {
        Verdict::Dependent {
            exact: false,
            info: DependenceInfo { dir_vecs, ..DependenceInfo::default() },
        }
    }

    /// `true` for [`Verdict::Independent`].
    pub fn is_independent(&self) -> bool {
        matches!(self, Verdict::Independent)
    }

    /// `true` for any [`Verdict::Dependent`].
    pub fn is_dependent(&self) -> bool {
        matches!(self, Verdict::Dependent { .. })
    }

    /// `true` for [`Verdict::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown)
    }

    /// The attached info, for dependent verdicts.
    pub fn info(&self) -> Option<&DependenceInfo> {
        match self {
            Verdict::Dependent { info, .. } => Some(info),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Independent => write!(f, "independent"),
            Verdict::Dependent { exact: true, .. } => write!(f, "dependent"),
            Verdict::Dependent { exact: false, .. } => write!(f, "maybe dependent"),
            Verdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// A dependence test over coefficient ring `C`.
///
/// Implementations must be *sound*: [`Verdict::Independent`] may be
/// returned only when the problem truly has no solution, and
/// `Verdict::Dependent { exact: true, .. }` only when it truly has one.
pub trait DependenceTest<C: Coeff> {
    /// A short stable name for reports ("gcd", "banerjee", …).
    fn name(&self) -> &'static str;

    /// Tests the problem.
    fn test(&self, problem: &DependenceProblem<C>) -> Verdict;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirvec::Dir;

    #[test]
    fn verdict_accessors() {
        assert!(Verdict::Independent.is_independent());
        assert!(Verdict::maybe_dependent().is_dependent());
        assert!(Verdict::Unknown.is_unknown());
        assert!(Verdict::Independent.info().is_none());
        let v = Verdict::dependent_with_dirs(vec![DirVec(vec![Dir::Lt])]);
        assert_eq!(v.info().unwrap().dir_vecs.len(), 1);
        assert_eq!(v.to_string(), "maybe dependent");
        assert_eq!(Verdict::Independent.to_string(), "independent");
        assert_eq!(
            Verdict::Dependent { exact: true, info: DependenceInfo::default() }.to_string(),
            "dependent"
        );
        assert_eq!(Verdict::Unknown.to_string(), "unknown");
    }
}
