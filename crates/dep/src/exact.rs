//! Exact integer feasibility for dependence problems.
//!
//! The paper (after Maydan–Hennessy–Lam) notes that deciding a dependence
//! system exactly is integer programming. For the problem sizes dependence
//! analysis produces (a handful of variables with modest bounds) an
//! interval- and divisibility-pruned depth-first search with first-fail
//! variable ordering is exact and fast; we use it as the *ground truth*
//! against which every approximate test — and delinearization itself — is
//! validated.

use crate::budget::{DegradeReason, ResourceBudget};
use crate::dirvec::Dir;
use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};
use delin_numeric::fp128::Fp128;
use delin_numeric::{gcd, Interval, NumericError};
use fxhash::FxBuildHasher;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::hash::Hasher as _;
use std::sync::Mutex;

/// The default arena switch: on, unless the `DELIN_ARENA` environment
/// variable is set to `0` (or `off`).
///
/// The arena path reuses per-worker scratch — pooled DFS domain buffers in
/// [`ExactSolver::solve`] and a recycled refinement problem in
/// [`SubtreeStore::solve_refined`] — instead of allocating per node/query.
/// It is a pure perf knob: search order, node accounting, verdicts and
/// reports are byte-identical either way, which CI asserts with an A/B leg
/// under `DELIN_ARENA=0`.
pub fn arena_from_env() -> bool {
    std::env::var("DELIN_ARENA").map(|v| v != "0" && v != "off").unwrap_or(true)
}

thread_local! {
    /// Search nodes explored by [`ExactSolver::solve`] on this thread since
    /// the last [`take_thread_nodes`] call.
    static THREAD_NODES: Cell<u64> = const { Cell::new(0) };
}

/// Returns (and resets) the number of exact-solver search nodes explored on
/// the current thread since the previous call.
///
/// Every [`ExactSolver::solve`] adds its node count to a thread-local
/// accumulator; observability layers bracket a unit of work with two calls
/// to attribute solver effort to it. Thread-local (rather than global)
/// accounting keeps the attribution exact under parallel graph
/// construction.
pub fn take_thread_nodes() -> u64 {
    THREAD_NODES.with(|c| c.replace(0))
}

/// Discards any node count accumulated on the current thread.
///
/// Recovery paths call this after catching a panic that unwound through a
/// solve: whatever partial count the interrupted bracket left behind must
/// not leak into the *next* unit of work's attribution, or post-failure
/// statistics become scheduling-dependent.
pub fn reset_thread_nodes() {
    let _ = take_thread_nodes();
}

/// Reads the current thread's accumulated node count without resetting it.
///
/// [`SubtreeStore::solve_refined`] brackets a fresh solve with two peeks to
/// measure the cost of the subtree it is about to memoize, without
/// disturbing whatever outer bracket (e.g. the engine's per-decision
/// accounting) owns the take/reset cycle.
pub fn peek_thread_nodes() -> u64 {
    THREAD_NODES.with(|c| c.get())
}

fn record_nodes(n: u64) {
    THREAD_NODES.with(|c| c.set(c.get().saturating_add(n)));
}

/// Counters describing incremental-refinement activity (see
/// [`SubtreeStore`]). Accumulated thread-locally alongside the node count
/// and drained with [`take_thread_refine`] by the same observability
/// brackets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefineCounters {
    /// Direction-refinement queries answered (fresh or reused).
    pub refine_queries: u64,
    /// Queries answered from a memoized subtree instead of a fresh solve.
    pub subtree_reuses: u64,
    /// Search nodes the reused subtrees cost when first solved — the work
    /// a non-incremental engine would have repeated.
    pub nodes_saved: u64,
}

impl RefineCounters {
    /// Component-wise saturating addition.
    pub fn add(&mut self, other: &RefineCounters) {
        self.refine_queries = self.refine_queries.saturating_add(other.refine_queries);
        self.subtree_reuses = self.subtree_reuses.saturating_add(other.subtree_reuses);
        self.nodes_saved = self.nodes_saved.saturating_add(other.nodes_saved);
    }
}

thread_local! {
    /// Refinement counters accumulated on this thread since the last
    /// [`take_thread_refine`] call.
    static THREAD_REFINE: Cell<RefineCounters> = const {
        Cell::new(RefineCounters { refine_queries: 0, subtree_reuses: 0, nodes_saved: 0 })
    };
}

/// Returns (and resets) the refinement counters accumulated on the current
/// thread since the previous call — the [`RefineCounters`] companion of
/// [`take_thread_nodes`].
pub fn take_thread_refine() -> RefineCounters {
    THREAD_REFINE.with(|c| c.replace(RefineCounters::default()))
}

/// Discards any refinement counters accumulated on the current thread (the
/// companion of [`reset_thread_nodes`], for the same recovery paths).
pub fn reset_thread_refine() {
    let _ = take_thread_refine();
}

fn record_refine(f: impl FnOnce(&mut RefineCounters)) {
    THREAD_REFINE.with(|c| {
        let mut v = c.get();
        f(&mut v);
        c.set(v);
    });
}

/// The outcome of an exact solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The system has no integer solution.
    NoSolution,
    /// A witness assignment (one value per problem variable).
    Solution(Vec<i128>),
    /// The search gave up before deciding: its [`ResourceBudget`] exhausted
    /// along the recorded axis. Consumers must treat this as "maybe
    /// dependent" — it is never a proof in either direction.
    Degraded(DegradeReason),
}

impl SolveOutcome {
    /// `true` when a witness was found.
    pub fn is_solution(&self) -> bool {
        matches!(self, SolveOutcome::Solution(_))
    }

    /// `true` when the search exhausted its budget before deciding.
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded(_))
    }
}

/// Exact solver bounded by a [`ResourceBudget`] (search nodes, wall-clock
/// deadline, cancellation).
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// The budget every [`ExactSolver::solve`] call runs under. The default
    /// is a node-only budget of 5,000,000 (ground-truth usage); engine code
    /// threads its own per-decision budget in via
    /// [`ExactSolver::with_budget`].
    pub budget: ResourceBudget,
    /// Reuse this thread's [`SolveScratch`] (pooled DFS domain buffers,
    /// recycled refinement problems) instead of allocating per node/query.
    /// Defaults to [`arena_from_env`]; flip with [`ExactSolver::with_arena`]
    /// for same-process A/B runs. Search order and node accounting are
    /// identical either way.
    pub arena: bool,
}

/// The default ground-truth node budget.
const DEFAULT_SOLVER_NODES: u64 = 5_000_000;

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver::with_budget(ResourceBudget::with_node_limit(DEFAULT_SOLVER_NODES))
    }
}

/// Per-thread scratch for the arena solve path: the DFS buffers one solve
/// leaves behind, picked up by the next solve on the same worker thread.
/// After a handful of pairs the miss path stops allocating domain vectors
/// entirely — every `dfs` child frame pops a recycled buffer from `pool`.
#[derive(Default)]
struct SolveScratch {
    assignment: Vec<i128>,
    assigned: Vec<bool>,
    domains: Vec<Interval>,
    pool: Vec<Vec<Interval>>,
}

thread_local! {
    /// The worker's [`SolveScratch`]; `ExactSolver::solve` borrows it for
    /// the duration of one search (the solver never re-enters itself, but a
    /// failed borrow falls back to fresh buffers rather than panicking).
    static SOLVE_SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::default());

    /// The worker's recycled refinement problem: `fresh_solve` overwrites
    /// it via `clone_from` + `impose_directions` instead of cloning the
    /// base problem per query, so after warmup a refinement costs no
    /// problem allocation at all.
    static REFINE_SCRATCH: RefCell<Option<DependenceProblem<i128>>> = const { RefCell::new(None) };
}

struct Search<'a> {
    problem: &'a DependenceProblem<i128>,
    assignment: Vec<i128>,
    assigned: Vec<bool>,
    nodes: u64,
    budget: &'a ResourceBudget,
    /// Recycled domain buffers for child DFS frames (arena path). When
    /// `reuse_buffers` is off every child clones its parent's domains —
    /// the legacy allocation pattern the A/B baseline preserves.
    pool: Vec<Vec<Interval>>,
    reuse_buffers: bool,
}

/// Propagation rounds are capped: bounds consistency can converge slowly
/// (shrinking an interval by one element per round), and the cap keeps the
/// solver sound — propagation only narrows optional information.
const MAX_PROPAGATION_ROUNDS: usize = 64;

impl ExactSolver {
    /// Creates a solver with the given node budget (no deadline, no
    /// cancellation).
    pub fn with_limit(node_limit: u64) -> ExactSolver {
        ExactSolver::with_budget(ResourceBudget::with_node_limit(node_limit))
    }

    /// Creates a solver bounded by an explicit budget. Exhaustion along any
    /// axis is recorded in the budget's trip flag and surfaced as
    /// [`SolveOutcome::Degraded`].
    pub fn with_budget(budget: ResourceBudget) -> ExactSolver {
        ExactSolver { budget, arena: arena_from_env() }
    }

    /// Overrides the scratch-reuse switch (see [`ExactSolver::arena`]).
    pub fn with_arena(mut self, arena: bool) -> ExactSolver {
        self.arena = arena;
        self
    }

    /// The solver's search-node limit.
    pub fn node_limit(&self) -> u64 {
        self.budget.node_limit()
    }

    /// Solves the problem exactly.
    ///
    /// Bounds, equations, and inequality constraints are all honoured.
    /// Problems with any empty variable range (`upper < 0`, a zero-trip
    /// loop) have no solution by definition.
    pub fn solve(&self, problem: &DependenceProblem<i128>) -> SolveOutcome {
        if let Some(reason) = self.budget.exhausted() {
            // Already past the deadline (or cancelled): degrade before
            // spending a single node.
            return SolveOutcome::Degraded(reason);
        }
        let n = problem.num_vars();
        if problem.vars().iter().any(|v| v.upper < 0) {
            return SolveOutcome::NoSolution;
        }
        for eq in problem.equations() {
            if equation_obviously_infeasible(problem, eq) {
                return SolveOutcome::NoSolution;
            }
        }
        if self.arena {
            SOLVE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
                Ok(mut scratch) => self.run_search(problem, n, &mut scratch),
                // The solver never re-enters itself on one thread; if it
                // somehow does, fresh buffers keep the search correct.
                Err(_) => self.run_search(problem, n, &mut SolveScratch::default()),
            })
        } else {
            let mut search = Search {
                problem,
                assignment: vec![0; n],
                assigned: vec![false; n],
                nodes: 0,
                budget: &self.budget,
                pool: Vec::new(),
                reuse_buffers: false,
            };
            let mut domains: Vec<Interval> =
                problem.vars().iter().map(|v| Interval::new(0, v.upper)).collect();
            let result = search.dfs(&mut domains);
            record_nodes(search.nodes);
            match result {
                Ok(true) => SolveOutcome::Solution(search.assignment),
                Ok(false) => SolveOutcome::NoSolution,
                Err(reason) => SolveOutcome::Degraded(reason),
            }
        }
    }

    /// The arena solve: identical search, but every buffer comes from (and
    /// returns to) the thread's [`SolveScratch`]. After warmup a solve
    /// allocates only the witness vector it hands back, and only when one
    /// exists.
    fn run_search(
        &self,
        problem: &DependenceProblem<i128>,
        n: usize,
        scratch: &mut SolveScratch,
    ) -> SolveOutcome {
        scratch.assignment.clear();
        scratch.assignment.resize(n, 0);
        scratch.assigned.clear();
        scratch.assigned.resize(n, false);
        let mut domains = std::mem::take(&mut scratch.domains);
        domains.clear();
        domains.extend(problem.vars().iter().map(|v| Interval::new(0, v.upper)));
        let mut search = Search {
            problem,
            assignment: std::mem::take(&mut scratch.assignment),
            assigned: std::mem::take(&mut scratch.assigned),
            nodes: 0,
            budget: &self.budget,
            pool: std::mem::take(&mut scratch.pool),
            reuse_buffers: true,
        };
        let result = search.dfs(&mut domains);
        record_nodes(search.nodes);
        let outcome = match result {
            Ok(true) => SolveOutcome::Solution(search.assignment.clone()),
            Ok(false) => SolveOutcome::NoSolution,
            Err(reason) => SolveOutcome::Degraded(reason),
        };
        scratch.assignment = search.assignment;
        scratch.assigned = search.assigned;
        scratch.pool = search.pool;
        scratch.domains = domains;
        outcome
    }
}

/// One decided refinement of a base problem: the outcome of solving the
/// base under a direction vector, plus what the search cost. Degraded
/// outcomes are never stored — an aborted search proves nothing worth
/// replaying.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TreeEntry {
    outcome: SolveOutcome,
    nodes: u64,
}

/// The resumable solve tree of one base problem: every direction-vector
/// refinement decided so far, keyed by the (ordered) vector. Reuse works in
/// two ways:
///
/// * an *exact hit* replays the stored outcome — the solver's DFS is
///   deterministic, so replaying is identical to re-running;
/// * an *ancestor hit* serves a child query from a looser stored vector:
///   `NoSolution` propagates down (the child's solution region is a subset
///   of the ancestor's), and a stored witness answers the child whenever it
///   happens to satisfy the child's direction predicates.
#[derive(Debug, Default)]
pub struct SolveTree {
    entries: BTreeMap<Vec<Dir>, TreeEntry>,
}

/// Shared store of [`SolveTree`]s, keyed by a 128-bit structural
/// fingerprint of the base problem (see [`problem_fp`]) — refinement
/// queries are hot enough that rendering a `String` key per query was a
/// measurable share of their cost. One store is threaded through a whole
/// unit of refinement work
/// (a direction-hierarchy walk plus the distance extraction that follows
/// it), so sibling queries — and, via the verdict cache, repeat decisions
/// of the same canonical problem — share subtrees instead of re-solving.
///
/// A disabled store (see [`SubtreeStore::disabled`]) still counts
/// refinement queries but answers every one with a fresh solve; it exists
/// so the incremental path can be A/B-tested without touching call sites.
#[derive(Debug, Default)]
pub struct SubtreeStore {
    enabled: bool,
    trees: Mutex<HashMap<u128, SolveTree, FxBuildHasher>>,
}

/// One exported solve tree: the base problem's fingerprint plus its
/// refinements as `(direction prefix, outcome, nodes spent)` triples — the
/// plain-data shape [`SubtreeStore::export`] produces and
/// [`SubtreeStore::import`] accepts.
pub type TreeRecord = (u128, Vec<(Vec<Dir>, SolveOutcome, u64)>);

impl SubtreeStore {
    /// An enabled store (the default configuration).
    pub fn new() -> SubtreeStore {
        SubtreeStore { enabled: true, trees: Mutex::new(HashMap::default()) }
    }

    /// A store that never memoizes: every query is a fresh solve, matching
    /// the non-incremental engine node for node.
    pub fn disabled() -> SubtreeStore {
        SubtreeStore { enabled: false, trees: Mutex::new(HashMap::default()) }
    }

    /// Whether this store memoizes subtrees.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of base problems with a memoized tree.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when no tree has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every memoized solve tree as plain data, in deterministic order:
    /// base-problem fingerprints ascending, each tree's refinements in the
    /// `BTreeMap` key order. This is the serialization boundary the
    /// persistent verdict cache uses; degraded outcomes never enter a tree,
    /// so the export only ever contains replayable proofs.
    pub fn export(&self) -> Vec<TreeRecord> {
        let trees = self.lock();
        let mut out: Vec<_> = trees
            .iter()
            .map(|(k, tree)| {
                let entries = tree
                    .entries
                    .iter()
                    .map(|(dirs, e)| (dirs.clone(), e.outcome.clone(), e.nodes))
                    .collect();
                (*k, entries)
            })
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Rebuilds memoized trees from records produced by
    /// [`SubtreeStore::export`]. Degraded outcomes are skipped (they are
    /// never storable), and a disabled store imports nothing.
    pub fn import(&self, records: &[TreeRecord]) {
        if !self.enabled {
            return;
        }
        let mut trees = self.lock();
        for (k, entries) in records {
            let tree = trees.entry(*k).or_default();
            for (dirs, outcome, nodes) in entries {
                if outcome.is_degraded() {
                    continue;
                }
                tree.entries
                    .insert(dirs.clone(), TreeEntry { outcome: outcome.clone(), nodes: *nodes });
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u128, SolveTree, FxBuildHasher>> {
        // A panic while holding the lock (chaos fault injection) poisons
        // it; the map itself is always in a consistent state because every
        // mutation is a single insert.
        self.trees.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Solves `base` refined by the direction predicates `dirs`, reusing
    /// any subtree this store has already decided for the same base.
    ///
    /// Node accounting still flows through the solver's [`ResourceBudget`]:
    /// fresh solves are charged exactly as [`ExactSolver::solve`] charges
    /// them, while reuses replay a stored proof at zero node cost (sound
    /// even after budget exhaustion — the proof was paid for when it was
    /// first found). `Degraded` outcomes are never stored and never
    /// replayed.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic overflow from imposing the direction
    /// predicates (`Dir::Ne` is handled here by atom-splitting, so it does
    /// *not* error like [`DependenceProblem::with_direction`]).
    pub fn solve_refined(
        &self,
        solver: &ExactSolver,
        base: &DependenceProblem<i128>,
        dirs: &[Dir],
    ) -> Result<SolveOutcome, NumericError> {
        record_refine(|c| c.refine_queries += 1);
        self.solve_refined_inner(solver, base, dirs)
    }

    fn solve_refined_inner(
        &self,
        solver: &ExactSolver,
        base: &DependenceProblem<i128>,
        dirs: &[Dir],
    ) -> Result<SolveOutcome, NumericError> {
        // `≠` is not convex; split it into `<` and `>` (the engine's
        // hierarchy walk never asks for it, but the API stays total).
        if let Some(k) = dirs.iter().position(|&d| d == Dir::Ne) {
            let mut split = dirs.to_vec();
            split[k] = Dir::Lt;
            let lt = self.solve_refined_inner(solver, base, &split)?;
            if lt.is_solution() {
                return Ok(lt);
            }
            split[k] = Dir::Gt;
            let gt = self.solve_refined_inner(solver, base, &split)?;
            if gt.is_solution() {
                return Ok(gt);
            }
            return Ok(match (lt, gt) {
                (SolveOutcome::NoSolution, SolveOutcome::NoSolution) => SolveOutcome::NoSolution,
                (SolveOutcome::Degraded(r), _) | (_, SolveOutcome::Degraded(r)) => {
                    SolveOutcome::Degraded(r)
                }
                _ => unreachable!("solutions returned early"),
            });
        }
        if !self.enabled {
            return Ok(self.fresh_solve(solver, base, dirs)?.0);
        }
        let key = problem_fp(base);
        if let Some(tree) = self.lock().get(&key) {
            if let Some(entry) = tree.entries.get(dirs) {
                let (outcome, nodes) = (entry.outcome.clone(), entry.nodes);
                record_refine(|c| {
                    c.subtree_reuses += 1;
                    c.nodes_saved = c.nodes_saved.saturating_add(nodes);
                });
                return Ok(outcome);
            }
            // Ancestor scan: any stored vector that subsumes `dirs`
            // element-wise decided a superset of this query's region.
            for (anc, entry) in &tree.entries {
                if !subsumes(anc, dirs) {
                    continue;
                }
                match &entry.outcome {
                    SolveOutcome::NoSolution => {
                        let nodes = entry.nodes;
                        record_refine(|c| {
                            c.subtree_reuses += 1;
                            c.nodes_saved = c.nodes_saved.saturating_add(nodes);
                        });
                        return Ok(SolveOutcome::NoSolution);
                    }
                    SolveOutcome::Solution(w) if witness_satisfies(base, dirs, w) => {
                        let (outcome, nodes) = (entry.outcome.clone(), entry.nodes);
                        record_refine(|c| {
                            c.subtree_reuses += 1;
                            c.nodes_saved = c.nodes_saved.saturating_add(nodes);
                        });
                        return Ok(outcome);
                    }
                    _ => {}
                }
            }
        }
        // Fresh solve outside the lock: concurrent sharers may duplicate a
        // solve (benign — the duplicate entry is identical, the DFS being
        // deterministic) but never serialize on each other's search.
        let (outcome, nodes) = self.fresh_solve(solver, base, dirs)?;
        if outcome.is_degraded() {
            return Ok(outcome);
        }
        let mut trees = self.lock();
        let tree = trees.entry(key).or_default();
        // Move the outcome into the tree and answer from the stored entry:
        // a store costs the key allocation alone, not the key plus extra
        // outcome clones (and cloning `NoSolution` — the common memoized
        // case — back out is free).
        let entry = tree.entries.entry(dirs.to_vec()).or_insert(TreeEntry { outcome, nodes });
        Ok(entry.outcome.clone())
    }

    fn fresh_solve(
        &self,
        solver: &ExactSolver,
        base: &DependenceProblem<i128>,
        dirs: &[Dir],
    ) -> Result<(SolveOutcome, u64), NumericError> {
        let before = peek_thread_nodes();
        let outcome = if solver.arena {
            // Overwrite the thread's recycled refinement problem in place:
            // `clone_from` reuses every equation/inequality/name buffer the
            // previous query left behind, so imposing the directions is the
            // only work that grows it.
            REFINE_SCRATCH.with(|cell| match cell.try_borrow_mut() {
                Ok(mut slot) => {
                    let scratch = match slot.as_mut() {
                        Some(s) => {
                            s.clone_from(base);
                            s
                        }
                        None => slot.insert(base.clone()),
                    };
                    scratch.impose_directions(dirs)?;
                    Ok(solver.solve(scratch))
                }
                Err(_) => Ok(solver.solve(&base.with_directions(dirs)?)),
            })?
        } else {
            solver.solve(&base.with_directions(dirs)?)
        };
        Ok((outcome, peek_thread_nodes().saturating_sub(before)))
    }
}

/// `true` when every element of `child` is subsumed by the corresponding
/// element of `anc` — i.e. the child's constrained region is a subset.
fn subsumes(anc: &[Dir], child: &[Dir]) -> bool {
    anc.len() == child.len() && child.iter().zip(anc).all(|(&c, &a)| c.subsumed_by(a))
}

/// Does a stored witness satisfy a (tighter) direction vector? Mirrors the
/// encoding of [`DependenceProblem::with_direction`]: `<` means the source
/// variable is strictly below the sink variable.
fn witness_satisfies(base: &DependenceProblem<i128>, dirs: &[Dir], w: &[i128]) -> bool {
    base.common_loops().iter().zip(dirs).all(|(&(x, y), &d)| {
        let rel = match w[x].cmp(&w[y]) {
            std::cmp::Ordering::Less => Dir::Lt,
            std::cmp::Ordering::Equal => Dir::Eq,
            std::cmp::Ordering::Greater => Dir::Gt,
        };
        rel.subsumed_by(d)
    })
}

/// A 128-bit structural fingerprint of a base problem, used as the
/// [`SubtreeStore`] key. Like the `String` render it replaces, this ignores
/// variable *names* (two textually different but structurally identical
/// problems share a tree) and includes the common-loop pairing (direction
/// predicates mean different constraints under different pairings); unlike
/// the render it costs no allocation per refinement query. Every section is
/// length-prefixed and tagged so sections cannot alias, and the two
/// decorrelated [`Fp128`] lanes make collisions negligible at the scale of
/// one store (the trees of a single canonical problem's refinements).
fn problem_fp(p: &DependenceProblem<i128>) -> u128 {
    let mut h = Fp128::new();
    h.write_u8(1);
    h.write_usize(p.vars().len());
    for v in p.vars() {
        h.write_u128(v.upper as u128);
    }
    h.write_u8(2);
    h.write_usize(p.equations().len());
    for eq in p.equations() {
        h.write_u128(eq.c0 as u128);
        h.write_usize(eq.coeffs.len());
        for &c in &eq.coeffs {
            h.write_u128(c as u128);
        }
    }
    h.write_u8(3);
    h.write_usize(p.inequalities().len());
    for iq in p.inequalities() {
        h.write_u128(iq.c0 as u128);
        h.write_usize(iq.coeffs.len());
        for &c in &iq.coeffs {
            h.write_u128(c as u128);
        }
    }
    h.write_u8(4);
    h.write_usize(p.common_loops().len());
    for &(x, y) in p.common_loops() {
        h.write_usize(x);
        h.write_usize(y);
    }
    h.finish128()
}

/// Cheap whole-equation screen: value interval must contain zero and the
/// gcd of the coefficients must divide the constant.
fn equation_obviously_infeasible(
    problem: &DependenceProblem<i128>,
    eq: &crate::problem::LinEq<i128>,
) -> bool {
    let mut iv = Interval::point(eq.c0);
    for (k, &c) in eq.coeffs.iter().enumerate() {
        let Ok(scaled) = Interval::of_scaled_var(c, problem.vars()[k].upper) else {
            return false; // overflow: cannot conclude anything
        };
        let Ok(next) = iv.checked_add(&scaled) else {
            return false;
        };
        iv = next;
    }
    if !iv.contains_zero() {
        return true;
    }
    let g = eq.coeffs.iter().fold(0i128, |g, &c| gcd(g, c));
    if g == 0 {
        return eq.c0 != 0;
    }
    eq.c0 % g != 0
}

impl Search<'_> {
    /// Returns `Ok(true)` on success, `Ok(false)` on exhaustion of the
    /// search space, `Err(reason)` on budget exhaustion.
    fn dfs(&mut self, domains: &mut [Interval]) -> Result<bool, DegradeReason> {
        self.nodes += 1;
        self.budget.check(self.nodes)?;
        let n = self.problem.num_vars();
        // Bounds-consistency propagation to (capped) fixpoint: narrow every
        // unassigned variable's domain against every constraint. This keeps
        // infeasibility proofs polynomial when contradictions sit between
        // variables the branching order would otherwise reach late.
        for _round in 0..MAX_PROPAGATION_ROUNDS {
            let mut changed = false;
            for var in 0..n {
                if self.assigned[var] {
                    continue;
                }
                let range = self.feasible_range(var, domains).unwrap_or(domains[var]);
                if range.is_empty() {
                    return Ok(false);
                }
                if range != domains[var] {
                    domains[var] = range;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // First-fail: branch on the unassigned variable with the smallest
        // domain.
        let mut pick: Option<usize> = None;
        for var in 0..n {
            if self.assigned[var] {
                continue;
            }
            let better = match pick {
                None => true,
                Some(best) => {
                    domains[var].len().unwrap_or(i128::MAX)
                        < domains[best].len().unwrap_or(i128::MAX)
                }
            };
            if better {
                pick = Some(var);
            }
        }
        let Some(var) = pick else {
            return Ok(self.check_full());
        };
        // Divisibility prune over the partially-assigned equations.
        if self.divisibility_prune() {
            return Ok(false);
        }
        let range = domains[var];
        self.assigned[var] = true;
        for v in range.lo..=range.hi {
            self.assignment[var] = v;
            // Child frames copy the parent's post-propagation domains. The
            // arena path round-trips a recycled buffer through the pool;
            // the legacy path clones, exactly as the pre-arena engine did.
            let found = if self.reuse_buffers {
                let mut child = self.pool.pop().unwrap_or_default();
                child.clear();
                child.extend_from_slice(domains);
                let found = self.dfs(&mut child);
                self.pool.push(child);
                found
            } else {
                self.dfs(&mut domains.to_owned())
            };
            if found? {
                return Ok(true);
            }
        }
        self.assigned[var] = false;
        self.assignment[var] = 0;
        Ok(false)
    }

    fn check_full(&self) -> bool {
        self.problem.is_solution(&self.assignment).unwrap_or(false)
    }

    /// The interval of values for `var` consistent with every constraint
    /// given the current partial assignment and the other variables'
    /// current domains. `None` on arithmetic overflow (callers fall back
    /// to the current domain).
    fn feasible_range(&self, var: usize, domains: &[Interval]) -> Option<Interval> {
        let mut range = domains[var];
        for eq in self.problem.equations() {
            range = range.intersect(&self.constraint_range(eq.c0, &eq.coeffs, var, true, domains)?);
            if range.is_empty() {
                return Some(range);
            }
        }
        for iq in self.problem.inequalities() {
            range =
                range.intersect(&self.constraint_range(iq.c0, &iq.coeffs, var, false, domains)?);
            if range.is_empty() {
                return Some(range);
            }
        }
        Some(range)
    }

    /// For constraint `c0 + Σ ck·zk (= | ≥) 0`, the interval of `var`
    /// values that keep it satisfiable given the other variables'
    /// intervals.
    fn constraint_range(
        &self,
        c0: i128,
        coeffs: &[i128],
        var: usize,
        is_equation: bool,
        domains: &[Interval],
    ) -> Option<Interval> {
        let c_var = coeffs[var];
        let full = domains[var];
        if c_var == 0 {
            return Some(full);
        }
        // rest = c0 + assigned terms + interval of other unassigned terms
        let mut rest = Interval::point(c0);
        for (k, &c) in coeffs.iter().enumerate() {
            if k == var || c == 0 {
                continue;
            }
            let contrib = if self.assigned[k] {
                Interval::point(c.checked_mul(self.assignment[k])?)
            } else {
                domains[k].checked_scale(c).ok()?
            };
            rest = rest.checked_add(&contrib).ok()?;
        }
        // Equation: need c_var·v ∈ [-rest.hi, -rest.lo].
        // Inequality (≥ 0): need c_var·v ≥ -rest.hi, i.e. c_var·v ∈
        // [-rest.hi, +∞) regardless of the sign of c_var (the sign only
        // affects the conversion to bounds on v below).
        let (lo, hi) = if is_equation { (-rest.hi, -rest.lo) } else { (-rest.hi, i128::MAX / 2) };
        // v ∈ [ceil(lo/c), floor(hi/c)] for c>0; reversed for c<0.
        let (vlo, vhi) = if c_var > 0 {
            (
                delin_numeric::int::ceil_div(lo, c_var).ok()?,
                delin_numeric::int::floor_div(hi, c_var).ok()?,
            )
        } else {
            (
                delin_numeric::int::ceil_div(hi, c_var).ok()?,
                delin_numeric::int::floor_div(lo, c_var).ok()?,
            )
        };
        Some(full.intersect(&Interval::new(vlo, vhi)))
    }

    /// `true` when some equation's fixed residual cannot be matched by the
    /// remaining terms for divisibility reasons.
    fn divisibility_prune(&self) -> bool {
        'eqs: for eq in self.problem.equations() {
            let mut fixed = eq.c0;
            let mut g = 0i128;
            for (k, &c) in eq.coeffs.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if self.assigned[k] {
                    let Some(t) = c.checked_mul(self.assignment[k]) else {
                        continue 'eqs;
                    };
                    let Some(f) = fixed.checked_add(t) else {
                        continue 'eqs;
                    };
                    fixed = f;
                } else {
                    g = gcd(g, c);
                }
            }
            if g == 0 {
                if fixed != 0 {
                    return true;
                }
            } else if fixed % g != 0 {
                return true;
            }
        }
        false
    }
}

impl DependenceTest<i128> for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        match self.solve(problem) {
            SolveOutcome::NoSolution => Verdict::Independent,
            SolveOutcome::Solution(w) => Verdict::Dependent {
                exact: true,
                info: DependenceInfo { witness: Some(w), ..DependenceInfo::default() },
            },
            // Budget exhaustion is the sound conservative answer: the pair
            // may depend, nothing was proven.
            SolveOutcome::Degraded(_) => Verdict::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::DegradeReason;
    use crate::dirvec::Dir;
    use crate::problem::DependenceProblem;

    fn motivating() -> DependenceProblem<i128> {
        // i1 + 10 j1 - i2 - 10 j2 - 5 = 0
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn motivating_example_has_no_solution() {
        assert_eq!(ExactSolver::default().solve(&motivating()), SolveOutcome::NoSolution);
    }

    #[test]
    fn intro_dependent_example() {
        // D(i+1) = D(i): i1 + 1 - i2 = 0, i in [0,8] — dependent.
        let p = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let out = ExactSolver::default().solve(&p);
        match out {
            SolveOutcome::Solution(w) => {
                assert!(p.is_solution(&w).unwrap());
            }
            other => panic!("expected a solution, got {other:?}"),
        }
    }

    #[test]
    fn intro_independent_example() {
        // D(i) = D(i+5): i1 - i2 - 5 = 0, i in [0,4] — independent.
        let p = DependenceProblem::single_equation(-5, vec![1, -1], vec![4, 4]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn honors_inequalities_and_directions() {
        // i1 - i2 = 0 with direction `<` is infeasible; with `=` feasible.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        let lt = p.with_direction(0, Dir::Lt).unwrap();
        assert_eq!(ExactSolver::default().solve(&lt), SolveOutcome::NoSolution);
        let eq = p.with_direction(0, Dir::Eq).unwrap();
        assert!(ExactSolver::default().solve(&eq).is_solution());
    }

    #[test]
    fn multi_equation_system() {
        // x = 3, y = x, y + z = 5 over [0,10]^3
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.var("z", 10);
        b.equation(-3, vec![1, 0, 0]);
        b.equation(0, vec![1, -1, 0]);
        b.equation(-5, vec![0, 1, 1]);
        let p = b.build();
        match ExactSolver::default().solve(&p) {
            SolveOutcome::Solution(w) => assert_eq!(w, vec![3, 3, 2]),
            other => panic!("expected solution, got {other:?}"),
        }
    }

    #[test]
    fn gcd_screen() {
        // 2x - 4y = 1 is infeasible by divisibility alone, with huge bounds.
        let p = DependenceProblem::single_equation(1, vec![2, -4], vec![1_000_000, 1_000_000]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn divisibility_prune_with_partial_assignment() {
        // x + 2y + 4z = 3 over small bounds: solutions exist (x=1, y=1);
        // and x + 2y = 1, 4z = 2-ish cases get pruned by divisibility.
        let p = DependenceProblem::single_equation(-3, vec![1, 2, 4], vec![1, 1, 1]);
        assert!(ExactSolver::default().solve(&p).is_solution());
        let p = DependenceProblem::single_equation(-1, vec![2, 4, 8], vec![5, 5, 5]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn node_limit_reports_unknown() {
        // Many variables, a constraint structure the prunes cannot collapse:
        // Σ xi - Σ yi = 0 admits huge search with a tiny budget.
        let n = 10;
        let mut coeffs = vec![1i128; n];
        coeffs.extend(vec![-1i128; n]);
        let p = DependenceProblem::single_equation(-1, coeffs, vec![9; 2 * n]);
        let tiny = ExactSolver::with_limit(2);
        assert_eq!(tiny.solve(&p), SolveOutcome::Degraded(DegradeReason::Nodes));
        assert!(tiny.solve(&p).is_degraded());
        assert_eq!(tiny.budget.tripped(), Some(DegradeReason::Nodes));
        assert!(DependenceTest::test(&tiny, &p).is_unknown());
    }

    #[test]
    fn expired_deadline_degrades_before_searching() {
        use crate::budget::{CancelToken, ResourceBudget};
        let p = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let solver = ExactSolver::with_budget(
            ResourceBudget::unlimited().deadline_at(std::time::Instant::now()),
        );
        assert_eq!(solver.solve(&p), SolveOutcome::Degraded(DegradeReason::Deadline));
        assert!(DependenceTest::test(&solver, &p).is_unknown());

        let token = CancelToken::new();
        let cancelled =
            ExactSolver::with_budget(ResourceBudget::unlimited().with_cancel(token.clone()));
        assert!(cancelled.solve(&p).is_solution(), "un-cancelled budget solves normally");
        token.cancel();
        assert_eq!(cancelled.solve(&p), SolveOutcome::Degraded(DegradeReason::Cancelled));
    }

    #[test]
    fn free_variables_cost_nothing() {
        // A contradiction between j1/j2 with two completely free i's: the
        // first-fail ordering must detect it without enumerating the i's.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 1_000_000);
        let j1 = b.var("j1", 97);
        let i2 = b.var("i2", 1_000_000);
        let j2 = b.var("j2", 97);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation(0, vec![0, 1, 0, -1]); // j1 = j2
        let p = b
            .build()
            .with_direction(1, Dir::Gt) // j1 >= j2 + 1: contradiction
            .unwrap();
        let quick = ExactSolver::with_limit(10_000);
        assert_eq!(quick.solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn verdict_mapping() {
        let s = ExactSolver::default();
        assert_eq!(s.name(), "exact");
        assert!(DependenceTest::test(&s, &motivating()).is_independent());
        let dep = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let v = DependenceTest::test(&s, &dep);
        assert!(matches!(v, Verdict::Dependent { exact: true, .. }));
        assert!(v.info().unwrap().witness.is_some());
    }

    #[test]
    fn node_accounting_is_per_thread() {
        let _ = take_thread_nodes(); // drain whatever earlier tests left
        assert_eq!(take_thread_nodes(), 0);
        let _ = ExactSolver::default().solve(&motivating());
        assert!(take_thread_nodes() > 0);
        assert_eq!(take_thread_nodes(), 0);
        // Screened-out problems may cost zero nodes but must not panic.
        let zero_trip = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        let _ = ExactSolver::default().solve(&zero_trip);
        let _ = take_thread_nodes();
    }

    /// A single-`<`-dependence problem with one common pair:
    /// `i1 + 1 = i2` over `[0,8]²`.
    fn shift_by_one() -> DependenceProblem<i128> {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(1, vec![1, -1]);
        b.common_pair(x, y);
        b.build()
    }

    #[test]
    fn solve_refined_exact_hit_replays_at_zero_cost() {
        reset_thread_refine();
        reset_thread_nodes();
        let store = SubtreeStore::new();
        let solver = ExactSolver::default();
        let p = shift_by_one();
        let first = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        assert!(first.is_solution());
        let after_first = peek_thread_nodes();
        assert!(after_first > 0, "a fresh refinement costs nodes");
        let second = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        assert_eq!(first, second, "replay must be identical to the fresh solve");
        assert_eq!(peek_thread_nodes(), after_first, "an exact hit costs zero nodes");
        let c = take_thread_refine();
        assert_eq!(c.refine_queries, 2);
        assert_eq!(c.subtree_reuses, 1);
        assert!(c.nodes_saved > 0);
        reset_thread_nodes();
    }

    #[test]
    fn solve_refined_propagates_ancestor_no_solution() {
        reset_thread_refine();
        reset_thread_nodes();
        let store = SubtreeStore::new();
        let solver = ExactSolver::default();
        // An independent problem: i1 = i2 + 5 over [0,4]². The root `*`
        // proof must serve every tighter query without another solve.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 4);
        let y = b.var("i2", 4);
        b.equation(-5, vec![1, -1]);
        b.common_pair(x, y);
        let indep = b.build();
        let root = store.solve_refined(&solver, &indep, &[Dir::Any]).unwrap();
        assert_eq!(root, SolveOutcome::NoSolution);
        let nodes_after_root = peek_thread_nodes();
        for d in [Dir::Lt, Dir::Eq, Dir::Gt, Dir::Le, Dir::Ge] {
            let out = store.solve_refined(&solver, &indep, &[d]).unwrap();
            assert_eq!(out, SolveOutcome::NoSolution);
        }
        assert_eq!(peek_thread_nodes(), nodes_after_root, "children served from the root proof");
        let c = take_thread_refine();
        assert_eq!(c.refine_queries, 6);
        assert_eq!(c.subtree_reuses, 5);
        reset_thread_nodes();
    }

    #[test]
    fn solve_refined_reuses_ancestor_witness_when_it_fits() {
        reset_thread_refine();
        reset_thread_nodes();
        let store = SubtreeStore::new();
        let solver = ExactSolver::default();
        let p = shift_by_one();
        // The root solve finds some witness; every witness of this problem
        // has i1 < i2, so the `<` child must be served from it.
        let root = store.solve_refined(&solver, &p, &[Dir::Any]).unwrap();
        assert!(root.is_solution());
        let nodes_after_root = peek_thread_nodes();
        let child = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        assert_eq!(root, child);
        assert_eq!(peek_thread_nodes(), nodes_after_root, "witness replay costs zero nodes");
        // `=` is NOT satisfied by the witness: a fresh solve runs and
        // proves infeasibility.
        let eq = store.solve_refined(&solver, &p, &[Dir::Eq]).unwrap();
        assert_eq!(eq, SolveOutcome::NoSolution);
        assert!(peek_thread_nodes() > nodes_after_root);
        let c = take_thread_refine();
        assert_eq!(c.refine_queries, 3);
        assert_eq!(c.subtree_reuses, 1);
        reset_thread_nodes();
    }

    #[test]
    fn disabled_store_counts_queries_but_never_reuses() {
        reset_thread_refine();
        reset_thread_nodes();
        let store = SubtreeStore::disabled();
        assert!(!store.is_enabled());
        let solver = ExactSolver::default();
        let p = shift_by_one();
        let a = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        let cost_one = peek_thread_nodes();
        let b = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        assert_eq!(a, b);
        assert_eq!(peek_thread_nodes(), cost_one * 2, "every query re-solves");
        assert!(store.is_empty());
        let c = take_thread_refine();
        assert_eq!(c.refine_queries, 2);
        assert_eq!(c.subtree_reuses, 0);
        assert_eq!(c.nodes_saved, 0);
        reset_thread_nodes();
    }

    #[test]
    fn solve_refined_splits_ne() {
        let store = SubtreeStore::new();
        let solver = ExactSolver::default();
        // i1 + 1 = i2: `≠` holds (via `<`), `=` does not.
        let p = shift_by_one();
        assert!(store.solve_refined(&solver, &p, &[Dir::Ne]).unwrap().is_solution());
        // i1 = i2: `≠` is infeasible.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let same = b.build();
        assert_eq!(
            store.solve_refined(&solver, &same, &[Dir::Ne]).unwrap(),
            SolveOutcome::NoSolution
        );
        reset_thread_refine();
        reset_thread_nodes();
    }

    #[test]
    fn degraded_refinements_are_never_stored_or_replayed() {
        reset_thread_refine();
        reset_thread_nodes();
        let store = SubtreeStore::new();
        let starved = ExactSolver::with_limit(0);
        let p = shift_by_one();
        let a = store.solve_refined(&starved, &p, &[Dir::Lt]).unwrap();
        assert!(a.is_degraded());
        assert!(store.is_empty(), "degraded outcomes must not be memoized");
        let b = store.solve_refined(&starved, &p, &[Dir::Lt]).unwrap();
        assert!(b.is_degraded());
        let c = take_thread_refine();
        assert_eq!(c.subtree_reuses, 0);
        // A proof stored under a healthy budget still replays after the
        // budget starves: the proof was paid for once and stays sound.
        let healthy = ExactSolver::default();
        let proof = store.solve_refined(&healthy, &p, &[Dir::Eq]).unwrap();
        assert_eq!(proof, SolveOutcome::NoSolution);
        let replay = store.solve_refined(&starved, &p, &[Dir::Eq]).unwrap();
        assert_eq!(replay, SolveOutcome::NoSolution);
        assert_eq!(take_thread_refine().subtree_reuses, 1);
        reset_thread_nodes();
    }

    #[test]
    fn structurally_identical_problems_share_a_tree() {
        reset_thread_refine();
        let store = SubtreeStore::new();
        let solver = ExactSolver::default();
        let p = shift_by_one();
        // Same structure, different variable names.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("a", 8);
        let y = b.var("b", 8);
        b.equation(1, vec![1, -1]);
        b.common_pair(x, y);
        let q = b.build();
        let _ = store.solve_refined(&solver, &p, &[Dir::Lt]).unwrap();
        let _ = store.solve_refined(&solver, &q, &[Dir::Lt]).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(take_thread_refine().subtree_reuses, 1);
        reset_thread_nodes();
    }

    #[test]
    fn arena_and_legacy_paths_agree_node_for_node() {
        reset_thread_nodes();
        for p in [
            motivating(),
            shift_by_one(),
            DependenceProblem::single_equation(-3, vec![1, 2, 4], vec![1, 1, 1]),
            DependenceProblem::single_equation(-1, vec![2, 4, 8], vec![5, 5, 5]),
        ] {
            let _ = take_thread_nodes();
            let arena = ExactSolver::default().with_arena(true).solve(&p);
            let arena_nodes = take_thread_nodes();
            let legacy = ExactSolver::default().with_arena(false).solve(&p);
            let legacy_nodes = take_thread_nodes();
            assert_eq!(arena, legacy, "outcomes must be identical");
            assert_eq!(arena_nodes, legacy_nodes, "search must be identical");
        }
        // The refinement scratch path must match too (store disabled so
        // every query runs fresh_solve).
        let store = SubtreeStore::disabled();
        let p = shift_by_one();
        let a =
            store.solve_refined(&ExactSolver::default().with_arena(true), &p, &[Dir::Lt]).unwrap();
        let b =
            store.solve_refined(&ExactSolver::default().with_arena(false), &p, &[Dir::Lt]).unwrap();
        assert_eq!(a, b);
        reset_thread_refine();
        reset_thread_nodes();
    }

    #[test]
    fn brute_force_agreement_small() {
        // Exhaustive cross-check on a family of small random-ish systems.
        let mut cases = Vec::new();
        for c0 in -6i128..=6 {
            for a in [-3i128, -1, 2, 5] {
                for b in [-2i128, 1, 4] {
                    cases.push((c0, a, b));
                }
            }
        }
        for (c0, a, b) in cases {
            let p = DependenceProblem::single_equation(c0, vec![a, b], vec![3, 4]);
            let brute = (0..=3).any(|x| (0..=4).any(|y| c0 + a * x + b * y == 0));
            let got = ExactSolver::default().solve(&p).is_solution();
            assert_eq!(got, brute, "c0={c0} a={a} b={b}");
        }
    }
}
