//! Exact integer feasibility for dependence problems.
//!
//! The paper (after Maydan–Hennessy–Lam) notes that deciding a dependence
//! system exactly is integer programming. For the problem sizes dependence
//! analysis produces (a handful of variables with modest bounds) an
//! interval- and divisibility-pruned depth-first search with first-fail
//! variable ordering is exact and fast; we use it as the *ground truth*
//! against which every approximate test — and delinearization itself — is
//! validated.

use crate::budget::{DegradeReason, ResourceBudget};
use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};
use delin_numeric::{gcd, Interval};
use std::cell::Cell;

thread_local! {
    /// Search nodes explored by [`ExactSolver::solve`] on this thread since
    /// the last [`take_thread_nodes`] call.
    static THREAD_NODES: Cell<u64> = const { Cell::new(0) };
}

/// Returns (and resets) the number of exact-solver search nodes explored on
/// the current thread since the previous call.
///
/// Every [`ExactSolver::solve`] adds its node count to a thread-local
/// accumulator; observability layers bracket a unit of work with two calls
/// to attribute solver effort to it. Thread-local (rather than global)
/// accounting keeps the attribution exact under parallel graph
/// construction.
pub fn take_thread_nodes() -> u64 {
    THREAD_NODES.with(|c| c.replace(0))
}

/// Discards any node count accumulated on the current thread.
///
/// Recovery paths call this after catching a panic that unwound through a
/// solve: whatever partial count the interrupted bracket left behind must
/// not leak into the *next* unit of work's attribution, or post-failure
/// statistics become scheduling-dependent.
pub fn reset_thread_nodes() {
    let _ = take_thread_nodes();
}

fn record_nodes(n: u64) {
    THREAD_NODES.with(|c| c.set(c.get().saturating_add(n)));
}

/// The outcome of an exact solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// The system has no integer solution.
    NoSolution,
    /// A witness assignment (one value per problem variable).
    Solution(Vec<i128>),
    /// The search gave up before deciding: its [`ResourceBudget`] exhausted
    /// along the recorded axis. Consumers must treat this as "maybe
    /// dependent" — it is never a proof in either direction.
    Degraded(DegradeReason),
}

impl SolveOutcome {
    /// `true` when a witness was found.
    pub fn is_solution(&self) -> bool {
        matches!(self, SolveOutcome::Solution(_))
    }

    /// `true` when the search exhausted its budget before deciding.
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded(_))
    }
}

/// Exact solver bounded by a [`ResourceBudget`] (search nodes, wall-clock
/// deadline, cancellation).
#[derive(Debug, Clone)]
pub struct ExactSolver {
    /// The budget every [`ExactSolver::solve`] call runs under. The default
    /// is a node-only budget of 5,000,000 (ground-truth usage); engine code
    /// threads its own per-decision budget in via
    /// [`ExactSolver::with_budget`].
    pub budget: ResourceBudget,
}

/// The default ground-truth node budget.
const DEFAULT_SOLVER_NODES: u64 = 5_000_000;

impl Default for ExactSolver {
    fn default() -> Self {
        ExactSolver { budget: ResourceBudget::with_node_limit(DEFAULT_SOLVER_NODES) }
    }
}

struct Search<'a> {
    problem: &'a DependenceProblem<i128>,
    assignment: Vec<i128>,
    assigned: Vec<bool>,
    nodes: u64,
    budget: &'a ResourceBudget,
}

/// Propagation rounds are capped: bounds consistency can converge slowly
/// (shrinking an interval by one element per round), and the cap keeps the
/// solver sound — propagation only narrows optional information.
const MAX_PROPAGATION_ROUNDS: usize = 64;

impl ExactSolver {
    /// Creates a solver with the given node budget (no deadline, no
    /// cancellation).
    pub fn with_limit(node_limit: u64) -> ExactSolver {
        ExactSolver { budget: ResourceBudget::with_node_limit(node_limit) }
    }

    /// Creates a solver bounded by an explicit budget. Exhaustion along any
    /// axis is recorded in the budget's trip flag and surfaced as
    /// [`SolveOutcome::Degraded`].
    pub fn with_budget(budget: ResourceBudget) -> ExactSolver {
        ExactSolver { budget }
    }

    /// The solver's search-node limit.
    pub fn node_limit(&self) -> u64 {
        self.budget.node_limit()
    }

    /// Solves the problem exactly.
    ///
    /// Bounds, equations, and inequality constraints are all honoured.
    /// Problems with any empty variable range (`upper < 0`, a zero-trip
    /// loop) have no solution by definition.
    pub fn solve(&self, problem: &DependenceProblem<i128>) -> SolveOutcome {
        if let Some(reason) = self.budget.exhausted() {
            // Already past the deadline (or cancelled): degrade before
            // spending a single node.
            return SolveOutcome::Degraded(reason);
        }
        let n = problem.num_vars();
        if problem.vars().iter().any(|v| v.upper < 0) {
            return SolveOutcome::NoSolution;
        }
        for eq in problem.equations() {
            if equation_obviously_infeasible(problem, eq) {
                return SolveOutcome::NoSolution;
            }
        }
        let mut search = Search {
            problem,
            assignment: vec![0; n],
            assigned: vec![false; n],
            nodes: 0,
            budget: &self.budget,
        };
        let domains: Vec<Interval> =
            problem.vars().iter().map(|v| Interval::new(0, v.upper)).collect();
        let result = search.dfs(domains);
        record_nodes(search.nodes);
        match result {
            Ok(true) => SolveOutcome::Solution(search.assignment),
            Ok(false) => SolveOutcome::NoSolution,
            Err(reason) => SolveOutcome::Degraded(reason),
        }
    }
}

/// Cheap whole-equation screen: value interval must contain zero and the
/// gcd of the coefficients must divide the constant.
fn equation_obviously_infeasible(
    problem: &DependenceProblem<i128>,
    eq: &crate::problem::LinEq<i128>,
) -> bool {
    let mut iv = Interval::point(eq.c0);
    for (k, &c) in eq.coeffs.iter().enumerate() {
        let Ok(scaled) = Interval::of_scaled_var(c, problem.vars()[k].upper) else {
            return false; // overflow: cannot conclude anything
        };
        let Ok(next) = iv.checked_add(&scaled) else {
            return false;
        };
        iv = next;
    }
    if !iv.contains_zero() {
        return true;
    }
    let g = eq.coeffs.iter().fold(0i128, |g, &c| gcd(g, c));
    if g == 0 {
        return eq.c0 != 0;
    }
    eq.c0 % g != 0
}

impl Search<'_> {
    /// Returns `Ok(true)` on success, `Ok(false)` on exhaustion of the
    /// search space, `Err(reason)` on budget exhaustion.
    fn dfs(&mut self, mut domains: Vec<Interval>) -> Result<bool, DegradeReason> {
        self.nodes += 1;
        self.budget.check(self.nodes)?;
        let n = self.problem.num_vars();
        // Bounds-consistency propagation to (capped) fixpoint: narrow every
        // unassigned variable's domain against every constraint. This keeps
        // infeasibility proofs polynomial when contradictions sit between
        // variables the branching order would otherwise reach late.
        for _round in 0..MAX_PROPAGATION_ROUNDS {
            let mut changed = false;
            for var in 0..n {
                if self.assigned[var] {
                    continue;
                }
                let range = self.feasible_range(var, &domains).unwrap_or(domains[var]);
                if range.is_empty() {
                    return Ok(false);
                }
                if range != domains[var] {
                    domains[var] = range;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // First-fail: branch on the unassigned variable with the smallest
        // domain.
        let mut pick: Option<usize> = None;
        for var in 0..n {
            if self.assigned[var] {
                continue;
            }
            let better = match pick {
                None => true,
                Some(best) => {
                    domains[var].len().unwrap_or(i128::MAX)
                        < domains[best].len().unwrap_or(i128::MAX)
                }
            };
            if better {
                pick = Some(var);
            }
        }
        let Some(var) = pick else {
            return Ok(self.check_full());
        };
        // Divisibility prune over the partially-assigned equations.
        if self.divisibility_prune() {
            return Ok(false);
        }
        let range = domains[var];
        self.assigned[var] = true;
        for v in range.lo..=range.hi {
            self.assignment[var] = v;
            if self.dfs(domains.clone())? {
                return Ok(true);
            }
        }
        self.assigned[var] = false;
        self.assignment[var] = 0;
        Ok(false)
    }

    fn check_full(&self) -> bool {
        self.problem.is_solution(&self.assignment).unwrap_or(false)
    }

    /// The interval of values for `var` consistent with every constraint
    /// given the current partial assignment and the other variables'
    /// current domains. `None` on arithmetic overflow (callers fall back
    /// to the current domain).
    fn feasible_range(&self, var: usize, domains: &[Interval]) -> Option<Interval> {
        let mut range = domains[var];
        for eq in self.problem.equations() {
            range = range.intersect(&self.constraint_range(eq.c0, &eq.coeffs, var, true, domains)?);
            if range.is_empty() {
                return Some(range);
            }
        }
        for iq in self.problem.inequalities() {
            range =
                range.intersect(&self.constraint_range(iq.c0, &iq.coeffs, var, false, domains)?);
            if range.is_empty() {
                return Some(range);
            }
        }
        Some(range)
    }

    /// For constraint `c0 + Σ ck·zk (= | ≥) 0`, the interval of `var`
    /// values that keep it satisfiable given the other variables'
    /// intervals.
    fn constraint_range(
        &self,
        c0: i128,
        coeffs: &[i128],
        var: usize,
        is_equation: bool,
        domains: &[Interval],
    ) -> Option<Interval> {
        let c_var = coeffs[var];
        let full = domains[var];
        if c_var == 0 {
            return Some(full);
        }
        // rest = c0 + assigned terms + interval of other unassigned terms
        let mut rest = Interval::point(c0);
        for (k, &c) in coeffs.iter().enumerate() {
            if k == var || c == 0 {
                continue;
            }
            let contrib = if self.assigned[k] {
                Interval::point(c.checked_mul(self.assignment[k])?)
            } else {
                domains[k].checked_scale(c).ok()?
            };
            rest = rest.checked_add(&contrib).ok()?;
        }
        // Equation: need c_var·v ∈ [-rest.hi, -rest.lo].
        // Inequality (≥ 0): need c_var·v ≥ -rest.hi, i.e. c_var·v ∈
        // [-rest.hi, +∞) regardless of the sign of c_var (the sign only
        // affects the conversion to bounds on v below).
        let (lo, hi) = if is_equation { (-rest.hi, -rest.lo) } else { (-rest.hi, i128::MAX / 2) };
        // v ∈ [ceil(lo/c), floor(hi/c)] for c>0; reversed for c<0.
        let (vlo, vhi) = if c_var > 0 {
            (
                delin_numeric::int::ceil_div(lo, c_var).ok()?,
                delin_numeric::int::floor_div(hi, c_var).ok()?,
            )
        } else {
            (
                delin_numeric::int::ceil_div(hi, c_var).ok()?,
                delin_numeric::int::floor_div(lo, c_var).ok()?,
            )
        };
        Some(full.intersect(&Interval::new(vlo, vhi)))
    }

    /// `true` when some equation's fixed residual cannot be matched by the
    /// remaining terms for divisibility reasons.
    fn divisibility_prune(&self) -> bool {
        'eqs: for eq in self.problem.equations() {
            let mut fixed = eq.c0;
            let mut g = 0i128;
            for (k, &c) in eq.coeffs.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if self.assigned[k] {
                    let Some(t) = c.checked_mul(self.assignment[k]) else {
                        continue 'eqs;
                    };
                    let Some(f) = fixed.checked_add(t) else {
                        continue 'eqs;
                    };
                    fixed = f;
                } else {
                    g = gcd(g, c);
                }
            }
            if g == 0 {
                if fixed != 0 {
                    return true;
                }
            } else if fixed % g != 0 {
                return true;
            }
        }
        false
    }
}

impl DependenceTest<i128> for ExactSolver {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        match self.solve(problem) {
            SolveOutcome::NoSolution => Verdict::Independent,
            SolveOutcome::Solution(w) => Verdict::Dependent {
                exact: true,
                info: DependenceInfo { witness: Some(w), ..DependenceInfo::default() },
            },
            // Budget exhaustion is the sound conservative answer: the pair
            // may depend, nothing was proven.
            SolveOutcome::Degraded(_) => Verdict::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::DegradeReason;
    use crate::dirvec::Dir;
    use crate::problem::DependenceProblem;

    fn motivating() -> DependenceProblem<i128> {
        // i1 + 10 j1 - i2 - 10 j2 - 5 = 0
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn motivating_example_has_no_solution() {
        assert_eq!(ExactSolver::default().solve(&motivating()), SolveOutcome::NoSolution);
    }

    #[test]
    fn intro_dependent_example() {
        // D(i+1) = D(i): i1 + 1 - i2 = 0, i in [0,8] — dependent.
        let p = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let out = ExactSolver::default().solve(&p);
        match out {
            SolveOutcome::Solution(w) => {
                assert!(p.is_solution(&w).unwrap());
            }
            other => panic!("expected a solution, got {other:?}"),
        }
    }

    #[test]
    fn intro_independent_example() {
        // D(i) = D(i+5): i1 - i2 - 5 = 0, i in [0,4] — independent.
        let p = DependenceProblem::single_equation(-5, vec![1, -1], vec![4, 4]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn honors_inequalities_and_directions() {
        // i1 - i2 = 0 with direction `<` is infeasible; with `=` feasible.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        let lt = p.with_direction(0, Dir::Lt).unwrap();
        assert_eq!(ExactSolver::default().solve(&lt), SolveOutcome::NoSolution);
        let eq = p.with_direction(0, Dir::Eq).unwrap();
        assert!(ExactSolver::default().solve(&eq).is_solution());
    }

    #[test]
    fn multi_equation_system() {
        // x = 3, y = x, y + z = 5 over [0,10]^3
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.var("z", 10);
        b.equation(-3, vec![1, 0, 0]);
        b.equation(0, vec![1, -1, 0]);
        b.equation(-5, vec![0, 1, 1]);
        let p = b.build();
        match ExactSolver::default().solve(&p) {
            SolveOutcome::Solution(w) => assert_eq!(w, vec![3, 3, 2]),
            other => panic!("expected solution, got {other:?}"),
        }
    }

    #[test]
    fn gcd_screen() {
        // 2x - 4y = 1 is infeasible by divisibility alone, with huge bounds.
        let p = DependenceProblem::single_equation(1, vec![2, -4], vec![1_000_000, 1_000_000]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn divisibility_prune_with_partial_assignment() {
        // x + 2y + 4z = 3 over small bounds: solutions exist (x=1, y=1);
        // and x + 2y = 1, 4z = 2-ish cases get pruned by divisibility.
        let p = DependenceProblem::single_equation(-3, vec![1, 2, 4], vec![1, 1, 1]);
        assert!(ExactSolver::default().solve(&p).is_solution());
        let p = DependenceProblem::single_equation(-1, vec![2, 4, 8], vec![5, 5, 5]);
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn node_limit_reports_unknown() {
        // Many variables, a constraint structure the prunes cannot collapse:
        // Σ xi - Σ yi = 0 admits huge search with a tiny budget.
        let n = 10;
        let mut coeffs = vec![1i128; n];
        coeffs.extend(vec![-1i128; n]);
        let p = DependenceProblem::single_equation(-1, coeffs, vec![9; 2 * n]);
        let tiny = ExactSolver::with_limit(2);
        assert_eq!(tiny.solve(&p), SolveOutcome::Degraded(DegradeReason::Nodes));
        assert!(tiny.solve(&p).is_degraded());
        assert_eq!(tiny.budget.tripped(), Some(DegradeReason::Nodes));
        assert!(DependenceTest::test(&tiny, &p).is_unknown());
    }

    #[test]
    fn expired_deadline_degrades_before_searching() {
        use crate::budget::{CancelToken, ResourceBudget};
        let p = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let solver = ExactSolver::with_budget(
            ResourceBudget::unlimited().deadline_at(std::time::Instant::now()),
        );
        assert_eq!(solver.solve(&p), SolveOutcome::Degraded(DegradeReason::Deadline));
        assert!(DependenceTest::test(&solver, &p).is_unknown());

        let token = CancelToken::new();
        let cancelled =
            ExactSolver::with_budget(ResourceBudget::unlimited().with_cancel(token.clone()));
        assert!(cancelled.solve(&p).is_solution(), "un-cancelled budget solves normally");
        token.cancel();
        assert_eq!(cancelled.solve(&p), SolveOutcome::Degraded(DegradeReason::Cancelled));
    }

    #[test]
    fn free_variables_cost_nothing() {
        // A contradiction between j1/j2 with two completely free i's: the
        // first-fail ordering must detect it without enumerating the i's.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 1_000_000);
        let j1 = b.var("j1", 97);
        let i2 = b.var("i2", 1_000_000);
        let j2 = b.var("j2", 97);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation(0, vec![0, 1, 0, -1]); // j1 = j2
        let p = b
            .build()
            .with_direction(1, Dir::Gt) // j1 >= j2 + 1: contradiction
            .unwrap();
        let quick = ExactSolver::with_limit(10_000);
        assert_eq!(quick.solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn verdict_mapping() {
        let s = ExactSolver::default();
        assert_eq!(s.name(), "exact");
        assert!(DependenceTest::test(&s, &motivating()).is_independent());
        let dep = DependenceProblem::single_equation(1, vec![1, -1], vec![8, 8]);
        let v = DependenceTest::test(&s, &dep);
        assert!(matches!(v, Verdict::Dependent { exact: true, .. }));
        assert!(v.info().unwrap().witness.is_some());
    }

    #[test]
    fn node_accounting_is_per_thread() {
        let _ = take_thread_nodes(); // drain whatever earlier tests left
        assert_eq!(take_thread_nodes(), 0);
        let _ = ExactSolver::default().solve(&motivating());
        assert!(take_thread_nodes() > 0);
        assert_eq!(take_thread_nodes(), 0);
        // Screened-out problems may cost zero nodes but must not panic.
        let zero_trip = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        let _ = ExactSolver::default().solve(&zero_trip);
        let _ = take_thread_nodes();
    }

    #[test]
    fn brute_force_agreement_small() {
        // Exhaustive cross-check on a family of small random-ish systems.
        let mut cases = Vec::new();
        for c0 in -6i128..=6 {
            for a in [-3i128, -1, 2, 5] {
                for b in [-2i128, 1, 4] {
                    cases.push((c0, a, b));
                }
            }
        }
        for (c0, a, b) in cases {
            let p = DependenceProblem::single_equation(c0, vec![a, b], vec![3, 4]);
            let brute = (0..=3).any(|x| (0..=4).any(|y| c0 + a * x + b * y == 0));
            let got = ExactSolver::default().solve(&p).is_solution();
            assert_eq!(got, brute, "c0={c0} a={a} b={b}");
        }
    }
}
