//! Direction-vector hierarchy refinement and distance computation.
//!
//! Following the classic hierarchy of Burke–Cytron / Wolfe–Banerjee, the
//! set of direction vectors of a dependence is computed by refining the
//! all-`*` vector one loop at a time, pruning every subtree whose
//! constrained problem is proven independent. Any sound dependence test can
//! serve as the oracle; we provide oracles based on the Banerjee bounds and
//! on the exact solver (ground truth).
//!
//! Distances (paper Section 2, distance-direction vectors) are computed
//! from the exact solver: for each surviving atomic vector, take a witness,
//! read off the per-loop difference `β − α`, and verify its constancy by
//! asking for a solution with a different difference.

use crate::dirvec::{summarize, Dir, DirVec, DistDir, DistDirVec};
use crate::exact::{ExactSolver, SolveOutcome, SubtreeStore};
use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, Verdict};
use delin_numeric::Coeff;

/// An oracle answering "may the dependence exist under these direction
/// predicates?".
pub type DirOracle<'a, C> = dyn Fn(&DependenceProblem<C>, &[Dir]) -> Verdict + 'a;

/// Enumerates the *atomic* direction vectors (every element `<`, `=`, or
/// `>`) under which the oracle cannot disprove the dependence. An empty
/// result means the references are independent.
pub fn atomic_direction_vectors<C: Coeff>(
    problem: &DependenceProblem<C>,
    oracle: &DirOracle<'_, C>,
) -> Vec<DirVec> {
    let n = problem.common_loops().len();
    let mut dirs = vec![Dir::Any; n];
    let mut out = Vec::new();
    refine(problem, oracle, &mut dirs, 0, &mut out);
    out
}

fn refine<C: Coeff>(
    problem: &DependenceProblem<C>,
    oracle: &DirOracle<'_, C>,
    dirs: &mut Vec<Dir>,
    level: usize,
    out: &mut Vec<DirVec>,
) {
    match oracle(problem, dirs) {
        Verdict::Independent => return,
        Verdict::Dependent { .. } | Verdict::Unknown => {}
    }
    if level == dirs.len() {
        out.push(DirVec(dirs.clone()));
        return;
    }
    for d in [Dir::Lt, Dir::Eq, Dir::Gt] {
        dirs[level] = d;
        refine(problem, oracle, dirs, level + 1, out);
    }
    dirs[level] = Dir::Any;
}

/// Like [`atomic_direction_vectors`], then summarized per the paper's
/// precision-preserving merge rules.
pub fn direction_vectors<C: Coeff>(
    problem: &DependenceProblem<C>,
    oracle: &DirOracle<'_, C>,
) -> Vec<DirVec> {
    summarize(atomic_direction_vectors(problem, oracle))
}

/// A direction oracle built on the Banerjee bounds with the classical
/// integer-sharpened direction regions (`<` means `x ≤ y − 1`).
pub fn banerjee_oracle<C: Coeff>() -> impl Fn(&DependenceProblem<C>, &[Dir]) -> Verdict {
    |p, dirs| crate::banerjee::test_with_directions(p, dirs)
}

/// A direction oracle built on the Banerjee bounds over the *real*
/// relaxation of the direction regions (`<` closed to `x ≤ y`) — the
/// purely real-valued behaviour the paper ascribes to the Banerjee
/// inequalities.
pub fn banerjee_oracle_real<C: Coeff>() -> impl Fn(&DependenceProblem<C>, &[Dir]) -> Verdict {
    |p, dirs| {
        crate::banerjee::test_with_directions_mode(p, dirs, crate::banerjee::DirectionMode::Real)
    }
}

/// A direction oracle reflecting classical practice (exact single-index
/// handling, real-valued coupled-subscript handling) — the baseline the
/// vectorizer's no-delinearization configuration uses.
pub fn banerjee_oracle_classical<C: Coeff>() -> impl Fn(&DependenceProblem<C>, &[Dir]) -> Verdict {
    |p, dirs| {
        crate::banerjee::test_with_directions_mode(p, dirs, crate::banerjee::DirectionMode::Hybrid)
    }
}

/// A direction oracle built on the exact solver (ground truth; concrete
/// problems only).
pub fn exact_oracle(solver: ExactSolver) -> impl Fn(&DependenceProblem<i128>, &[Dir]) -> Verdict {
    move |p, dirs| match p.with_directions(dirs) {
        Ok(constrained) => crate::verdict::DependenceTest::test(&solver, &constrained),
        Err(_) => Verdict::Unknown,
    }
}

/// Like [`exact_oracle`], but every refinement query flows through a
/// [`SubtreeStore`]: sibling queries on the same base problem reuse decided
/// subtrees (exact replays and ancestor proofs) instead of re-enumerating.
/// With a [`SubtreeStore::disabled`] store the verdicts — and the node
/// counts — match [`exact_oracle`] exactly.
pub fn exact_oracle_in<'s>(
    solver: ExactSolver,
    store: &'s SubtreeStore,
) -> impl Fn(&DependenceProblem<i128>, &[Dir]) -> Verdict + 's {
    move |p, dirs| match store.solve_refined(&solver, p, dirs) {
        Ok(SolveOutcome::NoSolution) => Verdict::Independent,
        Ok(SolveOutcome::Solution(w)) => Verdict::Dependent {
            exact: true,
            info: DependenceInfo { witness: Some(w), ..DependenceInfo::default() },
        },
        Ok(SolveOutcome::Degraded(_)) | Err(_) => Verdict::Unknown,
    }
}

/// Computes distance-direction vectors exactly: one per surviving atomic
/// direction vector, with constant distances where the per-loop difference
/// `β − α` is the same for every solution, then summarized.
///
/// Runs incrementally under a private [`SubtreeStore`]; use
/// [`distance_direction_vectors_in`] to share one store with a preceding
/// hierarchy walk.
pub fn distance_direction_vectors(
    problem: &DependenceProblem<i128>,
    solver: &ExactSolver,
) -> Vec<DistDirVec> {
    distance_direction_vectors_in(problem, solver, &SubtreeStore::new())
}

/// Like [`distance_direction_vectors`], but refinement queries share the
/// given [`SubtreeStore`]. When the caller's hierarchy walk already ran
/// under the same store, every per-vector witness solve is an exact replay
/// of the walk's leaf query — the distance phase costs no new search nodes
/// beyond the constancy probes.
pub fn distance_direction_vectors_in(
    problem: &DependenceProblem<i128>,
    solver: &ExactSolver,
    store: &SubtreeStore,
) -> Vec<DistDirVec> {
    let oracle = exact_oracle_in(solver.clone(), store);
    let atomics = atomic_direction_vectors(problem, &oracle);
    let mut out = Vec::new();
    for dv in &atomics {
        let Ok(w) = store.solve_refined(solver, problem, &dv.0) else {
            continue;
        };
        let w = match w {
            SolveOutcome::Solution(w) => w,
            SolveOutcome::NoSolution => continue,
            // Budget exhausted mid-witness-search: the oracle kept this
            // vector, so it must survive — keep it in pure direction form
            // rather than silently dropping a possible dependence.
            SolveOutcome::Degraded(_) => {
                out.push(DistDirVec(dv.0.iter().map(|d| DistDir::Dir(*d)).collect()));
                continue;
            }
        };
        let Ok(constrained) = problem.with_directions(&dv.0) else {
            continue;
        };
        let mut elems = Vec::with_capacity(dv.0.len());
        for (level, &(x, y)) in problem.common_loops().iter().enumerate() {
            let d = w[y] - w[x];
            if distance_is_constant(&constrained, solver, x, y, d) {
                elems.push(DistDir::Dist(d));
            } else {
                elems.push(DistDir::Dir(dv.0[level]));
            }
        }
        out.push(DistDirVec(elems));
    }
    summarize_dist_dirs(out)
}

/// Is `z_y − z_x = d` forced for every solution of the problem? Claiming
/// constancy requires a *proof* that no other difference exists, so both
/// probe solves must come back `NoSolution` — a budget-degraded probe is
/// not a proof and conservatively answers "not constant".
fn distance_is_constant(
    problem: &DependenceProblem<i128>,
    solver: &ExactSolver,
    x: usize,
    y: usize,
    d: i128,
) -> bool {
    let n = problem.num_vars();
    let mut diff = vec![0i128; n];
    diff[y] = 1;
    diff[x] = -1;
    // Another solution with z_y - z_x >= d + 1?
    let above = problem.with_inequality(-(d + 1), diff.clone());
    if !matches!(solver.solve(&above), SolveOutcome::NoSolution) {
        return false;
    }
    // Or with z_y - z_x <= d - 1, i.e. (d - 1) - (z_y - z_x) >= 0?
    let below = problem.with_inequality(d - 1, diff.iter().map(|c| -c).collect::<Vec<_>>());
    matches!(solver.solve(&below), SolveOutcome::NoSolution)
}

/// Summarizes distance-direction vectors: merge two vectors that differ in
/// exactly one slot (joining that slot's directions, and keeping a distance
/// only when both sides agree on it).
pub fn summarize_dist_dirs(mut vecs: Vec<DistDirVec>) -> Vec<DistDirVec> {
    vecs.dedup();
    loop {
        let mut merged = false;
        'outer: for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                if let Some(m) = try_merge_dist(&vecs[i], &vecs[j]) {
                    vecs.swap_remove(j);
                    vecs.swap_remove(i);
                    vecs.push(m);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            return vecs;
        }
    }
}

fn try_merge_dist(a: &DistDirVec, b: &DistDirVec) -> Option<DistDirVec> {
    if a.0.len() != b.0.len() {
        return None;
    }
    let mut diff = None;
    for (k, (x, y)) in a.0.iter().zip(&b.0).enumerate() {
        if x != y {
            if diff.is_some() {
                return None;
            }
            diff = Some(k);
        }
    }
    let k = diff?;
    let mut out = a.clone();
    out.0[k] = DistDir::Dir(a.0[k].dir().join(b.0[k].dir()));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `A(i+1) = A(i)` over `i in [0,8]`: single `<` dependence, distance 1.
    fn shift_by_one() -> DependenceProblem<i128> {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(1, vec![1, -1]); // i1 + 1 = i2
        b.common_pair(x, y);
        b.build()
    }

    #[test]
    fn single_loop_directions() {
        let p = shift_by_one();
        let oracle = exact_oracle(ExactSolver::default());
        let dirs = direction_vectors(&p, &oracle);
        assert_eq!(dirs, vec![DirVec(vec![Dir::Lt])]);
        let banerjee = banerjee_oracle();
        let dirs = direction_vectors(&p, &banerjee);
        assert_eq!(dirs, vec![DirVec(vec![Dir::Lt])]);
    }

    #[test]
    fn distances_single_loop() {
        let p = shift_by_one();
        let dd = distance_direction_vectors(&p, &ExactSolver::default());
        assert_eq!(dd, vec![DistDirVec(vec![DistDir::Dist(1)])]);
    }

    #[test]
    fn independent_problem_yields_nothing() {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 4);
        let y = b.var("i2", 4);
        b.equation(-5, vec![1, -1]); // i1 = i2 + 5: impossible within [0,4]
        b.common_pair(x, y);
        let p = b.build();
        let oracle = exact_oracle(ExactSolver::default());
        assert!(direction_vectors(&p, &oracle).is_empty());
        assert!(distance_direction_vectors(&p, &ExactSolver::default()).is_empty());
    }

    #[test]
    fn mhl91_distance_example() {
        // DO i=1,8; DO j=1,10: A(10i+j) = A(10(i+2)+j) + 7.
        // Normalized i' = i-1 in [0,7], j' = j-1 in [0,9]:
        //   10(i1+1) + (j1+1) = 10(i2+3) + (j2+1)
        //   10 i1 + j1 - 10 i2 - j2 - 20 = 0.
        // The paper says the distance vector is (2, 0) — note source reads
        // the later iteration, so with our (src, snk) = (write, read)
        // orientation the witness difference is i2 - i1 = -2 under '>':
        // we model the pair as (read, write) to land on (2,0) like the
        // paper's table.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 7);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 7);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        // read subscript (source): 10(i1+2) + j1 ; write (sink): 10 i2 + j2
        b.equation(20, vec![10, 1, -10, -1]);
        let p = b.build();
        let dd = distance_direction_vectors(&p, &ExactSolver::default());
        assert_eq!(dd, vec![DistDirVec(vec![DistDir::Dist(2), DistDir::Dist(0)])]);
    }

    #[test]
    fn non_constant_distance_falls_back_to_direction() {
        // A(2i) = A(i): i2 = 2*i1; the difference i2 - i1 = i1 varies.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("i1", 8);
        let y = b.var("i2", 8);
        b.equation(0, vec![2, -1]);
        b.common_pair(x, y);
        let p = b.build();
        let dd = distance_direction_vectors(&p, &ExactSolver::default());
        // Solutions: (0,0) '='-ish distance 0; (1,2) dist 1; ... (4,8).
        // Under '<' the distance is not constant; under '=' it is 0.
        assert!(
            dd.contains(&DistDirVec(vec![DistDir::Dist(0)]))
                || dd.iter().any(|v| matches!(v.0[0], DistDir::Dir(_)))
        );
        // And the direction summary must cover both = and <.
        let oracle = exact_oracle(ExactSolver::default());
        let dirs = direction_vectors(&p, &oracle);
        assert_eq!(dirs, vec![DirVec(vec![Dir::Le])]);
    }

    #[test]
    fn banerjee_oracle_is_conservative_superset() {
        // Whatever the exact oracle keeps, Banerjee must keep too.
        let p = shift_by_one();
        let exact = exact_oracle(ExactSolver::default());
        let ban = banerjee_oracle();
        let e = atomic_direction_vectors(&p, &exact);
        let b = atomic_direction_vectors(&p, &ban);
        for v in &e {
            assert!(b.contains(v));
        }
    }

    #[test]
    fn no_common_loops() {
        // Statements in disjoint nests: empty direction vector, dependence
        // decided by feasibility alone.
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![4, 4]);
        let oracle = exact_oracle(ExactSolver::default());
        let dirs = direction_vectors(&p, &oracle);
        assert_eq!(dirs, vec![DirVec(vec![])]);
    }

    #[test]
    fn degraded_solver_keeps_vectors_conservatively() {
        // A zero-budget solver proves nothing: every direction survives the
        // oracle, and distance extraction must keep the surviving vectors
        // in direction form rather than silently dropping dependences.
        let p = shift_by_one();
        let dd = distance_direction_vectors(&p, &ExactSolver::with_limit(0));
        assert!(!dd.is_empty(), "degradation must not erase dependences");
        assert!(dd.iter().all(|v| v.0.iter().all(|e| matches!(e, DistDir::Dir(_)))), "{dd:?}");
    }

    #[test]
    fn incremental_matches_fresh_and_saves_nodes() {
        use crate::exact::{
            peek_thread_nodes, reset_thread_nodes, reset_thread_refine, take_thread_refine,
        };
        let problems = vec![
            shift_by_one(),
            {
                // mhl91: two common loops, distance (2, 0).
                let mut b = DependenceProblem::<i128>::builder();
                let i1 = b.var("i1", 7);
                let j1 = b.var("j1", 9);
                let i2 = b.var("i2", 7);
                let j2 = b.var("j2", 9);
                b.common_pair(i1, i2).common_pair(j1, j2);
                b.equation(20, vec![10, 1, -10, -1]);
                b.build()
            },
            {
                // A(2i) = A(i): non-constant distance under `<`.
                let mut b = DependenceProblem::<i128>::builder();
                let x = b.var("i1", 8);
                let y = b.var("i2", 8);
                b.equation(0, vec![2, -1]);
                b.common_pair(x, y);
                b.build()
            },
        ];
        let solver = ExactSolver::default();
        for p in &problems {
            reset_thread_nodes();
            reset_thread_refine();
            let fresh = distance_direction_vectors_in(p, &solver, &SubtreeStore::disabled());
            let fresh_nodes = peek_thread_nodes();
            let fresh_counters = take_thread_refine();
            assert_eq!(fresh_counters.subtree_reuses, 0);
            reset_thread_nodes();
            let incr = distance_direction_vectors_in(p, &solver, &SubtreeStore::new());
            let incr_nodes = peek_thread_nodes();
            let incr_counters = take_thread_refine();
            assert_eq!(fresh, incr, "incremental must not change the vectors");
            assert_eq!(fresh_counters.refine_queries, incr_counters.refine_queries);
            assert!(incr_counters.subtree_reuses > 0, "witness solves must replay");
            assert!(
                incr_nodes < fresh_nodes,
                "reuse must save nodes: {incr_nodes} vs {fresh_nodes}"
            );
            reset_thread_nodes();
        }
    }

    #[test]
    fn oracle_in_shares_the_walk_with_distance_extraction() {
        use crate::exact::{reset_thread_nodes, reset_thread_refine, take_thread_refine};
        reset_thread_refine();
        reset_thread_nodes();
        let p = shift_by_one();
        let solver = ExactSolver::default();
        let store = SubtreeStore::new();
        let oracle = exact_oracle_in(solver.clone(), &store);
        let atomics = atomic_direction_vectors(&p, &oracle);
        assert_eq!(atomics, vec![DirVec(vec![Dir::Lt])]);
        let _ = take_thread_refine();
        let dd = distance_direction_vectors_in(&p, &solver, &store);
        assert_eq!(dd, vec![DistDirVec(vec![DistDir::Dist(1)])]);
        let c = take_thread_refine();
        // The second phase's walk and witness solves all replay from the
        // first phase's store.
        assert!(c.subtree_reuses >= c.refine_queries - c.subtree_reuses, "{c:?}");
        reset_thread_nodes();
    }

    #[test]
    fn summarize_dist_dirs_merges() {
        let vecs = vec![
            DistDirVec(vec![DistDir::Dir(Dir::Lt), DistDir::Dist(0)]),
            DistDirVec(vec![DistDir::Dir(Dir::Eq), DistDir::Dist(0)]),
            DistDirVec(vec![DistDir::Dir(Dir::Gt), DistDir::Dist(0)]),
        ];
        let s = summarize_dist_dirs(vecs);
        assert_eq!(s, vec![DistDirVec(vec![DistDir::Dir(Dir::Any), DistDir::Dist(0)])]);
    }
}
