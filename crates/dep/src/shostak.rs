//! Shostak's loop residue method (Shostak 1981; Burke–Cytron 1986).
//!
//! Decides real feasibility of conjunctions of two-variable inequalities
//! `a·x + b·y ≤ c` by building a graph (one vertex per variable plus a
//! vertex for the constant zero) and combining constraints along *loops*:
//! chaining successive constraints with opposite-sign coefficients on the
//! shared variable eliminates it; a closed loop leaves a residue inequality
//! over a single variable (or over no variables), and contradictory
//! residues prove infeasibility. The method is real-valued, so — as the
//! paper notes — it cannot disprove the motivating linearized example, and
//! in our framework it is not even applicable to it (the equation has four
//! variables).
//!
//! Implementation notes: chains that return to the zero vertex are derived
//! single-variable bounds `a·x ≤ c`; after enumerating (budgeted) simple
//! paths we intersect, per variable, the strongest derived lower and upper
//! bounds as exact rationals, and report independence when they cross.
//! Loops that close directly at a variable with exact coefficient
//! cancellation contribute `0 ≤ c` residues; with partial cancellation they
//! contribute further derived bounds.

use crate::problem::DependenceProblem;
use crate::verdict::{DependenceTest, Verdict};
use delin_numeric::Rational;

/// Shostak's loop-residue dependence test.
#[derive(Debug, Clone)]
pub struct ShostakTest {
    /// Budget on explored path extensions, bounding the (worst-case
    /// exponential) simple-path enumeration.
    pub path_budget: usize,
}

impl Default for ShostakTest {
    fn default() -> Self {
        ShostakTest { path_budget: 200_000 }
    }
}

/// A two-variable inequality `a·x + b·y ≤ c`; `y` may be the zero vertex
/// (with `b == 0`).
#[derive(Debug, Clone, Copy)]
struct Constraint {
    x: usize,
    a: i128,
    y: usize,
    b: i128,
    c: i128,
}

/// Converts the problem into two-variable `≤` constraints; `None` when some
/// constraint involves three or more variables.
fn constraints(problem: &DependenceProblem<i128>) -> Option<(Vec<Constraint>, bool)> {
    let n = problem.num_vars();
    let zero = n;
    let mut out = Vec::new();
    let mut contradiction = false;
    for (k, v) in problem.vars().iter().enumerate() {
        out.push(Constraint { x: k, a: 1, y: zero, b: 0, c: v.upper });
        out.push(Constraint { x: k, a: -1, y: zero, b: 0, c: 0 });
    }
    let mut add = |c0: i128, coeffs: &[i128], is_eq: bool| -> Option<()> {
        let active: Vec<usize> =
            coeffs.iter().enumerate().filter(|(_, &c)| c != 0).map(|(k, _)| k).collect();
        // Equation e = 0 splits into Σ c·z ≤ −c0 and Σ −c·z ≤ c0;
        // inequality e ≥ 0 gives Σ −c·z ≤ c0.
        let (x, a, y, b) = match active.len() {
            0 => {
                if (is_eq && c0 != 0) || (!is_eq && c0 < 0) {
                    contradiction = true;
                }
                return Some(());
            }
            1 => (active[0], coeffs[active[0]], zero, 0),
            2 => (active[0], coeffs[active[0]], active[1], coeffs[active[1]]),
            _ => return None,
        };
        if is_eq {
            out.push(Constraint { x, a, y, b, c: -c0 });
            out.push(Constraint { x, a: -a, y, b: -b, c: c0 });
        } else {
            out.push(Constraint { x, a: -a, y, b: -b, c: c0 });
        }
        Some(())
    };
    for eq in problem.equations() {
        add(eq.c0, &eq.coeffs, true)?;
    }
    for iq in problem.inequalities() {
        add(iq.c0, &iq.coeffs, false)?;
    }
    Some((out, contradiction))
}

/// A chain along a path: accumulated inequality
/// `first_coeff·x_first + cur_coeff·x_cur ≤ c`.
#[derive(Debug, Clone, Copy)]
struct Chain {
    first_vertex: usize,
    first_coeff: i128,
    cur_vertex: usize,
    cur_coeff: i128,
    c: i128,
}

struct Enumerator<'a> {
    adj: Vec<Vec<usize>>,
    cons: &'a [Constraint],
    zero: usize,
    budget: usize,
    contradiction: bool,
    /// Derived single-variable bounds `a·x ≤ c` (a ≠ 0).
    derived: Vec<(usize, i128, i128)>,
}

impl Enumerator<'_> {
    fn run(&mut self) {
        let num_vertices = self.adj.len();
        for start in 0..num_vertices {
            if start == self.zero {
                continue;
            }
            for ci in 0..self.adj[start].len() {
                let k = self.cons[self.adj[start][ci]];
                let (sc, ev, ec) = if k.x == start { (k.a, k.y, k.b) } else { (k.b, k.x, k.a) };
                if sc == 0 {
                    continue;
                }
                let chain = Chain {
                    first_vertex: start,
                    first_coeff: sc,
                    cur_vertex: ev,
                    cur_coeff: ec,
                    c: k.c,
                };
                let mut visited = vec![false; num_vertices];
                visited[start] = true;
                self.extend(chain, &mut visited);
                if self.contradiction || self.budget == 0 {
                    return;
                }
            }
        }
    }

    fn extend(&mut self, chain: Chain, visited: &mut [bool]) {
        if self.contradiction || self.budget == 0 {
            return;
        }
        self.budget -= 1;
        // Reached the zero vertex: the chain is a derived bound
        // `first_coeff·x_first ≤ c` (the zero vertex contributes nothing).
        if chain.cur_vertex == self.zero {
            self.derived.push((chain.first_vertex, chain.first_coeff, chain.c));
            return;
        }
        // Closed loop at the start vertex.
        if chain.cur_vertex == chain.first_vertex {
            let total = chain.first_coeff.checked_add(chain.cur_coeff);
            match total {
                Some(0) if chain.c < 0 => self.contradiction = true,
                Some(0) | None => {}
                Some(t) => self.derived.push((chain.first_vertex, t, chain.c)),
            }
            return;
        }
        let v = chain.cur_vertex;
        if visited[v] || chain.cur_coeff == 0 {
            return;
        }
        visited[v] = true;
        for ci in 0..self.adj[v].len() {
            let k = self.cons[self.adj[v][ci]];
            let (a2, other, b2) = if k.x == v { (k.a, k.y, k.b) } else { (k.b, k.x, k.a) };
            // Chain only when the shared variable cancels (opposite signs).
            if a2 == 0 || (a2 > 0) == (chain.cur_coeff > 0) {
                continue;
            }
            let m1 = a2.unsigned_abs() as i128;
            let m2 = chain.cur_coeff.unsigned_abs() as i128;
            let next = (|| {
                Some(Chain {
                    first_vertex: chain.first_vertex,
                    first_coeff: chain.first_coeff.checked_mul(m1)?,
                    cur_vertex: other,
                    cur_coeff: b2.checked_mul(m2)?,
                    c: chain.c.checked_mul(m1)?.checked_add(k.c.checked_mul(m2)?)?,
                })
            })();
            if let Some(next) = next {
                self.extend(next, visited);
            }
            if self.contradiction || self.budget == 0 {
                break;
            }
        }
        visited[v] = false;
    }

    /// Intersects the derived per-variable bounds; `true` on contradiction.
    fn bounds_contradict(&self) -> bool {
        let n = self.adj.len();
        let mut lower: Vec<Option<Rational>> = vec![None; n];
        let mut upper: Vec<Option<Rational>> = vec![None; n];
        for &(v, a, c) in &self.derived {
            let Ok(bound) = Rational::new(c, a) else { continue };
            if a > 0 {
                // x ≤ c/a
                upper[v] = Some(match upper[v] {
                    None => bound,
                    Some(u) => u.min(bound),
                });
            } else {
                // x ≥ c/a
                lower[v] = Some(match lower[v] {
                    None => bound,
                    Some(l) => l.max(bound),
                });
            }
        }
        (0..n).any(|v| matches!((lower[v], upper[v]), (Some(l), Some(u)) if l > u))
    }
}

impl DependenceTest<i128> for ShostakTest {
    fn name(&self) -> &'static str {
        "shostak"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        if problem.vars().iter().any(|v| v.upper < 0) {
            return Verdict::Independent;
        }
        let Some((cons, direct_contradiction)) = constraints(problem) else {
            return Verdict::Unknown;
        };
        if direct_contradiction {
            return Verdict::Independent;
        }
        let zero = problem.num_vars();
        let mut adj = vec![Vec::new(); zero + 1];
        for (i, c) in cons.iter().enumerate() {
            adj[c.x].push(i);
            if c.y != c.x {
                adj[c.y].push(i);
            }
        }
        let mut e = Enumerator {
            adj,
            cons: &cons,
            zero,
            budget: self.path_budget,
            contradiction: false,
            derived: Vec::new(),
        };
        e.run();
        if e.contradiction || e.bounds_contradict() {
            Verdict::Independent
        } else {
            // Real-feasible (or budget exhausted): cannot disprove.
            Verdict::maybe_dependent()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirvec::Dir;

    #[test]
    fn detects_real_infeasibility() {
        // x - y = 100 over [0,4]²: upper bounds give x - y ≤ 4 < 100.
        let p = DependenceProblem::single_equation(-100, vec![1, -1], vec![4, 4]);
        assert!(ShostakTest::default().test(&p).is_independent());
    }

    #[test]
    fn feasible_systems_stay_maybe() {
        let p = DependenceProblem::single_equation(-1, vec![1, -1], vec![8, 8]);
        assert!(ShostakTest::default().test(&p).is_dependent());
    }

    #[test]
    fn handles_scaled_two_var_constraints() {
        // 2x - 3y = 50 over [0,4]²: max of 2x-3y is 8 < 50: real-infeasible.
        let p = DependenceProblem::single_equation(-50, vec![2, -3], vec![4, 4]);
        assert!(ShostakTest::default().test(&p).is_independent());
        // 3x + 3y = -3 over [0,4]²: lhs >= 0 > -3: real-infeasible.
        let p = DependenceProblem::single_equation(3, vec![3, 3], vec![4, 4]);
        assert!(ShostakTest::default().test(&p).is_independent());
    }

    #[test]
    fn integer_gaps_are_invisible() {
        // 2x = 7 over [0,4]: real solution x = 3.5 exists, so Shostak
        // cannot disprove (it is a real-valued technique).
        let p = DependenceProblem::single_equation(-7, vec![2], vec![4]);
        assert!(ShostakTest::default().test(&p).is_dependent());
    }

    #[test]
    fn inapplicable_to_motivating_example() {
        let p = DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(ShostakTest::default().test(&p).is_unknown());
    }

    #[test]
    fn respects_direction_constraints() {
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 8);
        let y = b.var("y", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build().with_direction(0, Dir::Lt).unwrap();
        assert!(ShostakTest::default().test(&p).is_independent());
    }

    #[test]
    fn constant_contradiction() {
        let p = DependenceProblem::single_equation(5, vec![0, 0], vec![3, 3]);
        assert!(ShostakTest::default().test(&p).is_independent());
    }

    #[test]
    fn agrees_with_real_feasibility_on_two_var_family() {
        // For a single equation a·x + b·y + c0 = 0 over a box, Shostak's
        // verdict must match real feasibility exactly (it is complete for
        // conjunctions of two-variable constraints).
        for a in [-3i128, -1, 2] {
            for b in [-2i128, 1, 4] {
                for c0 in -30i128..=30 {
                    let p = DependenceProblem::single_equation(c0, vec![a, b], vec![4, 5]);
                    // Real feasibility: min/max of a·x + b·y + c0 over the box.
                    let vals = [c0, c0 + a * 4, c0 + b * 5, c0 + a * 4 + b * 5];
                    let feasible =
                        *vals.iter().min().unwrap() <= 0 && *vals.iter().max().unwrap() >= 0;
                    let got = ShostakTest::default().test(&p);
                    if feasible {
                        assert!(got.is_dependent(), "a={a} b={b} c0={c0}");
                    } else {
                        assert!(got.is_independent(), "a={a} b={b} c0={c0}");
                    }
                }
            }
        }
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&ShostakTest::default()), "shostak");
    }
}
