//! Direction vectors, distance vectors, and their algebra.
//!
//! A *direction vector* (paper Section 2, after Wolfe) records, per common
//! loop, the relation between the source iteration `α` and sink iteration
//! `β` of a dependence: `<` when `α < β`, `=` when equal, `>` when `α > β`,
//! plus the summary relations `≤, ≥, ≠, *`. A *distance vector* records the
//! exact difference `β − α` when it is constant; a *distance-direction
//! vector* mixes the two, using a distance where one exists and a direction
//! elsewhere.

use std::fmt;

/// A per-loop direction relation between source and sink iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Source iteration strictly before sink (`α < β`).
    Lt,
    /// Same iteration.
    Eq,
    /// Source iteration strictly after sink.
    Gt,
    /// `≤` (summary of `<` and `=`).
    Le,
    /// `≥` (summary of `>` and `=`).
    Ge,
    /// `≠` (summary of `<` and `>`).
    Ne,
    /// `*`: any relation.
    Any,
}

impl Dir {
    /// The atomic relations (`<`, `=`, `>`) covered by this direction.
    pub fn atoms(self) -> &'static [Dir] {
        match self {
            Dir::Lt => &[Dir::Lt],
            Dir::Eq => &[Dir::Eq],
            Dir::Gt => &[Dir::Gt],
            Dir::Le => &[Dir::Lt, Dir::Eq],
            Dir::Ge => &[Dir::Gt, Dir::Eq],
            Dir::Ne => &[Dir::Lt, Dir::Gt],
            Dir::Any => &[Dir::Lt, Dir::Eq, Dir::Gt],
        }
    }

    /// Rebuilds a direction from a set of atoms; `None` for the empty set.
    pub fn from_atoms(lt: bool, eq: bool, gt: bool) -> Option<Dir> {
        match (lt, eq, gt) {
            (false, false, false) => None,
            (true, false, false) => Some(Dir::Lt),
            (false, true, false) => Some(Dir::Eq),
            (false, false, true) => Some(Dir::Gt),
            (true, true, false) => Some(Dir::Le),
            (false, true, true) => Some(Dir::Ge),
            (true, false, true) => Some(Dir::Ne),
            (true, true, true) => Some(Dir::Any),
        }
    }

    /// `true` when this direction is one of the atoms `<`, `=`, `>`.
    pub fn is_atomic(self) -> bool {
        matches!(self, Dir::Lt | Dir::Eq | Dir::Gt)
    }

    /// Set intersection of the atom sets; `None` when disjoint.
    pub fn meet(self, other: Dir) -> Option<Dir> {
        let mine = self.atoms();
        let theirs = other.atoms();
        let lt = mine.contains(&Dir::Lt) && theirs.contains(&Dir::Lt);
        let eq = mine.contains(&Dir::Eq) && theirs.contains(&Dir::Eq);
        let gt = mine.contains(&Dir::Gt) && theirs.contains(&Dir::Gt);
        Dir::from_atoms(lt, eq, gt)
    }

    /// Set union of the atom sets.
    pub fn join(self, other: Dir) -> Dir {
        let mine = self.atoms();
        let theirs = other.atoms();
        let lt = mine.contains(&Dir::Lt) || theirs.contains(&Dir::Lt);
        let eq = mine.contains(&Dir::Eq) || theirs.contains(&Dir::Eq);
        let gt = mine.contains(&Dir::Gt) || theirs.contains(&Dir::Gt);
        Dir::from_atoms(lt, eq, gt).expect("union of nonempty sets is nonempty")
    }

    /// `true` when `self`'s atoms are a subset of `other`'s.
    pub fn subsumed_by(self, other: Dir) -> bool {
        self.atoms().iter().all(|a| other.atoms().contains(a))
    }

    /// The direction with `<` and `>` swapped (dependence reversal).
    pub fn reverse(self) -> Dir {
        match self {
            Dir::Lt => Dir::Gt,
            Dir::Gt => Dir::Lt,
            Dir::Le => Dir::Ge,
            Dir::Ge => Dir::Le,
            other => other,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::Lt => "<",
            Dir::Eq => "=",
            Dir::Gt => ">",
            Dir::Le => "<=",
            Dir::Ge => ">=",
            Dir::Ne => "!=",
            Dir::Any => "*",
        };
        f.write_str(s)
    }
}

/// A direction vector: one [`Dir`] per common loop, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirVec(pub Vec<Dir>);

impl DirVec {
    /// The all-`*` vector of the given length — "no information yet".
    pub fn any(len: usize) -> DirVec {
        DirVec(vec![Dir::Any; len])
    }

    /// Vector length (number of common loops).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty vector (no common loops).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component-wise meet; `None` when any component is disjoint
    /// (the paper's `dv ⊓ nv ≠ ∅` filter in Fig. 4).
    pub fn meet(&self, other: &DirVec) -> Option<DirVec> {
        debug_assert_eq!(self.len(), other.len());
        let mut out = Vec::with_capacity(self.len());
        for (&a, &b) in self.0.iter().zip(&other.0) {
            out.push(a.meet(b)?);
        }
        Some(DirVec(out))
    }

    /// `true` when every component of `self` is subsumed by `other`.
    pub fn subsumed_by(&self, other: &DirVec) -> bool {
        self.len() == other.len() && self.0.iter().zip(&other.0).all(|(&a, &b)| a.subsumed_by(b))
    }

    /// Enumerates all atomic decompositions (Cartesian product of atoms).
    pub fn atomic_decompositions(&self) -> Vec<DirVec> {
        let mut acc = vec![Vec::new()];
        for &d in &self.0 {
            let mut next = Vec::new();
            for prefix in &acc {
                for &a in d.atoms() {
                    let mut v = prefix.clone();
                    v.push(a);
                    next.push(v);
                }
            }
            acc = next;
        }
        acc.into_iter().map(DirVec).collect()
    }

    /// The reversed vector (for normalizing `>`-leading dependences).
    pub fn reverse(&self) -> DirVec {
        DirVec(self.0.iter().map(|d| d.reverse()).collect())
    }

    /// `true` when the leftmost non-`=` atom can only be `>` — i.e. the
    /// "dependence" actually flows backwards and should be reversed.
    pub fn is_backward(&self) -> bool {
        for &d in &self.0 {
            match d {
                Dir::Eq => continue,
                Dir::Gt => return true,
                _ => return false,
            }
        }
        false
    }
}

impl fmt::Display for DirVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// One element of a distance-direction vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistDir {
    /// A constant distance `β − α`.
    Dist(i128),
    /// No constant distance; fall back to a direction.
    Dir(Dir),
}

impl DistDir {
    /// The direction implied by this element.
    pub fn dir(&self) -> Dir {
        match *self {
            DistDir::Dist(d) => {
                if d > 0 {
                    Dir::Lt
                } else if d == 0 {
                    Dir::Eq
                } else {
                    Dir::Gt
                }
            }
            DistDir::Dir(d) => d,
        }
    }
}

impl fmt::Display for DistDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistDir::Dist(d) => write!(f, "{d}"),
            DistDir::Dir(d) => write!(f, "{d}"),
        }
    }
}

/// A distance-direction vector: exact distances where they exist,
/// directions elsewhere (paper Section 2, "Distance-direction vectors").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DistDirVec(pub Vec<DistDir>);

impl DistDirVec {
    /// The direction vector obtained by forgetting distances.
    pub fn to_dir_vec(&self) -> DirVec {
        DirVec(self.0.iter().map(DistDir::dir).collect())
    }

    /// `Some` when every element is a constant distance.
    pub fn as_distance_vector(&self) -> Option<Vec<i128>> {
        self.0
            .iter()
            .map(|e| match e {
                DistDir::Dist(d) => Some(*d),
                DistDir::Dir(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for DistDirVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Summarizes a set of direction vectors without losing precision (paper
/// Section 2): two vectors merge when they differ in at most one position,
/// because then the merged vector's atomic decompositions are exactly the
/// union of the operands' decompositions. `(<,=)` and `(=,<)` therefore do
/// **not** merge (they differ in two positions), matching the paper's
/// warning.
///
/// ```
/// use delin_dep::dirvec::{summarize, Dir, DirVec};
/// let v = summarize(vec![
///     DirVec(vec![Dir::Eq, Dir::Lt]),
///     DirVec(vec![Dir::Eq, Dir::Eq]),
/// ]);
/// assert_eq!(v, vec![DirVec(vec![Dir::Eq, Dir::Le])]);
/// ```
pub fn summarize(mut vecs: Vec<DirVec>) -> Vec<DirVec> {
    vecs.sort();
    vecs.dedup();
    // Drop vectors already subsumed by another.
    let mut kept: Vec<DirVec> = Vec::new();
    for v in vecs {
        if !kept.iter().any(|k| v.subsumed_by(k)) {
            kept.retain(|k| !k.subsumed_by(&v));
            kept.push(v);
        }
    }
    // Fixpoint pairwise merging of vectors differing in exactly one slot.
    loop {
        let mut merged = false;
        'outer: for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                if let Some(m) = try_merge(&kept[i], &kept[j]) {
                    kept.swap_remove(j);
                    kept.swap_remove(i);
                    kept.push(m);
                    merged = true;
                    break 'outer;
                }
            }
        }
        if !merged {
            kept.sort();
            return kept;
        }
    }
}

fn try_merge(a: &DirVec, b: &DirVec) -> Option<DirVec> {
    if a.len() != b.len() {
        return None;
    }
    let mut diff = None;
    for (k, (&x, &y)) in a.0.iter().zip(&b.0).enumerate() {
        if x != y {
            if diff.is_some() {
                return None;
            }
            diff = Some(k);
        }
    }
    let k = diff?; // identical vectors were deduped already
    let mut out = a.clone();
    out.0[k] = a.0[k].join(b.0[k]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_roundtrip() {
        for d in [Dir::Lt, Dir::Eq, Dir::Gt, Dir::Le, Dir::Ge, Dir::Ne, Dir::Any] {
            let atoms = d.atoms();
            let lt = atoms.contains(&Dir::Lt);
            let eq = atoms.contains(&Dir::Eq);
            let gt = atoms.contains(&Dir::Gt);
            assert_eq!(Dir::from_atoms(lt, eq, gt), Some(d));
        }
        assert_eq!(Dir::from_atoms(false, false, false), None);
    }

    #[test]
    fn meet_join() {
        assert_eq!(Dir::Le.meet(Dir::Ge), Some(Dir::Eq));
        assert_eq!(Dir::Lt.meet(Dir::Gt), None);
        assert_eq!(Dir::Any.meet(Dir::Ne), Some(Dir::Ne));
        assert_eq!(Dir::Lt.join(Dir::Eq), Dir::Le);
        assert_eq!(Dir::Lt.join(Dir::Gt), Dir::Ne);
        assert_eq!(Dir::Le.join(Dir::Ge), Dir::Any);
        assert!(Dir::Lt.subsumed_by(Dir::Le));
        assert!(!Dir::Le.subsumed_by(Dir::Lt));
        assert!(Dir::Lt.is_atomic());
        assert!(!Dir::Le.is_atomic());
    }

    #[test]
    fn reverse() {
        assert_eq!(Dir::Lt.reverse(), Dir::Gt);
        assert_eq!(Dir::Le.reverse(), Dir::Ge);
        assert_eq!(Dir::Eq.reverse(), Dir::Eq);
        assert_eq!(Dir::Ne.reverse(), Dir::Ne);
        let v = DirVec(vec![Dir::Gt, Dir::Eq]);
        assert!(v.is_backward());
        assert_eq!(v.reverse(), DirVec(vec![Dir::Lt, Dir::Eq]));
        assert!(!DirVec(vec![Dir::Eq, Dir::Lt]).is_backward());
        assert!(!DirVec(vec![Dir::Eq, Dir::Eq]).is_backward());
        assert!(!DirVec(vec![Dir::Any]).is_backward());
    }

    #[test]
    fn vector_meet_and_decompose() {
        let a = DirVec(vec![Dir::Any, Dir::Le]);
        let b = DirVec(vec![Dir::Lt, Dir::Ge]);
        assert_eq!(a.meet(&b), Some(DirVec(vec![Dir::Lt, Dir::Eq])));
        let c = DirVec(vec![Dir::Lt, Dir::Gt]);
        let d = DirVec(vec![Dir::Lt, Dir::Eq]);
        assert_eq!(c.meet(&d), None);
        let decomp = a.atomic_decompositions();
        assert_eq!(decomp.len(), 6);
        assert!(decomp.contains(&DirVec(vec![Dir::Gt, Dir::Eq])));
        assert_eq!(DirVec::any(2).atomic_decompositions().len(), 9);
    }

    #[test]
    fn summarize_paper_rules() {
        // (>) + (=) = (>=)
        let v = summarize(vec![DirVec(vec![Dir::Gt]), DirVec(vec![Dir::Eq])]);
        assert_eq!(v, vec![DirVec(vec![Dir::Ge])]);
        // (>) + (<) = (!=)
        let v = summarize(vec![DirVec(vec![Dir::Gt]), DirVec(vec![Dir::Lt])]);
        assert_eq!(v, vec![DirVec(vec![Dir::Ne])]);
        // (<) + (=) + (>) = (*)
        let v =
            summarize(vec![DirVec(vec![Dir::Lt]), DirVec(vec![Dir::Eq]), DirVec(vec![Dir::Gt])]);
        assert_eq!(v, vec![DirVec(vec![Dir::Any])]);
        // (<,=) and (=,<) must NOT merge
        let v = summarize(vec![DirVec(vec![Dir::Lt, Dir::Eq]), DirVec(vec![Dir::Eq, Dir::Lt])]);
        assert_eq!(v.len(), 2);
        // subsumed vectors are dropped
        let v = summarize(vec![DirVec(vec![Dir::Lt]), DirVec(vec![Dir::Le])]);
        assert_eq!(v, vec![DirVec(vec![Dir::Le])]);
        // duplicates collapse
        let v = summarize(vec![DirVec(vec![Dir::Lt]), DirVec(vec![Dir::Lt])]);
        assert_eq!(v, vec![DirVec(vec![Dir::Lt])]);
    }

    #[test]
    fn summarize_preserves_atom_sets() {
        // Whatever merging happens, the union of atomic decompositions must
        // be exactly preserved.
        let input = vec![
            DirVec(vec![Dir::Lt, Dir::Eq]),
            DirVec(vec![Dir::Lt, Dir::Lt]),
            DirVec(vec![Dir::Eq, Dir::Gt]),
        ];
        let mut before: Vec<DirVec> =
            input.iter().flat_map(|v| v.atomic_decompositions()).collect();
        before.sort();
        before.dedup();
        let out = summarize(input);
        let mut after: Vec<DirVec> = out.iter().flat_map(|v| v.atomic_decompositions()).collect();
        after.sort();
        after.dedup();
        assert_eq!(before, after);
    }

    #[test]
    fn distdir() {
        let v = DistDirVec(vec![DistDir::Dist(2), DistDir::Dist(0)]);
        assert_eq!(v.to_dir_vec(), DirVec(vec![Dir::Lt, Dir::Eq]));
        assert_eq!(v.as_distance_vector(), Some(vec![2, 0]));
        assert_eq!(v.to_string(), "(2, 0)");
        let w = DistDirVec(vec![DistDir::Dir(Dir::Le), DistDir::Dist(1)]);
        assert_eq!(w.as_distance_vector(), None);
        assert_eq!(w.to_string(), "(<=, 1)");
        assert_eq!(DistDir::Dist(-3).dir(), Dir::Gt);
    }

    #[test]
    fn displays() {
        assert_eq!(DirVec(vec![Dir::Any, Dir::Lt]).to_string(), "(*, <)");
        assert_eq!(Dir::Ne.to_string(), "!=");
        assert_eq!(DirVec::any(0).to_string(), "()");
        assert!(DirVec::any(0).is_empty());
    }

    /// All seven directions; the whole lattice is small enough to check
    /// laws exhaustively (343 triples).
    const ALL: [Dir; 7] = [Dir::Lt, Dir::Eq, Dir::Gt, Dir::Le, Dir::Ge, Dir::Ne, Dir::Any];

    /// `meet` is idempotent, commutative, and associative (in the partial
    /// sense: `None` means the empty set, and `None` composed with anything
    /// stays `None`); `join` likewise, totally.
    #[test]
    fn meet_and_join_lattice_laws_exhaustive() {
        for &a in &ALL {
            assert_eq!(a.meet(a), Some(a), "meet idempotent at {a}");
            assert_eq!(a.join(a), a, "join idempotent at {a}");
            for &b in &ALL {
                assert_eq!(a.meet(b), b.meet(a), "meet commutative at {a},{b}");
                assert_eq!(a.join(b), b.join(a), "join commutative at {a},{b}");
                for &c in &ALL {
                    let left = a.meet(b).and_then(|m| m.meet(c));
                    let right = b.meet(c).and_then(|m| a.meet(m));
                    assert_eq!(left, right, "meet associative at {a},{b},{c}");
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "join associative");
                }
            }
        }
    }

    /// The absorption laws tying the two operations into one lattice:
    /// `a ⊔ (a ⊓ b) = a` and `a ⊓ (a ⊔ b) = a`.
    #[test]
    fn join_absorbs_meet_exhaustive() {
        for &a in &ALL {
            for &b in &ALL {
                if let Some(m) = a.meet(b) {
                    assert_eq!(a.join(m), a, "absorption at {a},{b}");
                }
                assert_eq!(a.meet(a.join(b)), Some(a), "dual absorption at {a},{b}");
            }
        }
    }

    /// `subsumed_by` is a partial order — reflexive, antisymmetric,
    /// transitive — and agrees with atom-set inclusion and with both
    /// order-from-operation characterizations (`a ⊓ b = a`, `a ⊔ b = b`).
    #[test]
    fn subsumption_is_the_atom_inclusion_order() {
        for &a in &ALL {
            assert!(a.subsumed_by(a), "reflexive at {a}");
            for &b in &ALL {
                let subset = a.atoms().iter().all(|x| b.atoms().contains(x));
                assert_eq!(a.subsumed_by(b), subset, "atoms() consistency at {a},{b}");
                assert_eq!(a.subsumed_by(b), a.meet(b) == Some(a), "meet order at {a},{b}");
                assert_eq!(a.subsumed_by(b), a.join(b) == b, "join order at {a},{b}");
                if a.subsumed_by(b) && b.subsumed_by(a) {
                    assert_eq!(a, b, "antisymmetry at {a},{b}");
                }
                for &c in &ALL {
                    if a.subsumed_by(b) && b.subsumed_by(c) {
                        assert!(a.subsumed_by(c), "transitivity at {a},{b},{c}");
                    }
                }
            }
        }
    }

    /// `reverse` is an involution and a lattice automorphism: it transposes
    /// `meet` (and `join`) operands — `rev(a ⊓ b) = rev(b) ⊓ rev(a)`.
    #[test]
    fn reverse_is_a_meet_transposing_involution() {
        for &a in &ALL {
            assert_eq!(a.reverse().reverse(), a, "involution at {a}");
            for &b in &ALL {
                assert_eq!(
                    a.meet(b).map(Dir::reverse),
                    b.reverse().meet(a.reverse()),
                    "meet transposition at {a},{b}"
                );
                assert_eq!(a.join(b).reverse(), b.reverse().join(a.reverse()));
                assert_eq!(a.subsumed_by(b), a.reverse().subsumed_by(b.reverse()));
            }
        }
    }

    mod lattice_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The `Dir` laws lift component-wise to `DirVec`: idempotent,
            /// commutative, associative meet; subsumption agreeing with
            /// decomposition inclusion and the meet characterization; and
            /// reverse as a meet-transposing involution.
            #[test]
            fn dirvec_lattice_laws(
                slots in prop::collection::vec((0usize..7, 0usize..7, 0usize..7), 1..5)
            ) {
                let a = DirVec(slots.iter().map(|&(i, _, _)| ALL[i]).collect());
                let b = DirVec(slots.iter().map(|&(_, j, _)| ALL[j]).collect());
                let c = DirVec(slots.iter().map(|&(_, _, k)| ALL[k]).collect());
                prop_assert_eq!(a.meet(&a), Some(a.clone()));
                prop_assert_eq!(a.meet(&b), b.meet(&a));
                let left = a.meet(&b).and_then(|m| m.meet(&c));
                let right = b.meet(&c).and_then(|m| a.meet(&m));
                prop_assert_eq!(left, right);
                let decomp_b = b.atomic_decompositions();
                prop_assert_eq!(
                    a.subsumed_by(&b),
                    a.atomic_decompositions().iter().all(|x| decomp_b.contains(x))
                );
                prop_assert_eq!(a.subsumed_by(&b), a.meet(&b) == Some(a.clone()));
                prop_assert_eq!(a.reverse().reverse(), a.clone());
                prop_assert_eq!(
                    a.meet(&b).map(|m| m.reverse()),
                    b.reverse().meet(&a.reverse())
                );
            }

            /// `summarize` neither drops nor invents atomic vectors, for
            /// arbitrary inputs (the unit test pins one instance; this
            /// checks the law itself).
            #[test]
            fn summarize_preserves_atom_sets_prop(
                raw in prop::collection::vec((0usize..7, 0usize..7), 0..6)
            ) {
                let input: Vec<DirVec> =
                    raw.iter().map(|&(i, j)| DirVec(vec![ALL[i], ALL[j]])).collect();
                let mut before: Vec<DirVec> =
                    input.iter().flat_map(|v| v.atomic_decompositions()).collect();
                before.sort();
                before.dedup();
                let out = summarize(input);
                let mut after: Vec<DirVec> =
                    out.iter().flat_map(|v| v.atomic_decompositions()).collect();
                after.sort();
                after.dedup();
                prop_assert_eq!(before, after);
            }
        }
    }
}
