//! Banerjee inequalities (Banerjee 1988; Wolfe–Banerjee 1987).
//!
//! For each equation the test computes the exact minimum and maximum of the
//! left-hand side over the *real* relaxation of the iteration box (optionally
//! restricted by a direction predicate per common loop) and reports
//! independence when `0` lies outside `[min, max]`. Because the relaxation
//! is real-valued, the test cannot disprove the paper's motivating
//! linearized example, whose equation has real but no integer solutions.
//!
//! Our implementation evaluates the linear form on the *vertices* of the
//! constrained box, which is exact for linear objectives over convex
//! polytopes; the direction-restricted regions (`x < y` etc.) are triangles
//! and trapezoids whose vertices are written in terms of the loop bound.

use crate::dirvec::Dir;
use crate::problem::{DependenceProblem, LinEq};
use crate::verdict::{DependenceTest, Verdict};
use delin_numeric::{Assumptions, Coeff, NumericError};

/// The Banerjee-inequalities dependence test (all directions `*`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BanerjeeTest;

/// A *candidate set* representation of a range end: the true minimum
/// (resp. maximum) of the region is one of the candidates, but symbolic
/// comparisons may not determine which. Sign conclusions therefore
/// quantify over the whole set: `min > 0` holds when *every* candidate is
/// provably positive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateRange<C> {
    /// Candidates for the minimum.
    pub min: Vec<C>,
    /// Candidates for the maximum.
    pub max: Vec<C>,
}

/// Candidate-set growth cap; larger sets degrade to "unknown".
const MAX_CANDIDATES: usize = 8;

impl<C: Coeff> CandidateRange<C> {
    fn point(c: C) -> CandidateRange<C> {
        CandidateRange { min: vec![c.clone()], max: vec![c] }
    }

    /// Minkowski sum of two candidate ranges (pairwise sums, reduced).
    fn add(&self, other: &CandidateRange<C>, a: &Assumptions) -> Option<CandidateRange<C>> {
        let sum = |xs: &[C], ys: &[C], keep_min: bool| -> Option<Vec<C>> {
            let mut out = Vec::new();
            for x in xs {
                for y in ys {
                    out.push(x.checked_add(y).ok()?);
                }
            }
            Some(reduce_candidates(out, keep_min, a))
        };
        let min = sum(&self.min, &other.min, true)?;
        let max = sum(&self.max, &other.max, false)?;
        if min.len() > MAX_CANDIDATES || max.len() > MAX_CANDIDATES {
            return None;
        }
        Some(CandidateRange { min, max })
    }

    /// Every minimum candidate is provably `> 0`.
    pub fn min_positive(&self, a: &Assumptions) -> bool {
        self.min.iter().all(|c| c.is_pos(a).is_true())
    }

    /// Every maximum candidate is provably `< 0`.
    pub fn max_negative(&self, a: &Assumptions) -> bool {
        self.max.iter().all(|c| c.checked_neg().map(|n| n.is_pos(a).is_true()).unwrap_or(false))
    }

    /// Every candidate's sign is decidable (used to distinguish a definite
    /// "maybe dependent" from an honest "unknown").
    pub fn signs_known(&self, a: &Assumptions) -> bool {
        self.min.iter().chain(&self.max).all(|c| c.sign(a).is_some())
    }
}

/// Drops candidates dominated by another candidate (for MIN: any value
/// provably `≥` a kept one is redundant; for MAX: provably `≤`).
fn reduce_candidates<C: Coeff>(vals: Vec<C>, keep_min: bool, a: &Assumptions) -> Vec<C> {
    let mut kept: Vec<C> = Vec::new();
    'next: for v in vals {
        for u in &kept {
            let dominated = if keep_min { u.le(&v, a) } else { v.le(u, a) };
            if dominated.is_true() {
                continue 'next; // v is redundant
            }
        }
        // v survives; drop previously-kept values it dominates.
        kept.retain(|u| {
            let dominated = if keep_min { v.le(u, a) } else { u.le(&v, a) };
            !dominated.is_true()
        });
        kept.push(v);
    }
    kept
}

/// Outcome of a range computation for one equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquationRange<C> {
    /// Candidate `[min, max]` range of the LHS over the constrained region.
    Range(CandidateRange<C>),
    /// The constrained region itself is empty (e.g. direction `<` on a
    /// zero-trip loop): the equation is vacuously unsatisfiable.
    EmptyRegion,
}

/// A corner coordinate expressed in terms of a loop bound `Z`.
#[derive(Debug, Clone, Copy)]
enum Coord {
    Zero,
    One,
    Bound,
    BoundMinus1,
}

impl Coord {
    fn eval<C: Coeff>(self, z: &C) -> Result<C, NumericError> {
        match self {
            Coord::Zero => Ok(C::zero()),
            Coord::One => Ok(C::one()),
            Coord::Bound => Ok(z.clone()),
            Coord::BoundMinus1 => z.checked_sub(&C::one()),
        }
    }
}

/// How direction predicates are turned into regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectionMode {
    /// Classical integer-sharpened bounds: `<` means `x ≤ y − 1`
    /// (Banerjee 1988). Sharper; exploits integrality of the iteration
    /// variables.
    IntegerSharp,
    /// Real relaxation: `<` is closed to `x ≤ y`. This is the behaviour
    /// the paper ascribes to the Banerjee inequalities — "return dependent
    /// if there are real solutions".
    Real,
    /// Classical practice (Goff–Kennedy–Tseng): integer-sharp regions for
    /// single-index (≤ 2 active variable) equations — where exact SIV
    /// tests apply — and the real relaxation for coupled multi-index
    /// equations. Used by the classical-battery baseline.
    Hybrid,
}

/// Vertices of `{0 ≤ x ≤ Z, 0 ≤ y ≤ Z} ∩ dir(x, y)`, or `None` for the
/// non-convex `≠` (handled by unioning `<` and `>`).
fn corners(dir: Dir, mode: DirectionMode) -> Option<&'static [(Coord, Coord)]> {
    use Coord::*;
    let dir = match (mode, dir) {
        (DirectionMode::Real, Dir::Lt) => Dir::Le,
        (DirectionMode::Real, Dir::Gt) => Dir::Ge,
        (DirectionMode::Real, Dir::Ne) => Dir::Any,
        (_, d) => d,
    };
    match dir {
        Dir::Any => Some(&[(Zero, Zero), (Zero, Bound), (Bound, Zero), (Bound, Bound)]),
        Dir::Lt => Some(&[(Zero, One), (Zero, Bound), (BoundMinus1, Bound)]),
        Dir::Gt => Some(&[(One, Zero), (Bound, Zero), (Bound, BoundMinus1)]),
        Dir::Eq => Some(&[(Zero, Zero), (Bound, Bound)]),
        Dir::Le => Some(&[(Zero, Zero), (Zero, Bound), (Bound, Bound)]),
        Dir::Ge => Some(&[(Zero, Zero), (Bound, Zero), (Bound, Bound)]),
        Dir::Ne => None,
    }
}

/// Computes `[min, max]` of `cx·x + cy·y` over the direction-constrained
/// square `[0,Z]²`, or detects an empty region. Returns `None` when a
/// symbolic comparison cannot be decided.
fn pair_range<C: Coeff>(
    cx: &C,
    cy: &C,
    z: &C,
    dir: Dir,
    mode: DirectionMode,
    problem: &DependenceProblem<C>,
) -> Option<EquationRange<C>> {
    let a = problem.assumptions();
    // Region emptiness: Lt/Gt need Z >= 1; everything else needs Z >= 0,
    // which normalization guarantees (a zero-trip loop is Z < 0 and is
    // caught by the caller). When positivity is undecidable the corner
    // range below remains valid *conditionally on non-emptiness*, and every
    // conclusion drawn from it (zero excluded ⇒ unsatisfiable under this
    // direction) is vacuously true for the empty case — so we proceed.
    if matches!(dir, Dir::Lt | Dir::Gt | Dir::Ne) {
        match z.is_pos(a) {
            delin_numeric::Trilean::False => return Some(EquationRange::EmptyRegion),
            delin_numeric::Trilean::Unknown | delin_numeric::Trilean::True => {}
        }
    }
    let corner_sets: Vec<&'static [(Coord, Coord)]> = match corners(dir, mode) {
        Some(cs) => vec![cs],
        None => vec![corners(Dir::Lt, mode).unwrap(), corners(Dir::Gt, mode).unwrap()],
    };
    let mut values: Vec<C> = Vec::new();
    for set in corner_sets {
        for &(xc, yc) in set {
            let x = xc.eval(z).ok()?;
            let y = yc.eval(z).ok()?;
            let v = cx.checked_mul(&x).ok()?.checked_add(&cy.checked_mul(&y).ok()?).ok()?;
            values.push(v);
        }
    }
    let min = reduce_candidates(values.clone(), true, a);
    let max = reduce_candidates(values, false, a);
    if min.is_empty() || max.is_empty() || min.len() > MAX_CANDIDATES || max.len() > MAX_CANDIDATES
    {
        return None;
    }
    Some(EquationRange::Range(CandidateRange { min, max }))
}

/// Computes the Banerjee `[min, max]` range of one equation's LHS under the
/// direction predicates `dirs` (indexed by common-loop level; missing
/// levels default to `*`). Returns `None` when a symbolic quantity cannot
/// be compared.
pub fn equation_range<C: Coeff>(
    problem: &DependenceProblem<C>,
    eq: &LinEq<C>,
    dirs: &[Dir],
) -> Option<EquationRange<C>> {
    equation_range_mode(problem, eq, dirs, DirectionMode::IntegerSharp)
}

/// [`equation_range`] with an explicit [`DirectionMode`].
pub fn equation_range_mode<C: Coeff>(
    problem: &DependenceProblem<C>,
    eq: &LinEq<C>,
    dirs: &[Dir],
    mode: DirectionMode,
) -> Option<EquationRange<C>> {
    let a = problem.assumptions();
    // Resolve the hybrid mode per equation.
    let mode = match mode {
        DirectionMode::Hybrid => {
            if eq.num_active_vars() <= 2 {
                DirectionMode::IntegerSharp
            } else {
                DirectionMode::Real
            }
        }
        m => m,
    };
    let mut range = CandidateRange::point(eq.c0.clone());
    let mut in_pair = vec![false; problem.num_vars()];
    for (level, &(x, y)) in problem.common_loops().iter().enumerate() {
        in_pair[x] = true;
        in_pair[y] = true;
        let dir = dirs.get(level).copied().unwrap_or(Dir::Any);
        let cx = &eq.coeffs[x];
        let cy = &eq.coeffs[y];
        if cx.is_zero() && cy.is_zero() && dir == Dir::Any {
            continue;
        }
        let z = &problem.vars()[x].upper;
        match pair_range(cx, cy, z, dir, mode, problem)? {
            EquationRange::EmptyRegion => return Some(EquationRange::EmptyRegion),
            EquationRange::Range(r) => {
                range = range.add(&r, a)?;
            }
        }
    }
    for (k, c) in eq.coeffs.iter().enumerate() {
        if in_pair[k] || c.is_zero() {
            continue;
        }
        let z = &problem.vars()[k].upper;
        // The contribution of c·z over z ∈ [0, Z] is the interval between 0
        // and c·Z; only one end moves.
        let span = c.checked_mul(z).ok()?;
        let contrib = if span.is_nonneg(a).is_true() {
            CandidateRange { min: vec![C::zero()], max: vec![span] }
        } else if span.checked_neg().ok()?.is_nonneg(a).is_true() {
            CandidateRange { min: vec![span], max: vec![C::zero()] }
        } else {
            // Sign unknown: the contribution is between span and 0, in an
            // unknown order — exactly what candidate sets express.
            CandidateRange { min: vec![C::zero(), span.clone()], max: vec![C::zero(), span] }
        };
        range = range.add(&contrib, a)?;
    }
    Some(EquationRange::Range(range))
}

/// Applies the Banerjee inequalities to every equation under direction
/// predicates; `Verdict::Independent` when any equation excludes zero.
pub fn test_with_directions<C: Coeff>(problem: &DependenceProblem<C>, dirs: &[Dir]) -> Verdict {
    test_with_directions_mode(problem, dirs, DirectionMode::IntegerSharp)
}

/// [`test_with_directions`] with an explicit [`DirectionMode`].
pub fn test_with_directions_mode<C: Coeff>(
    problem: &DependenceProblem<C>,
    dirs: &[Dir],
    mode: DirectionMode,
) -> Verdict {
    let a = problem.assumptions();
    // `≠` is not convex: split it into `<` and `>` and combine — the
    // equation is unsatisfiable under `≠` iff it is under both pieces.
    if let Some(l) = dirs.iter().position(|d| *d == Dir::Ne) {
        let mut lt = dirs.to_vec();
        lt[l] = Dir::Lt;
        let mut gt = dirs.to_vec();
        gt[l] = Dir::Gt;
        let v1 = test_with_directions_mode(problem, &lt, mode);
        let v2 = test_with_directions_mode(problem, &gt, mode);
        return match (v1, v2) {
            (Verdict::Independent, Verdict::Independent) => Verdict::Independent,
            (v @ Verdict::Dependent { .. }, _) | (_, v @ Verdict::Dependent { .. }) => v,
            _ => Verdict::Unknown,
        };
    }
    // A zero-trip loop anywhere makes the whole iteration space empty.
    for v in problem.vars() {
        if v.upper.is_nonneg(a).is_false() {
            return Verdict::Independent;
        }
    }
    let mut all_ranges_known = true;
    for eq in problem.equations() {
        match equation_range_mode(problem, eq, dirs, mode) {
            Some(EquationRange::EmptyRegion) => return Verdict::Independent,
            Some(EquationRange::Range(r)) => {
                if r.min_positive(a) || r.max_negative(a) {
                    return Verdict::Independent;
                }
                if !r.signs_known(a) {
                    all_ranges_known = false;
                }
            }
            None => all_ranges_known = false,
        }
    }
    if all_ranges_known {
        Verdict::maybe_dependent()
    } else {
        Verdict::Unknown
    }
}

impl<C: Coeff> DependenceTest<C> for BanerjeeTest {
    fn name(&self) -> &'static str {
        "banerjee"
    }

    fn test(&self, problem: &DependenceProblem<C>) -> Verdict {
        test_with_directions(problem, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_numeric::Assumptions;

    fn single(c0: i128, coeffs: Vec<i128>, uppers: Vec<i128>) -> DependenceProblem<i128> {
        DependenceProblem::single_equation(c0, coeffs, uppers)
    }

    #[test]
    fn proves_out_of_range() {
        // x - y = 100 with x,y in [0,4]: range of x-y-100 is [-104,-96].
        let p = single(-100, vec![1, -1], vec![4, 4]);
        assert!(BanerjeeTest.test(&p).is_independent());
    }

    #[test]
    fn fails_on_motivating_example() {
        // Real solutions exist, so Banerjee must answer "maybe dependent".
        let p = single(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(BanerjeeTest.test(&p).is_dependent());
    }

    #[test]
    fn direction_constrained_ranges() {
        // x - y = 0, x,y in [0,8], paired as one common loop.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 8);
        let y = b.var("y", 8);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        // With '=': range of x-y is {0}: dependent.
        assert!(test_with_directions(&p, &[Dir::Eq]).is_dependent());
        // With '<': x - y <= -1 < 0: independent.
        assert!(test_with_directions(&p, &[Dir::Lt]).is_independent());
        // With '>': x - y >= 1 > 0: independent.
        assert!(test_with_directions(&p, &[Dir::Gt]).is_independent());
        // With '*': dependent.
        assert!(test_with_directions(&p, &[Dir::Any]).is_dependent());
        // Ne is the union of two empty-zero triangles here: independent.
        assert!(test_with_directions(&p, &[Dir::Ne]).is_independent());
    }

    #[test]
    fn direction_on_shifted_equation() {
        // x - y + 1 = 0 (i.e. y = x + 1): only `<` direction possible.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 8);
        let y = b.var("y", 8);
        b.equation(1, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        assert!(test_with_directions(&p, &[Dir::Lt]).is_dependent());
        assert!(test_with_directions(&p, &[Dir::Eq]).is_independent());
        assert!(test_with_directions(&p, &[Dir::Gt]).is_independent());
    }

    #[test]
    fn zero_trip_loop_direction() {
        // Bound 0: '<' region is empty.
        let mut b = DependenceProblem::<i128>::builder();
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.equation(0, vec![1, -1]);
        b.common_pair(x, y);
        let p = b.build();
        assert!(test_with_directions(&p, &[Dir::Lt]).is_independent());
        assert!(test_with_directions(&p, &[Dir::Eq]).is_dependent());
    }

    #[test]
    fn zero_trip_loop_whole_space() {
        let p = single(0, vec![1, -1], vec![-1, 5]);
        assert!(BanerjeeTest.test(&p).is_independent());
    }

    #[test]
    fn unpaired_variables_use_full_span() {
        // 3z = 7 with z in [0,1]: range [0,3] contains 0... equation is
        // 3z - 7: range [-7,-4]: independent.
        let p = single(-7, vec![3], vec![1]);
        assert!(BanerjeeTest.test(&p).is_independent());
        // 3z - 2: range [-2,1] contains 0: maybe dependent (Banerjee is
        // real-valued; the true answer is independent).
        let p = single(-2, vec![3], vec![1]);
        assert!(BanerjeeTest.test(&p).is_dependent());
    }

    #[test]
    fn symbolic_banerjee() {
        use delin_numeric::SymPoly;
        // x - y = N^2 with x,y in [0, N-1] under N >= 1: max of x - y - N^2
        // is (N-1) - 0 - N^2 = -N^2 + N - 1 < 0: independent.
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let nm1 = n.checked_sub(&SymPoly::one()).unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", nm1.clone());
        b.var("y", nm1.clone());
        b.equation(n2.checked_neg().unwrap(), vec![SymPoly::one(), SymPoly::constant(-1)]);
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 1);
        b.assumptions(a);
        let p = b.build();
        assert!(BanerjeeTest.test(&p).is_independent());
    }

    #[test]
    fn symbolic_undecidable_is_unknown() {
        use delin_numeric::SymPoly;
        // x - y = N - 3 with x,y in [0, N-1]: feasibility depends on N,
        // and with only N >= 1 the ranges cannot be compared.
        let n = SymPoly::symbol("N");
        let nm1 = n.checked_sub(&SymPoly::one()).unwrap();
        let c0 = SymPoly::constant(3).checked_sub(&n).unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", nm1.clone());
        b.var("y", nm1);
        b.equation(c0, vec![SymPoly::one(), SymPoly::constant(-1)]);
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 1);
        b.assumptions(a);
        let p = b.build();
        let v = BanerjeeTest.test(&p);
        assert!(v.is_unknown() || v.is_dependent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&BanerjeeTest), "banerjee");
    }
}
