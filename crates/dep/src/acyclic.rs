//! The Acyclic test (Maydan–Hennessy–Lam 1991).
//!
//! Applicable when every equation has at most two active variables, all
//! active coefficients are `±1`, and the variable-sharing graph (variables
//! as nodes, two-variable equations as edges) is acyclic. Interval
//! propagation to a fixpoint is then *exact*: unit-coefficient binary
//! equations are monotone bijections between intervals, and arc consistency
//! decides tree-structured constraint networks.

use crate::problem::DependenceProblem;
use crate::verdict::{DependenceInfo, DependenceTest, Verdict};
use delin_numeric::Interval;

/// The Acyclic dependence test.
#[derive(Debug, Clone, Copy, Default)]
pub struct AcyclicTest;

/// Checks shape applicability: ≤ 2 active vars per equation, unit
/// coefficients, acyclic sharing graph, and no extra inequality
/// constraints.
fn applicable(problem: &DependenceProblem<i128>) -> bool {
    if !problem.inequalities().is_empty() {
        return false;
    }
    let n = problem.num_vars();
    // Union-find over variables; a two-variable equation joining two
    // already-connected variables closes a cycle.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for eq in problem.equations() {
        let active: Vec<usize> = eq.active_vars().collect();
        if active.len() > 2 {
            return false;
        }
        if active.iter().any(|&k| eq.coeffs[k].abs() != 1) {
            return false;
        }
        if active.len() == 2 {
            let (a, b) = (find(&mut parent, active[0]), find(&mut parent, active[1]));
            if a == b {
                return false;
            }
            parent[a] = b;
        }
    }
    true
}

impl DependenceTest<i128> for AcyclicTest {
    fn name(&self) -> &'static str {
        "acyclic"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        if problem.vars().iter().any(|v| v.upper < 0) {
            return Verdict::Independent;
        }
        if !applicable(problem) {
            return Verdict::Unknown;
        }
        let n = problem.num_vars();
        let mut dom: Vec<Interval> =
            problem.vars().iter().map(|v| Interval::new(0, v.upper)).collect();
        // Propagate to fixpoint. Each pass narrows; bounded by total domain
        // shrinkage, and each equation visit is O(1).
        loop {
            let mut changed = false;
            for eq in problem.equations() {
                let active: Vec<usize> = eq.active_vars().collect();
                match active.len() {
                    0 => {
                        if eq.c0 != 0 {
                            return Verdict::Independent;
                        }
                    }
                    1 => {
                        let k = active[0];
                        let v = -eq.c0 * eq.coeffs[k]; // coeff is ±1
                        let narrowed = dom[k].intersect(&Interval::point(v));
                        if narrowed != dom[k] {
                            dom[k] = narrowed;
                            changed = true;
                        }
                    }
                    2 => {
                        let (x, y) = (active[0], active[1]);
                        let (sx, sy) = (eq.coeffs[x], eq.coeffs[y]);
                        // sx*x + sy*y + c0 = 0  =>  x = (-c0 - sy*y)/sx.
                        let from = |other: Interval, s_self: i128, s_other: i128| {
                            let Ok(t) = other.checked_scale(-s_other) else {
                                return Interval::new(i128::MIN / 4, i128::MAX / 4);
                            };
                            let Ok(t) = t.checked_add(&Interval::point(-eq.c0)) else {
                                return Interval::new(i128::MIN / 4, i128::MAX / 4);
                            };
                            // Dividing by ±1 keeps integrality.
                            t.checked_scale(s_self).unwrap_or(t)
                        };
                        let nx = dom[x].intersect(&from(dom[y], sx, sy));
                        if nx != dom[x] {
                            dom[x] = nx;
                            changed = true;
                        }
                        let ny = dom[y].intersect(&from(dom[x], sy, sx));
                        if ny != dom[y] {
                            dom[y] = ny;
                            changed = true;
                        }
                    }
                    _ => unreachable!("applicability pre-checked"),
                }
            }
            if dom.iter().any(Interval::is_empty) {
                return Verdict::Independent;
            }
            if !changed {
                break;
            }
        }
        // Arc-consistent and acyclic: a solution exists. Build a witness by
        // assigning lower ends and re-propagating through each tree edge.
        let mut witness: Vec<Option<i128>> = vec![None; n];
        // Repeatedly: pick an unassigned variable, set to its interval's
        // low end, then propagate along equations until no forced moves.
        loop {
            let mut progressed = false;
            for eq in problem.equations() {
                let active: Vec<usize> = eq.active_vars().collect();
                if active.len() == 1 {
                    let k = active[0];
                    if witness[k].is_none() {
                        witness[k] = Some(-eq.c0 * eq.coeffs[k]);
                        progressed = true;
                    }
                } else if active.len() == 2 {
                    let (x, y) = (active[0], active[1]);
                    match (witness[x], witness[y]) {
                        (Some(vx), None) => {
                            witness[y] = Some((-eq.c0 - eq.coeffs[x] * vx) * eq.coeffs[y]);
                            progressed = true;
                        }
                        (None, Some(vy)) => {
                            witness[x] = Some((-eq.c0 - eq.coeffs[y] * vy) * eq.coeffs[x]);
                            progressed = true;
                        }
                        _ => {}
                    }
                }
            }
            if !progressed {
                match witness.iter().position(Option::is_none) {
                    Some(k) => {
                        witness[k] = Some(dom[k].lo);
                    }
                    None => break,
                }
            }
        }
        let w: Vec<i128> = witness.into_iter().map(|v| v.expect("assigned")).collect();
        match problem.is_solution(&w) {
            Ok(true) => Verdict::Dependent {
                exact: true,
                info: DependenceInfo { witness: Some(w), ..DependenceInfo::default() },
            },
            // Should not happen for applicable problems, but stay sound.
            _ => Verdict::Dependent { exact: false, info: DependenceInfo::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{ExactSolver, SolveOutcome};

    #[test]
    fn chain_system_feasible() {
        // x - y = 1, y - z = 2 over [0,10]^3.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.var("z", 10);
        b.equation(-1, vec![1, -1, 0]);
        b.equation(-2, vec![0, 1, -1]);
        let p = b.build();
        match AcyclicTest.test(&p) {
            Verdict::Dependent { exact, info } => {
                assert!(exact);
                let w = info.witness.unwrap();
                assert!(p.is_solution(&w).unwrap());
            }
            o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn chain_system_infeasible() {
        // x - y = 8, y - z = 8 over [0,10]: x would need z + 16 > 10.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.var("z", 10);
        b.equation(-8, vec![1, -1, 0]);
        b.equation(-8, vec![0, 1, -1]);
        let p = b.build();
        assert!(AcyclicTest.test(&p).is_independent());
    }

    #[test]
    fn sum_equations_work_too() {
        // x + y = 3 over [0,1]^2 is infeasible (max 2).
        let p = DependenceProblem::single_equation(-3, vec![1, 1], vec![1, 1]);
        assert!(AcyclicTest.test(&p).is_independent());
        // x + y = 2 over [0,1]^2 is feasible at (1,1).
        let p = DependenceProblem::single_equation(-2, vec![1, 1], vec![1, 1]);
        assert!(AcyclicTest.test(&p).is_dependent());
    }

    #[test]
    fn rejects_cycles_and_nonunit() {
        // Cycle: x-y, y-z, z-x.
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 5);
        b.var("y", 5);
        b.var("z", 5);
        b.equation(0, vec![1, -1, 0]);
        b.equation(0, vec![0, 1, -1]);
        b.equation(0, vec![-1, 0, 1]);
        let p = b.build();
        assert!(AcyclicTest.test(&p).is_unknown());
        // Non-unit coefficient.
        let p = DependenceProblem::single_equation(0, vec![2, -1], vec![5, 5]);
        assert!(AcyclicTest.test(&p).is_unknown());
        // Three active variables.
        let p = DependenceProblem::single_equation(0, vec![1, -1, 1], vec![5, 5, 5]);
        assert!(AcyclicTest.test(&p).is_unknown());
    }

    #[test]
    fn agrees_with_exact_on_random_trees() {
        // Chains x1 - x2 = d1, x2 - x3 = d2, ... with assorted constants.
        let solver = ExactSolver::default();
        for d1 in -6i128..=6 {
            for d2 in -6i128..=6 {
                let mut b = DependenceProblem::<i128>::builder();
                b.var("x", 5);
                b.var("y", 5);
                b.var("z", 5);
                b.equation(-d1, vec![1, -1, 0]);
                b.equation(-d2, vec![0, 1, -1]);
                let p = b.build();
                let got = AcyclicTest.test(&p);
                match solver.solve(&p) {
                    SolveOutcome::Solution(_) => assert!(got.is_dependent(), "d1={d1} d2={d2}"),
                    SolveOutcome::NoSolution => {
                        assert!(got.is_independent(), "d1={d1} d2={d2}")
                    }
                    SolveOutcome::Degraded(_) => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 5]);
        assert!(AcyclicTest.test(&p).is_independent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&AcyclicTest), "acyclic");
    }
}
