//! The GCD test (Banerjee 1988; Allen–Kennedy 1987).
//!
//! A linear equation `c0 + Σ ck·zk = 0` has *unbounded* integer solutions
//! iff `gcd(c1, …, cn)` divides `c0`. The test ignores the loop bounds, so
//! it can prove independence but never dependence. It is one of the
//! techniques the paper lists as unable to disprove the motivating
//! linearized example (the gcd there is 1).
//!
//! The symbolic variant is sound: it reports independence only when the
//! remainder `c0 mod g` is provably strictly between `0` and `g` for every
//! admissible parameter value.

use crate::problem::{DependenceProblem, LinEq};
use crate::verdict::{DependenceTest, Verdict};
use delin_numeric::{Assumptions, Coeff, Trilean};

/// The classic GCD dependence test.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcdTest;

/// Is the single equation feasible over unbounded integers, as far as
/// divisibility can tell? `False` is a proof of infeasibility.
pub fn equation_divisible<C: Coeff>(eq: &LinEq<C>, a: &Assumptions) -> Trilean {
    let g = eq.coeffs.iter().fold(C::zero(), |acc, c| acc.gcd(c));
    if g.is_zero() {
        // No variables: the equation is c0 = 0.
        return if eq.c0.is_zero() {
            Trilean::True
        } else if eq.c0.sign(a).is_some() {
            Trilean::False
        } else {
            Trilean::Unknown
        };
    }
    let Ok((_, r)) = eq.c0.div_rem(&g) else {
        return Trilean::Unknown;
    };
    if r.is_zero() {
        return Trilean::True;
    }
    if let Some(rc) = r.as_i128() {
        if let Some(gc) = g.as_i128() {
            // Concrete: Euclidean remainder in [0, |g|) and nonzero.
            debug_assert!(rc != 0 && rc.abs() < gc.abs());
            let _ = (rc, gc);
            return Trilean::False;
        }
    }
    // Symbolic: prove 0 < r < g pointwise.
    let strictly_between = r.is_pos(a).and(match g.checked_sub(&r) {
        Ok(diff) => diff.is_pos(a),
        Err(_) => Trilean::Unknown,
    });
    match strictly_between {
        Trilean::True => Trilean::False,
        _ => Trilean::Unknown,
    }
}

impl<C: Coeff> DependenceTest<C> for GcdTest {
    fn name(&self) -> &'static str {
        "gcd"
    }

    fn test(&self, problem: &DependenceProblem<C>) -> Verdict {
        for eq in problem.equations() {
            if equation_divisible(eq, problem.assumptions()).is_false() {
                return Verdict::Independent;
            }
        }
        // Divisibility holds (or is unknown) everywhere: the GCD test
        // cannot prove dependence because it ignores the bounds.
        Verdict::maybe_dependent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_numeric::SymPoly;

    fn single(c0: i128, coeffs: Vec<i128>, uppers: Vec<i128>) -> DependenceProblem<i128> {
        DependenceProblem::single_equation(c0, coeffs, uppers)
    }

    #[test]
    fn proves_divisibility_failures() {
        // 2x - 4y = 1: gcd 2 does not divide 1.
        let p = single(1, vec![2, -4], vec![100, 100]);
        assert!(GcdTest.test(&p).is_independent());
        // 2x - 4y = 6 is divisible: maybe dependent.
        let p = single(-6, vec![2, -4], vec![100, 100]);
        assert!(GcdTest.test(&p).is_dependent());
    }

    #[test]
    fn fails_on_motivating_example() {
        // gcd(1,10,1,10) = 1 divides 5: the GCD test cannot disprove it
        // (this is the paper's point).
        let p = single(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        assert!(GcdTest.test(&p).is_dependent());
    }

    #[test]
    fn zero_variable_equations() {
        let p = single(3, vec![0, 0], vec![4, 4]);
        assert!(GcdTest.test(&p).is_independent());
        let p = single(0, vec![0, 0], vec![4, 4]);
        assert!(GcdTest.test(&p).is_dependent());
    }

    #[test]
    fn multi_equation_any_failure_suffices() {
        let mut b = DependenceProblem::<i128>::builder();
        b.var("x", 10);
        b.var("y", 10);
        b.equation(0, vec![1, -1]); // feasible
        b.equation(1, vec![2, 2]); // 2(x+y) = -1: infeasible
        let p = b.build();
        assert!(GcdTest.test(&p).is_independent());
    }

    #[test]
    fn symbolic_divisible() {
        // N*x - N*y = N^2: gcd N divides N^2 -> maybe dependent.
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let p = DependenceProblem::single_equation(
            n2.clone(),
            vec![n.clone(), n.checked_neg().unwrap()],
            vec![n.clone(), n.clone()],
        );
        assert!(GcdTest.test(&p).is_dependent());
    }

    #[test]
    fn symbolic_provably_indivisible() {
        // N^2*x - N^2*y = N^2 + 3 under N >= 2: remainder 3 with 0 < 3 < N^2.
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let c0 = n2.checked_add(&SymPoly::constant(3)).unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("x", n.clone());
        b.var("y", n.clone());
        b.equation(c0, vec![n2.clone(), n2.checked_neg().unwrap()]);
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 2);
        b.assumptions(a);
        let p = b.build();
        assert!(GcdTest.test(&p).is_independent());
    }

    #[test]
    fn symbolic_unknown_divisibility_is_conservative() {
        // 2x - 2y = N: divisibility depends on N's parity -> maybe dependent.
        let n = SymPoly::symbol("N");
        let two = SymPoly::constant(2);
        let p = DependenceProblem::single_equation(
            n.clone(),
            vec![two.clone(), two.checked_neg().unwrap()],
            vec![n.clone(), n.clone()],
        );
        assert!(GcdTest.test(&p).is_dependent());
    }

    #[test]
    fn name() {
        assert_eq!(DependenceTest::<i128>::name(&GcdTest), "gcd");
    }
}
