//! Minimal aligned-table rendering for the experiment binaries.

/// Renders rows (first row = header) as an aligned text table.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, r) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, cell) in r.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}", w = widths[i]));
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let rows = vec![
            vec!["name".to_string(), "count".to_string()],
            vec!["a".to_string(), "1".to_string()],
            vec!["long-name".to_string(), "10000".to_string()],
        ];
        let t = render_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "count" starts at the same offset everywhere.
        let off = lines[0].find("count").unwrap();
        assert_eq!(lines[2].len().min(off), off.min(lines[2].len()));
        assert!(lines[3].contains("10000"));
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }
}
