//! The experiment implementations (E1–E9 of `DESIGN.md`).

use delin_core::algorithm::{delinearize, DelinConfig};
use delin_core::trace::render_trace;
use delin_core::DelinearizationTest;
use delin_corpus::census::census;
use delin_corpus::riceps::{all_benchmarks, generate, generate_scaled};
use delin_corpus::workload::{linearized_problem, scaling_problem, LinearizedSpec};
use delin_dep::acyclic::AcyclicTest;
use delin_dep::banerjee::BanerjeeTest;
use delin_dep::exact::{ExactSolver, SolveOutcome};
use delin_dep::fourier::FourierMotzkin;
use delin_dep::gcd::GcdTest;
use delin_dep::hierarchy;
use delin_dep::lambda::LambdaTest;
use delin_dep::problem::DependenceProblem;
use delin_dep::residue::LoopResidueTest;
use delin_dep::shostak::ShostakTest;
use delin_dep::siv::SivTest;
use delin_dep::svpc::SvpcTest;
use delin_dep::verdict::{DependenceTest, Verdict};
use delin_frontend::parse_program;
use delin_numeric::{Assumptions, SymPoly};
use delin_vic::deps::{
    build_dependence_graph, build_dependence_graph_with, concretize, pair_problem, DepKind,
    DepStats, EngineConfig, TestChoice,
};
use delin_vic::pipeline::{run_pipeline, PipelineConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The paper's motivating dependence problem:
/// `i1 + 10 j1 − i2 − 10 j2 − 5 = 0`, `i ∈ [0,4]`, `j ∈ [0,9]`.
pub fn motivating_problem() -> DependenceProblem<i128> {
    let mut b = DependenceProblem::<i128>::builder();
    let i1 = b.var("i1", 4);
    let j1 = b.var("j1", 9);
    let i2 = b.var("i2", 4);
    let j2 = b.var("j2", 9);
    b.common_pair(i1, i2).common_pair(j1, j2);
    b.equation(-5, vec![1, 10, -1, -10]);
    b.build()
}

/// The Fig. 5 trace equation:
/// `100k1 − 100k2 + 10j1 − 10i2 + i1 − j2 − 110 = 0`.
pub fn fig5_problem() -> DependenceProblem<i128> {
    // Variable order (i1, j1, k1, i2, j2, k2); i,k ∈ [0,8], j ∈ [0,9].
    DependenceProblem::single_equation(
        -110,
        vec![1, 10, 100, -10, -1, -100],
        vec![8, 9, 8, 8, 9, 8],
    )
}

/// E1 / Fig. 1: the RiCEPS census. `full_size` = generate at the reported
/// line counts (slower) vs a reduced size with identical nest counts.
pub fn fig1_rows(full_size: bool) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "Program".to_string(),
        "Type".to_string(),
        "Lines".to_string(),
        "Fig.1 nests".to_string(),
        "Measured".to_string(),
        "Match".to_string(),
    ]];
    for spec in all_benchmarks() {
        let src = if full_size { generate(&spec) } else { generate_scaled(&spec, 400) };
        let program = parse_program(&src).expect("corpus program parses");
        let result = census(&program, &Assumptions::new());
        rows.push(vec![
            spec.name.to_string(),
            spec.domain.to_string(),
            src.lines().count().to_string(),
            spec.expected.to_string(),
            result.linearized_nests.to_string(),
            if spec.expected.matches(result.linearized_nests) { "yes" } else { "NO" }.to_string(),
        ]);
    }
    rows
}

/// The Fig. 3 program (Allen–Kennedy 1987 example).
pub fn fig3_source() -> &'static str {
    "
    REAL X(200), Y(200), B(100)
    REAL A(100,100), C(100,100)
    DO 30 i = 1, 100
      X(i) = Y(i) + 10
      DO 20 j = 1, 99
        B(j) = A(j, 20)
        DO 10 k = 1, 100
          A(j+1, k) = B(j) + C(j, k)
    10  CONTINUE
        Y(i+j) = A(j+1, 20)
    20  CONTINUE
    30 CONTINUE
    END
    "
}

/// E2 / Fig. 3: the dependence table of the example program: every edge
/// with direction vectors and (exact) distance-direction vectors.
pub fn fig3_rows() -> Vec<Vec<String>> {
    let program = parse_program(fig3_source()).expect("fig3 parses");
    let assumptions = Assumptions::new();
    let graph = build_dependence_graph(&program, &assumptions, TestChoice::DelinearizationFirst);
    let mut rows = vec![vec![
        "Pair".to_string(),
        "Kind".to_string(),
        "Direction".to_string(),
        "Level".to_string(),
        "Distance-direction".to_string(),
    ]];
    // Recompute exact distance-direction vectors per pair for the table.
    let sites = delin_frontend::access::collect_accesses(&program, &assumptions);
    for e in &graph.edges {
        let dirs = e.dir_vecs.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ");
        // Find the sites of this edge to compute distances.
        let dist = sites
            .iter()
            .find(|s| s.stmt == e.src && s.array == e.array)
            .zip(sites.iter().find(|s| s.stmt == e.dst && s.array == e.array))
            .and_then(|(sa, sb)| {
                let p = pair_problem(sa, sb);
                let c = concretize(&p)?;
                let dd = hierarchy::distance_direction_vectors(&c, &ExactSolver::default());
                Some(dd.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "))
            })
            .unwrap_or_else(|| "-".to_string());
        let kind = match e.kind {
            DepKind::True => "true",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        rows.push(vec![
            format!("S{}:{} -> S{}:{}", e.src.0 + 1, e.array, e.dst.0 + 1, e.array),
            kind.to_string(),
            dirs,
            e.level.map_or("-".to_string(), |l| l.to_string()),
            dist,
        ]);
    }
    rows
}

/// E3 / Fig. 5: the delinearization algorithm trace on the paper's
/// six-variable equation.
pub fn fig5_trace_text() -> String {
    let config = DelinConfig { collect_trace: true, ..DelinConfig::default() };
    let out = delinearize(&fig5_problem(), 0, &config);
    let mut text = render_trace(&out.separation().trace);
    text.push_str(&format!(
        "\nseparated dimensions: {}\n",
        out.separation()
            .dimensions
            .iter()
            .map(|d| d.render(&fig5_problem()))
            .collect::<Vec<_>>()
            .join(" | ")
    ));
    text
}

/// E4: every implemented technique's verdict on the motivating problem.
pub fn technique_rows() -> Vec<Vec<String>> {
    let p = motivating_problem();
    let mut rows = vec![vec![
        "Technique".to_string(),
        "Verdict".to_string(),
        "Proves independence".to_string(),
    ]];
    let verdicts: Vec<(&'static str, Verdict)> = vec![
        ("gcd", GcdTest.test(&p)),
        ("banerjee", BanerjeeTest.test(&p)),
        ("siv (exact <=2 var)", SivTest.test(&p)),
        ("svpc", SvpcTest.test(&p)),
        ("acyclic", AcyclicTest.test(&p)),
        ("simple loop residue", LoopResidueTest.test(&p)),
        ("shostak", ShostakTest::default().test(&p)),
        ("lambda", LambdaTest.test(&p)),
        ("fourier-motzkin (real)", FourierMotzkin::real().test(&p)),
        ("fourier-motzkin + tightening", FourierMotzkin::tightened().test(&p)),
        ("delinearization", DependenceTest::<i128>::test(&DelinearizationTest::default(), &p)),
        ("exact solver (ground truth)", ExactSolver::default().test(&p)),
    ];
    for (name, v) in verdicts {
        rows.push(vec![
            name.to_string(),
            v.to_string(),
            if v.is_independent() { "yes" } else { "no" }.to_string(),
        ]);
    }
    rows
}

/// E5: the MHL91 distance-vector example — `A(10i+j) = A(10(i+2)+j)+7`,
/// where the paper says only delinearization finds the distance `(2, 0)`.
pub fn distance_rows() -> Vec<Vec<String>> {
    let mut b = DependenceProblem::<i128>::builder();
    let i1 = b.var("i1", 7);
    let j1 = b.var("j1", 9);
    let i2 = b.var("i2", 7);
    let j2 = b.var("j2", 9);
    b.common_pair(i1, i2).common_pair(j1, j2);
    b.equation(20, vec![10, 1, -10, -1]);
    let p = b.build();
    let mut rows = vec![vec![
        "Method".to_string(),
        "Direction vectors".to_string(),
        "Distance-direction vectors".to_string(),
    ]];
    // Banerjee hierarchy (the MHL91-era approach): directions only.
    let real = hierarchy::banerjee_oracle_real();
    let dirs = hierarchy::direction_vectors(&p, &real);
    rows.push(vec![
        "banerjee hierarchy (real)".to_string(),
        dirs.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "),
        "(no distances)".to_string(),
    ]);
    // Delinearization: per-dimension exact distances.
    let v = DependenceTest::<i128>::test(&DelinearizationTest::default(), &p);
    let (d, dd) = match v.info() {
        Some(info) => (
            info.dir_vecs.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "),
            info.dist_dirs.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "),
        ),
        None => ("independent".to_string(), "-".to_string()),
    };
    rows.push(vec!["delinearization".to_string(), d, dd]);
    rows
}

/// The Section 4 symbolic problem
/// (`A(N*N*k + N*j + i)` vs `A(N*N*k + j + N*i + N*N + N)`).
pub fn symbolic_problem() -> DependenceProblem<SymPoly> {
    let n = SymPoly::symbol("N");
    let n2 = n.checked_mul(&n).expect("N²");
    let nm1 = n.checked_sub(&SymPoly::one()).expect("N-1");
    let nm2 = n.checked_sub(&SymPoly::constant(2)).expect("N-2");
    let c0 = n2.checked_add(&n).and_then(|p| p.checked_neg()).expect("-(N²+N)");
    let mut b = DependenceProblem::<SymPoly>::builder();
    let i1 = b.var("i1", nm2.clone());
    let j1 = b.var("j1", nm1.clone());
    let k1 = b.var("k1", nm2.clone());
    let i2 = b.var("i2", nm2.clone());
    let j2 = b.var("j2", nm1);
    let k2 = b.var("k2", nm2);
    b.common_pair(i1, i2).common_pair(j1, j2).common_pair(k1, k2);
    b.equation(
        c0,
        vec![
            SymPoly::one(),
            n.clone(),
            n2.clone(),
            n.checked_neg().expect("-N"),
            SymPoly::constant(-1),
            n2.checked_neg().expect("-N²"),
        ],
    );
    let mut a = Assumptions::new();
    a.set_lower_bound("N", 2);
    b.assumptions(a);
    b.build()
}

/// E6: the symbolic delinearization trace (Section 4 example).
pub fn symbolic_trace_text() -> String {
    let p = symbolic_problem();
    let config = DelinConfig { collect_trace: true, ..DelinConfig::default() };
    let out = delinearize(&p, 0, &config);
    let mut text = render_trace(&out.separation().trace);
    text.push_str(&format!(
        "\nseparated dimensions: {}\n",
        out.separation().dimensions.iter().map(|d| d.render(&p)).collect::<Vec<_>>().join(" | ")
    ));
    let v = DependenceTest::<SymPoly>::test(&DelinearizationTest::default(), &p);
    text.push_str(&format!("symbolic verdict: {v}\n"));
    if let Some(info) = v.info() {
        text.push_str(&format!(
            "direction vectors: {}\n",
            info.dir_vecs.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ")
        ));
    }
    text
}

fn time_best_of<F: FnMut() -> bool>(mut f: F, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let keep = f();
        let dt = t0.elapsed();
        std::hint::black_box(keep); // prevent the call from being optimized out
        best = best.min(dt);
    }
    best
}

/// E7: scaling of each technique as the number of loop variables grows;
/// returns `(n, technique, nanoseconds, verdict)` rows. The workload is
/// the motivating example generalized to `n` dimensions — always
/// independent, so every technique does its full work.
pub fn scaling_rows(max_loops: usize, reps: usize) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "loops (n vars = 2·loops)".to_string(),
        "technique".to_string(),
        "time (ns, best)".to_string(),
        "verdict".to_string(),
    ]];
    for loops in 1..=max_loops {
        let p = scaling_problem(loops, 10);
        let mut push = |name: &str, verdict: Verdict, t: Duration| {
            rows.push(vec![
                loops.to_string(),
                name.to_string(),
                t.as_nanos().to_string(),
                verdict.to_string(),
            ]);
        };
        let delin = DelinearizationTest::default();
        let t = time_best_of(|| delin.test(&p).is_independent(), reps);
        push("delinearization", delin.test(&p), t);
        let t = time_best_of(|| GcdTest.test(&p).is_independent(), reps);
        push("gcd", GcdTest.test(&p), t);
        let t = time_best_of(|| BanerjeeTest.test(&p).is_independent(), reps);
        push("banerjee", BanerjeeTest.test(&p), t);
        let fmt = FourierMotzkin::tightened();
        let t = time_best_of(|| fmt.test(&p).is_independent(), reps);
        push("fourier-motzkin+tighten", fmt.test(&p), t);
        let fmr = FourierMotzkin::real();
        let t = time_best_of(|| fmr.test(&p).is_independent(), reps);
        push("fourier-motzkin (real)", fmr.test(&p), t);
        if loops <= 6 {
            let ex = ExactSolver::default();
            let t = time_best_of(|| ex.test(&p).is_independent(), reps);
            push("exact solver", ex.test(&p), t);
        }
    }
    rows
}

/// E8: precision on the random linearized family: per technique, how many
/// of the truly-independent problems it proves independent (plus a
/// soundness column that must stay at zero).
pub fn precision_rows(samples: usize, seed: u64) -> Vec<Vec<String>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let spec = LinearizedSpec::default();
    let solver = ExactSolver::default();
    let problems: Vec<(DependenceProblem<i128>, bool)> = (0..samples)
        .map(|_| {
            let p = linearized_problem(&mut rng, &spec);
            let independent = matches!(solver.solve(&p), SolveOutcome::NoSolution);
            (p, independent)
        })
        .collect();
    let total_independent = problems.iter().filter(|(_, ind)| *ind).count();

    type Technique = (&'static str, Box<dyn Fn(&DependenceProblem<i128>) -> Verdict>);
    let techniques: Vec<Technique> = vec![
        ("gcd", Box::new(|p| GcdTest.test(p))),
        ("banerjee", Box::new(|p| BanerjeeTest.test(p))),
        ("lambda", Box::new(|p| LambdaTest.test(p))),
        ("fourier-motzkin (real)", Box::new(|p| FourierMotzkin::real().test(p))),
        ("fourier-motzkin + tightening", Box::new(|p| FourierMotzkin::tightened().test(p))),
        (
            "delinearization",
            Box::new(|p| DependenceTest::<i128>::test(&DelinearizationTest::default(), p)),
        ),
    ];
    let mut rows = vec![vec![
        "technique".to_string(),
        format!("independents proven (of {total_independent})"),
        "rate %".to_string(),
        "unsound claims".to_string(),
    ]];
    for (name, test) in &techniques {
        let mut proven = 0usize;
        let mut unsound = 0usize;
        for (p, independent) in &problems {
            let v = test(p);
            if v.is_independent() {
                if *independent {
                    proven += 1;
                } else {
                    unsound += 1;
                }
            }
        }
        let rate = if total_independent > 0 {
            100.0 * proven as f64 / total_independent as f64
        } else {
            0.0
        };
        rows.push(vec![
            name.to_string(),
            proven.to_string(),
            format!("{rate:.1}"),
            unsound.to_string(),
        ]);
    }
    rows
}

/// Aggregate dependence-engine statistics over the synthetic RiCEPS corpus
/// under one engine configuration: cache hit/miss counts, executed test
/// attempts, exact-solver nodes, and wall-clock testing time.
///
/// `lines` is the per-program scaling target; `None` generates at the
/// paper's reported line counts.
pub fn corpus_engine_stats(lines: Option<usize>, config: &EngineConfig) -> DepStats {
    let mut total = DepStats::default();
    for spec in all_benchmarks() {
        let src = match lines {
            Some(n) => generate_scaled(&spec, n),
            None => generate(&spec),
        };
        let program = parse_program(&src).expect("corpus program parses");
        let assumptions =
            delin_frontend::affine::infer_bound_assumptions(&program, &Assumptions::new());
        let graph = build_dependence_graph_with(&program, &assumptions, config);
        total.merge(&graph.stats);
    }
    total
}

/// E9: end-to-end vectorization of the (scaled) corpus with and without
/// delinearization.
pub fn vectorizer_rows(lines: usize) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "Program".to_string(),
        "stmts".to_string(),
        "vectorized (delin)".to_string(),
        "vector dims (delin)".to_string(),
        "vectorized (battery)".to_string(),
        "vector dims (battery)".to_string(),
    ]];
    for spec in all_benchmarks() {
        let src = generate_scaled(&spec, lines);
        let with = run_pipeline(
            &src,
            &PipelineConfig {
                choice: TestChoice::DelinearizationFirst,
                ..PipelineConfig::default()
            },
        )
        .expect("pipeline");
        let without = run_pipeline(
            &src,
            &PipelineConfig { choice: TestChoice::BatteryOnly, ..PipelineConfig::default() },
        )
        .expect("pipeline");
        rows.push(vec![
            spec.name.to_string(),
            with.vectorization.total_statements.to_string(),
            with.vectorization.vectorized_statements.to_string(),
            with.vectorization.vector_dimensions.to_string(),
            without.vectorization.vectorized_statements.to_string(),
            without.vectorization.vector_dimensions.to_string(),
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_census_matches_paper() {
        let rows = fig1_rows(false);
        assert_eq!(rows.len(), 9);
        for row in &rows[1..] {
            assert_eq!(row[5], "yes", "{row:?}");
        }
    }

    #[test]
    fn fig3_has_the_papers_dependences() {
        let rows = fig3_rows();
        let body: Vec<String> = rows[1..].iter().map(|r| r.join(" | ")).collect();
        let all = body.join("\n");
        // S3:A -> S2:A with direction (*, <) and distance (*, 1).
        assert!(all.contains("S3:A -> S2:A"), "{all}");
        // S4:Y -> S1:Y with direction (<).
        assert!(all.contains("S4:Y -> S1:Y"), "{all}");
        // B dependences between S2 and S3.
        assert!(all.contains("S2:B -> S3:B"), "{all}");
    }

    #[test]
    fn fig5_trace_matches_paper_shape() {
        let text = fig5_trace_text();
        assert!(text.contains("inf"), "{text}");
        // The three separated equations of Fig. 5 (variables are z1..z6 in
        // the order i1, j1, k1, i2, j2, k2).
        assert!(text.contains("-z5 + z1 = 0"), "{text}");
        assert!(text.contains("-10*z4 + 10*z2 - 10 = 0"), "{text}");
        assert!(text.contains("-100*z6 + 100*z3 - 100 = 0"), "{text}");
    }

    #[test]
    fn technique_table_matches_papers_claims() {
        let rows = technique_rows();
        let get = |name: &str| -> &str {
            rows.iter().find(|r| r[0] == name).map(|r| r[2].as_str()).unwrap()
        };
        // Only delinearization, FM+tightening, and the exact solver prove
        // independence; everything the paper lists as failing fails.
        assert_eq!(get("gcd"), "no");
        assert_eq!(get("banerjee"), "no");
        assert_eq!(get("shostak"), "no");
        assert_eq!(get("simple loop residue"), "no");
        assert_eq!(get("svpc"), "no");
        assert_eq!(get("acyclic"), "no");
        assert_eq!(get("lambda"), "no");
        assert_eq!(get("fourier-motzkin (real)"), "no");
        assert_eq!(get("fourier-motzkin + tightening"), "yes");
        assert_eq!(get("delinearization"), "yes");
        assert_eq!(get("exact solver (ground truth)"), "yes");
    }

    #[test]
    fn distance_table_shows_2_0() {
        let rows = distance_rows();
        let delin = rows.iter().find(|r| r[0] == "delinearization").unwrap();
        assert_eq!(delin[2], "(2, 0)");
    }

    #[test]
    fn symbolic_trace_has_three_dimensions() {
        let text = symbolic_trace_text();
        assert!(text.contains("N^2"), "{text}");
        assert!(text.contains("separated dimensions"), "{text}");
        assert!(text.matches(" = 0").count() >= 3, "{text}");
        assert!(text.contains("maybe dependent"), "{text}");
    }

    #[test]
    fn scaling_row_shape() {
        let rows = scaling_rows(2, 3);
        assert!(rows.len() > 6);
        // Delinearization proves independence at every size.
        for r in rows[1..].iter().filter(|r| r[1] == "delinearization") {
            assert_eq!(r[3], "independent");
        }
        // Banerjee never does beyond one loop (its single-dimension range
        // check is sharp for loops=1 but real-valued for the coupled case).
        for r in rows[1..].iter().filter(|r| r[1] == "banerjee" && r[0] != "1") {
            assert_eq!(r[3], "maybe dependent");
        }
    }

    #[test]
    fn precision_sound_and_delin_dominates() {
        let rows = precision_rows(120, 11);
        let find = |name: &str| -> (usize, usize) {
            let r = rows.iter().find(|r| r[0] == name).unwrap();
            (r[1].parse().unwrap(), r[3].parse().unwrap())
        };
        let (delin, delin_unsound) = find("delinearization");
        let (banerjee, b_unsound) = find("banerjee");
        let (gcd, g_unsound) = find("gcd");
        assert_eq!(delin_unsound, 0);
        assert_eq!(b_unsound, 0);
        assert_eq!(g_unsound, 0);
        assert!(delin >= banerjee, "delin {delin} < banerjee {banerjee}");
        assert!(delin >= gcd);
        assert!(delin > 0);
    }

    #[test]
    fn vectorizer_rows_favor_delinearization() {
        let rows = vectorizer_rows(120);
        assert_eq!(rows.len(), 9);
        // On the linearized-heavy programs, delinearization vectorizes at
        // least as much as the battery, and strictly more somewhere.
        let mut strictly_more = 0;
        for r in &rows[1..] {
            let with: usize = r[2].parse().unwrap();
            let without: usize = r[4].parse().unwrap();
            assert!(with >= without, "{r:?}");
            if with > without {
                strictly_more += 1;
            }
        }
        assert!(strictly_more >= 2, "expected delinearization to win somewhere");
    }
}
