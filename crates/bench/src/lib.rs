//! Experiment harness: the code behind every table and figure of the
//! reproduction (see `DESIGN.md` for the experiment index E1–E9).
//!
//! Each experiment is a plain function returning structured rows so the
//! same code backs the printing binaries in `src/bin/` and the Criterion
//! benchmarks in `benches/`. The corpus binaries additionally share their
//! strict flag parsing ([`cli`]) and their config-driven benchmark suites
//! ([`suite`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod suite;
pub mod table;

pub use cli::{Cli, CliError, BAD_USAGE};
pub use suite::{StreamSpec, SuiteConfig};
pub use table::render_table;
