//! Experiment harness: the code behind every table and figure of the
//! reproduction (see `DESIGN.md` for the experiment index E1–E9).
//!
//! Each experiment is a plain function returning structured rows so the
//! same code backs the printing binaries in `src/bin/` and the Criterion
//! benchmarks in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::render_table;
