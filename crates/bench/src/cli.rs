//! Shared strict command-line parsing for the corpus binaries.
//!
//! `batch_corpus`, `delin_serve`, `delin_loadgen`, and `delin_trace` all
//! take the same shape of command line — boolean flags plus `--name VALUE`
//! pairs — and all promise the same contract: an unknown flag, a flag
//! missing its value, or a numeric flag with a non-numeric value is
//! rejected up front with the usage string and exit code [`BAD_USAGE`],
//! before any work (or any daemon socket) is touched. The contract used to
//! be copy-pasted per binary; this module is the single implementation.
//!
//! The parsing core is pure (`Result`-returning, no process exit), so the
//! exit-code policy is testable without spawning processes; the `*_or_exit`
//! wrappers are the only functions that terminate.

use std::fmt;

/// Exit code for a malformed command line (the sysexits `EX_USAGE`
/// convention every corpus binary follows).
pub const BAD_USAGE: i32 = 2;

/// A command-line rejection: what was wrong, phrased for the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description (without the program-name prefix).
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// One binary's parsed-on-demand command line.
#[derive(Debug, Clone)]
pub struct Cli {
    prog: &'static str,
    usage: &'static str,
    args: Vec<String>,
}

impl Cli {
    /// Captures the process arguments (without the program name).
    pub fn from_env(prog: &'static str, usage: &'static str) -> Cli {
        Cli::new(prog, usage, std::env::args().skip(1).collect())
    }

    /// Builds from an explicit argument vector (the testable entry point).
    pub fn new(prog: &'static str, usage: &'static str, args: Vec<String>) -> Cli {
        Cli { prog, usage, args }
    }

    /// Checks every token is a known boolean flag or a known valued flag
    /// followed by its value.
    pub fn validate(&self, flags: &[&str], valued: &[&str]) -> Result<(), CliError> {
        let mut i = 0;
        while i < self.args.len() {
            let arg = self.args[i].as_str();
            if flags.contains(&arg) {
                i += 1;
                continue;
            }
            if !valued.contains(&arg) {
                return Err(CliError { message: format!("unknown argument {arg:?}") });
            }
            if self.args.get(i + 1).is_none() {
                return Err(CliError { message: format!("{arg} needs a value") });
            }
            i += 2;
        }
        Ok(())
    }

    /// The value after `name`, if the flag is present at all.
    pub fn string(&self, name: &str) -> Option<String> {
        self.args.iter().position(|a| a == name).and_then(|i| self.args.get(i + 1)).cloned()
    }

    /// Whether the boolean flag `name` is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value after `name` parsed as a count. Strict: a present flag
    /// whose value does not parse is an error, never a silent default.
    pub fn count(&self, name: &str) -> Result<Option<usize>, CliError> {
        let Some(value) = self.string(name) else { return Ok(None) };
        value
            .parse()
            .map(Some)
            .map_err(|_| CliError { message: format!("{name} needs a number, got {value:?}") })
    }

    /// Reports `err` the way every corpus binary does — `prog: message`,
    /// then usage — and exits with [`BAD_USAGE`].
    pub fn exit_usage(&self, err: &CliError) -> ! {
        eprintln!("{}: {}", self.prog, err);
        eprintln!("{}", self.usage);
        std::process::exit(BAD_USAGE);
    }

    /// [`Cli::validate`], exiting with [`BAD_USAGE`] on rejection.
    pub fn validate_or_exit(&self, flags: &[&str], valued: &[&str]) {
        if let Err(e) = self.validate(flags, valued) {
            self.exit_usage(&e);
        }
    }

    /// [`Cli::count`], exiting with [`BAD_USAGE`] on a malformed value.
    pub fn count_or_exit(&self, name: &str) -> Option<usize> {
        match self.count(name) {
            Ok(v) => v,
            Err(e) => self.exit_usage(&e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::new("t", "usage: t", args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn bad_usage_is_exit_code_two() {
        // The corpus binaries' documented contract; ci.sh asserts the live
        // processes agree.
        assert_eq!(BAD_USAGE, 2);
    }

    #[test]
    fn malformed_counts_are_rejected_not_defaulted() {
        let c = cli(&["--workers", "four"]);
        let err = c.count("--workers").unwrap_err();
        assert!(err.message.contains("--workers"), "{err}");
        assert!(err.message.contains("four"), "{err}");
        // Absent flags are fine; present well-formed flags parse.
        assert_eq!(cli(&[]).count("--workers").unwrap(), None);
        assert_eq!(cli(&["--workers", "4"]).count("--workers").unwrap(), Some(4));
    }

    #[test]
    fn validate_rejects_unknown_flags_and_missing_values() {
        let flags = ["--verify"];
        let valued = ["--workers"];
        assert!(cli(&["--verify", "--workers", "2"]).validate(&flags, &valued).is_ok());
        let unknown = cli(&["--wrokers", "2"]).validate(&flags, &valued).unwrap_err();
        assert!(unknown.message.contains("--wrokers"), "{unknown}");
        let missing = cli(&["--workers"]).validate(&flags, &valued).unwrap_err();
        assert!(missing.message.contains("needs a value"), "{missing}");
    }

    #[test]
    fn a_flag_can_swallow_the_next_token_but_count_stays_strict() {
        // `--workers --verify` passes shape validation (the value slot is
        // filled) but the numeric parse still rejects it — matching the
        // historical per-binary behavior.
        let c = cli(&["--workers", "--verify"]);
        assert!(c.validate(&["--verify"], &["--workers"]).is_ok());
        assert!(c.count("--workers").is_err());
    }
}
