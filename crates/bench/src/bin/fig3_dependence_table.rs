//! E2 / Fig. 3: dependences of the Allen–Kennedy example program.

fn main() {
    println!("E2 / Figure 3: dependences of the AK87 example program");
    println!("{}", delin_bench::experiments::fig3_source());
    print!("{}", delin_bench::render_table(&delin_bench::experiments::fig3_rows()));
}
