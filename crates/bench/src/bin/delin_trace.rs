//! Record, replay, and inspect dependence-corpus traces.
//!
//! Subcommands:
//!
//! * `record --out PATH [--suite PATH]` — stream a suite's corpus into a
//!   trace file (default suite: `benchmarks/ci/config.json`). The file is
//!   written atomically; the unit count and byte size are reported.
//! * `replay --trace PATH [--workers N]` — stream a recorded trace through
//!   the batch engine and print the standard corpus report. A truncated,
//!   corrupt, or malformed trace fails with the structured error and exit
//!   code 1 *after* the valid prefix was analyzed — the report for the
//!   trusted prefix still prints, but the run does not pass.
//! * `replay --suite PATH [--workers N]` / `replay --full` — synthesize
//!   the suite's corpus and stream every unit through the trace codec
//!   (encode → frame → decode) on its way into the batch engine, which
//!   exercises the format at full-corpus scale without staging a
//!   multi-hundred-megabyte file. `--full` is shorthand for the
//!   multi-million-pair suite at `benchmarks/full/config.json`.
//! * `info --trace PATH` — validate every record and summarize the file.
//!
//! Every replay ends with a machine-greppable summary line:
//! `trace-replay: units=U pairs=P wall_ms=W source=...`.

use delin_bench::cli::Cli;
use delin_bench::suite::SuiteConfig;
use delin_corpus::trace;
use delin_vic::batch::{BatchConfig, BatchRunner, BatchUnit};
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "usage: delin_trace <record|replay|info> [options]\n\
  record --out PATH [--suite PATH]\n\
  replay (--trace PATH | --suite PATH | --full) [--workers N]\n\
  info   --trace PATH";

const FULL_SUITE: &str = "benchmarks/full/config.json";
const DEFAULT_RECORD_SUITE: &str = "benchmarks/ci/config.json";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = if args.is_empty() { String::new() } else { args.remove(0) };
    let cli = Cli::new("delin_trace", USAGE, args);
    match command.as_str() {
        "record" => record(&cli),
        "replay" => replay(&cli),
        "info" => info(&cli),
        other => {
            eprintln!("delin_trace: unknown command {other:?}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn load_suite(path: &Path) -> SuiteConfig {
    match SuiteConfig::load(path) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("delin_trace: {e}");
            std::process::exit(1);
        }
    }
}

fn record(cli: &Cli) {
    cli.validate_or_exit(&[], &["--out", "--suite"]);
    let Some(out) = cli.string("--out") else {
        eprintln!("delin_trace: record needs --out PATH");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let suite_path = PathBuf::from(cli.string("--suite").unwrap_or(DEFAULT_RECORD_SUITE.into()));
    let suite = load_suite(&suite_path);
    let out = PathBuf::from(out);
    let started = Instant::now();
    match trace::record(&out, suite.units()) {
        Ok(written) => {
            let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
            println!(
                "recorded {written} units ({bytes} bytes) from suite {} to {} in {:.1} ms",
                suite.name,
                out.display(),
                started.elapsed().as_secs_f64() * 1.0e3
            );
        }
        Err(e) => {
            eprintln!("delin_trace: cannot record {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

/// One unit pushed through the full codec path: encode, frame, verify the
/// frame, decode. This is what a file round-trip does per record, minus the
/// disk — so a suite replay exercises the format at corpus scale in
/// constant memory.
fn codec_roundtrip(unit: BatchUnit) -> BatchUnit {
    let mut frame = Vec::new();
    trace::frame_unit(&mut frame, &unit);
    let decoded = trace::decode_unit(&frame[12..]).unwrap_or_else(|| {
        eprintln!("delin_trace: codec round-trip failed for unit {:?}", unit.name);
        std::process::exit(1);
    });
    assert_eq!(decoded.name, unit.name, "codec must preserve the unit name");
    decoded
}

fn replay(cli: &Cli) {
    cli.validate_or_exit(&["--full"], &["--trace", "--suite", "--workers"]);
    let workers = cli.count_or_exit("--workers").unwrap_or_else(delin_vic::deps::workers_from_env);
    let config = BatchConfig { workers, ..BatchConfig::default() };
    let trace_path = cli.string("--trace").map(PathBuf::from);
    let suite_path = match (&trace_path, cli.string("--suite"), cli.flag("--full")) {
        (Some(_), None, false) => None,
        (None, Some(p), _) => Some(PathBuf::from(p)),
        (None, None, true) => Some(PathBuf::from(FULL_SUITE)),
        _ => {
            eprintln!(
                "delin_trace: replay needs exactly one of --trace PATH, --suite PATH, --full"
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let started = Instant::now();
    let (stats, source) = match (&trace_path, &suite_path) {
        (Some(path), _) => {
            let mut reader = trace::TraceReader::open(path).unwrap_or_else(|e| {
                eprintln!("delin_trace: {}: {e}", path.display());
                std::process::exit(1);
            });
            let stats = BatchRunner::new(config).run(&mut reader);
            let decoded = reader.decoded();
            if let Err(e) = reader.finish() {
                print!("{}", stats.render());
                eprintln!(
                    "delin_trace: {}: {e} ({decoded} valid records analyzed above)",
                    path.display()
                );
                std::process::exit(1);
            }
            (stats, format!("trace:{}", path.display()))
        }
        (None, Some(path)) => {
            let suite = load_suite(path);
            let stats = BatchRunner::new(config).run(suite.units().map(codec_roundtrip));
            (stats, format!("suite:{}", suite.name))
        }
        (None, None) => unreachable!("validated above"),
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1.0e3;
    print!("{}", stats.render());
    println!();
    println!(
        "trace-replay: units={} pairs={} wall_ms={wall_ms:.1} source={source}",
        stats.unit_count,
        stats.totals.verdict_stats().pairs_tested
    );
}

fn info(cli: &Cli) {
    cli.validate_or_exit(&[], &["--trace"]);
    let Some(path) = cli.string("--trace") else {
        eprintln!("delin_trace: info needs --trace PATH");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    match trace::info(Path::new(&path)) {
        Ok(summary) => {
            println!("trace:          {}", summary.path.display());
            println!("format version: {}", summary.version);
            println!("file bytes:     {}", summary.bytes);
            println!("units:          {}", summary.units);
            println!("source bytes:   {}", summary.source_bytes);
            println!("symbolic units: {}", summary.symbolic_units);
        }
        Err(e) => {
            eprintln!("delin_trace: {path}: {e}");
            std::process::exit(1);
        }
    }
}
