//! The miss-path bench: cold passes over the verify suite with the arena
//! miss path on and off, in the same process.
//!
//! Every run starts from a fresh shared verdict cache, so each dependence
//! pair takes the full miss path — canonicalization, problem construction,
//! the eleven techniques, and the exact solver. That is exactly the path
//! the arena rebuild targets (inline-term polynomials, pooled problems,
//! scratch-reusing solvers), so the legacy-vs-arena delta here is the
//! PR's headline number.
//!
//! Flags:
//!
//! * `--suite PATH` — the suite to measure (default
//!   `benchmarks/verify/config.json`, the same corpus the trajectory
//!   gates pin);
//! * `--reps N` — measurement rounds, each an adjacent legacy+arena pair
//!   of cold passes; the round with the median reduction is reported
//!   (default 5);
//! * `--workers N` — worker budget (default: auto / `DELIN_WORKERS`);
//! * `--bench-out PATH` — where the JSON goes (default `BENCH_10.json`).
//!
//! The two legs must render byte-identically and spend the same number of
//! exact-solver nodes — the arena is a pure allocation change — otherwise
//! the bench fails and no BENCH file is written. Ctrl-C degrades in-flight
//! decisions and exits 130 without writing a file.

use delin_bench::cli::Cli;
use delin_bench::suite::SuiteConfig;
use delin_dep::budget::{BudgetSpec, CancelToken};
use delin_vic::batch::{BatchConfig, BatchRunner, BatchStats, BatchUnit};
use delin_vic::cache::KeyMode;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

const DEFAULT_SUITE: &str = "benchmarks/verify/config.json";
const DEFAULT_BENCH_PATH: &str = "BENCH_10.json";

const USAGE: &str =
    "usage: bench_misspath [--suite PATH] [--reps N] [--workers N] [--bench-out PATH]";

/// One measured cold pass of a leg.
struct LegMeasure {
    wall_nanos: u128,
    dep_nanos: u128,
    stats: BatchStats,
}

fn measure_once(
    units: &[BatchUnit],
    arena: bool,
    workers: usize,
    cancel: &CancelToken,
) -> LegMeasure {
    let config = BatchConfig {
        workers,
        arena,
        keying: KeyMode::Fp,
        budget: BudgetSpec { cancel: Some(cancel.clone()), ..BudgetSpec::default() },
        ..BatchConfig::default()
    };
    let started = Instant::now();
    let stats = BatchRunner::new(config).run(units.to_vec());
    LegMeasure {
        wall_nanos: started.elapsed().as_nanos(),
        dep_nanos: stats.totals.test_nanos,
        stats,
    }
}

/// Measures `reps` rounds, each an adjacent legacy-then-arena pair of cold
/// passes, and returns the round with the *median* reduction percentage.
///
/// Adjacent passes share ambient machine conditions, so a round's ratio is
/// far more stable than any cross-round comparison — a noisy-neighbor
/// burst inflates both of a round's legs together and mostly cancels in
/// the ratio, whereas per-leg minima across rounds can pair a calm legacy
/// pass with a loud arena pass (or the reverse) and swing the headline
/// number by ±5 points. Taking the median round discards the outliers in
/// both directions and reports one internally consistent (legacy, arena,
/// ratio) triple. Returns `None` when interrupted.
fn measure_rounds(
    units: &[BatchUnit],
    workers: usize,
    reps: usize,
    cancel: &CancelToken,
) -> Option<(LegMeasure, LegMeasure)> {
    let mut rounds: Vec<(LegMeasure, LegMeasure)> = Vec::with_capacity(reps);
    for _ in 0..reps {
        if cancel.is_cancelled() {
            return None;
        }
        let legacy = measure_once(units, false, workers, cancel);
        if cancel.is_cancelled() {
            return None;
        }
        let arena = measure_once(units, true, workers, cancel);
        rounds.push((legacy, arena));
    }
    // Sort by the round's reduction ratio (ascending arena/legacy is
    // descending reduction); integer cross-multiplication avoids floats.
    rounds.sort_by(|(la, aa), (lb, ab)| {
        (aa.dep_nanos * lb.dep_nanos).cmp(&(ab.dep_nanos * la.dep_nanos))
    });
    let mid = rounds.len() / 2;
    Some(rounds.swap_remove(mid))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".into()
    }
}

fn render_bench_json(
    suite_name: &str,
    workers: usize,
    reps: usize,
    units: usize,
    legacy: &LegMeasure,
    arena: &LegMeasure,
    reduction_pct: f64,
) -> String {
    let totals = arena.stats.totals.verdict_stats();
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"delin-bench-misspath\",");
    let _ = writeln!(out, "  \"bench_id\": 10,");
    let _ = writeln!(out, "  \"config\": {{");
    let _ = writeln!(out, "    \"suite\": \"{suite_name}\",");
    let _ = writeln!(out, "    \"units\": {units},");
    let _ = writeln!(out, "    \"workers\": {workers},");
    let _ = writeln!(out, "    \"reps\": {reps},");
    let _ = writeln!(out, "    \"legs\": [\"legacy\", \"arena\"]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"pairs_tested\": {},", totals.pairs_tested);
    let _ = writeln!(out, "  \"solver_nodes\": {},", totals.solver_nodes);
    let _ = writeln!(out, "  \"cache_misses\": {},", totals.cache_misses);
    let _ = writeln!(out, "  \"legs\": {{");
    for (i, (label, m)) in [("legacy", legacy), ("arena", arena)].iter().enumerate() {
        let _ = writeln!(out, "    \"{label}\": {{");
        let _ = writeln!(out, "      \"wall_ms\": {},", json_f64(m.wall_nanos as f64 / 1.0e6));
        let _ = writeln!(out, "      \"dep_test_nanos\": {}", m.dep_nanos);
        let _ = writeln!(out, "    }}{}", if i == 0 { "," } else { "" });
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"dep_nanos_reduction_pct\": {},", json_f64(reduction_pct));
    let _ = writeln!(out, "  \"reports_identical\": true");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let cli = Cli::from_env("bench_misspath", USAGE);
    cli.validate_or_exit(&[], &["--suite", "--reps", "--workers", "--bench-out"]);
    let reps = cli.count_or_exit("--reps").unwrap_or(5).max(1);
    let workers = cli.count_or_exit("--workers").unwrap_or_else(delin_vic::deps::workers_from_env);
    let suite_path = PathBuf::from(cli.string("--suite").unwrap_or(DEFAULT_SUITE.into()));
    let bench_out = PathBuf::from(cli.string("--bench-out").unwrap_or(DEFAULT_BENCH_PATH.into()));
    let suite = match SuiteConfig::load(&suite_path) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("bench_misspath: {e}");
            std::process::exit(1);
        }
    };
    let units: Vec<BatchUnit> = suite.units().collect();
    let cancel = install_ctrl_c();
    println!(
        "miss-path bench: suite {} ({} units), cold passes, median of {reps} round(s), workers={}",
        suite.name,
        units.len(),
        if workers == 0 { "auto".into() } else { workers.to_string() }
    );
    std::process::exit(run(&units, &suite.name, workers, reps, &cancel, &bench_out));
}

fn run(
    units: &[BatchUnit],
    suite_name: &str,
    workers: usize,
    reps: usize,
    cancel: &CancelToken,
    bench_out: &Path,
) -> i32 {
    let Some((legacy, arena)) = measure_rounds(units, workers, reps, cancel) else {
        eprintln!("interrupted: bench aborted, no BENCH file written");
        return 130;
    };
    let mut failures = 0;
    if legacy.stats.render() != arena.stats.render() {
        eprintln!("FAIL: report differs between legacy and arena miss paths");
        failures += 1;
    }
    let legacy_t = legacy.stats.totals.verdict_stats();
    let arena_t = arena.stats.totals.verdict_stats();
    if legacy_t.solver_nodes != arena_t.solver_nodes {
        eprintln!(
            "FAIL: solver nodes differ between legacy and arena miss paths ({} vs {})",
            legacy_t.solver_nodes, arena_t.solver_nodes
        );
        failures += 1;
    }
    if failures > 0 {
        eprintln!("{failures} bench invariant violation(s); no BENCH file written");
        return 1;
    }
    let reduction_pct = if legacy.dep_nanos == 0 {
        0.0
    } else {
        (legacy.dep_nanos as f64 - arena.dep_nanos as f64) * 100.0 / legacy.dep_nanos as f64
    };
    println!(
        "  legacy dep nanos {:>12}  wall {:>9.1} ms",
        legacy.dep_nanos,
        legacy.wall_nanos as f64 / 1.0e6
    );
    println!(
        "  arena  dep nanos {:>12}  wall {:>9.1} ms",
        arena.dep_nanos,
        arena.wall_nanos as f64 / 1.0e6
    );
    println!(
        "  reduction {reduction_pct:+.1}%  ({} pairs, {} solver nodes, reports byte-identical)",
        arena_t.pairs_tested, arena_t.solver_nodes
    );
    let json =
        render_bench_json(suite_name, workers, reps, units.len(), &legacy, &arena, reduction_pct);
    if let Err(e) = std::fs::write(bench_out, &json) {
        eprintln!("cannot write {}: {e}", bench_out.display());
        return 1;
    }
    println!("wrote {}", bench_out.display());
    0
}

// ---------------------------------------------------------------------------
// Ctrl-C → cooperative cancellation, mirroring batch_corpus: the analysis
// libraries forbid unsafe code, so the signal registration lives in the
// binary and the handler does only async-signal-safe work.

const SIGINT: i32 = 2;

static CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

fn install_ctrl_c() -> CancelToken {
    let token = CANCEL.get_or_init(CancelToken::new).clone();
    // SAFETY: `on_sigint` matches the C `void (*)(int)` handler signature
    // and performs only async-signal-safe operations (see above).
    unsafe {
        signal(SIGINT, on_sigint);
    }
    token
}
