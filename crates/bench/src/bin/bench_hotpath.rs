//! Verdict-cache lookup microbenchmark: fingerprint vs string keying.
//!
//! `batch_corpus --bench` measures the keying knob end-to-end, where solver
//! time on cache misses dilutes the effect. This binary isolates the lookup
//! hot path itself: a warmed cache is hammered with hit-only lookups under
//! both [`KeyMode`]s, over a concrete pool (the zero-allocation fast path)
//! and a symbolic pool (which additionally exercises the environment
//! projection). Prints one machine-readable JSON object to stdout.
//!
//! Usage: `bench_hotpath [--passes N]` (default 2000 passes over each pool).

use delin_dep::problem::DependenceProblem;
use delin_dep::verdict::Verdict;
use delin_numeric::{Assumptions, SymPoly};
use delin_vic::cache::{CachedOutcome, KeyMode, VerdictCache};
use std::time::Instant;

fn c(n: i128) -> SymPoly {
    SymPoly::constant(n)
}

/// A concrete two-loop delinearization-shaped problem; distinct `(offset,
/// stride)` pairs canonicalize to distinct cache entries.
fn concrete_problem(offset: i128, stride: i128) -> DependenceProblem<SymPoly> {
    let mut b = DependenceProblem::<SymPoly>::builder();
    b.var("i1", c(stride - 1));
    b.var("j1", c(9));
    b.var("i2", c(stride - 1));
    b.var("j2", c(9));
    b.equation(c(offset), vec![c(1), c(stride), c(-1), c(-stride)]);
    b.common_pair(0, 2);
    b.common_pair(1, 3);
    b.build()
}

/// A symbolic problem `i1 - i2 + k = 0`, `i ∈ [0, N-1]`: its fingerprint
/// must fold the assumption environment projected onto `N`.
fn symbolic_problem(k: i128) -> DependenceProblem<SymPoly> {
    let upper = SymPoly::symbol("N").checked_sub(&c(1)).expect("N - 1");
    let mut b = DependenceProblem::<SymPoly>::builder();
    b.var("i1", upper.clone());
    b.var("i2", upper);
    b.equation(c(k), vec![c(1), c(-1)]);
    b.build()
}

fn outcome() -> CachedOutcome {
    CachedOutcome {
        verdict: Verdict::Independent,
        tested_by: "bench",
        attempts: vec!["bench"],
        solver_nodes: 0,
        refine_queries: 0,
        subtree_reuses: 0,
        nodes_saved: 0,
        solver_state: None,
        degraded: None,
    }
}

/// Hammers a warmed cache with hit-only lookups; returns total nanos.
/// Panics if any lookup misses — that would mean the measurement is not
/// the hit path.
fn measure(
    mode: KeyMode,
    problems: &[DependenceProblem<SymPoly>],
    assumptions: &Assumptions,
    passes: usize,
) -> u128 {
    let cache = VerdictCache::shared_with(mode);
    for p in problems {
        let l = cache.lookup(assumptions, p, |_| outcome());
        assert!(l.computed, "warmup pass must populate the cache");
    }
    let started = Instant::now();
    for _ in 0..passes {
        for p in problems {
            let l = cache.lookup(assumptions, p, |_| outcome());
            assert!(!l.computed, "measured pass must be hit-only");
        }
    }
    started.elapsed().as_nanos()
}

/// Best-of-3 ns-per-lookup for one pool under one mode.
fn ns_per_lookup(
    mode: KeyMode,
    problems: &[DependenceProblem<SymPoly>],
    assumptions: &Assumptions,
    passes: usize,
) -> f64 {
    let lookups = (passes * problems.len()) as f64;
    (0..3).map(|_| measure(mode, problems, assumptions, passes)).min().expect("three reps") as f64
        / lookups
}

fn delta_pct(fp: f64, string: f64) -> f64 {
    if string == 0.0 {
        0.0
    } else {
        (string - fp) * 100.0 / string
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let passes = match args.as_slice() {
        [] => 2000usize,
        [flag, n] if flag == "--passes" => n.parse().unwrap_or_else(|_| {
            eprintln!("invalid count: {n}");
            std::process::exit(2);
        }),
        _ => {
            eprintln!("usage: bench_hotpath [--passes N]");
            std::process::exit(2);
        }
    };

    let concrete: Vec<DependenceProblem<SymPoly>> =
        (0..64).map(|i| concrete_problem(i % 8, 8 + (i / 8) % 8 * 2)).collect();
    let symbolic: Vec<DependenceProblem<SymPoly>> = (0..16).map(symbolic_problem).collect();
    let none = Assumptions::new();
    let mut env = Assumptions::new();
    env.set_lower_bound("N", 2);

    let conc_fp = ns_per_lookup(KeyMode::Fp, &concrete, &none, passes);
    let conc_str = ns_per_lookup(KeyMode::Str, &concrete, &none, passes);
    let sym_fp = ns_per_lookup(KeyMode::Fp, &symbolic, &env, passes);
    let sym_str = ns_per_lookup(KeyMode::Str, &symbolic, &env, passes);

    println!("{{");
    println!("  \"schema\": \"delin-bench-hotpath\",");
    println!("  \"bench_id\": 5,");
    println!("  \"passes\": {passes},");
    println!("  \"concrete\": {{");
    println!("    \"problems\": {},", concrete.len());
    println!("    \"fp_ns_per_lookup\": {conc_fp:.1},");
    println!("    \"string_ns_per_lookup\": {conc_str:.1},");
    println!("    \"delta_pct\": {:.1}", delta_pct(conc_fp, conc_str));
    println!("  }},");
    println!("  \"symbolic\": {{");
    println!("    \"problems\": {},", symbolic.len());
    println!("    \"fp_ns_per_lookup\": {sym_fp:.1},");
    println!("    \"string_ns_per_lookup\": {sym_str:.1},");
    println!("    \"delta_pct\": {:.1}", delta_pct(sym_fp, sym_str));
    println!("  }}");
    println!("}}");
}
