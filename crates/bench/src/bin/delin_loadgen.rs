//! Load generator and correctness prover for the concurrent serving layer.
//!
//! Hammers a running `delin_serve --socket` daemon with N concurrent
//! clients, optionally injecting connection-level transport faults (a
//! mid-stream disconnect via [`delin_vic::chaos::FaultyWriter`]) and a
//! greedy client that bursts its whole request list without reading
//! responses (drawing per-connection `overloaded` rejections while polite
//! clients still admit). Afterwards it can replay every surviving client's
//! requests over one sequential connection and verify the concurrent
//! responses were **byte-identical** — the serving determinism contract
//! under real sockets, real threads, and real faults.
//!
//! Writes latency percentiles plus admission/rejection/fairness counters
//! as JSON (the committed `BENCH_8.json`).
//!
//! Flags:
//!
//! * `--socket PATH` — the daemon's Unix socket (required);
//! * `--clients N` — concurrent client connections (default 4);
//! * `--requests N` — requests per client (default 8);
//! * `--greedy N` — client `N` writes all requests before reading any
//!   responses (default: none);
//! * `--disconnect N` — client `N` gets a seeded transport fault: its
//!   socket dies mid-stream after `--disconnect-after` request bytes
//!   (default: none);
//! * `--disconnect-after B` — bytes before the injected cut (default 37,
//!   which lands mid-request-line);
//! * `--verify` — sequentially replay surviving clients' requests and fail
//!   unless every concurrent result response is byte-identical;
//! * `--out PATH` — write the JSON report there (default: stdout).
//!
//! Exit status: 0 on success, 1 on protocol violations or a failed verify.

use delin_vic::chaos::{FaultyWriter, TransportFault};
use delin_vic::json;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: delin_loadgen --socket PATH [--clients N] [--requests N] \
[--greedy N] [--disconnect N] [--disconnect-after B] [--verify] [--out PATH]";

/// How long a client waits for one response line before declaring the
/// daemon hung (fails the run rather than wedging CI).
const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

/// The request workload: a compact rotation of units with distinct
/// analysis profiles (a recurrence with real dependences, the paper's
/// delinearization independence case, a generated nest), so the daemon's
/// cache and solver paths all see traffic.
const SOURCES: [&str; 3] = [
    "REAL A(0:99)\nDO 1 i = 1, 50\n1   A(i) = A(i - 1)\nEND\n",
    "REAL C(0:399)\nDO 1 i = 0, 4\nDO 1 j = 0, 9\n1   C(i + 10*j) = C(i + 10*j + 5)\nEND\n",
    "REAL B(0:199)\nDO 1 i = 0, 9\nDO 1 j = 0, 9\n1   B(10*i + j) = B(10*i + j)\nEND\n",
];

fn request_line(id: &str, source: &str) -> String {
    format!("{{\"id\":{},\"source\":{}}}\n", json::str_token(id), json::str_token(source))
}

/// The deterministic request list of client `c`.
fn client_requests(c: usize, requests: usize) -> Vec<(String, &'static str)> {
    (0..requests).map(|i| (format!("c{c}-r{i}"), SOURCES[(c * 7 + i) % SOURCES.len()])).collect()
}

/// What one client observed: every response line keyed by request id, plus
/// per-request latencies and whether the connection survived to the end.
struct ClientReport {
    client: usize,
    sent: usize,
    responses: BTreeMap<String, String>,
    latencies_ms: Vec<f64>,
    overloaded: usize,
    other_errors: usize,
    survived: bool,
}

fn response_field(line: &str, field: &str) -> Option<String> {
    json::parse(line).ok()?.as_obj()?.get(field)?.as_str().map(str::to_string)
}

/// Runs one client: writes its request list (interleaving reads unless
/// greedy), collects one response per request, and classifies them.
fn run_client(
    socket: &str,
    client: usize,
    requests: usize,
    greedy: bool,
    fault: Option<TransportFault>,
) -> std::io::Result<ClientReport> {
    let stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = FaultyWriter::new(stream, fault);
    let mut report = ClientReport {
        client,
        sent: 0,
        responses: BTreeMap::new(),
        latencies_ms: Vec::new(),
        overloaded: 0,
        other_errors: 0,
        survived: fault.is_none(),
    };
    let mut started: BTreeMap<String, Instant> = BTreeMap::new();
    let mut read_one =
        |report: &mut ClientReport, started: &BTreeMap<String, Instant>| -> std::io::Result<bool> {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Ok(false);
            }
            let line = line.trim_end_matches('\n').to_string();
            let id = response_field(&line, "id").unwrap_or_default();
            if let Some(t0) = started.get(&id) {
                report.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            match response_field(&line, "error").as_deref() {
                Some("overloaded") => report.overloaded += 1,
                Some(_) => report.other_errors += 1,
                None => {}
            }
            report.responses.insert(id, line);
            Ok(true)
        };

    for (id, source) in client_requests(client, requests) {
        let line = request_line(&id, source);
        started.insert(id, Instant::now());
        if writer.write_all(line.as_bytes()).and_then(|()| writer.flush()).is_err() {
            // The injected cut fired (or the daemon dropped us): stop
            // writing, drain whatever responses still arrive, report as a
            // faulted connection.
            report.survived = false;
            break;
        }
        report.sent += 1;
        // A polite client reads as it goes; a greedy one bursts first.
        if !greedy && !read_one(&mut report, &started)? {
            report.survived = false;
            break;
        }
    }
    // Collect the outstanding responses (all of them, for the greedy
    // client). Every request owes exactly one response line.
    while report.responses.len() < report.sent {
        match read_one(&mut report, &started) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => break,
        }
    }
    Ok(report)
}

/// Sequentially replays `ids_and_sources` on a fresh connection and
/// returns the response line per id.
fn replay(
    socket: &str,
    requests: &[(String, &'static str)],
) -> std::io::Result<BTreeMap<String, String>> {
    let stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut out = BTreeMap::new();
    for (id, source) in requests {
        writer.write_all(request_line(id, source).as_bytes())?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        out.insert(id.clone(), line.trim_end_matches('\n').to_string());
    }
    Ok(out)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let cli = delin_bench::cli::Cli::from_env("delin_loadgen", USAGE);
    cli.validate_or_exit(
        &["--verify"],
        &[
            "--socket",
            "--clients",
            "--requests",
            "--greedy",
            "--disconnect",
            "--disconnect-after",
            "--out",
        ],
    );
    let Some(socket) = cli.string("--socket") else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let clients = cli.count_or_exit("--clients").unwrap_or(4).max(1);
    let requests = cli.count_or_exit("--requests").unwrap_or(8).max(1);
    let greedy = cli.count_or_exit("--greedy");
    let disconnect = cli.count_or_exit("--disconnect");
    let cut_after = cli.count_or_exit("--disconnect-after").unwrap_or(37);
    let verify = cli.flag("--verify");

    let reports: Vec<std::io::Result<ClientReport>> = std::thread::scope(|scope| {
        let socket = socket.as_str();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    run_client(
                        socket,
                        c,
                        requests,
                        greedy == Some(c),
                        (disconnect == Some(c))
                            .then_some(TransportFault::CutWrite { after: cut_after }),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    let mut failures = 0usize;
    let mut all = Vec::new();
    for (c, result) in reports.into_iter().enumerate() {
        match result {
            Ok(report) => all.push(report),
            Err(e) => {
                eprintln!("delin_loadgen: client {c}: {e}");
                failures += 1;
            }
        }
    }

    // Verify: every *result* response a surviving client saw concurrently
    // must be byte-identical under a sequential replay — rejections are
    // load-dependent and excluded by construction.
    let mut replay_mismatches = 0usize;
    let mut replayed = 0usize;
    if verify {
        for report in all.iter().filter(|r| r.survived) {
            let requests_list = client_requests(report.client, requests);
            let result_ids: Vec<(String, &'static str)> = requests_list
                .into_iter()
                .filter(|(id, _)| {
                    report
                        .responses
                        .get(id)
                        .is_some_and(|line| response_field(line, "error").is_none())
                })
                .collect();
            match replay(&socket, &result_ids) {
                Ok(sequential) => {
                    for (id, _) in &result_ids {
                        replayed += 1;
                        if sequential.get(id) != report.responses.get(id) {
                            replay_mismatches += 1;
                            eprintln!(
                                "delin_loadgen: client {} request {id}: concurrent response \
                                 diverges from sequential replay",
                                report.client
                            );
                        }
                    }
                }
                Err(e) => {
                    eprintln!("delin_loadgen: replay for client {}: {e}", report.client);
                    failures += 1;
                }
            }
        }
    }

    let mut latencies: Vec<f64> =
        all.iter().filter(|r| r.survived).flat_map(|r| r.latencies_ms.iter().copied()).collect();
    latencies.sort_by(f64::total_cmp);
    let results_total: usize = all
        .iter()
        .map(|r| r.responses.values().filter(|l| response_field(l, "error").is_none()).count())
        .sum();
    let overloaded_total: usize = all.iter().map(|r| r.overloaded).sum();
    let errors_total: usize = all.iter().map(|r| r.other_errors).sum();
    let sent_total: usize = all.iter().map(|r| r.sent).sum();
    let survivors = all.iter().filter(|r| r.survived).count();

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_loadgen\",\n");
    out.push_str(&format!("  \"clients\": {clients},\n"));
    out.push_str(&format!("  \"requests_per_client\": {requests},\n"));
    let opt = |v: Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
    out.push_str(&format!("  \"greedy_client\": {},\n", opt(greedy)));
    out.push_str(&format!("  \"disconnect_client\": {},\n", opt(disconnect)));
    out.push_str(&format!("  \"sent\": {sent_total},\n"));
    out.push_str(&format!("  \"results\": {results_total},\n"));
    out.push_str(&format!("  \"overloaded\": {overloaded_total},\n"));
    out.push_str(&format!("  \"other_errors\": {errors_total},\n"));
    out.push_str(&format!("  \"surviving_clients\": {survivors},\n"));
    out.push_str(&format!(
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0),
    ));
    out.push_str("  \"per_client\": [\n");
    for (i, r) in all.iter().enumerate() {
        let results = r.responses.values().filter(|l| response_field(l, "error").is_none()).count();
        out.push_str(&format!(
            "    {{\"client\": {}, \"sent\": {}, \"results\": {}, \"overloaded\": {}, \
             \"errors\": {}, \"survived\": {}}}{}\n",
            r.client,
            r.sent,
            results,
            r.overloaded,
            r.other_errors,
            r.survived,
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"verified\": {},\n", verify && replay_mismatches == 0));
    out.push_str(&format!("  \"replayed\": {replayed},\n"));
    out.push_str(&format!("  \"replay_mismatches\": {replay_mismatches}\n"));
    out.push_str("}\n");

    match cli.string("--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("delin_loadgen: writing {path:?}: {e}");
                failures += 1;
            }
        }
        None => print!("{out}"),
    }

    if failures > 0 || replay_mismatches > 0 {
        std::process::exit(1);
    }
}
