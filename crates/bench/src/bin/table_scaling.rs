//! E7: runtime scaling of each technique with the number of loop
//! variables (the paper's O(n) efficiency claim).

fn main() {
    let max: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    println!("E7: scaling on the generalized motivating example (always independent)");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::scaling_rows(max, 25)));
}
