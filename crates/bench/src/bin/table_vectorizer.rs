//! E9: end-to-end vectorization of the synthetic corpus with and without
//! delinearization.

use delin_vic::deps::{EngineConfig, TestChoice};

fn main() {
    let lines: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200);
    println!("E9: VIC pipeline on the synthetic corpus (scaled to ~{lines} lines/program)");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::vectorizer_rows(lines)));

    // Dependence-engine observability for both configurations: how much the
    // verdict cache saves and where the testing time goes.
    for (label, choice) in [
        ("delinearization-first", TestChoice::DelinearizationFirst),
        ("battery-only", TestChoice::BatteryOnly),
    ] {
        let config = EngineConfig { choice, ..EngineConfig::default() };
        let stats = delin_bench::experiments::corpus_engine_stats(Some(lines), &config);
        println!();
        println!("engine stats ({label}):");
        print!("{}", stats.render_summary());
    }
}
