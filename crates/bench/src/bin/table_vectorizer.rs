//! E9: end-to-end vectorization of the synthetic corpus with and without
//! delinearization.

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!("E9: VIC pipeline on the synthetic corpus (scaled to ~{lines} lines/program)");
    println!();
    print!(
        "{}",
        delin_bench::render_table(&delin_bench::experiments::vectorizer_rows(lines))
    );
}
