//! E8: precision of each technique on the random linearized family.

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1000);
    println!("E8: precision on {samples} random linearized dependence problems");
    println!();
    print!(
        "{}",
        delin_bench::render_table(&delin_bench::experiments::precision_rows(samples, 20260704))
    );
}
