//! The batch engine over the full corpus: RiCEPS plus generated workloads
//! streamed through one shared verdict cache, with the corpus-level table.
//!
//! Flags:
//!
//! * `--full` — generate RiCEPS at the paper's reported line counts
//!   (default: size-reduced programs with the same linearized-nest counts);
//! * `--workers N` — total worker budget (default: auto / `DELIN_WORKERS`);
//! * `--units N` — number of generated workload units (default 24);
//! * `--verify` — instead of one run, execute the determinism matrix
//!   (workers ∈ {1, 4, auto} × {forward, reversed} arrival order) and fail
//!   unless every run renders byte-identically; then run the incremental
//!   A/B (same corpus with incremental solving disabled) and fail unless
//!   edges and verdicts are identical, subtrees were actually reused, and
//!   the incremental run spent strictly fewer solver nodes;
//! * `--no-incremental` — disable incremental exact solving (the A/B
//!   baseline; equivalent to `DELIN_INCREMENTAL=0`);
//! * `--chaos` — inject deterministic faults (panics, zero-node budgets,
//!   expired deadlines) from the seed in `DELIN_CHAOS_SEED` (default 42).
//!   Requires building with `--features chaos`. Because every injection is
//!   a pure function of `(seed, site)`, `--chaos --verify` must *still*
//!   render byte-identically across worker counts and arrival orders —
//!   the same determinism contract, now including the failures.

use delin_corpus::stream::{generated_units, riceps_units};
use delin_vic::batch::{BatchConfig, BatchRunner, BatchUnit};
use delin_vic::chaos::ChaosPlan;

fn corpus(full: bool, gen_units: usize) -> Vec<BatchUnit> {
    let lines = if full { None } else { Some(400) };
    riceps_units(lines).chain(generated_units(gen_units, 20260805)).collect()
}

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut expect_value = false;
    for a in &args {
        match a.as_str() {
            "--full" | "--verify" | "--chaos" | "--no-incremental" => expect_value = false,
            "--units" | "--workers" => expect_value = true,
            _ if expect_value => {
                if a.parse::<usize>().is_err() {
                    eprintln!("invalid count: {a}");
                    std::process::exit(2);
                }
                expect_value = false;
            }
            _ => {
                eprintln!("unknown argument: {a}");
                eprintln!(
                    "usage: batch_corpus [--full] [--verify] [--chaos] [--no-incremental] \
                     [--units N] [--workers N]"
                );
                std::process::exit(2);
            }
        }
    }
    if expect_value {
        eprintln!("missing count after --units/--workers");
        std::process::exit(2);
    }
    let full = args.iter().any(|a| a == "--full");
    let verify = args.iter().any(|a| a == "--verify");
    let gen_units = arg_value("--units").unwrap_or(24);
    let workers = arg_value("--workers").unwrap_or_else(delin_vic::deps::workers_from_env);
    let incremental = if args.iter().any(|a| a == "--no-incremental") {
        false
    } else {
        delin_vic::deps::incremental_from_env()
    };
    let chaos = chaos_plan(args.iter().any(|a| a == "--chaos"));

    println!("batch engine: RiCEPS + {gen_units} generated units, shared verdict cache");
    if chaos.is_some() {
        println!("chaos: deterministic fault injection enabled");
        // Injected panics are caught and attributed by the batch runner;
        // the default hook would spray a backtrace per injection.
        std::panic::set_hook(Box::new(|_| {}));
    }
    println!();

    if verify {
        let reference = run(workers, false, full, gen_units, chaos.clone(), incremental);
        let mut failures = 0;
        for w in [1usize, 4, 0] {
            for reversed in [false, true] {
                let render = run(w, reversed, full, gen_units, chaos.clone(), incremental);
                let label = format!(
                    "workers={} order={}",
                    if w == 0 { "auto".into() } else { w.to_string() },
                    if reversed { "reversed" } else { "forward" }
                );
                if render == reference {
                    println!("OK   {label}");
                } else {
                    println!("FAIL {label}: render differs from reference");
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} determinism violation(s)");
            std::process::exit(1);
        }
        if let Err(msg) = verify_incremental_ab(workers, full, gen_units, chaos) {
            eprintln!("FAIL incremental A/B: {msg}");
            std::process::exit(1);
        }
        println!();
        println!("all runs byte-identical; reference report:");
        println!();
        print!("{reference}");
        return;
    }

    print!("{}", run(workers, false, full, gen_units, chaos, incremental));
}

/// The incremental A/B leg of `--verify`: the same corpus with incremental
/// solving on and off must produce identical units, edges, and verdicts,
/// while the incremental run actually reuses subtrees and spends strictly
/// fewer exact-solver nodes.
fn verify_incremental_ab(
    workers: usize,
    full: bool,
    gen_units: usize,
    chaos: Option<ChaosPlan>,
) -> Result<(), String> {
    let on = stats(workers, false, full, gen_units, chaos.clone(), true);
    let off = stats(workers, false, full, gen_units, chaos, false);
    if on.units.len() != off.units.len() {
        return Err(format!("unit counts differ: {} vs {}", on.units.len(), off.units.len()));
    }
    for (a, b) in on.units.iter().zip(&off.units) {
        let va = a.stats.verdict_stats();
        let vb = b.stats.verdict_stats();
        if a.name != b.name
            || a.edges != b.edges
            || a.edges_fp != b.edges_fp
            || a.vectorized_statements != b.vectorized_statements
            || va.pairs_tested != vb.pairs_tested
            || va.proven_independent != vb.proven_independent
            || va.conservative_pairs != vb.conservative_pairs
            || va.decided_by != vb.decided_by
        {
            return Err(format!("unit {} differs between incremental on/off", a.name));
        }
    }
    let on_t = on.totals.verdict_stats();
    let off_t = off.totals.verdict_stats();
    if on_t.subtree_reuses == 0 {
        return Err("incremental run reused no subtrees".into());
    }
    if on_t.solver_nodes >= off_t.solver_nodes {
        return Err(format!(
            "incremental run must spend strictly fewer solver nodes ({} vs {})",
            on_t.solver_nodes, off_t.solver_nodes
        ));
    }
    println!(
        "OK   incremental A/B: edges/verdicts identical, {} subtree reuses, \
         nodes {} -> {} ({} saved)",
        on_t.subtree_reuses, off_t.solver_nodes, on_t.solver_nodes, on_t.nodes_saved
    );
    Ok(())
}

/// Resolves the fault-injection plan for this invocation. Without `--chaos`
/// the environment gate applies as everywhere else (`DELIN_CHAOS_SEED`,
/// feature-gated); with `--chaos` a plan is mandatory, so the flag is a
/// hard error in builds that compiled chaos out.
fn chaos_plan(requested: bool) -> Option<ChaosPlan> {
    if !requested {
        return ChaosPlan::from_env();
    }
    #[cfg(feature = "chaos")]
    {
        let seed =
            std::env::var("DELIN_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
        Some(ChaosPlan::new(seed))
    }
    #[cfg(not(feature = "chaos"))]
    {
        eprintln!("--chaos requires a build with the fault-injection harness compiled in:");
        eprintln!("    cargo run --features chaos --bin batch_corpus -- --chaos");
        std::process::exit(2);
    }
}

/// One batch run's corpus-level statistics.
fn stats(
    workers: usize,
    reversed: bool,
    full: bool,
    gen_units: usize,
    chaos: Option<ChaosPlan>,
    incremental: bool,
) -> delin_vic::batch::BatchStats {
    let mut units = corpus(full, gen_units);
    if reversed {
        units.reverse();
    }
    let runner =
        BatchRunner::new(BatchConfig { workers, chaos, incremental, ..BatchConfig::default() });
    runner.run(units)
}

/// One batch run rendered deterministically.
fn run(
    workers: usize,
    reversed: bool,
    full: bool,
    gen_units: usize,
    chaos: Option<ChaosPlan>,
    incremental: bool,
) -> String {
    stats(workers, reversed, full, gen_units, chaos, incremental).render()
}
