//! The batch engine over the full corpus: RiCEPS plus generated workloads
//! streamed through one shared verdict cache, with the corpus-level table.
//!
//! Flags:
//!
//! * `--full` — generate RiCEPS at the paper's reported line counts
//!   (default: size-reduced programs with the same linearized-nest counts);
//! * `--workers N` — total worker budget (default: auto / `DELIN_WORKERS`);
//! * `--units N` — number of generated workload units (default 24);
//! * `--verify` — instead of one run, execute the determinism matrix
//!   (workers ∈ {1, 4, auto} × {forward, reversed} arrival order) and fail
//!   unless every run renders byte-identically; then run the incremental
//!   A/B (same corpus with incremental solving disabled) and fail unless
//!   edges and verdicts are identical, subtrees were actually reused, and
//!   the incremental run spent strictly fewer solver nodes; then run the
//!   keying A/B (fingerprint vs string cache keys) and fail unless the
//!   reports are byte-identical and both modes memoize the same canonical
//!   key set (a fingerprint collision would shrink the fp side's key set);
//!   then run the warm-start A/B (a cold run that writes the persistent
//!   tier, a warm run that loads it) and fail unless the two reports are
//!   byte-identical and the warm run actually hit disk-seeded entries;
//! * `--bench` — measure the three pinned workloads (RiCEPS, generated,
//!   refinement-heavy) under both keying modes plus a cold-vs-warm
//!   persistent-cache pass, best-of-`--reps` runs, and write the
//!   machine-readable bench JSON (default `BENCH_6.json`; see the README's
//!   Performance section for the schema);
//! * `--bench-out PATH` — where `--bench` writes its JSON (so a new bench
//!   never silently overwrites a committed baseline);
//! * `--reps N` — repetitions per bench measurement (default 3);
//! * `--cache-file PATH` — persistent verdict cache: seed the shared cache
//!   from `PATH` before the run and rewrite it atomically after, so a
//!   later invocation starts warm. Stale or corrupt files degrade to a
//!   cold start. The `persistent-cache:` summary goes to stderr, keeping
//!   stdout byte-identical between cold and warm runs;
//! * `--cache-cap N` — bound the verdict caches to `N` entries with LRU
//!   eviction (default: `DELIN_CACHE_CAP`, 0 = unbounded);
//! * `--no-incremental` — disable incremental exact solving (the A/B
//!   baseline; equivalent to `DELIN_INCREMENTAL=0`);
//! * `--no-arena` — disable the arena miss path (the A/B baseline;
//!   equivalent to `DELIN_ARENA=0`);
//! * `--chaos` — inject deterministic faults (panics, zero-node budgets,
//!   expired deadlines) from the seed in `DELIN_CHAOS_SEED` (default 42).
//!   Requires building with `--features chaos`. Because every injection is
//!   a pure function of `(seed, site)`, `--chaos --verify` must *still*
//!   render byte-identically across worker counts and arrival orders —
//!   the same determinism contract, now including the failures;
//! * `--suite PATH` — replace the hardcoded corpus with a config-driven
//!   suite (`benchmarks/<suite>/config.json`, see `delin_bench::suite`).
//!   Composes with `--verify`: the determinism matrix then runs over the
//!   suite's corpus;
//! * `--sampled` — SimPoint-style sampled run: cluster the suite's units
//!   by structural feature vector (`delin_corpus::sample`), analyze only
//!   the weighted representatives, and print the extrapolated full-corpus
//!   estimate. Defaults to `benchmarks/verify/config.json` when `--suite`
//!   is not given;
//! * `--sampled-check` — `--sampled` plus the measured full corpus: fails
//!   (exit 1) unless the weighted-vs-full verdict-mix error is within the
//!   suite's pinned `tolerance_pct`;
//! * `--trajectory` — `--sampled-check` plus a machine-readable row
//!   appended to the trajectory report (default `BENCH_9.json`; see the
//!   README's Corpus traces & sampling section for the schema). Rows
//!   accumulate across PRs, so the file is the repo's perf history;
//! * `--label S` — the row label `--trajectory` writes (default `dev`).
//!
//! Ctrl-C requests cooperative cancellation through the run's
//! [`CancelToken`]: in-flight dependence decisions degrade to the sound
//! conservative verdict (`DegradeReason::Cancelled`), the partial report
//! still prints, and the process exits with the conventional 130.

use delin_bench::cli::Cli;
use delin_bench::suite::SuiteConfig;
use delin_corpus::sample::{sample_units, WeightedEstimate};
use delin_corpus::stream::{generated_units, refinement_units, riceps_units};
use delin_dep::budget::{BudgetSpec, CancelToken};
use delin_dep::exact::arena_from_env;
use delin_vic::batch::{BatchConfig, BatchRunner, BatchStats, BatchUnit};
use delin_vic::cache::{cache_cap_from_env, KeyMode};
use delin_vic::chaos::ChaosPlan;
use delin_vic::deps::VerdictStats;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

const GENERATED_SEED: u64 = 20260805;
const DEFAULT_BENCH_PATH: &str = "BENCH_6.json";
const DEFAULT_TRAJECTORY_PATH: &str = "BENCH_9.json";
const DEFAULT_SAMPLED_SUITE: &str = "benchmarks/verify/config.json";

const USAGE: &str = "usage: batch_corpus [--full] [--verify] [--bench] [--chaos] \
[--no-incremental] [--no-arena] [--sampled] [--sampled-check] [--trajectory] [--units N] \
[--workers N] [--reps N] [--cache-cap N] [--cache-file PATH] [--bench-out PATH] \
[--suite PATH] [--label S]";

fn corpus(spec: &RunSpec) -> Vec<BatchUnit> {
    match &spec.suite {
        Some(suite) => suite.units().collect(),
        None => {
            let lines = if spec.full { None } else { Some(400) };
            riceps_units(lines).chain(generated_units(spec.gen_units, GENERATED_SEED)).collect()
        }
    }
}

/// Everything one batch run needs; `--verify` and `--bench` legs derive
/// their variants from a base spec instead of threading loose arguments.
#[derive(Clone)]
struct RunSpec {
    workers: usize,
    reversed: bool,
    full: bool,
    gen_units: usize,
    suite: Option<SuiteConfig>,
    chaos: Option<ChaosPlan>,
    incremental: bool,
    arena: bool,
    keying: KeyMode,
    cache_cap: usize,
    cache_file: Option<PathBuf>,
    cancel: CancelToken,
}

impl RunSpec {
    fn config(&self) -> BatchConfig {
        BatchConfig {
            workers: self.workers,
            chaos: self.chaos,
            incremental: self.incremental,
            arena: self.arena,
            keying: self.keying,
            cache_cap: self.cache_cap,
            cache_file: self.cache_file.clone(),
            budget: BudgetSpec { cancel: Some(self.cancel.clone()), ..BudgetSpec::default() },
            ..BatchConfig::default()
        }
    }
}

/// One batch run's corpus-level statistics.
fn stats(spec: &RunSpec) -> BatchStats {
    let mut units = corpus(spec);
    if spec.reversed {
        units.reverse();
    }
    BatchRunner::new(spec.config()).run(units)
}

/// One batch run rendered deterministically.
fn run(spec: &RunSpec) -> String {
    stats(spec).render()
}

fn main() {
    let cli = Cli::from_env("batch_corpus", USAGE);
    cli.validate_or_exit(
        &[
            "--full",
            "--verify",
            "--bench",
            "--chaos",
            "--no-incremental",
            "--no-arena",
            "--sampled",
            "--sampled-check",
            "--trajectory",
        ],
        &[
            "--units",
            "--workers",
            "--reps",
            "--cache-cap",
            "--cache-file",
            "--bench-out",
            "--suite",
            "--label",
        ],
    );
    let full = cli.flag("--full");
    let verify = cli.flag("--verify");
    let bench = cli.flag("--bench");
    let trajectory = cli.flag("--trajectory");
    let sampled_check = cli.flag("--sampled-check") || trajectory;
    let sampled = cli.flag("--sampled") || sampled_check;
    let gen_units = cli.count_or_exit("--units").unwrap_or(24);
    let workers = cli.count_or_exit("--workers").unwrap_or_else(delin_vic::deps::workers_from_env);
    let reps = cli.count_or_exit("--reps").unwrap_or(3).max(1);
    let cache_cap = cli.count_or_exit("--cache-cap").unwrap_or_else(cache_cap_from_env);
    let incremental =
        if cli.flag("--no-incremental") { false } else { delin_vic::deps::incremental_from_env() };
    let arena = if cli.flag("--no-arena") { false } else { arena_from_env() };
    let suite_path = cli.string("--suite").map(PathBuf::from).or_else(|| {
        // Sampled modes are suite-driven by definition; without an explicit
        // suite they measure the fidelity corpus the trajectory gates pin.
        sampled.then(|| PathBuf::from(DEFAULT_SAMPLED_SUITE))
    });
    let suite = suite_path.map(|path| match SuiteConfig::load(&path) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("batch_corpus: {e}");
            std::process::exit(1);
        }
    });
    let chaos = chaos_plan(cli.flag("--chaos"));
    let cancel = install_ctrl_c();
    let spec = RunSpec {
        workers,
        reversed: false,
        full,
        gen_units,
        suite,
        chaos,
        incremental,
        arena,
        keying: KeyMode::from_env(),
        cache_cap,
        cache_file: cli.string("--cache-file").map(PathBuf::from),
        cancel,
    };

    if bench {
        let bench_out =
            PathBuf::from(cli.string("--bench-out").unwrap_or(DEFAULT_BENCH_PATH.into()));
        std::process::exit(run_bench(&spec, reps, &bench_out));
    }

    if sampled {
        let label = cli.string("--label").unwrap_or_else(|| "dev".into());
        let out = trajectory.then(|| {
            PathBuf::from(cli.string("--bench-out").unwrap_or(DEFAULT_TRAJECTORY_PATH.into()))
        });
        std::process::exit(run_sampled(&spec, sampled_check, out.as_deref(), &label));
    }

    match &spec.suite {
        Some(suite) => println!(
            "batch engine: suite {} ({} units), shared verdict cache",
            suite.name,
            suite.declared_units()
        ),
        None => {
            println!("batch engine: RiCEPS + {gen_units} generated units, shared verdict cache")
        }
    }
    if spec.chaos.is_some() {
        println!("chaos: deterministic fault injection enabled");
        // Injected panics are caught and attributed by the batch runner;
        // the default hook would spray a backtrace per injection.
        std::panic::set_hook(Box::new(|_| {}));
    }
    println!();

    if verify {
        let reference = run(&spec);
        let mut failures = 0;
        for w in [1usize, 4, 0] {
            for reversed in [false, true] {
                let render = run(&RunSpec { workers: w, reversed, ..spec.clone() });
                let label = format!(
                    "workers={} order={}",
                    if w == 0 { "auto".into() } else { w.to_string() },
                    if reversed { "reversed" } else { "forward" }
                );
                if render == reference {
                    println!("OK   {label}");
                } else {
                    println!("FAIL {label}: render differs from reference");
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} determinism violation(s)");
            std::process::exit(1);
        }
        if let Err(msg) = verify_incremental_ab(&spec) {
            eprintln!("FAIL incremental A/B: {msg}");
            std::process::exit(1);
        }
        if let Err(msg) = verify_keying_ab(&spec) {
            eprintln!("FAIL keying A/B: {msg}");
            std::process::exit(1);
        }
        if let Err(msg) = verify_persistence_ab(&spec) {
            eprintln!("FAIL warm-start A/B: {msg}");
            std::process::exit(1);
        }
        if let Err(msg) = verify_arena_ab(&spec) {
            eprintln!("FAIL arena A/B: {msg}");
            std::process::exit(1);
        }
        println!();
        println!("all runs byte-identical; reference report:");
        println!();
        print!("{reference}");
        finish(&spec.cancel);
    }

    let stats = stats(&spec);
    print!("{}", stats.render());
    report_persistence(&spec, &stats);
    finish(&spec.cancel);
}

/// The `--cache-file` summary. Deliberately on stderr: stdout must stay
/// byte-identical between a cold and a warm run (the determinism contract),
/// while these counters are exactly what differs between them.
fn report_persistence(spec: &RunSpec, stats: &BatchStats) {
    if spec.cache_file.is_none() {
        return;
    }
    eprintln!(
        "persistent-cache: loaded={} hits={} saved={}",
        stats.persistent_loaded, stats.persistent_hits, stats.persistent_saved
    );
    if let Some(e) = &stats.persist_error {
        eprintln!("persistent-cache: flush failed: {e}");
    }
}

/// Exits, reporting cancellation: a run interrupted by ctrl-C still printed
/// a *sound* report (remaining pairs degraded conservatively), but it is
/// partial, and the exit code says so.
fn finish(cancel: &CancelToken) -> ! {
    if cancel.is_cancelled() {
        eprintln!();
        eprintln!(
            "interrupted: remaining dependence decisions degraded to the \
             conservative verdict; the report above is sound but partial"
        );
        std::process::exit(130);
    }
    std::process::exit(0);
}

/// The incremental A/B leg of `--verify`: the same corpus with incremental
/// solving on and off must produce identical units, edges, and verdicts,
/// while the incremental run actually reuses subtrees and spends strictly
/// fewer exact-solver nodes.
fn verify_incremental_ab(spec: &RunSpec) -> Result<(), String> {
    let on = stats(&RunSpec { incremental: true, ..spec.clone() });
    let off = stats(&RunSpec { incremental: false, ..spec.clone() });
    if on.units.len() != off.units.len() {
        return Err(format!("unit counts differ: {} vs {}", on.units.len(), off.units.len()));
    }
    for (a, b) in on.units.iter().zip(&off.units) {
        let va = a.stats.verdict_stats();
        let vb = b.stats.verdict_stats();
        if a.name != b.name
            || a.edges != b.edges
            || a.edges_fp != b.edges_fp
            || a.vectorized_statements != b.vectorized_statements
            || va.pairs_tested != vb.pairs_tested
            || va.proven_independent != vb.proven_independent
            || va.conservative_pairs != vb.conservative_pairs
            || va.decided_by != vb.decided_by
        {
            return Err(format!("unit {} differs between incremental on/off", a.name));
        }
    }
    let on_t = on.totals.verdict_stats();
    let off_t = off.totals.verdict_stats();
    if on_t.subtree_reuses == 0 {
        return Err("incremental run reused no subtrees".into());
    }
    if on_t.solver_nodes >= off_t.solver_nodes {
        return Err(format!(
            "incremental run must spend strictly fewer solver nodes ({} vs {})",
            on_t.solver_nodes, off_t.solver_nodes
        ));
    }
    println!(
        "OK   incremental A/B: edges/verdicts identical, {} subtree reuses, \
         nodes {} -> {} ({} saved)",
        on_t.subtree_reuses, off_t.solver_nodes, on_t.solver_nodes, on_t.nodes_saved
    );
    Ok(())
}

/// The keying A/B leg of `--verify`: fingerprint and string cache keys are
/// interchangeable representations of the same partition, so the rendered
/// reports must be byte-identical, the hit/miss counters equal, and both
/// caches must memoize the same number of distinct canonical problems — a
/// fingerprint collision would merge two canonical strings into one cell
/// and shrink the fp side's count.
fn verify_keying_ab(spec: &RunSpec) -> Result<(), String> {
    let fp = stats(&RunSpec { keying: KeyMode::Fp, ..spec.clone() });
    let st = stats(&RunSpec { keying: KeyMode::Str, ..spec.clone() });
    if fp.render() != st.render() {
        return Err("report differs between fingerprint and string keying".into());
    }
    let ft = fp.totals.verdict_stats();
    let st_t = st.totals.verdict_stats();
    if ft.cache_hits != st_t.cache_hits || ft.cache_misses != st_t.cache_misses {
        return Err(format!(
            "cache traffic differs: fp {}h/{}m vs string {}h/{}m",
            ft.cache_hits, ft.cache_misses, st_t.cache_hits, st_t.cache_misses
        ));
    }
    if fp.distinct_problems != st.distinct_problems {
        return Err(format!(
            "distinct canonical problems differ (fingerprint collision?): fp {:?} vs string {:?}",
            fp.distinct_problems, st.distinct_problems
        ));
    }
    println!(
        "OK   keying A/B: reports byte-identical, {} distinct problems, {} hits / {} misses",
        fp.distinct_problems.unwrap_or(0),
        ft.cache_hits,
        ft.cache_misses
    );
    Ok(())
}

/// The warm-start A/B leg of `--verify`: a cold run writes the persistent
/// verdict cache, a warm run of the same corpus loads it. Because cache
/// attribution is charged at decide time (never read back from live cache
/// state), disk-seeded entries may change only *where* a verdict comes
/// from, never what is reported — so the two renders must be byte-identical
/// while the warm run demonstrably hits the persistent tier.
fn verify_persistence_ab(spec: &RunSpec) -> Result<(), String> {
    let path = std::env::temp_dir().join(format!("delin-verify-cache-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Persistence is fingerprint-only; pin the keying so the leg still
    // exercises the tier under `DELIN_KEYING=string`.
    let ab = RunSpec { cache_file: Some(path.clone()), keying: KeyMode::Fp, ..spec.clone() };
    let cold = stats(&ab);
    let warm = stats(&ab);
    let verdict = (|| {
        if let Some(e) = &cold.persist_error {
            return Err(format!("cold run failed to flush: {e}"));
        }
        if cold.persistent_saved == 0 {
            return Err("cold run persisted no entries".into());
        }
        if warm.persistent_loaded == 0 {
            return Err("warm run loaded no entries".into());
        }
        if warm.persistent_hits == 0 {
            return Err("warm run never hit a disk-seeded entry".into());
        }
        if cold.render() != warm.render() {
            return Err("warm report differs from cold report".into());
        }
        Ok(())
    })();
    let _ = std::fs::remove_file(&path);
    verdict?;
    println!(
        "OK   warm-start A/B: reports byte-identical, {} persisted, {} loaded, {} disk hits",
        cold.persistent_saved, warm.persistent_loaded, warm.persistent_hits
    );
    Ok(())
}

/// The arena A/B leg of `--verify`: the arena miss path (pooled problems
/// and solver scratch) changes only where allocations come from, never what
/// is searched — so the arena and legacy runs must render byte-identically
/// and spend the same number of exact-solver nodes.
fn verify_arena_ab(spec: &RunSpec) -> Result<(), String> {
    let on = stats(&RunSpec { arena: true, ..spec.clone() });
    let off = stats(&RunSpec { arena: false, ..spec.clone() });
    if on.render() != off.render() {
        return Err("report differs between arena and legacy miss paths".into());
    }
    let on_t = on.totals.verdict_stats();
    let off_t = off.totals.verdict_stats();
    if on_t.solver_nodes != off_t.solver_nodes {
        return Err(format!(
            "solver nodes differ between arena and legacy miss paths ({} vs {})",
            on_t.solver_nodes, off_t.solver_nodes
        ));
    }
    println!(
        "OK   arena A/B: reports byte-identical, {} solver nodes both ways",
        on_t.solver_nodes
    );
    Ok(())
}

/// Resolves the fault-injection plan for this invocation. Without `--chaos`
/// the environment gate applies as everywhere else (`DELIN_CHAOS_SEED`,
/// feature-gated); with `--chaos` a plan is mandatory, so the flag is a
/// hard error in builds that compiled chaos out.
fn chaos_plan(requested: bool) -> Option<ChaosPlan> {
    if !requested {
        return ChaosPlan::from_env();
    }
    #[cfg(feature = "chaos")]
    {
        let seed =
            std::env::var("DELIN_CHAOS_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(42);
        Some(ChaosPlan::new(seed))
    }
    #[cfg(not(feature = "chaos"))]
    {
        eprintln!("--chaos requires a build with the fault-injection harness compiled in:");
        eprintln!("    cargo run --features chaos --bin batch_corpus -- --chaos");
        std::process::exit(2);
    }
}

// ---------------------------------------------------------------------------
// Ctrl-C → cooperative cancellation.
//
// The analysis libraries forbid unsafe code; the one `unsafe` block the
// corpus binary needs — registering a C signal handler — lives here in the
// binary crate root. The handler only performs async-signal-safe work: an
// atomic load out of an already-initialized `OnceLock` and an atomic store
// through the `CancelToken`. No allocation, no locking, no I/O.

const SIGINT: i32 = 2;

static CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Installs the SIGINT handler once and returns the process-wide token it
/// trips. Every run spec threads the token into its [`BudgetSpec`], so a
/// ctrl-C drains in-flight analysis by degrading the remaining decisions.
fn install_ctrl_c() -> CancelToken {
    let token = CANCEL.get_or_init(CancelToken::new).clone();
    // SAFETY: `on_sigint` matches the C `void (*)(int)` handler signature
    // and performs only async-signal-safe operations (see above).
    unsafe {
        signal(SIGINT, on_sigint);
    }
    token
}

// ---------------------------------------------------------------------------
// `--bench`: the measured hot-path harness.

/// Best-of-reps measurements for one workload under one keying mode.
struct KeyingMeasure {
    wall_nanos: u128,
    dep_nanos: u128,
    render: String,
}

/// One pinned workload's bench record.
struct WorkloadBench {
    name: &'static str,
    units: usize,
    pairs_tested: usize,
    solver_nodes: u64,
    cache_hits: usize,
    cache_misses: usize,
    distinct_problems: usize,
    fp: KeyingMeasure,
    string: KeyingMeasure,
    warm: WarmStart,
}

impl WorkloadBench {
    /// How much cheaper the fingerprint path's DepStats nanos are than the
    /// string baseline's, in percent (positive = fp wins).
    fn dep_nanos_delta_pct(&self) -> f64 {
        if self.string.dep_nanos == 0 {
            return 0.0;
        }
        let fp = self.fp.dep_nanos as f64;
        let st = self.string.dep_nanos as f64;
        (st - fp) * 100.0 / st
    }
}

/// The persistent-tier measurement: the same workload run cold (writing the
/// cache file) and then warm (loading it).
struct WarmStart {
    cold_dep_nanos: u128,
    warm_dep_nanos: u128,
    persistent_loaded: usize,
    persistent_hits: u64,
    reports_identical: bool,
}

impl WarmStart {
    /// How much cheaper the warm run's dependence-test nanos are than the
    /// cold run's, in percent (positive = warm start wins).
    fn delta_pct(&self) -> f64 {
        if self.cold_dep_nanos == 0 {
            return 0.0;
        }
        let cold = self.cold_dep_nanos as f64;
        let warm = self.warm_dep_nanos as f64;
        (cold - warm) * 100.0 / cold
    }
}

/// The three pinned workloads. Regenerated per rep (the generators are pure
/// functions of `(seed, index)`), so no rep sees another's allocations.
fn bench_workloads(full: bool, gen_units: usize) -> Vec<(&'static str, Vec<BatchUnit>)> {
    vec![
        ("riceps", riceps_units(if full { None } else { Some(400) }).collect()),
        ("generated", generated_units(gen_units, GENERATED_SEED).collect()),
        ("refinement", refinement_units(gen_units, GENERATED_SEED).collect()),
    ]
}

/// Cold-vs-warm measurement for one workload: each rep deletes the cache
/// file, runs cold (flushing the tier), and reruns warm. Best rep = lowest
/// warm dependence-test nanos.
fn bench_warm_start(spec: &RunSpec, name: &str, reps: usize) -> Option<WarmStart> {
    let path =
        std::env::temp_dir().join(format!("delin-bench-cache-{}-{name}.bin", std::process::id()));
    let workload = |full, gen_units| {
        bench_workloads(full, gen_units)
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, u)| u)
            .unwrap_or_default()
    };
    let mut best: Option<WarmStart> = None;
    for _ in 0..reps {
        if spec.cancel.is_cancelled() {
            break;
        }
        let _ = std::fs::remove_file(&path);
        let config =
            BatchConfig { keying: KeyMode::Fp, cache_file: Some(path.clone()), ..spec.config() };
        let cold = BatchRunner::new(config.clone()).run(workload(spec.full, spec.gen_units));
        let warm = BatchRunner::new(config).run(workload(spec.full, spec.gen_units));
        let measure = WarmStart {
            cold_dep_nanos: cold.totals.test_nanos,
            warm_dep_nanos: warm.totals.test_nanos,
            persistent_loaded: warm.persistent_loaded,
            persistent_hits: warm.persistent_hits,
            reports_identical: cold.render() == warm.render(),
        };
        if best.as_ref().is_none_or(|b| measure.warm_dep_nanos < b.warm_dep_nanos) {
            best = Some(measure);
        }
    }
    let _ = std::fs::remove_file(&path);
    best
}

fn run_bench(spec: &RunSpec, reps: usize, bench_out: &Path) -> i32 {
    println!(
        "bench: 3 pinned workloads x 2 keying modes + warm-start pass, best of {reps} rep(s), \
         workers={}, gen_units={}",
        if spec.workers == 0 { "auto".into() } else { spec.workers.to_string() },
        spec.gen_units
    );
    let mut records = Vec::new();
    let mut failures = 0;
    for (name, _) in bench_workloads(spec.full, spec.gen_units) {
        let mut measures = Vec::new();
        let mut shape = None;
        for keying in [KeyMode::Fp, KeyMode::Str] {
            let mut best: Option<KeyingMeasure> = None;
            for _ in 0..reps {
                if spec.cancel.is_cancelled() {
                    eprintln!("interrupted: bench aborted, no BENCH file written");
                    return 130;
                }
                let units = bench_workloads(spec.full, spec.gen_units)
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, u)| u)
                    .unwrap_or_default();
                let started = Instant::now();
                let stats = BatchRunner::new(BatchConfig { keying, ..spec.config() }).run(units);
                let wall_nanos = started.elapsed().as_nanos();
                let totals = stats.totals.verdict_stats();
                let dep_nanos = stats.totals.test_nanos;
                if shape.is_none() {
                    shape = Some((
                        stats.units.len(),
                        totals.pairs_tested,
                        totals.solver_nodes,
                        totals.cache_hits,
                        totals.cache_misses,
                        stats.distinct_problems.unwrap_or(0),
                    ));
                }
                let replace = best.as_ref().is_none_or(|b| dep_nanos < b.dep_nanos);
                if replace {
                    best = Some(KeyingMeasure { wall_nanos, dep_nanos, render: stats.render() });
                }
            }
            measures.push(best.expect("reps >= 1"));
        }
        let string = measures.pop().expect("two keying modes");
        let fp = measures.pop().expect("two keying modes");
        if fp.render != string.render {
            eprintln!("FAIL {name}: report differs between fp and string keying");
            failures += 1;
        }
        let Some(warm) = bench_warm_start(spec, name, reps) else {
            eprintln!("interrupted: bench aborted, no BENCH file written");
            return 130;
        };
        if !warm.reports_identical {
            eprintln!("FAIL {name}: warm-start report differs from cold report");
            failures += 1;
        }
        if warm.persistent_hits == 0 {
            eprintln!("FAIL {name}: warm run hit no persisted entries");
            failures += 1;
        }
        let (units, pairs_tested, solver_nodes, cache_hits, cache_misses, distinct_problems) =
            shape.expect("at least one rep ran");
        let record = WorkloadBench {
            name,
            units,
            pairs_tested,
            solver_nodes,
            cache_hits,
            cache_misses,
            distinct_problems,
            fp,
            string,
            warm,
        };
        println!(
            "  {:<11} {:>3} units  {:>6} pairs  dep nanos fp {:>12} / string {:>12}  ({:+.1}%)",
            record.name,
            record.units,
            record.pairs_tested,
            record.fp.dep_nanos,
            record.string.dep_nanos,
            record.dep_nanos_delta_pct()
        );
        println!(
            "  {:<11} warm-start dep nanos cold {:>12} / warm {:>12}  ({:+.1}%, {} disk hits)",
            "",
            record.warm.cold_dep_nanos,
            record.warm.warm_dep_nanos,
            record.warm.delta_pct(),
            record.warm.persistent_hits
        );
        records.push(record);
    }
    if failures > 0 {
        eprintln!("{failures} bench invariant violation(s); no BENCH file written");
        return 1;
    }
    let json = render_bench_json(spec, reps, &records);
    if let Err(e) = std::fs::write(bench_out, &json) {
        eprintln!("cannot write {}: {e}", bench_out.display());
        return 1;
    }
    let total_fp: u128 = records.iter().map(|r| r.fp.dep_nanos).sum();
    let total_st: u128 = records.iter().map(|r| r.string.dep_nanos).sum();
    let delta = if total_st == 0 {
        0.0
    } else {
        (total_st as f64 - total_fp as f64) * 100.0 / total_st as f64
    };
    let total_cold: u128 = records.iter().map(|r| r.warm.cold_dep_nanos).sum();
    let total_warm: u128 = records.iter().map(|r| r.warm.warm_dep_nanos).sum();
    let warm_delta = if total_cold == 0 {
        0.0
    } else {
        (total_cold as f64 - total_warm as f64) * 100.0 / total_cold as f64
    };
    println!();
    println!(
        "total dep nanos: fp {total_fp} / string {total_st} ({delta:+.1}%); \
         warm-start cold {total_cold} / warm {total_warm} ({warm_delta:+.1}%); wrote {}",
        bench_out.display()
    );
    0
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".into()
    }
}

/// Hand-rolled writer for the bench JSON — the workspace deliberately has
/// no serde; the schema is small, flat, and documented in the README.
fn render_bench_json(spec: &RunSpec, reps: usize, records: &[WorkloadBench]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"delin-bench\",");
    let _ = writeln!(out, "  \"bench_id\": 6,");
    let _ = writeln!(out, "  \"config\": {{");
    let _ = writeln!(out, "    \"workers\": {},", spec.workers);
    let _ = writeln!(out, "    \"gen_units\": {},", spec.gen_units);
    let _ = writeln!(out, "    \"full\": {},", spec.full);
    let _ = writeln!(out, "    \"incremental\": {},", spec.incremental);
    let _ = writeln!(out, "    \"reps\": {reps},");
    let _ = writeln!(out, "    \"keying_modes\": [\"fp\", \"string\"]");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"workloads\": [");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"units\": {},", r.units);
        let _ = writeln!(out, "      \"pairs_tested\": {},", r.pairs_tested);
        let _ = writeln!(out, "      \"solver_nodes\": {},", r.solver_nodes);
        let _ = writeln!(out, "      \"cache_hits\": {},", r.cache_hits);
        let _ = writeln!(out, "      \"cache_misses\": {},", r.cache_misses);
        let _ = writeln!(out, "      \"distinct_problems\": {},", r.distinct_problems);
        let _ = writeln!(out, "      \"keying\": {{");
        for (j, (label, m)) in [("fp", &r.fp), ("string", &r.string)].iter().enumerate() {
            let _ = writeln!(out, "        \"{label}\": {{");
            let _ =
                writeln!(out, "          \"wall_ms\": {},", json_f64(m.wall_nanos as f64 / 1.0e6));
            let _ = writeln!(out, "          \"dep_test_nanos\": {}", m.dep_nanos);
            let _ = writeln!(out, "        }}{}", if j == 0 { "," } else { "" });
        }
        let _ = writeln!(out, "      }},");
        let _ =
            writeln!(out, "      \"dep_nanos_delta_pct\": {},", json_f64(r.dep_nanos_delta_pct()));
        let _ = writeln!(out, "      \"warm_start\": {{");
        let _ = writeln!(out, "        \"cold_dep_test_nanos\": {},", r.warm.cold_dep_nanos);
        let _ = writeln!(out, "        \"warm_dep_test_nanos\": {},", r.warm.warm_dep_nanos);
        let _ = writeln!(out, "        \"dep_nanos_delta_pct\": {},", json_f64(r.warm.delta_pct()));
        let _ = writeln!(out, "        \"persistent_loaded\": {},", r.warm.persistent_loaded);
        let _ = writeln!(out, "        \"persistent_hits\": {},", r.warm.persistent_hits);
        let _ = writeln!(out, "        \"reports_identical\": {}", r.warm.reports_identical);
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"reports_identical\": true");
        let _ = writeln!(out, "    }}{}", if i + 1 < records.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let total_fp: u128 = records.iter().map(|r| r.fp.dep_nanos).sum();
    let total_st: u128 = records.iter().map(|r| r.string.dep_nanos).sum();
    let total_wall_fp: u128 = records.iter().map(|r| r.fp.wall_nanos).sum();
    let total_wall_st: u128 = records.iter().map(|r| r.string.wall_nanos).sum();
    let delta = if total_st == 0 {
        0.0
    } else {
        (total_st as f64 - total_fp as f64) * 100.0 / total_st as f64
    };
    let total_cold: u128 = records.iter().map(|r| r.warm.cold_dep_nanos).sum();
    let total_warm: u128 = records.iter().map(|r| r.warm.warm_dep_nanos).sum();
    let warm_delta = if total_cold == 0 {
        0.0
    } else {
        (total_cold as f64 - total_warm as f64) * 100.0 / total_cold as f64
    };
    let _ = writeln!(out, "  \"totals\": {{");
    let _ = writeln!(out, "    \"dep_test_nanos_fp\": {total_fp},");
    let _ = writeln!(out, "    \"dep_test_nanos_string\": {total_st},");
    let _ = writeln!(out, "    \"dep_nanos_delta_pct\": {},", json_f64(delta));
    let _ = writeln!(out, "    \"wall_ms_fp\": {},", json_f64(total_wall_fp as f64 / 1.0e6));
    let _ = writeln!(out, "    \"wall_ms_string\": {},", json_f64(total_wall_st as f64 / 1.0e6));
    let _ = writeln!(out, "    \"warm_start_cold_dep_test_nanos\": {total_cold},");
    let _ = writeln!(out, "    \"warm_start_warm_dep_test_nanos\": {total_warm},");
    let _ = writeln!(out, "    \"warm_start_delta_pct\": {}", json_f64(warm_delta));
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

// ---------------------------------------------------------------------------
// `--sampled` / `--sampled-check` / `--trajectory`: the SimPoint-style
// weighted subset over a config-driven suite.

/// One timed leg of a sampled run.
struct TimedRun {
    stats: BatchStats,
    wall_nanos: u128,
}

fn timed_run(spec: &RunSpec, units: Vec<BatchUnit>) -> TimedRun {
    let started = Instant::now();
    let stats = BatchRunner::new(spec.config()).run(units);
    TimedRun { stats, wall_nanos: started.elapsed().as_nanos() }
}

/// Runs the weighted representative subset of the suite's corpus,
/// extrapolates the full-corpus verdict mix, and — in check mode — measures
/// the full corpus and holds the estimate to the suite's pinned tolerance.
/// With `trajectory_out`, appends the machine-readable row.
fn run_sampled(spec: &RunSpec, check: bool, trajectory_out: Option<&Path>, label: &str) -> i32 {
    let suite = spec.suite.as_ref().expect("sampled modes always carry a suite");
    let units: Vec<BatchUnit> = suite.units().collect();
    let plan = sample_units(&units, &suite.sample);
    let reps: Vec<BatchUnit> =
        plan.representatives.iter().map(|r| units[r.index].clone()).collect();
    println!(
        "sampled run: suite {} — {} units -> {} representatives ({:.1}% of corpus, \
         clusters={}, seed={})",
        suite.name,
        plan.total_units,
        plan.representatives.len(),
        plan.sampled_fraction() * 100.0,
        suite.sample.clusters,
        suite.sample.seed
    );
    let sampled = timed_run(spec, reps);
    if spec.cancel.is_cancelled() {
        eprintln!("interrupted: sampled run aborted");
        return 130;
    }
    let rep_stats: Vec<VerdictStats> = plan
        .representatives
        .iter()
        .map(|r| {
            sampled
                .stats
                .units
                .iter()
                .find(|u| u.name == units[r.index].name)
                .expect("every representative gets a report")
                .stats
                .verdict_stats()
        })
        .collect();
    let est = WeightedEstimate::from_stats(&plan, &rep_stats);
    println!(
        "  estimated: pairs={:.0} independent={:.0} conservative={:.0} solver-nodes={:.0}",
        est.pairs_tested, est.proven_independent, est.conservative_pairs, est.solver_nodes
    );
    let mix: Vec<String> = est.decided_by.iter().map(|(k, v)| format!("{k}={v:.0}")).collect();
    println!("  estimated decided-by: {}", mix.join(" "));
    println!(
        "  sampled wall: {:.1} ms ({} pairs analyzed)",
        sampled.wall_nanos as f64 / 1.0e6,
        sampled.stats.totals.verdict_stats().pairs_tested
    );
    if !check {
        return 0;
    }

    let full = timed_run(spec, units);
    if spec.cancel.is_cancelled() {
        eprintln!("interrupted: sampled-check aborted");
        return 130;
    }
    let full_totals = full.stats.totals.verdict_stats();
    let error_pct = est.mix_error_pct(&full_totals);
    let within = error_pct <= suite.tolerance_pct;
    println!(
        "  measured:  pairs={} independent={} conservative={} solver-nodes={}",
        full_totals.pairs_tested,
        full_totals.proven_independent,
        full_totals.conservative_pairs,
        full_totals.solver_nodes
    );
    println!(
        "  full wall: {:.1} ms ({:.1}x the sampled run)",
        full.wall_nanos as f64 / 1.0e6,
        full.wall_nanos as f64 / sampled.wall_nanos.max(1) as f64
    );
    println!(
        "{} sampled-check: weighted-vs-full verdict-mix error {error_pct:.2}% \
         (tolerance {:.0}%)",
        if within { "OK  " } else { "FAIL" },
        suite.tolerance_pct
    );
    if let Some(out) = trajectory_out {
        let row = render_trajectory_row(
            spec, suite, label, &plan, &est, &sampled, &full, error_pct, within,
        );
        match append_trajectory_row(out, &row) {
            Ok(rows) => println!("trajectory: {} now holds {rows} row(s)", out.display()),
            Err(e) => {
                eprintln!("batch_corpus: cannot append trajectory row: {e}");
                return 1;
            }
        }
    }
    i32::from(!within)
}

/// Renders one trajectory row (the element appended to `rows` in the
/// `delin-trajectory` file; schema documented in the README).
#[allow(clippy::too_many_arguments)]
fn render_trajectory_row(
    spec: &RunSpec,
    suite: &SuiteConfig,
    label: &str,
    plan: &delin_corpus::sample::SamplePlan,
    est: &WeightedEstimate,
    sampled: &TimedRun,
    full: &TimedRun,
    error_pct: f64,
    within: bool,
) -> String {
    let full_totals = full.stats.totals.verdict_stats();
    let sampled_totals = sampled.stats.totals.verdict_stats();
    let lookups = full_totals.cache_hits + full_totals.cache_misses;
    let hit_rate_pct =
        if lookups == 0 { 0.0 } else { full_totals.cache_hits as f64 * 100.0 / lookups as f64 };
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"label\": \"{}\",", label.escape_default());
    let _ = writeln!(out, "      \"suite\": \"{}\",", suite.name.escape_default());
    let _ = writeln!(out, "      \"units\": {},", plan.total_units);
    let _ = writeln!(out, "      \"sampled_units\": {},", plan.representatives.len());
    let _ = writeln!(out, "      \"workers\": {},", spec.workers);
    let _ = writeln!(out, "      \"full\": {{");
    let _ = writeln!(out, "        \"wall_ms\": {},", json_f64(full.wall_nanos as f64 / 1.0e6));
    let _ = writeln!(out, "        \"dep_test_nanos\": {},", full.stats.totals.test_nanos);
    let _ = writeln!(out, "        \"pairs_tested\": {},", full_totals.pairs_tested);
    let _ = writeln!(out, "        \"proven_independent\": {},", full_totals.proven_independent);
    let _ = writeln!(out, "        \"conservative_pairs\": {},", full_totals.conservative_pairs);
    let _ = writeln!(out, "        \"solver_nodes\": {},", full_totals.solver_nodes);
    let _ = writeln!(out, "        \"cache_hits\": {},", full_totals.cache_hits);
    let _ = writeln!(out, "        \"cache_misses\": {},", full_totals.cache_misses);
    let _ = writeln!(out, "        \"hit_rate_pct\": {}", json_f64(hit_rate_pct));
    let _ = writeln!(out, "      }},");
    let _ = writeln!(out, "      \"sampled\": {{");
    let _ = writeln!(out, "        \"wall_ms\": {},", json_f64(sampled.wall_nanos as f64 / 1.0e6));
    let _ = writeln!(out, "        \"dep_test_nanos\": {},", sampled.stats.totals.test_nanos);
    let _ = writeln!(out, "        \"pairs_analyzed\": {},", sampled_totals.pairs_tested);
    let _ = writeln!(out, "        \"pairs_est\": {},", json_f64(est.pairs_tested));
    let _ = writeln!(out, "        \"independent_est\": {},", json_f64(est.proven_independent));
    let _ = writeln!(out, "        \"solver_nodes_est\": {}", json_f64(est.solver_nodes));
    let _ = writeln!(out, "      }},");
    let _ = writeln!(
        out,
        "      \"speedup\": {},",
        json_f64(full.wall_nanos as f64 / sampled.wall_nanos.max(1) as f64)
    );
    let _ = writeln!(out, "      \"mix_error_pct\": {},", json_f64(error_pct));
    let _ = writeln!(out, "      \"tolerance_pct\": {},", json_f64(suite.tolerance_pct));
    let _ = writeln!(out, "      \"within_tolerance\": {within}");
    let _ = write!(out, "    }}");
    out
}

/// Appends `row` to the `rows` array of the trajectory file at `path`,
/// creating the file when absent. Returns the resulting row count.
///
/// Existing files are validated (strict JSON parse + schema marker) before
/// the textual splice, so a hand-damaged history fails loudly instead of
/// accumulating garbage.
fn append_trajectory_row(path: &Path, row: &str) -> Result<usize, String> {
    let fresh = |row: &str| {
        format!(
            "{{\n  \"schema\": \"delin-trajectory\",\n  \"bench_id\": 9,\n  \"rows\": [\n{row}\n  ]\n}}\n"
        )
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::write(path, fresh(row)).map_err(|e| format!("{}: {e}", path.display()))?;
            return Ok(1);
        }
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let parsed = delin_vic::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let obj = parsed.as_obj().ok_or_else(|| format!("{}: not a JSON object", path.display()))?;
    let schema = obj.get("schema").and_then(delin_vic::json::Json::as_str).unwrap_or_default();
    if schema != "delin-trajectory" {
        return Err(format!(
            "{}: schema is {schema:?}, expected \"delin-trajectory\" — refusing to append",
            path.display()
        ));
    }
    let rows = match obj.get("rows") {
        Some(delin_vic::json::Json::Arr(rows)) => rows.len(),
        _ => return Err(format!("{}: \"rows\" is not an array", path.display())),
    };
    // The file is machine-written with a fixed layout; splice the new row
    // in front of the closing "  ]".
    let close = text
        .rfind("\n  ]")
        .ok_or_else(|| format!("{}: cannot find the rows terminator", path.display()))?;
    let mut next = String::with_capacity(text.len() + row.len() + 8);
    next.push_str(&text[..close]);
    if rows > 0 {
        next.push(',');
    }
    next.push('\n');
    next.push_str(row);
    next.push_str(&text[close..]);
    std::fs::write(path, next).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(rows + 1)
}
