//! Analysis as a service: the long-lived jsonl daemon over the batch
//! engine ([`delin_vic::serve`]).
//!
//! Reads newline-delimited JSON requests from stdin (default) or a Unix
//! socket, and streams one JSON response per request — verdict edges,
//! scheduling-independent statistics, degradation reasons — tagged with the
//! client's request id. See the README's "Serving" section for the
//! request/response schemas.
//!
//! Flags:
//!
//! * `--workers N` — total worker budget for the analysis pool (default:
//!   auto / `DELIN_WORKERS`);
//! * `--max-in-flight N` — admission bound: requests in flight at once;
//!   further requests are rejected with an `overloaded` error (default 64);
//! * `--nodes N` — default per-request solver-node budget (overridden by a
//!   request's own `budget.nodes`);
//! * `--deadline-ms N` — default per-request deadline, enforced from the
//!   moment each request's analysis starts (overridden by
//!   `budget.deadline_ms`);
//! * `--cache-file PATH` — persistent verdict cache: seed the shared cache
//!   from `PATH` before serving and rewrite it atomically after, so a
//!   restarted daemon answers repeat requests from disk;
//! * `--cache-cap N` — bound the shared cache to `N` entries with LRU
//!   eviction (default: `DELIN_CACHE_CAP`, 0 = unbounded);
//! * `--socket PATH` — serve sequential connections on a Unix socket
//!   instead of stdin/stdout. One shared verdict cache warms across
//!   connections; a client's `{"shutdown": true}` ends its own session,
//!   SIGINT ends the daemon.
//!
//! Ctrl-C trips the daemon-wide [`CancelToken`]: in-flight requests degrade
//! conservatively (their responses still arrive, attributed `cancelled`),
//! the per-session summary still prints to stderr, and the process exits
//! with the conventional 130.

use delin_dep::budget::CancelToken;
use delin_vic::cache::VerdictCache;
use delin_vic::persist;
use delin_vic::serve::{serve, serve_in, ServeConfig, ServeSummary};
use std::io::BufReader;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

const USAGE: &str = "usage: delin_serve [--workers N] [--max-in-flight N] [--nodes N] \
[--deadline-ms N] [--cache-file PATH] [--cache-cap N] [--socket PATH]";

fn arg_value(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn check_args() {
    let known = [
        "--workers",
        "--max-in-flight",
        "--nodes",
        "--deadline-ms",
        "--cache-file",
        "--cache-cap",
        "--socket",
    ];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if !known.contains(&arg) {
            eprintln!("delin_serve: unknown argument {arg:?}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        if args.get(i + 1).is_none() {
            eprintln!("delin_serve: {arg} needs a value");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        i += 2;
    }
}

fn main() {
    check_args();
    let shutdown = install_ctrl_c();
    let mut config = ServeConfig::default();
    if let Some(workers) = arg_value("--workers") {
        config.batch.workers = workers;
    }
    if let Some(bound) = arg_value("--max-in-flight") {
        config.max_in_flight = bound;
    }
    if let Some(nodes) = arg_value("--nodes") {
        config.batch.budget.node_limit = nodes as u64;
    }
    if let Some(ms) = arg_value("--deadline-ms") {
        config.batch.budget.deadline_ms = Some(ms as u64);
    }
    if let Some(cap) = arg_value("--cache-cap") {
        config.batch.cache_cap = cap;
    }
    let cache_file = arg_str("--cache-file").map(PathBuf::from);

    if let Some(path) = arg_str("--socket") {
        if let Err(e) = run_socket(Path::new(&path), &config, &shutdown, cache_file.as_deref()) {
            eprintln!("delin_serve: socket {path:?}: {e}");
            std::process::exit(1);
        }
    } else {
        config.batch.cache_file = cache_file;
        let stdin = std::io::stdin();
        let summary = serve(stdin.lock(), std::io::stdout(), &config, &shutdown);
        report(&summary);
    }
    if shutdown.is_cancelled() {
        eprintln!("delin_serve: interrupted; in-flight requests degraded conservatively");
        std::process::exit(130);
    }
}

/// Sequential connections on a Unix socket, all warming one externally
/// owned verdict cache (persisted around the accept loop, not per
/// session). Accepting is non-blocking + polled so SIGINT ends the daemon
/// even while it sits idle between connections.
fn run_socket(
    path: &Path,
    config: &ServeConfig,
    shutdown: &CancelToken,
    cache_file: Option<&Path>,
) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let cache = VerdictCache::shared_with_cap(config.batch.keying, config.batch.cache_cap);
    if let Some(file) = cache_file {
        let loaded = persist::load(&cache, file);
        eprintln!("persistent-cache: loaded={} rejected={}", loaded.loaded, loaded.rejected);
    }
    while !shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let writer = stream.try_clone()?;
                let summary =
                    serve_in(BufReader::new(stream), writer, config, shutdown, Some(&cache));
                report(&summary);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
    }
    if let Some(file) = cache_file {
        match persist::save(&cache, file) {
            Ok(saved) => eprintln!("persistent-cache: saved={saved}"),
            Err(e) => eprintln!("persistent-cache: flush failed: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// The per-session summary, on stderr so stdout stays pure protocol.
fn report(summary: &ServeSummary) {
    eprintln!(
        "serve: admitted={} completed={} rejected={} cancels={} errors={}",
        summary.admitted,
        summary.completed,
        summary.rejected,
        summary.cancel_requests,
        summary.protocol_errors
    );
    if summary.batch.persistent_loaded > 0
        || summary.batch.persistent_hits > 0
        || summary.batch.persistent_saved > 0
    {
        eprintln!(
            "persistent-cache: loaded={} hits={} saved={}",
            summary.batch.persistent_loaded,
            summary.batch.persistent_hits,
            summary.batch.persistent_saved
        );
    }
    if let Some(e) = &summary.batch.persist_error {
        eprintln!("persistent-cache: flush failed: {e}");
    }
    if let Some(e) = &summary.io_error {
        eprintln!("serve: transport error: {e}");
    }
}

// Signal wiring mirrors `batch_corpus`: the library crates forbid unsafe
// code, so the one unsafe operation — registering a C signal handler —
// lives in the binary. The handler only performs async-signal-safe work.

const SIGINT: i32 = 2;

static CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Installs the SIGINT handler once and returns the process-wide token it
/// trips — the daemon-level shutdown token [`serve`] watches.
fn install_ctrl_c() -> CancelToken {
    let token = CANCEL.get_or_init(CancelToken::new).clone();
    // SAFETY: `on_sigint` matches the C `void (*)(int)` handler signature
    // and performs only async-signal-safe operations (see above).
    unsafe {
        signal(SIGINT, on_sigint);
    }
    token
}
