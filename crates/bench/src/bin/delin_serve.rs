//! Analysis as a service: the long-lived jsonl daemon over the batch
//! engine ([`delin_vic::serve`]).
//!
//! Reads newline-delimited JSON requests from stdin (default) or a Unix
//! socket, and streams one JSON response per request — verdict edges,
//! scheduling-independent statistics, degradation reasons — tagged with the
//! client's request id. See the README's "Serving" section for the
//! request/response schemas.
//!
//! Flags:
//!
//! * `--workers N` — total worker budget for the analysis pool (default:
//!   auto / `DELIN_WORKERS`);
//! * `--max-in-flight N` — global admission bound: requests in flight at
//!   once across all connections; further requests are rejected with an
//!   `overloaded` error (default 64);
//! * `--nodes N` — default per-request solver-node budget (overridden by a
//!   request's own `budget.nodes`);
//! * `--deadline-ms N` — default per-request deadline, enforced from the
//!   moment each request's analysis starts (overridden by
//!   `budget.deadline_ms`);
//! * `--cache-file PATH` — persistent verdict cache: seed the shared cache
//!   from `PATH` before serving and rewrite it atomically after, so a
//!   restarted daemon answers repeat requests from disk;
//! * `--cache-cap N` — bound the shared cache to `N` entries with LRU
//!   eviction (default: `DELIN_CACHE_CAP`, 0 = unbounded);
//! * `--socket PATH` — serve **concurrent** connections on a Unix socket
//!   instead of stdin/stdout, multiplexed onto one worker pool and one
//!   shared verdict cache. A client's `{"shutdown": true}` ends its own
//!   session; SIGINT drains and ends the daemon.
//! * `--max-connections N` — concurrent connection cap (default 8); excess
//!   connections get one `{"type":"error","error":"busy",...}` line;
//! * `--conn-quota N` — per-connection in-flight quota under the global
//!   bound (default 8): a greedy client draws `overloaded` while other
//!   connections still admit;
//! * `--idle-timeout-ms N` — end a connection that sends nothing for `N`
//!   ms with a structured `idle_timeout` error (default 30000; 0 disables).
//!
//! Ctrl-C trips the daemon-wide [`CancelToken`]: admission stops, in-flight
//! requests degrade conservatively (their responses still flush, attributed
//! `cancelled`), the summary prints to stderr, and the process exits with
//! the conventional 130. The wakeup is event-driven end to end: the signal
//! handler writes one byte to a self-pipe; a watcher thread turns that into
//! a loopback connection that unblocks `accept`; readers observe the token
//! at their next read-timeout probe.

use delin_dep::budget::CancelToken;
use delin_vic::cache::VerdictCache;
use delin_vic::persist;
use delin_vic::serve::multi::{serve_connections, Accept, MultiConfig, MultiSummary};
use delin_vic::serve::{serve, ServeConfig, ServeSummary};
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const USAGE: &str = "usage: delin_serve [--workers N] [--max-in-flight N] [--nodes N] \
[--deadline-ms N] [--cache-file PATH] [--cache-cap N] [--socket PATH] \
[--max-connections N] [--conn-quota N] [--idle-timeout-ms N]";

/// How often a blocked connection read wakes to probe the idle clock and
/// the shutdown token (the OS-level read timeout set on accepted sockets).
const READ_PROBE: Duration = Duration::from_millis(100);

fn main() {
    let cli = delin_bench::cli::Cli::from_env("delin_serve", USAGE);
    cli.validate_or_exit(
        &[],
        &[
            "--workers",
            "--max-in-flight",
            "--nodes",
            "--deadline-ms",
            "--cache-file",
            "--cache-cap",
            "--socket",
            "--max-connections",
            "--conn-quota",
            "--idle-timeout-ms",
        ],
    );
    let shutdown = install_ctrl_c();
    let mut config = ServeConfig::default();
    if let Some(workers) = cli.count_or_exit("--workers") {
        config.batch.workers = workers;
    }
    if let Some(bound) = cli.count_or_exit("--max-in-flight") {
        config.max_in_flight = bound;
    }
    if let Some(nodes) = cli.count_or_exit("--nodes") {
        config.batch.budget.node_limit = nodes as u64;
    }
    if let Some(ms) = cli.count_or_exit("--deadline-ms") {
        config.batch.budget.deadline_ms = Some(ms as u64);
    }
    if let Some(cap) = cli.count_or_exit("--cache-cap") {
        config.batch.cache_cap = cap;
    }
    let cache_file = cli.string("--cache-file").map(PathBuf::from);
    // Parsed unconditionally so a malformed value exits 2 in either mode,
    // even though only socket mode consumes them.
    let idle_timeout_ms = cli.count_or_exit("--idle-timeout-ms");
    let max_connections = cli.count_or_exit("--max-connections").unwrap_or(8);
    let conn_quota = cli.count_or_exit("--conn-quota").unwrap_or(8);

    if let Some(path) = cli.string("--socket") {
        config.idle_timeout_ms = match idle_timeout_ms {
            Some(0) => None,
            Some(ms) => Some(ms as u64),
            None => Some(30_000),
        };
        let multi = MultiConfig { serve: config, max_connections, conn_quota };
        if let Err(e) = run_socket(Path::new(&path), &multi, &shutdown, cache_file.as_deref()) {
            eprintln!("delin_serve: socket {path:?}: {e}");
            std::process::exit(1);
        }
    } else {
        config.batch.cache_file = cache_file;
        let stdin = std::io::stdin();
        let summary = serve(stdin.lock(), std::io::stdout(), &config, &shutdown);
        report(&summary);
    }
    if shutdown.is_cancelled() {
        eprintln!("delin_serve: interrupted; in-flight requests degraded conservatively");
        std::process::exit(130);
    }
}

/// Accepts Unix-socket connections for [`serve_connections`]. Blocking
/// accept; the SIGINT watcher wakes it with a loopback connection, which
/// the shutdown re-check then converts into `Ok(None)` (end of accepting).
struct SocketAcceptor<'a> {
    listener: UnixListener,
    shutdown: &'a CancelToken,
}

impl Accept for SocketAcceptor<'_> {
    type Reader = BufReader<UnixStream>;
    type Writer = UnixStream;
    fn accept(&mut self) -> std::io::Result<Option<(Self::Reader, Self::Writer)>> {
        loop {
            if self.shutdown.is_cancelled() {
                return Ok(None);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.is_cancelled() {
                        return Ok(None);
                    }
                    stream.set_read_timeout(Some(READ_PROBE))?;
                    let writer = stream.try_clone()?;
                    return Ok(Some((BufReader::new(stream), writer)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Concurrent connections on a Unix socket, multiplexed onto one worker
/// pool and one externally owned verdict cache (persisted around the whole
/// run, not per session).
fn run_socket(
    path: &Path,
    config: &MultiConfig,
    shutdown: &CancelToken,
    cache_file: Option<&Path>,
) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let cache =
        VerdictCache::shared_with_cap(config.serve.batch.keying, config.serve.batch.cache_cap);
    if let Some(file) = cache_file {
        let loaded = persist::load(&cache, file);
        eprintln!("persistent-cache: loaded={} rejected={}", loaded.loaded, loaded.rejected);
    }
    spawn_sigint_waker(path.to_path_buf());
    let acceptor = SocketAcceptor { listener, shutdown };
    let summary = serve_connections(acceptor, config, shutdown, Some(&cache));
    report_multi(&summary);
    if let Some(file) = cache_file {
        match persist::save(&cache, file) {
            Ok(saved) => eprintln!("persistent-cache: saved={saved}"),
            Err(e) => eprintln!("persistent-cache: flush failed: {e}"),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// The per-session summary, on stderr so stdout stays pure protocol.
fn report(summary: &ServeSummary) {
    eprintln!(
        "serve: admitted={} completed={} rejected={} cancels={} errors={}",
        summary.admitted,
        summary.completed,
        summary.rejected,
        summary.cancel_requests,
        summary.protocol_errors
    );
    if summary.batch.persistent_loaded > 0
        || summary.batch.persistent_hits > 0
        || summary.batch.persistent_saved > 0
    {
        eprintln!(
            "persistent-cache: loaded={} hits={} saved={}",
            summary.batch.persistent_loaded,
            summary.batch.persistent_hits,
            summary.batch.persistent_saved
        );
    }
    if let Some(e) = &summary.batch.persist_error {
        eprintln!("persistent-cache: flush failed: {e}");
    }
    if let Some(e) = &summary.io_error {
        eprintln!("serve: transport error: {e}");
    }
}

/// The whole-daemon summary for socket mode.
fn report_multi(summary: &MultiSummary) {
    eprintln!(
        "serve: connections={} busy={} admitted={} completed={} rejected={} cancels={} \
         errors={} idle_timeouts={} client_gone={}",
        summary.connections,
        summary.rejected_connections,
        summary.admitted,
        summary.completed,
        summary.rejected,
        summary.cancel_requests,
        summary.protocol_errors,
        summary.idle_timeouts,
        summary.client_gone
    );
    if let Some(e) = &summary.io_error {
        eprintln!("serve: transport error: {e}");
    }
}

// Signal wiring mirrors `batch_corpus`: the library crates forbid unsafe
// code, so the unsafe operations — registering a C signal handler and the
// self-pipe it writes — live in the binary. The handler only performs
// async-signal-safe work: one atomic store (the token) and one write(2)
// to the pipe.

const SIGINT: i32 = 2;

static CANCEL: OnceLock<CancelToken> = OnceLock::new();
/// Write end of the self-pipe (-1 until socket mode arms it).
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_sigint(_signum: i32) {
    if let Some(token) = CANCEL.get() {
        token.cancel();
    }
    let fd = WAKE_FD.load(Ordering::Acquire);
    if fd >= 0 {
        let byte = 1u8;
        // SAFETY: write(2) on a valid pipe fd with a one-byte buffer; it is
        // async-signal-safe by POSIX.
        unsafe {
            write(fd, std::ptr::addr_of!(byte).cast(), 1);
        }
    }
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    fn pipe(fds: *mut i32) -> i32;
    fn write(fd: i32, buf: *const std::ffi::c_void, count: usize) -> isize;
    fn read(fd: i32, buf: *mut std::ffi::c_void, count: usize) -> isize;
}

/// Installs the SIGINT handler once and returns the process-wide token it
/// trips — the daemon-level shutdown token [`serve`] watches.
fn install_ctrl_c() -> CancelToken {
    let token = CANCEL.get_or_init(CancelToken::new).clone();
    // SAFETY: `on_sigint` matches the C `void (*)(int)` handler signature
    // and performs only async-signal-safe operations (see above).
    unsafe {
        signal(SIGINT, on_sigint);
    }
    token
}

/// Arms the event-driven shutdown path for socket mode: the SIGINT handler
/// writes one byte into a self-pipe; this watcher thread blocks on the read
/// end and, when the byte arrives, opens a throwaway loopback connection to
/// `path` so the blocking `accept` wakes and observes the tripped token.
fn spawn_sigint_waker(path: PathBuf) {
    let mut fds = [-1i32; 2];
    // SAFETY: pipe(2) with a valid out-array of two fds.
    if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
        eprintln!("delin_serve: self-pipe unavailable; Ctrl-C may wait for a connection");
        return;
    }
    WAKE_FD.store(fds[1], Ordering::Release);
    let rd = fds[0];
    std::thread::spawn(move || {
        let mut byte = 0u8;
        loop {
            // SAFETY: blocking read(2) on our own pipe's read end.
            let n = unsafe { read(rd, std::ptr::addr_of_mut!(byte).cast(), 1) };
            if n == 1 {
                let _ = UnixStream::connect(&path);
                return;
            }
            if n == 0 {
                return; // write end closed: process is exiting anyway
            }
            // n < 0: EINTR or transient error; retry.
        }
    });
}
