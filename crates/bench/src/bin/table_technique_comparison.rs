//! E4: every implemented dependence test's verdict on the paper's
//! motivating example `C(i + 10j)` vs `C(i + 10j + 5)`.

fn main() {
    println!("E4: technique comparison on i1 + 10j1 - i2 - 10j2 - 5 = 0, i in [0,4], j in [0,9]");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::technique_rows()));
}
