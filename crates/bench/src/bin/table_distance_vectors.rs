//! E5: the MHL91 distance-vector example; delinearization recovers (2, 0).

fn main() {
    println!("E5: distance vectors for A(10i+j) = A(10(i+2)+j) + 7");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::distance_rows()));
}
