//! E1 / Fig. 1: the RiCEPS linearized-reference census.
//!
//! Pass `--full` to generate the corpus at the paper's reported line
//! counts (slower); the default uses size-reduced programs with identical
//! linearized-nest counts.

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("E1 / Figure 1: loop nests containing linearized references (RiCEPS, synthetic)");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::fig1_rows(full)));
    if !full {
        println!();
        println!("(size-reduced corpus; run with --full for the reported line counts)");
    }
}
