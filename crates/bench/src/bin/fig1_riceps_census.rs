//! E1 / Fig. 1: the RiCEPS linearized-reference census.
//!
//! Pass `--full` to generate the corpus at the paper's reported line
//! counts (slower); the default uses size-reduced programs with identical
//! linearized-nest counts.

use delin_vic::deps::{EngineConfig, TestChoice};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("E1 / Figure 1: loop nests containing linearized references (RiCEPS, synthetic)");
    println!();
    print!("{}", delin_bench::render_table(&delin_bench::experiments::fig1_rows(full)));
    if !full {
        println!();
        println!("(size-reduced corpus; run with --full for the reported line counts)");
    }

    // Dependence-engine observability over the same corpus: cache
    // effectiveness, executed attempts per test, and wall-clock cost.
    let lines = if full { None } else { Some(400) };
    let config =
        EngineConfig { choice: TestChoice::DelinearizationFirst, ..EngineConfig::default() };
    let stats = delin_bench::experiments::corpus_engine_stats(lines, &config);
    println!();
    println!("dependence engine over the corpus ({} workers, cache on):", effective(&config));
    print!("{}", stats.render_summary());
}

fn effective(config: &EngineConfig) -> String {
    if config.workers == 0 {
        format!("auto={}", config.effective_workers(usize::MAX))
    } else {
        config.workers.to_string()
    }
}
