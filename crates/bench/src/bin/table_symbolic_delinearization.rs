//! E6: symbolic delinearization of the Section 4 example.

fn main() {
    println!("E6: symbolic delinearization of A(N*N*k + N*j + i) vs A(N*N*k + j + N*i + N*N + N)");
    println!("    (N >= 2; i,k in [0, N-2], j in [0, N-1])");
    println!();
    print!("{}", delin_bench::experiments::symbolic_trace_text());
}
