//! E3 / Fig. 5: the delinearization algorithm trace on
//! `100k1 - 100k2 + 10j1 - 10i2 + i1 - j2 - 110 = 0`.

fn main() {
    println!("E3 / Figure 5: delinearization trace");
    println!();
    print!("{}", delin_bench::experiments::fig5_trace_text());
}
