//! Config-driven benchmark suites (`benchmarks/<suite>/config.json`).
//!
//! A suite names a corpus declaratively — which unit streams, at what
//! sizes and seeds — plus the sampling parameters and the fidelity
//! tolerance that CI holds the sampler to. The corpus binaries load a
//! suite instead of hardcoding workloads, so growing the benched corpus is
//! a config edit reviewed like one, not a code change to every binary.
//!
//! The format is the workspace's hand-rolled strict JSON
//! (`delin_vic::json` — no serde): a `delin-suite` schema marker, a
//! `streams` array of generator invocations, a `sample` object, and an
//! integer `tolerance_pct`. Unknown stream kinds, missing fields, and
//! non-integer sizes are structured load errors naming the offending
//! field, never defaults — a suite that CI gates on must not silently
//! shrink because of a typo.

use delin_corpus::sample::SampleConfig;
use delin_corpus::stream::{dense_units, generated_units, refinement_units, riceps_units};
use delin_vic::batch::BatchUnit;
use delin_vic::json::{self, Json};
use std::path::{Path, PathBuf};

/// The `schema` marker every suite config must carry.
pub const SUITE_SCHEMA: &str = "delin-suite";

/// One generator invocation inside a suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSpec {
    /// The eight synthetic RiCEPS programs, optionally size-reduced.
    Riceps {
        /// Approximate lines per program; `None` = the paper's full sizes.
        lines: Option<usize>,
    },
    /// The mixed generated workload (`delin_corpus::stream::generated_units`).
    Generated {
        /// Unit count.
        units: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The refinement-heavy workload.
    Refinement {
        /// Unit count.
        units: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The pair-dense workload that scales full runs to millions of pairs.
    Dense {
        /// Unit count.
        units: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl StreamSpec {
    /// The stream as a lazy unit iterator.
    pub fn units(&self) -> Box<dyn Iterator<Item = BatchUnit> + Send> {
        match *self {
            StreamSpec::Riceps { lines } => Box::new(riceps_units(lines)),
            StreamSpec::Generated { units, seed } => Box::new(generated_units(units, seed)),
            StreamSpec::Refinement { units, seed } => Box::new(refinement_units(units, seed)),
            StreamSpec::Dense { units, seed } => Box::new(dense_units(units, seed)),
        }
    }

    /// How many units the stream will yield (RiCEPS is the fixed suite of
    /// eight).
    pub fn declared_units(&self) -> usize {
        match *self {
            StreamSpec::Riceps { .. } => 8,
            StreamSpec::Generated { units, .. }
            | StreamSpec::Refinement { units, .. }
            | StreamSpec::Dense { units, .. } => units,
        }
    }
}

/// One loaded suite config.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteConfig {
    /// Suite name from the config (falls back to the directory name).
    pub name: String,
    /// Where the config was loaded from.
    pub path: PathBuf,
    /// The corpus, as an ordered list of generator invocations.
    pub streams: Vec<StreamSpec>,
    /// Sampling parameters for `--sampled` runs.
    pub sample: SampleConfig,
    /// The weighted-vs-full verdict-mix error bound, in percent, that
    /// sampled-fidelity gates hold this suite to.
    pub tolerance_pct: f64,
}

impl SuiteConfig {
    /// Loads and validates `path`.
    pub fn load(path: &Path) -> Result<SuiteConfig, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        SuiteConfig::parse(path, &text)
    }

    /// Parses a config text (exposed for tests; `path` is recorded and
    /// used as the name fallback).
    pub fn parse(path: &Path, text: &str) -> Result<SuiteConfig, String> {
        let at = |field: &str| format!("{}: {field}", path.display());
        let root = json::parse(text).map_err(|e| format!("{}: {e}", path.display()))?;
        let obj = root.as_obj().ok_or_else(|| at("config must be a JSON object"))?;
        let schema = obj.get("schema").and_then(Json::as_str).unwrap_or_default();
        if schema != SUITE_SCHEMA {
            return Err(at(&format!("schema must be \"{SUITE_SCHEMA}\", got {schema:?}")));
        }
        let name = match obj.get("name").and_then(Json::as_str) {
            Some(n) => n.to_string(),
            None => path
                .parent()
                .and_then(|p| p.file_name())
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "suite".into()),
        };
        let Some(Json::Arr(raw_streams)) = obj.get("streams") else {
            return Err(at("\"streams\" must be an array"));
        };
        if raw_streams.is_empty() {
            return Err(at("\"streams\" must not be empty"));
        }
        let mut streams = Vec::with_capacity(raw_streams.len());
        for (i, raw) in raw_streams.iter().enumerate() {
            streams.push(parse_stream(raw).map_err(|e| at(&format!("streams[{i}]: {e}")))?);
        }
        let sample = match obj.get("sample") {
            None => SampleConfig::default(),
            Some(raw) => parse_sample(raw).map_err(|e| at(&format!("sample: {e}")))?,
        };
        let tolerance_pct = match obj.get("tolerance_pct") {
            None => 10.0,
            Some(v) => {
                v.as_u64().ok_or_else(|| at("\"tolerance_pct\" must be a non-negative integer"))?
                    as f64
            }
        };
        Ok(SuiteConfig { name, path: path.to_path_buf(), streams, sample, tolerance_pct })
    }

    /// The whole corpus as one lazy stream, in config order.
    pub fn units(&self) -> Box<dyn Iterator<Item = BatchUnit> + Send> {
        let mut chained: Box<dyn Iterator<Item = BatchUnit> + Send> = Box::new(std::iter::empty());
        for stream in &self.streams {
            chained = Box::new(chained.chain(stream.units()));
        }
        chained
    }

    /// How many units the suite declares across all streams.
    pub fn declared_units(&self) -> usize {
        self.streams.iter().map(StreamSpec::declared_units).sum()
    }
}

fn field_usize(
    obj: &std::collections::BTreeMap<String, Json>,
    name: &str,
) -> Result<usize, String> {
    obj.get(name)
        .and_then(Json::as_u64)
        .map(|v| v as usize)
        .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))
}

fn field_u64(obj: &std::collections::BTreeMap<String, Json>, name: &str) -> Result<u64, String> {
    obj.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))
}

fn parse_stream(raw: &Json) -> Result<StreamSpec, String> {
    let obj = raw.as_obj().ok_or("stream must be an object")?;
    let kind = obj.get("kind").and_then(Json::as_str).ok_or("\"kind\" must be a string")?;
    match kind {
        "riceps" => {
            let lines = match obj.get("lines") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("\"lines\" must be a non-negative integer or null")?
                        as usize)
                }
            };
            Ok(StreamSpec::Riceps { lines })
        }
        "generated" => Ok(StreamSpec::Generated {
            units: field_usize(obj, "units")?,
            seed: field_u64(obj, "seed")?,
        }),
        "refinement" => Ok(StreamSpec::Refinement {
            units: field_usize(obj, "units")?,
            seed: field_u64(obj, "seed")?,
        }),
        "dense" => Ok(StreamSpec::Dense {
            units: field_usize(obj, "units")?,
            seed: field_u64(obj, "seed")?,
        }),
        other => Err(format!("unknown stream kind {other:?}")),
    }
}

fn parse_sample(raw: &Json) -> Result<SampleConfig, String> {
    let obj = raw.as_obj().ok_or("must be an object")?;
    let mut config = SampleConfig::default();
    if obj.get("clusters").is_some() {
        config.clusters = field_usize(obj, "clusters")?;
    }
    if obj.get("seed").is_some() {
        config.seed = field_u64(obj, "seed")?;
    }
    if obj.get("iterations").is_some() {
        config.iterations = field_usize(obj, "iterations")?;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<SuiteConfig, String> {
        SuiteConfig::parse(Path::new("benchmarks/t/config.json"), text)
    }

    #[test]
    fn a_full_config_round_trips() {
        let suite = parse(
            r#"{
                "schema": "delin-suite",
                "name": "demo",
                "streams": [
                    {"kind": "riceps", "lines": 120},
                    {"kind": "generated", "units": 3, "seed": 7},
                    {"kind": "refinement", "units": 2, "seed": 7},
                    {"kind": "dense", "units": 2, "seed": 9}
                ],
                "sample": {"clusters": 4, "seed": 11, "iterations": 32},
                "tolerance_pct": 7
            }"#,
        )
        .unwrap();
        assert_eq!(suite.name, "demo");
        assert_eq!(suite.streams.len(), 4);
        assert_eq!(suite.declared_units(), 8 + 3 + 2 + 2);
        assert_eq!(suite.sample, SampleConfig { clusters: 4, seed: 11, iterations: 32 });
        assert_eq!(suite.tolerance_pct, 7.0);
        let units: Vec<BatchUnit> = suite.units().collect();
        assert_eq!(units.len(), suite.declared_units());
        // Config order is corpus order.
        assert!(units[0].name.starts_with("riceps/"));
        assert!(units.last().unwrap().name.starts_with("dense/"));
    }

    #[test]
    fn name_falls_back_to_the_directory() {
        let suite = parse(r#"{"schema": "delin-suite", "streams": [{"kind": "riceps"}]}"#).unwrap();
        assert_eq!(suite.name, "t");
        assert_eq!(suite.streams, vec![StreamSpec::Riceps { lines: None }]);
    }

    #[test]
    fn structured_errors_name_the_offending_field() {
        let wrong_schema = parse(r#"{"schema": "delin-bench", "streams": []}"#).unwrap_err();
        assert!(wrong_schema.contains("delin-suite"), "{wrong_schema}");

        let unknown_kind =
            parse(r#"{"schema": "delin-suite", "streams": [{"kind": "fortran"}]}"#).unwrap_err();
        assert!(unknown_kind.contains("streams[0]"), "{unknown_kind}");
        assert!(unknown_kind.contains("fortran"), "{unknown_kind}");

        let bad_units = parse(
            r#"{"schema": "delin-suite", "streams": [{"kind": "dense", "units": -4, "seed": 1}]}"#,
        )
        .unwrap_err();
        assert!(bad_units.contains("units"), "{bad_units}");

        let empty = parse(r#"{"schema": "delin-suite", "streams": []}"#).unwrap_err();
        assert!(empty.contains("must not be empty"), "{empty}");

        let garbage = parse("not json").unwrap_err();
        assert!(garbage.contains("config.json"), "{garbage}");
    }
}
