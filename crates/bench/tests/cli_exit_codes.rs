//! The corpus binaries' shared command-line contract, pinned at the
//! process level: a malformed numeric value, an unknown flag, or a flag
//! missing its value exits with code 2 (`delin_bench::cli::BAD_USAGE`)
//! before any work starts, and says why on stderr.
//!
//! The parsing logic itself is unit-tested in `delin_bench::cli`; this
//! suite proves all four binaries actually route their arguments through
//! it (the historical bug class was a copy-pasted parser drifting in one
//! binary only).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(bin).args(args).output().expect("binary spawns");
    let code = output.status.code().expect("binary exits normally");
    (code, String::from_utf8_lossy(&output.stderr).into_owned())
}

#[test]
fn malformed_counts_exit_two_in_every_binary() {
    let cases: &[(&str, &[&str])] = &[
        (env!("CARGO_BIN_EXE_batch_corpus"), &["--workers", "four"]),
        (env!("CARGO_BIN_EXE_delin_serve"), &["--cache-cap", "many"]),
        (env!("CARGO_BIN_EXE_delin_loadgen"), &["--clients", "x", "--socket", "/none"]),
        (env!("CARGO_BIN_EXE_delin_trace"), &["replay", "--workers", "x"]),
    ];
    for (bin, args) in cases {
        let (code, stderr) = run(bin, args);
        assert_eq!(code, 2, "{bin} {args:?} must exit 2, stderr:\n{stderr}");
        assert!(stderr.contains("needs a number"), "{bin}: {stderr}");
        assert!(stderr.contains("usage:"), "{bin} must print usage: {stderr}");
    }
}

#[test]
fn unknown_flags_and_missing_values_exit_two() {
    let (code, stderr) = run(env!("CARGO_BIN_EXE_batch_corpus"), &["--wrokers", "2"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--wrokers"), "{stderr}");

    let (code, stderr) = run(env!("CARGO_BIN_EXE_delin_serve"), &["--workers"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("needs a value"), "{stderr}");

    let (code, stderr) = run(env!("CARGO_BIN_EXE_delin_trace"), &["transcode"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("transcode"), "{stderr}");
}
