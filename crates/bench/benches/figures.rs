//! Criterion benches for the figure-regeneration paths (E1, E2, E3) and
//! the end-to-end pipeline (E9).

use criterion::{criterion_group, criterion_main, Criterion};
use delin_bench::experiments::{fig3_source, fig5_problem};
use delin_core::algorithm::{delinearize, DelinConfig};
use delin_corpus::census::census;
use delin_corpus::riceps::{all_benchmarks, generate_scaled};
use delin_frontend::parse_program;
use delin_numeric::Assumptions;
use delin_vic::pipeline::{run_pipeline, PipelineConfig};
use std::hint::black_box;

fn fig1_census(c: &mut Criterion) {
    let programs: Vec<_> = all_benchmarks()
        .iter()
        .map(|s| parse_program(&generate_scaled(s, 400)).expect("parses"))
        .collect();
    c.bench_function("fig1_census_corpus", |b| {
        b.iter(|| {
            let mut total = 0;
            for p in &programs {
                total += census(black_box(p), &Assumptions::new()).linearized_nests;
            }
            black_box(total)
        })
    });
}

fn fig3_table(c: &mut Criterion) {
    c.bench_function("fig3_dependence_analysis", |b| {
        b.iter(|| {
            black_box(run_pipeline(black_box(fig3_source()), &PipelineConfig::default()).unwrap())
        })
    });
}

fn fig5_trace(c: &mut Criterion) {
    let p = fig5_problem();
    let config = DelinConfig { collect_trace: true, ..DelinConfig::default() };
    c.bench_function("fig5_delinearize_with_trace", |b| {
        b.iter(|| black_box(delinearize(black_box(&p), 0, &config)))
    });
}

fn vectorize_end_to_end(c: &mut Criterion) {
    let spec = all_benchmarks().into_iter().find(|s| s.name == "QCD").unwrap();
    let src = generate_scaled(&spec, 150);
    c.bench_function("vectorize_qcd_150_lines", |b| {
        b.iter(|| black_box(run_pipeline(black_box(&src), &PipelineConfig::default()).unwrap()))
    });
}

criterion_group!(benches, fig1_census, fig3_table, fig5_trace, vectorize_end_to_end);
criterion_main!(benches);
