//! Criterion benches for E4/E8: per-technique cost on the motivating
//! example and throughput on the random linearized family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delin_bench::experiments::motivating_problem;
use delin_core::DelinearizationTest;
use delin_corpus::workload::{linearized_problem, LinearizedSpec};
use delin_dep::banerjee::BanerjeeTest;
use delin_dep::exact::ExactSolver;
use delin_dep::fourier::FourierMotzkin;
use delin_dep::gcd::GcdTest;
use delin_dep::lambda::LambdaTest;
use delin_dep::shostak::ShostakTest;
use delin_dep::verdict::DependenceTest;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn intro_example(c: &mut Criterion) {
    let p = motivating_problem();
    let mut group = c.benchmark_group("intro_example");
    group.bench_function("delinearization", |b| {
        let t = DelinearizationTest::default();
        b.iter(|| black_box(DependenceTest::<i128>::test(&t, black_box(&p))))
    });
    group.bench_function("gcd", |b| b.iter(|| black_box(GcdTest.test(black_box(&p)))));
    group.bench_function("banerjee", |b| b.iter(|| black_box(BanerjeeTest.test(black_box(&p)))));
    group.bench_function("lambda", |b| b.iter(|| black_box(LambdaTest.test(black_box(&p)))));
    group.bench_function("shostak", |b| {
        let t = ShostakTest::default();
        b.iter(|| black_box(t.test(black_box(&p))))
    });
    group.bench_function("fourier-motzkin-real", |b| {
        let t = FourierMotzkin::real();
        b.iter(|| black_box(t.test(black_box(&p))))
    });
    group.bench_function("fourier-motzkin-tighten", |b| {
        let t = FourierMotzkin::tightened();
        b.iter(|| black_box(t.test(black_box(&p))))
    });
    group.bench_function("exact", |b| {
        let t = ExactSolver::default();
        b.iter(|| black_box(t.test(black_box(&p))))
    });
    group.finish();
}

fn precision_family(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(99);
    let spec = LinearizedSpec::default();
    let problems: Vec<_> = (0..64).map(|_| linearized_problem(&mut rng, &spec)).collect();
    let mut group = c.benchmark_group("linearized_family_64");
    for (name, f) in [
        (
            "delinearization",
            Box::new(|p: &_| DependenceTest::<i128>::test(&DelinearizationTest::default(), p))
                as Box<dyn Fn(&delin_dep::problem::DependenceProblem<i128>) -> _>,
        ),
        ("banerjee", Box::new(|p: &_| BanerjeeTest.test(p))),
        ("fourier-motzkin-tighten", Box::new(|p: &_| FourierMotzkin::tightened().test(p))),
        ("exact", Box::new(|p: &_| ExactSolver::default().test(p))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &problems, |b, ps| {
            b.iter(|| {
                let mut n = 0;
                for p in ps {
                    if f(black_box(p)).is_independent() {
                        n += 1;
                    }
                }
                black_box(n)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, intro_example, precision_family);
criterion_main!(benches);
