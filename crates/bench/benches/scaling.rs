//! Criterion bench for E7: technique runtime vs number of loop variables
//! on the generalized motivating example (always independent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delin_core::DelinearizationTest;
use delin_corpus::workload::scaling_problem;
use delin_dep::banerjee::BanerjeeTest;
use delin_dep::exact::ExactSolver;
use delin_dep::fourier::FourierMotzkin;
use delin_dep::gcd::GcdTest;
use delin_dep::verdict::DependenceTest;
use std::hint::black_box;

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    for loops in [1usize, 2, 3, 4, 6, 8] {
        let p = scaling_problem(loops, 10);
        group.bench_with_input(BenchmarkId::new("delinearization", loops), &p, |b, p| {
            let t = DelinearizationTest::default();
            b.iter(|| black_box(DependenceTest::<i128>::test(&t, black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("gcd", loops), &p, |b, p| {
            b.iter(|| black_box(GcdTest.test(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("banerjee", loops), &p, |b, p| {
            b.iter(|| black_box(BanerjeeTest.test(black_box(p))))
        });
        group.bench_with_input(BenchmarkId::new("fourier-motzkin-tighten", loops), &p, |b, p| {
            let t = FourierMotzkin::tightened();
            b.iter(|| black_box(t.test(black_box(p))))
        });
        if loops <= 6 {
            group.bench_with_input(BenchmarkId::new("exact", loops), &p, |b, p| {
                let t = ExactSolver::default();
                b.iter(|| black_box(t.test(black_box(p))))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
