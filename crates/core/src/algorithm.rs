//! The delinearization algorithm (paper Fig. 4).
//!
//! Input: one constrained dependence equation `c0 + Σ ck·zk = 0`,
//! `zk ∈ [0, Zk]`. The algorithm orders the coefficients by absolute
//! value, computes the suffix gcds `gk`, and scans from the smallest
//! coefficient to the largest, maintaining the range `[smin, smax]` of the
//! already-scanned prefix. Whenever `max(|smin + r|, |smax + r|) < gk`
//! (with `r ≡ c0 (mod gk)`), the separation theorem applies: the prefix
//! becomes an independently solvable *dimension* with constant `r`, and the
//! scan continues on the remainder with constant `c0 − r`.
//!
//! On the fly the algorithm proves independence with the combined
//! sharpness of the GCD test (first iteration) and the Banerjee
//! inequalities applied per dimension (`cmin > 0` or `cmax < 0`), exactly
//! as the paper's Section 3 establishes.
//!
//! The implementation is generic over the coefficient ring, so the same
//! code performs the *symbolic* delinearization of Section 4; undecidable
//! symbolic comparisons simply inhibit a separation (the conservative
//! reading of the paper's "keep and process predicates").

use crate::trace::TraceRow;
use delin_dep::dirvec::{Dir, DirVec};
use delin_dep::hierarchy;
use delin_dep::problem::DependenceProblem;
use delin_numeric::{Coeff, Trilean};

/// Configuration for [`delinearize`].
#[derive(Debug, Clone)]
pub struct DelinConfig {
    /// Record a [`TraceRow`] per iteration (the Fig. 5 table).
    pub collect_trace: bool,
    /// Node budget for the exact per-dimension solvers used downstream.
    pub dimension_node_limit: u64,
    /// Optional full resource budget (deadline + cancellation on top of the
    /// node limit) threaded into the per-dimension exact solvers. When set
    /// it *replaces* `dimension_node_limit`, and any exhaustion is recorded
    /// in its shared trip flag so callers can tell that the verdict
    /// degraded. `None` keeps the node-only historical behaviour.
    pub budget: Option<delin_dep::budget::ResourceBudget>,
    /// Return early with [`DelinOutcome::Independent`] when the on-the-fly
    /// GCD/Banerjee check fires (the Fig. 4 behaviour). Source-level
    /// delinearization of a single *address expression* turns this off: it
    /// wants the full separation even when a "dimension" excludes zero.
    pub stop_on_independence: bool,
    /// Memoize per-dimension refinement subtrees in a
    /// [`delin_dep::exact::SubtreeStore`] so the direction-hierarchy walk
    /// and the distance extraction share solves. Off reproduces the
    /// fresh-solve engine node for node; verdicts are identical either way.
    pub incremental: bool,
    /// An externally owned [`delin_dep::exact::SubtreeStore`] to refine
    /// through instead of a per-call private one. The verdict cache hands
    /// the same store to every decision of a canonical problem, so sibling
    /// refinements across a unit (and across units) share subtrees. Ignored
    /// when `incremental` is off; `None` uses a fresh per-call store.
    pub solve_store: Option<std::sync::Arc<delin_dep::exact::SubtreeStore>>,
    /// Run the per-dimension exact solvers on the arena path (per-worker
    /// scratch reuse — see [`delin_dep::exact::arena_from_env`]). Pure perf
    /// knob; search order and verdicts are identical either way. Defaults
    /// to the `DELIN_ARENA` environment switch.
    pub arena: bool,
}

impl Default for DelinConfig {
    fn default() -> Self {
        DelinConfig {
            collect_trace: false,
            dimension_node_limit: 1_000_000,
            budget: None,
            stop_on_independence: true,
            incremental: true,
            solve_store: None,
            arena: delin_dep::exact::arena_from_env(),
        }
    }
}

/// One separated dimension: the constrained equation
/// `constant + Σ terms.coeff·z_var = 0` over the original problem's
/// variables (still bounded by the problem's `[0, upper]` ranges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension<C> {
    /// The dimension's constant (`r` at separation time).
    pub constant: C,
    /// `(problem variable index, coefficient)` pairs, smallest-|coefficient|
    /// first.
    pub terms: Vec<(usize, C)>,
}

impl<C: Coeff> Dimension<C> {
    /// Renders the dimension as an equation using the problem's variable
    /// names.
    pub fn render(&self, problem: &DependenceProblem<C>) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let a = problem.assumptions();
        let mut first = true;
        for (var, c) in self.terms.iter().rev() {
            // A negative coefficient is rendered as a subtraction of its
            // magnitude — but only when that magnitude is representable
            // (`-i128::MIN` is not). Otherwise keep the raw value, whose
            // own sign makes the rendering unambiguous.
            let (neg, mag) = match (c.sign(a), c.checked_neg()) {
                (Some(delin_numeric::Sign::Negative), Ok(m)) => (true, m),
                _ => (false, c.clone()),
            };
            let name = &problem.vars()[*var].name;
            if first {
                if neg {
                    s.push('-');
                }
                first = false;
            } else if neg {
                s.push_str(" - ");
            } else {
                s.push_str(" + ");
            }
            if mag == C::one() {
                let _ = write!(s, "{name}");
            } else {
                let _ = write!(s, "{mag}*{name}");
            }
        }
        let c = &self.constant;
        if first {
            let _ = write!(s, "{c}");
        } else if !c.is_zero() {
            match (c.sign(a), c.checked_neg()) {
                (Some(delin_numeric::Sign::Negative), Ok(m)) => {
                    let _ = write!(s, " - {m}");
                }
                _ => {
                    let _ = write!(s, " + {c}");
                }
            }
        }
        s.push_str(" = 0");
        s
    }
}

/// The separation produced by one run of the algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Separation<C> {
    /// Separated dimensions, smallest coefficients first. A run that could
    /// not separate anything yields a single dimension equal to the whole
    /// equation.
    pub dimensions: Vec<Dimension<C>>,
    /// Per-iteration trace (empty unless requested).
    pub trace: Vec<TraceRow<C>>,
}

impl<C: Coeff> Separation<C> {
    /// Number of separated dimensions.
    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }
}

/// Result of delinearizing one equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelinOutcome<C> {
    /// Proven independent on the fly (GCD test or per-dimension Banerjee).
    Independent {
        /// The dimensions separated before the proof, for reporting.
        separation: Separation<C>,
    },
    /// Not disproved; the equation factored into `separation.dimensions`.
    Separated {
        /// The separation.
        separation: Separation<C>,
    },
}

impl<C: Coeff> DelinOutcome<C> {
    /// `true` when independence was proven.
    pub fn is_independent(&self) -> bool {
        matches!(self, DelinOutcome::Independent { .. })
    }

    /// The separation, whichever way the run ended.
    pub fn separation(&self) -> &Separation<C> {
        match self {
            DelinOutcome::Independent { separation } | DelinOutcome::Separated { separation } => {
                separation
            }
        }
    }
}

/// Runs the delinearization algorithm on equation `eq_index` of `problem`.
///
/// # Panics
///
/// Panics when `eq_index` is out of range.
pub fn delinearize<C: Coeff>(
    problem: &DependenceProblem<C>,
    eq_index: usize,
    config: &DelinConfig,
) -> DelinOutcome<C> {
    let eq = &problem.equations()[eq_index];
    let a = problem.assumptions();

    // Zero-trip loop: empty iteration space.
    for v in problem.vars() {
        if v.upper.is_nonneg(a).is_false() {
            return DelinOutcome::Independent {
                separation: Separation { dimensions: Vec::new(), trace: Vec::new() },
            };
        }
    }

    // Active terms, sorted ascending by |coefficient| (three-valued
    // comparisons; undecidable ones are treated as ties, which never
    // affects soundness — only which separations are discovered).
    let mut order: Vec<(usize, C)> = eq
        .coeffs
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.is_zero())
        .map(|(k, c)| (k, c.clone()))
        .collect();
    sort_by_abs(&mut order, a);
    let n = order.len();

    // Suffix gcds: g[k] = gcd(|c_Ik|, ..., |c_In|).
    let mut suffix_gcd: Vec<C> = vec![C::zero(); n];
    let mut acc = C::zero();
    for k in (0..n).rev() {
        acc = acc.gcd(&order[k].1);
        suffix_gcd[k] = acc.clone();
    }

    let mut smin: Option<C> = Some(C::zero());
    let mut smax: Option<C> = Some(C::zero());
    let mut kbeg = 0usize;
    let mut c0 = eq.c0.clone();
    let mut dimensions: Vec<Dimension<C>> = Vec::new();
    let mut trace: Vec<TraceRow<C>> = Vec::new();
    let mut independent = false;

    for k in 0..=n {
        let gk: Option<&C> = if k < n { Some(&suffix_gcd[k]) } else { None };
        // Candidate remainders r ≡ c0 (mod gk): the Euclidean one and its
        // negative companion (the paper's FORTRAN `mod` follows the
        // dividend's sign; trying both representatives subsumes it).
        let candidates: Vec<C> = match gk {
            Some(g) => match c0.div_rem(g) {
                Ok((_, r)) => {
                    let mut cands = vec![r.clone()];
                    if !r.is_zero() {
                        if let Ok(alt) = r.checked_sub(g) {
                            cands.push(alt);
                        }
                    }
                    cands
                }
                Err(_) => Vec::new(),
            },
            None => vec![c0.clone()],
        };

        // A committed separation hands constant `r` to the new dimension
        // and continues the scan on `c0 − r`; a candidate whose remainder
        // subtraction overflows therefore cannot be used at all — silently
        // keeping the old `c0` would change the solution set (unsound).
        // Rejecting it is conservative: at worst no separation happens here.
        let mut chosen: Option<(C, C)> = None; // (r, c0 − r)
        for r in candidates {
            let holds = match gk {
                Some(g) => separation_holds(&smin, &smax, &r, g, a),
                None => Trilean::True, // g_{n+1} = ∞
            };
            if holds.is_true() {
                if let Ok(next) = c0.checked_sub(&r) {
                    chosen = Some((r, next));
                    break;
                }
            }
        }

        // Values at check time, for the Fig. 5 trace.
        let smin_check = smin.clone();
        let smax_check = smax.clone();
        let c0_check = c0.clone();

        let mut separated_render: Option<String> = None;
        if let Some((r, next)) = chosen.clone() {
            // On-the-fly independence: cmin > 0 or cmax < 0.
            let cminmax = add_r(&smin, &smax, &r);
            if let Some((cmin, cmax)) = &cminmax {
                let pos = cmin.is_pos(a);
                let neg = match cmax.checked_neg() {
                    Ok(nc) => nc.is_pos(a),
                    Err(_) => Trilean::Unknown,
                };
                if pos.or(neg).is_true() && config.stop_on_independence {
                    independent = true;
                }
            }
            let dim = Dimension { constant: r.clone(), terms: order[kbeg..k].to_vec() };
            separated_render = Some(dim.render(problem));
            // The k = k0 trivial separation ("0 = 0") is the GCD test; it
            // carries no variables and is recorded only in the trace.
            if !dim.terms.is_empty() || !dim.constant.is_zero() {
                dimensions.push(dim);
            }
            smin = Some(C::zero());
            smax = Some(C::zero());
            kbeg = k;
            c0 = next;
        }

        if config.collect_trace {
            trace.push(TraceRow {
                k: k + 1,
                coeff: if k < n { Some(order[k].1.clone()) } else { None },
                smin: smin_check,
                smax: smax_check,
                c0: c0_check,
                g: gk.cloned(),
                r: chosen.map(|(r, _)| r),
                separated: separated_render,
            });
        }

        if independent {
            return DelinOutcome::Independent { separation: Separation { dimensions, trace } };
        }

        // Accumulate coefficient k into the running prefix range:
        // smin += c⁻·Z, smax += c⁺·Z.
        if k < n {
            let (var, c) = &order[k];
            let z = &problem.vars()[*var].upper;
            smin = accumulate(&smin, c.neg_part(a), z);
            smax = accumulate(&smax, c.pos_part(a), z);
        }
    }

    if dimensions.is_empty() {
        // Nothing separated (can happen for the trivially-zero equation).
        dimensions.push(Dimension { constant: eq.c0.clone(), terms: order });
    }
    DelinOutcome::Separated { separation: Separation { dimensions, trace } }
}

fn add_r<C: Coeff>(smin: &Option<C>, smax: &Option<C>, r: &C) -> Option<(C, C)> {
    let lo = smin.as_ref()?.checked_add(r).ok()?;
    let hi = smax.as_ref()?.checked_add(r).ok()?;
    Some((lo, hi))
}

fn accumulate<C: Coeff>(acc: &Option<C>, part: Option<C>, z: &C) -> Option<C> {
    let acc = acc.as_ref()?;
    let part = part?;
    acc.checked_add(&part.checked_mul(z).ok()?).ok()
}

/// `max(|smin + r|, |smax + r|) < g` as the equivalent convex conditions
/// `g + (smin + r) > 0` and `g − (smax + r) > 0`.
fn separation_holds<C: Coeff>(
    smin: &Option<C>,
    smax: &Option<C>,
    r: &C,
    g: &C,
    a: &delin_numeric::Assumptions,
) -> Trilean {
    let Some((cmin, cmax)) = add_r(smin, smax, r) else {
        return Trilean::Unknown;
    };
    let Ok(lo_ok) = g.checked_add(&cmin) else {
        return Trilean::Unknown;
    };
    let Ok(hi_ok) = g.checked_sub(&cmax) else {
        return Trilean::Unknown;
    };
    lo_ok.is_pos(a).and(hi_ok.is_pos(a))
}

/// Ascending insertion sort by |coefficient| under three-valued
/// comparisons. An item moves earlier when its magnitude is *provably* no
/// larger than its neighbour's and the reverse is not provable — so `1`
/// sorts before `N` under `N ≥ 1` even though `N = 1` is possible.
/// Undecidable comparisons behave as ties (stable); the ordering is a
/// heuristic and never affects soundness, only which separations are
/// discovered.
fn sort_by_abs<C: Coeff>(items: &mut [(usize, C)], a: &delin_numeric::Assumptions) {
    for i in 1..items.len() {
        let mut j = i;
        while j > 0 {
            let earlier = items[j - 1].1.abs(a);
            let later = items[j].1.abs(a);
            let swap = match (earlier, later) {
                (Some(e), Some(l)) => {
                    l.lt(&e, a).is_true() || (l.le(&e, a).is_true() && !e.le(&l, a).is_true())
                }
                _ => false,
            };
            if swap {
                items.swap(j - 1, j);
                j -= 1;
            } else {
                break;
            }
        }
    }
}

/// Builds the sub-problem of `problem` restricted to one dimension: only
/// the dimension's variables (renumbered), its single equation, and the
/// common-loop pairs fully contained in the dimension. Returns the
/// sub-problem and, per sub-pair, the original loop level.
pub fn dimension_subproblem<C: Coeff>(
    problem: &DependenceProblem<C>,
    dim: &Dimension<C>,
) -> (DependenceProblem<C>, Vec<usize>) {
    let mut b = DependenceProblem::<C>::builder();
    let mut map: Vec<Option<usize>> = vec![None; problem.num_vars()];
    for (var, _) in &dim.terms {
        let info = &problem.vars()[*var];
        map[*var] = Some(b.var(info.name.clone(), info.upper.clone()));
    }
    let mut coeffs: Vec<C> = (0..dim.terms.len()).map(|_| C::zero()).collect();
    for (var, c) in &dim.terms {
        coeffs[map[*var].expect("just added")] = c.clone();
    }
    b.equation(dim.constant.clone(), coeffs);
    let mut levels = Vec::new();
    for (level, &(x, y)) in problem.common_loops().iter().enumerate() {
        if let (Some(sx), Some(sy)) = (map[x], map[y]) {
            b.common_pair(sx, sy);
            levels.push(level);
        }
    }
    b.assumptions(problem.assumptions().clone());
    (b.build(), levels)
}

/// Direction vectors contributed by one dimension, expanded to the full
/// common-loop length (levels outside the dimension are `*`). `None` means
/// the dimension rules out every direction — i.e. it is unsatisfiable and
/// the whole dependence is independent.
pub fn dimension_direction_vectors<C: Coeff>(
    problem: &DependenceProblem<C>,
    dim: &Dimension<C>,
    oracle: &hierarchy::DirOracle<'_, C>,
) -> Option<Vec<DirVec>> {
    let total = problem.common_loops().len();
    // Strong-SIV shortcut (works symbolically): a dimension of the exact
    // shape `c·x − c·y + r = 0` over a common pair `(x, y)` forces
    // `y − x = r/c`, so the direction is the sign of `r/c`.
    if let Some(dv) = strong_siv_direction(problem, dim) {
        return match dv {
            StrongSiv::Independent => None,
            StrongSiv::Direction(level, dir) => {
                let mut full = vec![Dir::Any; total];
                full[level] = dir;
                Some(vec![DirVec(full)])
            }
        };
    }
    let (sub, levels) = dimension_subproblem(problem, dim);
    let atomic = hierarchy::atomic_direction_vectors(&sub, oracle);
    if atomic.is_empty() {
        return None;
    }
    Some(
        atomic
            .into_iter()
            .map(|dv| {
                let mut full = vec![Dir::Any; total];
                for (sub_level, &orig_level) in levels.iter().enumerate() {
                    full[orig_level] = dv.0[sub_level];
                }
                DirVec(full)
            })
            .collect(),
    )
}

enum StrongSiv {
    Independent,
    Direction(usize, Dir),
}

/// Detects the strong-SIV shape `c·x − c·y + r = 0` over a common pair and
/// resolves it symbolically. `None` when the shape or the required
/// symbolic facts are not available (callers fall back to the hierarchy).
fn strong_siv_direction<C: Coeff>(
    problem: &DependenceProblem<C>,
    dim: &Dimension<C>,
) -> Option<StrongSiv> {
    if dim.terms.len() != 2 {
        return None;
    }
    let a = problem.assumptions();
    let (va, ca) = &dim.terms[0];
    let (vb, cb) = &dim.terms[1];
    // Coefficients must be exact negations.
    if !ca.checked_add(cb).ok()?.is_zero() {
        return None;
    }
    // Orient as (source x, sink y) via the common-loop pairing.
    let (level, cx, x) = problem.common_loops().iter().enumerate().find_map(|(l, &(px, py))| {
        if (px, py) == (*va, *vb) {
            Some((l, ca.clone(), *va))
        } else if (px, py) == (*vb, *va) {
            Some((l, cb.clone(), *vb))
        } else {
            None
        }
    })?;
    let _ = x;
    // c·x − c·y + r = 0  ⇒  y − x = r / c.
    let d = dim.constant.try_div_exact(&cx)?;
    // The distance must be achievable: |d| ≤ Z. If provably not, the
    // dimension is unsatisfiable.
    let z = &problem.vars()[problem.common_loops()[level].0].upper;
    let sign = d.sign(a)?;
    let reachable = match sign {
        delin_numeric::Sign::Zero => Trilean::True,
        delin_numeric::Sign::Positive => d.le(z, a),
        delin_numeric::Sign::Negative => d.checked_neg().ok()?.le(z, a),
    };
    if reachable.is_false() {
        return Some(StrongSiv::Independent);
    }
    let dir = match sign {
        delin_numeric::Sign::Positive => Dir::Lt,
        delin_numeric::Sign::Zero => Dir::Eq,
        delin_numeric::Sign::Negative => Dir::Gt,
    };
    Some(StrongSiv::Direction(level, dir))
}

/// Folds per-dimension direction-vector sets with the paper's
/// `DirVecs = {dv ⊓ nv | dv ∈ DirVecs, nv ∈ NV, dv ⊓ nv ≠ ∅}` rule.
/// `None` means independent (some dimension contributed an empty set).
pub fn combine_direction_vectors(
    num_levels: usize,
    per_dimension: &[Vec<DirVec>],
) -> Option<Vec<DirVec>> {
    let mut acc = vec![DirVec::any(num_levels)];
    for nv in per_dimension {
        let mut next = Vec::new();
        for dv in &acc {
            for v in nv {
                if let Some(m) = dv.meet(v) {
                    next.push(m);
                }
            }
        }
        next.sort();
        next.dedup();
        if next.is_empty() {
            return None;
        }
        acc = next;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_dep::exact::ExactSolver;
    use delin_dep::hierarchy::exact_oracle;
    use proptest::prelude::*;

    fn cfg() -> DelinConfig {
        DelinConfig { collect_trace: true, ..DelinConfig::default() }
    }

    fn motivating() -> DependenceProblem<i128> {
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn motivating_example_proven_independent() {
        let out = delinearize(&motivating(), 0, &cfg());
        assert!(out.is_independent());
        // The i-dimension `i1 - i2 - 5 = 0` has cmin = -9, cmax = -1 < 0:
        // independence discovered when separating it.
    }

    #[test]
    fn dependent_example_separates_into_two_dimensions() {
        // i1 + 10 j1 - i2 - 10 j2 - 3 = 0: the i-dimension carries the -3.
        let p = DependenceProblem::single_equation(-3, vec![1, 10, -1, -10], vec![4, 9, 4, 9]);
        let out = delinearize(&p, 0, &cfg());
        assert!(!out.is_independent());
        let sep = out.separation();
        assert_eq!(sep.num_dimensions(), 2);
        // First dimension: i1 - i2 - 3 = 0 (vars 0 and 2).
        let d0 = &sep.dimensions[0];
        assert_eq!(d0.constant, -3);
        let vars0: Vec<usize> = d0.terms.iter().map(|t| t.0).collect();
        assert_eq!(vars0, vec![0, 2]);
        // Second dimension: 10 j1 - 10 j2 = 0.
        let d1 = &sep.dimensions[1];
        assert_eq!(d1.constant, 0);
        let vars1: Vec<usize> = d1.terms.iter().map(|t| t.0).collect();
        assert_eq!(vars1, vec![1, 3]);
    }

    #[test]
    fn gcd_failure_detected_on_first_iteration() {
        // 2x - 4y = 1: gcd 2 does not divide 1; both remainder candidates
        // (1 and -1) pass the condition and prove independence.
        let p = DependenceProblem::single_equation(1, vec![2, -4], vec![100, 100]);
        let out = delinearize(&p, 0, &cfg());
        assert!(out.is_independent());
    }

    #[test]
    fn fig5_paper_trace() {
        // 100k1 - 100k2 + 10j1 - 10i2 + i1 - j2 - 110 = 0,
        // i,k in [0,8], j in [0,9]. Variable order in the problem:
        // (i1, j1, k1, i2, j2, k2) with coefficients (1, 10, 100, -10, -1, -100).
        let p = DependenceProblem::single_equation(
            -110,
            vec![1, 10, 100, -10, -1, -100],
            vec![8, 9, 8, 8, 9, 8],
        );
        let out = delinearize(&p, 0, &cfg());
        assert!(!out.is_independent());
        let sep = out.separation();
        assert_eq!(sep.num_dimensions(), 3);
        // Dimension 1: i1 - j2 = 0 (r = 0).
        assert_eq!(sep.dimensions[0].constant, 0);
        // Dimension 2: 10 j1 - 10 i2 - 10 = 0 (r = -10).
        assert_eq!(sep.dimensions[1].constant, -10);
        // Dimension 3: 100 k1 - 100 k2 - 100 = 0 (r = -100).
        assert_eq!(sep.dimensions[2].constant, -100);
        // Trace matches Fig. 5's shape: 7 rows, separations at k = 1, 3, 5, 7.
        assert_eq!(sep.trace.len(), 7);
        let sep_rows: Vec<usize> =
            sep.trace.iter().filter(|r| r.separated.is_some()).map(|r| r.k).collect();
        assert_eq!(sep_rows, vec![1, 3, 5, 7]);
        // Row k=5 chose the negative remainder representative, like the
        // paper's FORTRAN mod.
        let row5 = &sep.trace[4];
        assert_eq!(row5.r, Some(-10));
        assert_eq!(row5.g, Some(100));
    }

    #[test]
    fn solution_sets_factor_exactly() {
        // Property (the theorem, through the algorithm): every separation
        // the algorithm makes preserves the solution set as a Cartesian
        // product. Cross-check against brute force.
        let cases: Vec<(i128, Vec<i128>, Vec<i128>)> = vec![
            (-3, vec![1, 10, -1, -10], vec![4, 9, 4, 9]),
            (0, vec![1, 10, -1, -10], vec![4, 9, 4, 9]),
            (-15, vec![1, 12, -1, -12], vec![5, 6, 5, 6]),
            (7, vec![2, 30, -2, -30], vec![4, 3, 4, 3]),
        ];
        for (c0, coeffs, uppers) in cases {
            let p = DependenceProblem::single_equation(c0, coeffs.clone(), uppers.clone());
            let out = delinearize(&p, 0, &cfg());
            let brute = brute_force_solutions(c0, &coeffs, &uppers);
            match out {
                DelinOutcome::Independent { .. } => {
                    assert!(brute.is_empty(), "c0={c0} coeffs={coeffs:?}");
                }
                DelinOutcome::Separated { separation } => {
                    let product = product_solutions(&p, &separation, &uppers);
                    let mut b = brute.clone();
                    b.sort();
                    assert_eq!(product, b, "c0={c0} coeffs={coeffs:?}");
                }
            }
        }
    }

    fn brute_force_solutions(c0: i128, coeffs: &[i128], uppers: &[i128]) -> Vec<Vec<i128>> {
        let mut out = Vec::new();
        let n = coeffs.len();
        let mut cur = vec![0i128; n];
        loop {
            let v: i128 = c0 + coeffs.iter().zip(&cur).map(|(c, x)| c * x).sum::<i128>();
            if v == 0 {
                out.push(cur.clone());
            }
            // Odometer increment.
            let mut k = 0;
            loop {
                if k == n {
                    return out;
                }
                cur[k] += 1;
                if cur[k] <= uppers[k] {
                    break;
                }
                cur[k] = 0;
                k += 1;
            }
        }
    }

    fn product_solutions(
        p: &DependenceProblem<i128>,
        sep: &Separation<i128>,
        uppers: &[i128],
    ) -> Vec<Vec<i128>> {
        // Enumerate each dimension's solutions and take the product;
        // variables in no dimension are free.
        let n = uppers.len();
        let mut assigned = vec![false; n];
        let mut partials: Vec<Vec<Vec<(usize, i128)>>> = Vec::new();
        for dim in &sep.dimensions {
            let vars: Vec<usize> = dim.terms.iter().map(|t| t.0).collect();
            for &v in &vars {
                assigned[v] = true;
            }
            let mut sols = Vec::new();
            let (sub, _) = dimension_subproblem(p, dim);
            let mut cur = vec![0i128; vars.len()];
            'odo: loop {
                if sub.is_solution(&cur).unwrap() {
                    sols.push(vars.iter().copied().zip(cur.iter().copied()).collect());
                }
                let mut k = 0;
                loop {
                    if k == vars.len() {
                        break 'odo;
                    }
                    cur[k] += 1;
                    if cur[k] <= uppers[vars[k]] {
                        break;
                    }
                    cur[k] = 0;
                    k += 1;
                }
            }
            partials.push(sols);
        }
        // Cartesian product.
        let mut acc: Vec<Vec<(usize, i128)>> = vec![Vec::new()];
        for sols in &partials {
            let mut next = Vec::new();
            for base in &acc {
                for s in sols {
                    let mut v = base.clone();
                    v.extend_from_slice(s);
                    next.push(v);
                }
            }
            acc = next;
        }
        // Free variables range over their whole domain.
        let free: Vec<usize> = (0..n).filter(|&k| !assigned[k]).collect();
        let mut out = Vec::new();
        for base in &acc {
            let mut cur: Vec<i128> = vec![0; free.len()];
            'odo2: loop {
                let mut full = vec![0i128; n];
                for &(k, v) in base {
                    full[k] = v;
                }
                for (i, &k) in free.iter().enumerate() {
                    full[k] = cur[i];
                }
                out.push(full);
                let mut k = 0;
                loop {
                    if k == free.len() {
                        break 'odo2;
                    }
                    cur[k] += 1;
                    if cur[k] <= uppers[free[k]] {
                        break;
                    }
                    cur[k] = 0;
                    k += 1;
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    proptest! {
        /// Random linearized equations: delinearization must agree with the
        /// exact solver whenever it claims independence, and its separation
        /// must preserve the solution set.
        #[test]
        fn sound_and_product_preserving(
            a1 in -3i128..=3, a2 in -3i128..=3,
            b1 in -3i128..=3, b2 in -3i128..=3,
            c0 in -40i128..=40,
            stride in 8i128..=16,
            ux in 2i128..=5, uy in 2i128..=5,
        ) {
            prop_assume!(a1 != 0 || a2 != 0);
            prop_assume!(b1 != 0 || b2 != 0);
            let coeffs = vec![a1, b1 * stride, a2, b2 * stride];
            let uppers = vec![ux, uy, ux, uy];
            let p = DependenceProblem::single_equation(c0, coeffs.clone(), uppers.clone());
            let out = delinearize(&p, 0, &DelinConfig::default());
            let brute = brute_force_solutions(c0, &coeffs, &uppers);
            match out {
                DelinOutcome::Independent { .. } => prop_assert!(brute.is_empty()),
                DelinOutcome::Separated { separation } => {
                    let product = product_solutions(&p, &separation, &uppers);
                    let mut b = brute.clone();
                    b.sort();
                    b.dedup();
                    prop_assert_eq!(product, b);
                }
            }
        }
    }

    #[test]
    fn direction_vector_combination() {
        // A(i + 10 j) = A(i + 10 j + 3) style with common pairs: source
        // (i1, j1), sink (i2, j2), equation i1 + 10 j1 - i2 - 10 j2 - 3 = 0.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 4);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation(-3, vec![1, 10, -1, -10]);
        let p = b.build();
        let out = delinearize(&p, 0, &cfg());
        let DelinOutcome::Separated { separation } = out else {
            panic!("expected separation");
        };
        let solver = ExactSolver::default();
        let oracle = exact_oracle(solver);
        let per_dim: Vec<Vec<DirVec>> = separation
            .dimensions
            .iter()
            .map(|d| dimension_direction_vectors(&p, d, &oracle).expect("feasible"))
            .collect();
        let combined = combine_direction_vectors(2, &per_dim).expect("dependent");
        // i1 = i2 + 3 forces '>' on loop i; j1 = j2 forces '=' on loop j.
        assert_eq!(combined, vec![DirVec(vec![Dir::Gt, Dir::Eq])]);
    }

    #[test]
    fn empty_dimension_direction_set_means_independent() {
        let per_dim = vec![vec![DirVec(vec![Dir::Lt])], vec![]];
        assert!(combine_direction_vectors(1, &per_dim).is_none());
        // Disjoint meets also collapse to independence.
        let per_dim = vec![vec![DirVec(vec![Dir::Lt])], vec![DirVec(vec![Dir::Gt])]];
        assert!(combine_direction_vectors(1, &per_dim).is_none());
    }

    #[test]
    fn zero_trip_loop() {
        let p = DependenceProblem::single_equation(0, vec![1, -1], vec![-1, 4]);
        assert!(delinearize(&p, 0, &cfg()).is_independent());
    }

    #[test]
    fn trivially_zero_equation() {
        let p = DependenceProblem::single_equation(0, vec![0, 0], vec![4, 4]);
        let out = delinearize(&p, 0, &cfg());
        assert!(!out.is_independent());
        assert_eq!(out.separation().num_dimensions(), 1);
    }

    #[test]
    fn contradictory_constant_equation() {
        let p = DependenceProblem::single_equation(7, vec![0, 0], vec![4, 4]);
        assert!(delinearize(&p, 0, &cfg()).is_independent());
    }

    #[test]
    fn overflowing_remainder_inhibits_separation() {
        // K = 2^126, c0 = i128::MAX − 2 = 2^127 − 3. At the prefix {z1, z2}
        // the suffix gcd is K and the negative remainder representative
        // r = −3 passes the separation condition — but committing to it
        // requires c0 − (−3) = 2^127, which overflows i128. The old code
        // silently kept c0, splitting off a {z1, z2} dimension with
        // constant −3 while the remainder kept the stale constant: that
        // factorization declares the (actually dependent) problem
        // independent. The candidate must instead be rejected, leaving the
        // whole equation as one conservative dimension.
        let k = 1i128 << 126;
        let c0 = i128::MAX - 2;
        let p = DependenceProblem::single_equation(c0, vec![1, -1, k, -k], vec![10, 10, 10, 10]);
        // Ground truth: z = (3, 0, 0, 2) solves 3 − 0 + 0 − 2K + c0 =
        // c0 + 3 − 2^127 = 0, so the problem is dependent.
        let out = delinearize(&p, 0, &cfg());
        assert!(!out.is_independent(), "overflow path must stay conservative");
        let sep = out.separation();
        // The telescoping invariant: dimension constants sum back to c0.
        // The unsound split (−3 kept alongside the stale remainder) breaks
        // it; the conservative whole-equation dimension satisfies it.
        let mut sum = 0i128;
        for d in &sep.dimensions {
            sum = sum.checked_add(d.constant).expect("constants telescope");
        }
        assert_eq!(sum, c0, "dimension constants must telescope to c0");
        // And the separation still covers every variable exactly once.
        let mut vars: Vec<usize> =
            sep.dimensions.iter().flat_map(|d| d.terms.iter().map(|t| t.0)).collect();
        vars.sort_unstable();
        assert_eq!(vars, vec![0, 1, 2, 3]);
    }

    #[test]
    fn render_survives_unnegatable_coefficients() {
        // −i128::MIN is unrepresentable; rendering must not fall back to
        // printing a minus sign in front of the still-negative raw value.
        let p = DependenceProblem::single_equation(i128::MIN, vec![i128::MIN, 1], vec![4, 4]);
        let dim = Dimension { constant: i128::MIN, terms: vec![(0, i128::MIN), (1, 1)] };
        let s = dim.render(&p);
        assert!(!s.contains("--"), "double negative in {s:?}");
        assert!(!s.contains("- -"), "double negative in {s:?}");
        // The ordinary negative path still renders as a subtraction.
        let dim = Dimension { constant: -3, terms: vec![(1, 1), (0, -2)] };
        let s = dim.render(&p);
        assert_eq!(s, "-2*z1 + z2 - 3 = 0");
    }

    #[test]
    fn symbolic_section4_example() {
        use delin_numeric::{Assumptions, SymPoly};
        // A(N*N*k1 + N*j1 + i1) vs A(N*N*k2 + j2 + N*i2 + N*N + N):
        // N²k1 + Nj1 + i1 - N²k2 - j2 - Ni2 - N² - N = 0,
        // i,k in [0, N-2], j in [0, N-1], N >= 2.
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let nm1 = n.checked_sub(&SymPoly::one()).unwrap();
        let nm2 = n.checked_sub(&SymPoly::constant(2)).unwrap();
        let c0 = n2.checked_add(&n).unwrap().checked_neg().unwrap();
        let coeffs = vec![
            SymPoly::one(),            // i1
            n.clone(),                 // j1
            n2.clone(),                // k1
            n.checked_neg().unwrap(),  // i2
            SymPoly::constant(-1),     // j2
            n2.checked_neg().unwrap(), // k2
        ];
        let uppers = [nm2.clone(), nm1.clone(), nm2.clone(), nm2.clone(), nm1.clone(), nm2.clone()];
        let mut builder = DependenceProblem::<SymPoly>::builder();
        for (idx, u) in uppers.iter().enumerate() {
            builder.var(format!("v{idx}"), u.clone());
        }
        builder.equation(c0, coeffs);
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 2);
        builder.assumptions(a);
        let p = builder.build();
        let out = delinearize(&p, 0, &cfg());
        assert!(!out.is_independent());
        let sep = out.separation();
        // Three dimensions: {i1, j2}, {j1, i2}, {k1, k2}.
        assert_eq!(sep.num_dimensions(), 3);
        let dim_vars: Vec<Vec<usize>> = sep
            .dimensions
            .iter()
            .map(|d| {
                let mut v: Vec<usize> = d.terms.iter().map(|t| t.0).collect();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(dim_vars, vec![vec![0, 4], vec![1, 3], vec![2, 5]]);
    }
}
