//! The separation theorem (paper Section 3).
//!
//! > **Theorem.** The set of solutions of the constrained equation
//! > `c0 + c1·z1 + … + cn·zn = 0`, `zk ∈ [0, Zk]`, coincides with the
//! > Cartesian product of the solution sets of
//! > `d0 + c1·z1 + … + cm·zm = 0` (over `z1..zm`) and
//! > `D0 + c_{m+1}·z_{m+1} + … + cn·zn = 0` (over the rest), provided
//! > `c0 = d0 + D0` and
//! > `gcd(D0, c_{m+1}, …, cn) > max(|d0 + Σ_{k≤m} ck⁻·Zk|,
//! >                                |d0 + Σ_{k≤m} ck⁺·Zk|)`.
//!
//! [`separation_condition`] evaluates the premise (three-valued, to support
//! symbolic coefficients); [`check_cartesian_product`] brute-force-verifies
//! the conclusion for concrete instances and is used by the property tests.

use delin_numeric::{Assumptions, Coeff, Trilean};

/// Evaluates the theorem's premise for a split after position `m` (i.e.
/// `prefix = (c, Z)` pairs `1..=m`, `suffix = (c, Z)` pairs `m+1..=n`) and
/// constant decomposition `c0 = d0 + big_d0`.
///
/// Returns [`Trilean::True`] when the premise provably holds under the
/// assumptions, [`Trilean::False`] when it provably fails, and
/// [`Trilean::Unknown`] when a symbolic quantity cannot be decided.
pub fn separation_condition<C: Coeff>(
    prefix: &[(C, C)],
    suffix: &[(C, C)],
    d0: &C,
    big_d0: &C,
    assumptions: &Assumptions,
) -> Trilean {
    // G = gcd(D0, c_{m+1}, ..., cn)
    let g = suffix.iter().fold(big_d0.clone(), |acc, (c, _)| acc.gcd(c));
    if g.is_zero() {
        // Empty suffix with D0 = 0: gcd is 0, never greater than a
        // non-negative maximum.
        return Trilean::False;
    }
    // cmin = d0 + Σ ck⁻ Zk ; cmax = d0 + Σ ck⁺ Zk.
    let mut cmin = d0.clone();
    let mut cmax = d0.clone();
    for (c, z) in prefix {
        let (Some(neg), Some(pos)) = (c.neg_part(assumptions), c.pos_part(assumptions)) else {
            return Trilean::Unknown;
        };
        let (Ok(lo), Ok(hi)) = (neg.checked_mul(z), pos.checked_mul(z)) else {
            return Trilean::Unknown;
        };
        let (Ok(nmin), Ok(nmax)) = (cmin.checked_add(&lo), cmax.checked_add(&hi)) else {
            return Trilean::Unknown;
        };
        cmin = nmin;
        cmax = nmax;
    }
    // max(|cmin|, |cmax|) < G  ⇔  -G < cmin ∧ cmax < G  (G > 0).
    let (Ok(g_plus_cmin), Ok(g_minus_cmax)) = (g.checked_add(&cmin), g.checked_sub(&cmax)) else {
        return Trilean::Unknown;
    };
    g_plus_cmin.is_pos(assumptions).and(g_minus_cmax.is_pos(assumptions))
}

/// Brute-force check of the theorem's conclusion for concrete data: the
/// solution set of the whole equation equals the Cartesian product of the
/// sub-equations' solution sets. Returns `false` if they differ (which
/// would falsify the theorem — used as a property-test oracle).
///
/// All bounds must be small enough to enumerate.
pub fn check_cartesian_product(
    prefix: &[(i128, i128)],
    suffix: &[(i128, i128)],
    d0: i128,
    big_d0: i128,
) -> bool {
    let full_solutions =
        enumerate(d0 + big_d0, &prefix.iter().chain(suffix).copied().collect::<Vec<_>>());
    let pre = enumerate(d0, prefix);
    let suf = enumerate(big_d0, suffix);
    let mut product = Vec::new();
    for a in &pre {
        for b in &suf {
            let mut v = a.clone();
            v.extend_from_slice(b);
            product.push(v);
        }
    }
    let mut full = full_solutions;
    full.sort();
    product.sort();
    full == product
}

/// All solutions of `c0 + Σ ck·zk = 0` with `zk ∈ [0, Zk]` by enumeration.
fn enumerate(c0: i128, terms: &[(i128, i128)]) -> Vec<Vec<i128>> {
    let mut out = Vec::new();
    let mut cur = vec![0i128; terms.len()];
    fn rec(
        terms: &[(i128, i128)],
        k: usize,
        acc: i128,
        cur: &mut Vec<i128>,
        out: &mut Vec<Vec<i128>>,
    ) {
        if k == terms.len() {
            if acc == 0 {
                out.push(cur.clone());
            }
            return;
        }
        let (c, z) = terms[k];
        for v in 0..=z.max(-1) {
            cur[k] = v;
            rec(terms, k + 1, acc + c * v, cur, out);
        }
    }
    rec(terms, 0, c0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_intro_split_satisfies_condition() {
        // i1 + 10 j1 - i2 - 10 j2 - 5 = 0 splits as
        //   prefix (i's): i1 - i2 - 5 = 0 (d0 = -5)
        //   suffix (j's): 10 j1 - 10 j2 = 0 (D0 = 0)
        // Condition: gcd(0, 10, 10) = 10 > max(|-5 + (-1)*4|, |-5 + 1*4|)
        //          = max(9, 1) = 9. Holds.
        let prefix = [(1i128, 4i128), (-1, 4)];
        let suffix = [(10i128, 9i128), (-10, 9)];
        let cond = separation_condition(&prefix, &suffix, &-5, &0, &Assumptions::new());
        assert!(cond.is_true());
        assert!(check_cartesian_product(&prefix, &suffix, -5, 0));
    }

    #[test]
    fn violated_condition_detected() {
        // Make the prefix range too wide: i in [0, 20].
        let prefix = [(1i128, 20i128), (-1, 20)];
        let suffix = [(10i128, 9i128), (-10, 9)];
        let cond = separation_condition(&prefix, &suffix, &-5, &0, &Assumptions::new());
        assert!(cond.is_false());
        // And indeed the Cartesian-product property fails here: e.g.
        // i1 - i2 = 15 with 10(j1 - j2) = -10 solves the whole equation but
        // the prefix equation i1 - i2 - 5 = 0 does not contain it.
        assert!(!check_cartesian_product(&prefix, &suffix, -5, 0));
    }

    #[test]
    fn symbolic_condition() {
        use delin_numeric::SymPoly;
        // Section 4 example, first separation: prefix {i} with Z = N-1,
        // suffix {j: N, k: N²} and D0 = N² + N − ... simplified check:
        // gcd(N·…) = N > max over prefix |i| ≤ N-1 with d0 = 0.
        let n = SymPoly::symbol("N");
        let nm1 = n.checked_sub(&SymPoly::one()).unwrap();
        let n2 = n.checked_mul(&n).unwrap();
        let prefix = [(SymPoly::one(), nm1.clone())];
        let suffix = [(n.clone(), nm1.clone()), (n2.clone(), nm1.clone())];
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 2);
        let cond = separation_condition(&prefix, &suffix, &SymPoly::zero(), &SymPoly::zero(), &a);
        // gcd(0, N, N²) = N > max(0, N-1): N - (N-1) = 1 > 0. True.
        assert!(cond.is_true());
        // Without assumptions (N possibly 0) it cannot be decided.
        let cond = separation_condition(
            &prefix,
            &suffix,
            &SymPoly::zero(),
            &SymPoly::zero(),
            &Assumptions::new(),
        );
        assert!(cond.is_unknown());
    }

    #[test]
    fn empty_suffix_with_zero_d0_is_false() {
        let prefix = [(1i128, 4i128)];
        let cond = separation_condition::<i128>(&prefix, &[], &0, &0, &Assumptions::new());
        assert!(cond.is_false());
    }

    proptest! {
        /// The theorem itself: whenever the premise holds on concrete data,
        /// the solution set factors as a Cartesian product.
        #[test]
        fn theorem_holds(
            pc in prop::collection::vec((-4i128..=4, 0i128..=4), 1..3),
            scale in 5i128..40,
            sc in prop::collection::vec((-3i128..=3, 0i128..=4), 1..3),
            d0 in -6i128..=6,
            big_mul in -3i128..=3,
        ) {
            // Build a suffix whose coefficients are multiples of `scale` so
            // the premise has a chance of holding.
            let suffix: Vec<(i128, i128)> =
                sc.iter().map(|&(c, z)| (c * scale, z)).collect();
            let g = suffix.iter().fold(0i128, |g, &(c, _)| delin_numeric::gcd(g, c));
            let big_d0 = big_mul * if g == 0 { scale } else { g };
            let cond = separation_condition(
                &pc, &suffix, &d0, &big_d0, &Assumptions::new());
            if cond.is_true() {
                prop_assert!(check_cartesian_product(&pc, &suffix, d0, big_d0));
            }
        }

        /// The premise evaluator agrees with a direct computation.
        #[test]
        fn condition_matches_direct(
            pc in prop::collection::vec((-5i128..=5, 0i128..=5), 0..3),
            sc in prop::collection::vec((-30i128..=30, 0i128..=5), 0..3),
            d0 in -10i128..=10,
            big_d0 in -30i128..=30,
        ) {
            let g = sc.iter().fold(big_d0, |g, &(c, _)| delin_numeric::gcd(g, c));
            let cmin: i128 = d0 + pc.iter().map(|&(c, z)| c.min(0) * z).sum::<i128>();
            let cmax: i128 = d0 + pc.iter().map(|&(c, z)| c.max(0) * z).sum::<i128>();
            let expect = g > 0 && cmin.abs().max(cmax.abs()) < g;
            let got = separation_condition(&pc, &sc, &d0, &big_d0, &Assumptions::new());
            prop_assert_eq!(got.is_true(), expect);
        }
    }
}
