//! [`DelinearizationTest`]: the algorithm as a pluggable dependence test.
//!
//! Each equation of the dependence system is delinearized; independence
//! discovered on the fly (GCD / per-dimension Banerjee) or via an
//! unsatisfiable dimension ends the analysis immediately. Otherwise the
//! per-dimension direction-vector sets are combined with the paper's
//! `dv ⊓ nv` rule, intersected across equations, and summarized. For
//! concrete problems the per-dimension equations are solved *exactly*
//! (they are small — that is the point of delinearization), and constant
//! distances are extracted per dimension, yielding the sharper
//! distance-direction vectors the paper advertises over MHL91.

use crate::algorithm::{
    combine_direction_vectors, delinearize, dimension_direction_vectors, dimension_subproblem,
    DelinConfig, DelinOutcome,
};
use delin_dep::budget::ResourceBudget;
use delin_dep::dirvec::{summarize, Dir, DirVec, DistDir, DistDirVec};
use delin_dep::exact::{ExactSolver, SubtreeStore};
use delin_dep::gcd::equation_divisible;
use delin_dep::hierarchy;
use delin_dep::problem::{CoeffRow, DependenceProblem, LinEq};
use delin_dep::verdict::{DependenceInfo, DependenceTest, Verdict};
use delin_numeric::{Coeff, SymPoly};

/// The delinearization dependence test.
#[derive(Debug, Clone, Default)]
pub struct DelinearizationTest {
    /// Algorithm configuration.
    pub config: DelinConfig,
}

impl DelinearizationTest {
    /// A test with the given per-dimension solver budget.
    pub fn with_node_limit(limit: u64) -> DelinearizationTest {
        DelinearizationTest {
            config: DelinConfig { dimension_node_limit: limit, ..DelinConfig::default() },
        }
    }

    /// A test whose per-dimension solvers run under `budget` (node limit,
    /// deadline, and cancellation; exhaustion degrades the verdict to a
    /// conservative, never-exact answer and records the reason in the
    /// budget's trip flag).
    pub fn with_budget(budget: ResourceBudget) -> DelinearizationTest {
        DelinearizationTest {
            config: DelinConfig {
                dimension_node_limit: budget.node_limit(),
                budget: Some(budget),
                ..DelinConfig::default()
            },
        }
    }
}

/// Generic core shared by the concrete and symbolic instantiations.
fn run<C: Coeff>(
    test: &DelinearizationTest,
    problem: &DependenceProblem<C>,
    oracle: &hierarchy::DirOracle<'_, C>,
    oracle_is_exact: bool,
) -> Verdict {
    let num_levels = problem.common_loops().len();
    let mut acc: Vec<DirVec> = vec![DirVec::any(num_levels)];
    let mut any_inexact = false;
    for eq_index in 0..problem.equations().len() {
        match delinearize(problem, eq_index, &test.config) {
            DelinOutcome::Independent { .. } => return Verdict::Independent,
            DelinOutcome::Separated { separation } => {
                let mut per_dim = Vec::new();
                for dim in &separation.dimensions {
                    // Per-dimension GCD test (sharp for symbolic dims too).
                    let sub_eq = LinEq {
                        c0: dim.constant.clone(),
                        coeffs: {
                            let mut v: CoeffRow<C> = CoeffRow::zeroed(problem.num_vars());
                            for (var, c) in &dim.terms {
                                v[*var] = c.clone();
                            }
                            v
                        },
                    };
                    if equation_divisible(&sub_eq, problem.assumptions()).is_false() {
                        return Verdict::Independent;
                    }
                    match dimension_direction_vectors(problem, dim, oracle) {
                        None => return Verdict::Independent,
                        Some(nv) => per_dim.push(nv),
                    }
                }
                match combine_direction_vectors(num_levels, &per_dim) {
                    None => return Verdict::Independent,
                    Some(dvs) => {
                        let mut next = Vec::new();
                        for a in &acc {
                            for d in &dvs {
                                if let Some(m) = a.meet(d) {
                                    next.push(m);
                                }
                            }
                        }
                        next.sort();
                        next.dedup();
                        if next.is_empty() {
                            return Verdict::Independent;
                        }
                        acc = next;
                    }
                }
            }
        }
        any_inexact = any_inexact || !problem.inequalities().is_empty();
    }
    // Exactness: a single equation whose dimensions were each verified
    // feasible by an *exact* oracle factors into a genuinely feasible
    // product (the theorem); multiple equations, extra constraints, or a
    // real-valued (symbolic) oracle are only conservative.
    let exact =
        oracle_is_exact && problem.equations().len() == 1 && problem.inequalities().is_empty();
    Verdict::Dependent {
        exact: exact && !any_inexact,
        info: DependenceInfo { dir_vecs: summarize(acc), dist_dirs: Vec::new(), witness: None },
    }
}

impl DependenceTest<i128> for DelinearizationTest {
    fn name(&self) -> &'static str {
        "delinearization"
    }

    fn test(&self, problem: &DependenceProblem<i128>) -> Verdict {
        let budget =
            self.config.budget.clone().unwrap_or_else(|| {
                ResourceBudget::with_node_limit(self.config.dimension_node_limit)
            });
        let solver = ExactSolver::with_budget(budget.clone()).with_arena(self.config.arena);
        // One subtree store spans the whole decision: the hierarchy walk
        // below and the distance extraction that follows query the same
        // per-dimension subproblems, so the distance phase's witness solves
        // replay the walk's leaf proofs instead of re-enumerating. A caller
        // (the verdict cache) may hand in a longer-lived store instead, so
        // repeated decisions of one canonical problem share subtrees too.
        let owned;
        let store: &SubtreeStore = match &self.config.solve_store {
            Some(shared) if self.config.incremental => shared,
            _ => {
                owned = if self.config.incremental {
                    SubtreeStore::new()
                } else {
                    SubtreeStore::disabled()
                };
                &owned
            }
        };
        let oracle = hierarchy::exact_oracle_in(solver.clone(), store);
        let mut verdict = run(self, problem, &oracle, true);
        // Enrich with distance-direction vectors (concrete problems only).
        if let Verdict::Dependent { info, .. } = &mut verdict {
            info.dist_dirs = distance_vectors(self, problem, &solver, store);
        }
        // A budget-degraded run keeps only conservative claims: the
        // surviving direction vectors are a superset of the truth, but an
        // "exact" flag would be a proof claim the exhausted oracle cannot
        // back.
        if budget.tripped().is_some() {
            if let Verdict::Dependent { exact, .. } = &mut verdict {
                *exact = false;
            }
        }
        verdict
    }
}

impl DependenceTest<SymPoly> for DelinearizationTest {
    fn name(&self) -> &'static str {
        "delinearization-symbolic"
    }

    fn test(&self, problem: &DependenceProblem<SymPoly>) -> Verdict {
        let oracle = hierarchy::banerjee_oracle();
        run(self, problem, &oracle, false)
    }
}

/// Distance-direction vectors via per-dimension exact analysis, combined
/// across dimensions and equations with the meet rule.
fn distance_vectors(
    test: &DelinearizationTest,
    problem: &DependenceProblem<i128>,
    solver: &ExactSolver,
    store: &SubtreeStore,
) -> Vec<DistDirVec> {
    let num_levels = problem.common_loops().len();
    if num_levels == 0 {
        return Vec::new();
    }
    let mut acc: Vec<DistDirVec> = vec![DistDirVec(vec![DistDir::Dir(Dir::Any); num_levels])];
    for eq_index in 0..problem.equations().len() {
        let DelinOutcome::Separated { separation } = delinearize(problem, eq_index, &test.config)
        else {
            return Vec::new();
        };
        for dim in &separation.dimensions {
            let (sub, levels) = dimension_subproblem(problem, dim);
            if levels.is_empty() {
                continue;
            }
            let sub_dists = hierarchy::distance_direction_vectors_in(&sub, solver, store);
            if sub_dists.is_empty() {
                return Vec::new();
            }
            // Expand each to full length.
            let expanded: Vec<DistDirVec> = sub_dists
                .into_iter()
                .map(|dv| {
                    let mut full = vec![DistDir::Dir(Dir::Any); num_levels];
                    for (sub_level, &orig) in levels.iter().enumerate() {
                        full[orig] = dv.0[sub_level];
                    }
                    DistDirVec(full)
                })
                .collect();
            let mut next = Vec::new();
            for a in &acc {
                for b in &expanded {
                    if let Some(m) = meet_dist_vec(a, b) {
                        next.push(m);
                    }
                }
            }
            next.dedup();
            if next.is_empty() {
                return Vec::new();
            }
            acc = next;
        }
    }
    hierarchy::summarize_dist_dirs(acc)
}

fn meet_dist_vec(a: &DistDirVec, b: &DistDirVec) -> Option<DistDirVec> {
    let mut out = Vec::with_capacity(a.0.len());
    for (x, y) in a.0.iter().zip(&b.0) {
        out.push(meet_dist(x, y)?);
    }
    Some(DistDirVec(out))
}

fn meet_dist(a: &DistDir, b: &DistDir) -> Option<DistDir> {
    match (a, b) {
        (DistDir::Dist(x), DistDir::Dist(y)) => (x == y).then_some(DistDir::Dist(*x)),
        (DistDir::Dist(x), DistDir::Dir(d)) | (DistDir::Dir(d), DistDir::Dist(x)) => {
            DistDir::Dist(*x).dir().meet(*d).map(|_| DistDir::Dist(*x))
        }
        (DistDir::Dir(d1), DistDir::Dir(d2)) => d1.meet(*d2).map(DistDir::Dir),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delin_dep::banerjee::BanerjeeTest;
    use delin_dep::exact::SolveOutcome;
    use delin_dep::fourier::FourierMotzkin;
    use delin_dep::gcd::GcdTest;

    fn motivating() -> DependenceProblem<i128> {
        DependenceProblem::single_equation(-5, vec![1, 10, -1, -10], vec![4, 9, 4, 9])
    }

    #[test]
    fn headline_comparison() {
        // The motivating example: delinearization proves independence where
        // GCD, Banerjee, and real FM cannot (the paper's Table-of-intent).
        let p = motivating();
        assert!(DelinearizationTest::default().test(&p).is_independent());
        assert!(GcdTest.test(&p).is_dependent());
        assert!(BanerjeeTest.test(&p).is_dependent());
        assert!(FourierMotzkin::real().test(&p).is_dependent());
        // And the exact solver confirms.
        assert_eq!(ExactSolver::default().solve(&p), SolveOutcome::NoSolution);
    }

    #[test]
    fn direction_vectors_on_dependent_example() {
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 4);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation(-3, vec![1, 10, -1, -10]);
        let p = b.build();
        let v = DelinearizationTest::default().test(&p);
        let Verdict::Dependent { exact, info } = v else {
            panic!("expected dependent");
        };
        assert!(exact);
        assert_eq!(info.dir_vecs, vec![DirVec(vec![Dir::Gt, Dir::Eq])]);
        assert_eq!(info.dist_dirs, vec![DistDirVec(vec![DistDir::Dist(-3), DistDir::Dist(0)])]);
    }

    #[test]
    fn mhl91_distance_claim() {
        // Paper: "Using delinearization we are able to prove that distance
        // vector is (2,0)" for A(10i+j) = A(10(i+2)+j) + 7.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 7);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 7);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        // source reads A(10(i+2)+j), sink writes A(10 i + j):
        // 10 i1 + 20 + j1 - 10 i2 - j2 = 0.
        b.equation(20, vec![10, 1, -10, -1]);
        let p = b.build();
        let v = DelinearizationTest::default().test(&p);
        let info = v.info().expect("dependent");
        assert_eq!(info.dist_dirs, vec![DistDirVec(vec![DistDir::Dist(2), DistDir::Dist(0)])]);
    }

    #[test]
    fn multi_equation_meet() {
        // Two subscripts: A(i, i+10j) style coupling where the first
        // dimension forces '=' on i and the second is the linearized pair.
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let j1 = b.var("j1", 9);
        let i2 = b.var("i2", 4);
        let j2 = b.var("j2", 9);
        b.common_pair(i1, i2).common_pair(j1, j2);
        b.equation(0, vec![1, 0, -1, 0]); // i1 = i2
        b.equation(-20, vec![1, 10, -1, -10]); // i1 + 10j1 = i2 + 10j2 + 20
        let p = b.build();
        let v = DelinearizationTest::default().test(&p);
        let Verdict::Dependent { info, .. } = v else {
            panic!("expected dependent");
        };
        // From eq2: i-dim gives i1 = i2 + 0 and j-dim j1 = j2 + 2.
        assert_eq!(info.dir_vecs, vec![DirVec(vec![Dir::Eq, Dir::Gt])]);
    }

    #[test]
    fn multi_equation_contradiction_is_independent() {
        let mut b = DependenceProblem::<i128>::builder();
        let i1 = b.var("i1", 4);
        let i2 = b.var("i2", 4);
        b.common_pair(i1, i2);
        b.equation(-1, vec![1, -1]); // i1 = i2 + 1 => '>'
        b.equation(1, vec![1, -1]); // i1 = i2 - 1 => '<'
        let p = b.build();
        assert!(DelinearizationTest::default().test(&p).is_independent());
    }

    #[test]
    fn symbolic_instantiation() {
        use delin_numeric::Assumptions;
        // N²(k1 - k2) + N(j1 - i2) + (i1 - j2) = N² + N with the Section 4
        // bounds: dependent (e.g. k1 = k2 + 1, j1 = i2 + 1 would give
        // N² + N with i1 = j2) — the symbolic test must not claim
        // independence; and the symbolic gcd path must not crash.
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let nm1 = n.checked_sub(&SymPoly::one()).unwrap();
        let nm2 = n.checked_sub(&SymPoly::constant(2)).unwrap();
        let c0 = n2.checked_add(&n).unwrap().checked_neg().unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("i1", nm2.clone());
        b.var("j1", nm1.clone());
        b.var("k1", nm2.clone());
        b.var("i2", nm2.clone());
        b.var("j2", nm1.clone());
        b.var("k2", nm2.clone());
        b.equation(
            c0,
            vec![
                SymPoly::one(),
                n.clone(),
                n2.clone(),
                n.checked_neg().unwrap(),
                SymPoly::constant(-1),
                n2.checked_neg().unwrap(),
            ],
        );
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 2);
        b.assumptions(a);
        let p = b.build();
        let v = DependenceTest::<SymPoly>::test(&DelinearizationTest::default(), &p);
        assert!(v.is_dependent());
    }

    #[test]
    fn symbolic_independence() {
        use delin_numeric::Assumptions;
        // N²(k1 - k2) = N² + 3 under N >= 2: per-dimension GCD test fails
        // (3 is not divisible by N²).
        let n = SymPoly::symbol("N");
        let n2 = n.checked_mul(&n).unwrap();
        let nm2 = n.checked_sub(&SymPoly::constant(2)).unwrap();
        let c0 = n2.checked_add(&SymPoly::constant(3)).unwrap().checked_neg().unwrap();
        let mut b = DependenceProblem::<SymPoly>::builder();
        b.var("k1", nm2.clone());
        b.var("k2", nm2);
        b.equation(c0, vec![n2.clone(), n2.checked_neg().unwrap()]);
        let mut a = Assumptions::new();
        a.set_lower_bound("N", 2);
        b.assumptions(a);
        let p = b.build();
        let v = DependenceTest::<SymPoly>::test(&DelinearizationTest::default(), &p);
        assert!(v.is_independent());
    }

    #[test]
    fn soundness_against_exact_on_random_family() {
        // Exhaustive small sweep: delinearization must never contradict the
        // exact solver.
        let solver = ExactSolver::default();
        let t = DelinearizationTest::default();
        for c0 in -30i128..=30 {
            for a in [1i128, 2, 3] {
                for s in [6i128, 10] {
                    let p = DependenceProblem::single_equation(
                        c0,
                        vec![a, s, -a, -s],
                        vec![3, 4, 3, 4],
                    );
                    let got = t.test(&p);
                    match solver.solve(&p) {
                        SolveOutcome::Solution(_) => {
                            assert!(got.is_dependent(), "c0={c0} a={a} s={s}")
                        }
                        SolveOutcome::NoSolution => {
                            // Delinearization may fail to prove it, but must
                            // not claim exact dependence.
                            if let Verdict::Dependent { exact, .. } = &got {
                                assert!(!exact, "c0={c0} a={a} s={s}");
                            }
                        }
                        SolveOutcome::Degraded(_) => unreachable!(),
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_config_changes_cost_but_not_verdicts() {
        use delin_dep::exact::{
            peek_thread_nodes, reset_thread_nodes, reset_thread_refine, take_thread_refine,
        };
        let incremental = DelinearizationTest::default();
        let fresh = DelinearizationTest {
            config: DelinConfig { incremental: false, ..DelinConfig::default() },
        };
        let problems = vec![
            motivating(),
            {
                let mut b = DependenceProblem::<i128>::builder();
                let i1 = b.var("i1", 4);
                let j1 = b.var("j1", 9);
                let i2 = b.var("i2", 4);
                let j2 = b.var("j2", 9);
                b.common_pair(i1, i2).common_pair(j1, j2);
                b.equation(-3, vec![1, 10, -1, -10]);
                b.build()
            },
            {
                let mut b = DependenceProblem::<i128>::builder();
                let i1 = b.var("i1", 7);
                let j1 = b.var("j1", 9);
                let i2 = b.var("i2", 7);
                let j2 = b.var("j2", 9);
                b.common_pair(i1, i2).common_pair(j1, j2);
                b.equation(20, vec![10, 1, -10, -1]);
                b.build()
            },
        ];
        for p in &problems {
            reset_thread_nodes();
            reset_thread_refine();
            let v_fresh = fresh.test(p);
            let fresh_nodes = peek_thread_nodes();
            let c_fresh = take_thread_refine();
            assert_eq!(c_fresh.subtree_reuses, 0, "disabled store must never reuse");
            reset_thread_nodes();
            let v_incr = incremental.test(p);
            let incr_nodes = peek_thread_nodes();
            let c_incr = take_thread_refine();
            assert_eq!(format!("{v_fresh:?}"), format!("{v_incr:?}"));
            if v_incr.is_dependent() {
                assert!(c_incr.subtree_reuses > 0, "dependent pairs must share subtrees");
                assert!(incr_nodes < fresh_nodes, "{incr_nodes} vs {fresh_nodes}");
            }
            reset_thread_nodes();
        }
    }

    #[test]
    fn names() {
        let t = DelinearizationTest::default();
        assert_eq!(DependenceTest::<i128>::name(&t), "delinearization");
        assert_eq!(DependenceTest::<SymPoly>::name(&t), "delinearization-symbolic");
    }
}
