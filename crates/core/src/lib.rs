//! Delinearization: breaking multiloop dependence equations into
//! independently solvable per-dimension equations.
//!
//! This crate is the reproduction of the central contribution of
//! *Maslov, "Delinearization: an Efficient Way to Break Multiloop
//! Dependence Equations", PLDI 1992*:
//!
//! * [`theorem`] — the separation theorem (the paper's Section 3 theorem)
//!   as a checkable predicate, plus a brute-force verifier used by the
//!   property tests;
//! * [`algorithm`] — the delinearization algorithm of Fig. 4: order the
//!   coefficients by magnitude, scan from small to large maintaining the
//!   running prefix range `[smin, smax]` and the suffix gcds `gk`, and
//!   separate a dimension whenever `max(|smin+r|, |smax+r|) < gk`;
//!   performs the GCD test and per-dimension Banerjee checks *on the fly*
//!   and computes per-dimension direction vectors with exact
//!   small-equation solvers;
//! * [`trace`] — the per-iteration trace that regenerates the paper's
//!   Fig. 5 table;
//! * [`test_impl`] — [`DelinearizationTest`], plugging the algorithm into
//!   the `delin-dep` testing framework.
//!
//! # Example: the paper's motivating question
//!
//! Are `C(i1 + 10*j1)` and `C(i2 + 10*j2 + 5)` independent for
//! `i ∈ [0,4]`, `j ∈ [0,9]`?
//!
//! ```
//! use delin_core::DelinearizationTest;
//! use delin_dep::{DependenceProblem, DependenceTest};
//!
//! let p = DependenceProblem::single_equation(
//!     -5,
//!     vec![1, 10, -1, -10],
//!     vec![4, 9, 4, 9],
//! );
//! assert!(DelinearizationTest::default().test(&p).is_independent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod test_impl;
pub mod theorem;
pub mod trace;

pub use algorithm::{delinearize, DelinConfig, DelinOutcome, Dimension, Separation};
pub use test_impl::DelinearizationTest;
pub use theorem::separation_condition;
pub use trace::TraceRow;
