//! The per-iteration trace of the delinearization algorithm.
//!
//! The paper's Fig. 5 tabulates, for each iteration `k` of the scan, the
//! current coefficient `c_Ik`, the running prefix range `[smin, smax]`, the
//! running constant `c0`, the suffix gcd `gk`, and the equation separated
//! at that iteration (if any). [`TraceRow`] captures exactly those columns
//! and [`render_trace`] prints the table.

use delin_numeric::Coeff;
use std::fmt::Write as _;

/// One row of the algorithm trace (one iteration of the Fig. 4 loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRow<C> {
    /// Iteration index `k` (1-based position in the sorted coefficient
    /// order; the final row is `n + 1`).
    pub k: usize,
    /// The coefficient `c_Ik` examined after this iteration's separation
    /// check (`None` on the final, always-separating iteration).
    pub coeff: Option<C>,
    /// Running prefix minimum before the check.
    pub smin: Option<C>,
    /// Running prefix maximum before the check.
    pub smax: Option<C>,
    /// Running constant `c0` at the time of the check.
    pub c0: C,
    /// The suffix gcd `gk` (`None` represents `g_{n+1} = ∞`).
    pub g: Option<C>,
    /// The remainder `r` used for the check, when computable.
    pub r: Option<C>,
    /// Rendered separated equation, when this iteration separated one.
    pub separated: Option<String>,
}

/// Renders trace rows as an aligned table in the style of the paper's
/// Fig. 5.
pub fn render_trace<C: Coeff>(rows: &[TraceRow<C>]) -> String {
    let mut table: Vec<[String; 7]> = Vec::with_capacity(rows.len() + 1);
    table.push([
        "k".into(),
        "c_Ik".into(),
        "smin".into(),
        "smax".into(),
        "c0".into(),
        "gk".into(),
        "separated equation".into(),
    ]);
    let fmt_opt = |v: &Option<C>| v.as_ref().map_or("-".to_string(), |c| c.to_string());
    for row in rows {
        table.push([
            row.k.to_string(),
            fmt_opt(&row.coeff),
            fmt_opt(&row.smin),
            fmt_opt(&row.smax),
            row.c0.to_string(),
            row.g.as_ref().map_or("inf".to_string(), |g| g.to_string()),
            row.separated.clone().unwrap_or_default(),
        ]);
    }
    let mut widths = [0usize; 7];
    for r in &table {
        for (w, cell) in widths.iter_mut().zip(r.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for r in &table {
        for (i, (w, cell)) in widths.iter().zip(r.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = *w);
        }
        // Trim right padding of the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            TraceRow::<i128> {
                k: 1,
                coeff: Some(-1),
                smin: Some(0),
                smax: Some(0),
                c0: -110,
                g: Some(1),
                r: Some(0),
                separated: Some("0 = 0".into()),
            },
            TraceRow::<i128> {
                k: 7,
                coeff: None,
                smin: Some(-800),
                smax: Some(800),
                c0: -100,
                g: None,
                r: Some(-100),
                separated: Some("100*k1 - 100*k2 - 100 = 0".into()),
            },
        ];
        let s = render_trace(&rows);
        assert!(s.contains("gk"));
        assert!(s.contains("inf"));
        assert!(s.contains("100*k1 - 100*k2 - 100 = 0"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header columns aligned with data columns.
        assert!(lines[0].contains("smin"));
    }
}
